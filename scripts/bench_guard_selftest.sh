#!/usr/bin/env bash
# Self-test for scripts/bench_guard.sh against synthetic artifacts.
#
# The guard is awk over hand-formatted JSON, which is exactly the kind of
# code that rots silently — the motivating bug: number extraction with
# `sub(/[^0-9.].*/, "", s)` truncated exponent-form floats, so a
# "speedup": 9.5e-1 (= 0.95, a regression) parsed as 9.5 and sailed past
# every floor. Each case below runs the real guard on a synthetic
# artifact and asserts the exit code; the exponent cases pin the fix.
#
# Usage: scripts/bench_guard_selftest.sh   (no arguments; uses mktemp)
set -uo pipefail
cd "$(dirname "$0")/.."

GUARD=scripts/bench_guard.sh
T="$(mktemp -d "${TMPDIR:-/tmp}/bench_guard_selftest.XXXXXX")"
trap 'rm -rf "$T"' EXIT
ABSENT="$T/absent.json"
fails=0
case_no=0

check() { # check <expected_exit> <label> <kernels> <fullstep> <ensemble>
    local expect="$1" label="$2" out rc
    case_no=$((case_no + 1))
    out="$("$GUARD" "$3" "$4" "$5" 2>&1)"
    rc=$?
    if [[ "$rc" -ne "$expect" ]]; then
        echo "FAIL case $case_no ($label): exit $rc, expected $expect"
        echo "$out" | sed 's/^/    /'
        fails=$((fails + 1))
    else
        echo "ok   case $case_no ($label)"
    fi
}

kernels_artifact() { # kernels_artifact <file> <laplace_speedup> <smoke> [lane_resident]
    # The hypervis_member_lanes row is pinned at 0.75 in every case: the
    # end-to-end lane row pays gather + scatter against a baseline that
    # pays neither and is exempt from the generic 1.0 floor — a case run
    # on it failing would mean the exemption regressed.
    local resident="${4:-1.02}"
    cat > "$1" <<EOF
{
  "bench": "kernels",
  "smoke": $3,
  "kernels": [
    {"name": "laplace", "scalar_ms": 1.2, "blocked_ms": 0.9, "speedup": $2},
    {"name": "biharmonic_planned", "scalar_ms": 8.5, "blocked_ms": 4.2, "speedup": 1.997},
    {"name": "hypervis_fullpass", "scalar_ms": 468.9, "blocked_ms": 280.3, "speedup": 1.673},
    {"name": "hypervis_member_lanes", "scalar_ms": 18.9, "blocked_ms": 25.2, "speedup": 0.75},
    {"name": "hypervis_member_lanes_resident", "scalar_ms": 18.9, "blocked_ms": 18.5, "speedup": $resident},
    {"name": "vertical_remap", "scalar_ms": 23.5, "blocked_ms": 11.4, "speedup": 2.047},
    {"name": "vertical_remap_planned", "scalar_ms": 23.5, "blocked_ms": 9.2, "speedup": 2.533}
  ]
}
EOF
}

fullstep_artifact() { # fullstep_artifact <file> <cores> <oversubscribed> <ratio>
    cat > "$1" <<EOF
{
  "bench": "fullstep",
  "cores": $2,
  "threads": 4,
  "oversubscribed": $3,
  "taskgraph_speedup_vs_bulk_parallel": $4
}
EOF
}

ensemble_artifact() { # ensemble_artifact <file> <mode> <bitwise> <e2e> <steady> [path] [members] [steady_target]
    # The batch rows repeat a "members": key — present here so a case
    # catches the guard ever reading a batch row's count as the top-level
    # member count.
    local path="${6:-chunked}" members="${7:-4}" steady_target="${8:-1.8}"
    cat > "$1" <<EOF
{
  "bench": "ensemble",
  "mode": "$2",
  "members": $members,
  "member_kernel_path": "$path",
  "batches": [
    {"members": 1, "speedup": 0.99},
    {"members": 2, "speedup": 1.05}
  ],
  "speedup_steady_state": $5,
  "steady_target_speedup": $steady_target,
  "steady_target_met": false,
  "speedup_end_to_end": $4,
  "bitwise_ok": $3,
  "target_speedup": 3.0,
  "target_met": false
}
EOF
}

# --- Section 1: kernels ---------------------------------------------------
kernels_artifact "$T/k_good.json" 1.226 false
check 0 "kernels: healthy full artifact passes" "$T/k_good.json" "$ABSENT" "$ABSENT"

kernels_artifact "$T/k_lost.json" 0.83 false
check 1 "kernels: blocked kernel losing to scalar fails" "$T/k_lost.json" "$ABSENT" "$ABSENT"

# The motivating bug: 9.5e-1 = 0.95 < 1.0. The broken parser read 9.5.
kernels_artifact "$T/k_exp.json" 9.5e-1 false
check 1 "kernels: exponent-form losing speedup fails (old parser read 9.5e-1 as 9.5)" \
    "$T/k_exp.json" "$ABSENT" "$ABSENT"

kernels_artifact "$T/k_smoke.json" 0.83 true
check 0 "kernels: smoke artifact skips floors" "$T/k_smoke.json" "$ABSENT" "$ABSENT"

printf '{\n  "bench": "kernels",\n  "kernels": [\n    {"name": "laplace", "speedup": 1.2}\n  ]\n}\n' > "$T/k_missing.json"
check 1 "kernels: required row missing fails structurally" "$T/k_missing.json" "$ABSENT" "$ABSENT"

check 0 "kernels: absent artifact skips" "$ABSENT" "$ABSENT" "$ABSENT"

# Member-lane rows. Every healthy case above already pins the end-to-end
# exemption (hypervis_member_lanes hardcoded at 0.75 passes); what must
# fail is the tiles-resident row losing member-serial compute.
kernels_artifact "$T/k_lane_res.json" 1.226 false 0.7
check 1 "kernels: lane resident row under its 0.9 floor fails" "$T/k_lane_res.json" "$ABSENT" "$ABSENT"

kernels_artifact "$T/k_lane_exp.json" 1.226 false 8.5e-1
check 1 "kernels: exponent-form losing lane resident fails (8.5e-1 = 0.85)" \
    "$T/k_lane_exp.json" "$ABSENT" "$ABSENT"

# --- Section 2: fullstep --------------------------------------------------
fullstep_artifact "$T/f_good.json" 8 false 1.45
check 0 "fullstep: parallel floor met on real cores" "$ABSENT" "$T/f_good.json" "$ABSENT"

fullstep_artifact "$T/f_slow.json" 8 false 0.97
check 1 "fullstep: parallel floor missed fails" "$ABSENT" "$T/f_slow.json" "$ABSENT"

fullstep_artifact "$T/f_exp.json" 8 false 9.7e-1
check 1 "fullstep: exponent-form losing ratio fails" "$ABSENT" "$T/f_exp.json" "$ABSENT"

fullstep_artifact "$T/f_1core.json" 1 false 0.64
check 0 "fullstep: single core skips the floor" "$ABSENT" "$T/f_1core.json" "$ABSENT"

fullstep_artifact "$T/f_oversub.json" 8 true 0.52
check 0 "fullstep: oversubscribed artifact skips the floor" "$ABSENT" "$T/f_oversub.json" "$ABSENT"

# --- Section 3: ensemble --------------------------------------------------
ensemble_artifact "$T/e_good.json" full true 1.02 1.06
check 0 "ensemble: full artifact above floors passes" "$ABSENT" "$ABSENT" "$T/e_good.json"

ensemble_artifact "$T/e_slow.json" full true 0.55 0.55
check 1 "ensemble: regressed speedup fails the floor" "$ABSENT" "$ABSENT" "$T/e_slow.json"

ensemble_artifact "$T/e_exp.json" full true 5.5e-1 5.5e-1
check 1 "ensemble: exponent-form regressed speedup fails" "$ABSENT" "$ABSENT" "$T/e_exp.json"

ensemble_artifact "$T/e_smoke.json" smoke true 0.55 0.55
check 0 "ensemble: smoke artifact skips floors" "$ABSENT" "$ABSENT" "$T/e_smoke.json"

ensemble_artifact "$T/e_bitwise.json" smoke false 1.02 1.06
check 1 "ensemble: bitwise pin failure fails even in smoke mode" "$ABSENT" "$ABSENT" "$T/e_bitwise.json"

printf '{\n  "bench": "ensemble",\n  "mode": "full"\n}\n' > "$T/e_fields.json"
check 1 "ensemble: missing fields fail structurally" "$ABSENT" "$ABSENT" "$T/e_fields.json"

# --- Section 3b: lane steady floor ----------------------------------------
# The 1.8x lane floor binds only when the kernels artifact shows the lane
# arithmetic beating member-serial compute (resident >= LANE_EDGE_MIN);
# otherwise it skips with the reason logged (exit 0). Both branches and
# the exponent parse are pinned.
kernels_artifact "$T/k_edge.json" 1.226 false 1.7
kernels_artifact "$T/k_noedge.json" 1.226 false 1.02

ensemble_artifact "$T/e_lane_good.json" full true 1.9 2.1 lanes 4
check 0 "lane floor: steady above 1.8x with a lane compute edge passes" \
    "$T/k_edge.json" "$ABSENT" "$T/e_lane_good.json"

ensemble_artifact "$T/e_lane_slow.json" full true 1.1 1.3 lanes 4
check 1 "lane floor: steady under 1.8x with a lane compute edge fails" \
    "$T/k_edge.json" "$ABSENT" "$T/e_lane_slow.json"

check 0 "lane floor: same artifact skips when the host shows no lane edge" \
    "$T/k_noedge.json" "$ABSENT" "$T/e_lane_slow.json"

check 0 "lane floor: skips without a kernels artifact to establish the edge" \
    "$ABSENT" "$ABSENT" "$T/e_lane_slow.json"

# 9.5e-1 = 0.95 clears the generic 0.9 floor but not the 1.8x lane floor;
# the broken parser would read 9.5 and pass it.
ensemble_artifact "$T/e_lane_exp.json" full true 1.0 9.5e-1 lanes 4
check 1 "lane floor: exponent-form steady fails (9.5e-1 = 0.95 < 1.8)" \
    "$T/k_edge.json" "$ABSENT" "$T/e_lane_exp.json"

ensemble_artifact "$T/e_lane_part.json" full true 1.0 1.0 lanes 2
check 0 "lane floor: not armed under a full 4-lane batch" \
    "$T/k_edge.json" "$ABSENT" "$T/e_lane_part.json"

ensemble_artifact "$T/e_lane_chunk.json" full true 1.0 1.0 chunked 4
check 0 "lane floor: not armed on the chunked path" \
    "$T/k_edge.json" "$ABSENT" "$T/e_lane_chunk.json"

# --------------------------------------------------------------------------
if [[ "$fails" -ne 0 ]]; then
    echo "bench_guard selftest: $fails of $case_no cases FAILED"
    exit 1
fi
echo "bench_guard selftest: all $case_no cases passed"
