#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Fully offline — all third-party
# dependencies resolve to the vendored stubs in third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

# Clippy is not part of every toolchain install; lint when present.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy unavailable; skipping lint" >&2
fi

echo "verify: OK"
