#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Fully offline — all third-party
# dependencies resolve to the vendored stubs in third_party/.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q --workspace"
cargo test -q --workspace

# Distributed group: the aggregated boundary exchange, the distributed
# driver's serial-equivalence suite, and the zero-allocation gate for the
# distributed step. Redundant with the workspace run above but named
# explicitly so a failure localizes immediately.
echo "== distributed test group"
cargo test -q -p homme --lib bndry
cargo test -q -p homme --lib dist
cargo test -q -p homme --test dist_alloc
cargo test -q -p swcam-bench --test distributed_step

# Fault-injection group: the seeded fault plan and reliable-mode machinery
# in swmpi, the checkpoint codec, the health guards, and the end-to-end
# recovery suite (message faults, checkpoint restart, rank crash + rollback).
echo "== fault-injection test group"
cargo test -q -p swmpi --lib fault
cargo test -q -p swmpi --lib comm
cargo test -q -p swcam-core --lib checkpoint
cargo test -q -p homme --lib health
cargo test -q -p swcam-bench --test fault_injection

# Task-graph group: the message-driven element task graph must stay
# bitwise identical to the bulk-synchronous step — engine unit tests, the
# serial pipeline parity suite, the canonical-order DSS gather, the
# distributed event loop parity suite, the schedule-independence sweep,
# and the task-graph halves of both allocation gates and the fault suite.
echo "== taskgraph test group"
cargo test -q -p homme --lib taskgraph
cargo test -q -p homme --lib dss
cargo test -q -p homme --lib bndry::tests::gather_plan
cargo test -q -p homme --test taskgraph_determinism
cargo test -q -p homme --test alloc_regression
cargo test -q -p swcam-bench --test fault_injection taskgraph

# Kernel-parity group: the blocked (default) kernel path must stay bitwise
# identical to the scalar oracle, per operator and over whole serial and
# distributed trajectories.
echo "== kernel-parity test group"
cargo test -q -p homme --lib kernels
cargo test -q -p homme --test blocked_parity
cargo test -q -p swcam-bench --test distributed_step

# Process-backend group: the transport seam (DESIGN.md §5.8) — the TCP
# frame codec property suite, the socket transport and elastic-process
# units in swmpi, the loopback TCP↔mailbox bitwise parity run, the
# multi-process supervisor world, and the kill-and-respawn recovery
# scenario (real SIGKILL, checkpoint respawn, epoch re-admission).
echo "== process-backend test group"
cargo test -q -p swmpi --lib tcp
cargo test -q -p swmpi --lib transport
cargo test -q -p swmpi --lib process
cargo test -q -p swmpi --test tcp_frame
cargo test -q -p swcam-bench --test process_backend

# Hypervis group: the per-element hyperviscosity plan (DESIGN.md §5.7) —
# plan build/validation units, the fused-sweep bitwise parity across
# level/sponge shapes, mass conservation, shallow-column sponge clamps
# (serial + distributed), pinned rank-invariant subcycle counts, and the
# typed-rejection rollback routing.
echo "== hypervis test group"
cargo test -q -p homme --lib hypervis
cargo test -q -p homme --test hypervis_parity

# Ensemble group: the member-batched batch driver (DESIGN.md §5.9) — the
# scenario registry units, the checked physics coupling, the driver's own
# queue/collect units, the member-vs-standalone bitwise pins (admission,
# retirement, rollback isolation included), the member-lane kernel family
# (DESIGN.md §5.10: lane kernel units + the N × nlev lane parity sweep
# with ragged tails and rollback under the lane path), the
# zero-allocation gates for steady ensemble stepping, and the Katrina
# registry adapter.
echo "== ensemble test group"
cargo test -q -p swcam-core --lib config
cargo test -q -p swcam-core --lib coupling
cargo test -q -p swcam-core --lib ensemble
cargo test -q -p swcam-core --test ensemble_parity
cargo test -q -p homme --lib member_lanes
cargo test -q -p swcam-core --test ensemble_lane_parity
cargo test -q -p swcam-core --test ensemble_alloc
cargo test -q -p katrina --lib scenario

# Every table/figure/bench binary must keep building against the current
# APIs, and the kernels bench must run end-to-end (its in-bench asserts pin
# blocked==scalar bitwise before any timing). --smoke does one untimed
# sweep per kernel.
echo "== bench binaries build + kernels/ensemble smoke"
cargo build --release -p swcam-bench --bins
./target/release/kernels --smoke
./target/release/ensemble --smoke

# Bench-regression guard over whatever BENCH_kernels.json the last kernels
# run produced. A smoke artifact (the line above; BENCH_*.json is
# gitignored, so CI only ever sees smoke rows) gets structural checks; a
# full-sweep dev-host artifact must show no blocked kernel losing to its
# scalar oracle and the planned vertical remap holding its 1.5x bar.
# The guard's own selftest runs first: the guard is awk over
# hand-formatted JSON and once misparsed exponent-form floats
# (see scripts/bench_guard_selftest.sh).
echo "== bench-regression guard + selftest"
./scripts/bench_guard_selftest.sh
./scripts/bench_guard.sh

# Clippy is not part of every toolchain install; lint when present.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy unavailable; skipping lint" >&2
fi

echo "verify: OK"
