#!/usr/bin/env bash
# Bench-regression guard over the locally produced bench artifacts.
#
# Section 1 reads BENCH_kernels.json from the most recent full `kernels`
# bench run (BENCH_*.json is gitignored, so the artifact is always locally
# produced) and fails if any blocked kernel lost to its scalar oracle
# (speedup < 1.0), the planned vertical remap slipped under its 1.5x
# acceptance bar, or the planned hyperviscosity full pass slipped under
# its own 1.5x bar. Smoke runs never write the artifact (and a hand-kept
# "smoke": true one only gets structural checks), so on a fresh checkout —
# CI included — there is nothing to judge and the section skips; the
# timing floors bind on every development-host tier-1 run, where the full
# artifact lives alongside the tree.
#
# The member-lane rows are judged on their own terms. The
# `hypervis_member_lanes` row times the 4-member batch end to end —
# gather, both del^4 passes, scatter — against a member-serial baseline
# that pays no transpose at all; one transpose per pass pair is the
# worst-case amortization (the engine pays one per *step*, spread over
# every sponge + subcycle sweep), so that row is exempt from the generic
# 1.0 floor and reported as-is. What must never regress is the
# tiles-resident row (`hypervis_member_lanes_resident`): the lane sweep
# itself has to stay within LANE_RESIDENT_FLOOR of member-serial compute,
# or the lane path is losing the arithmetic, not just the transposition.
#
# Section 2 reads BENCH_fullstep.json and enforces the task-graph parallel
# floor (see below). Section 3 reads BENCH_ensemble.json and enforces the
# ensemble-engine floors. Each section skips independently when its
# artifact is absent. awk-only: CI and the offline dev container both
# lack jq.
#
# Number extraction uses match() on a full float pattern (sign, decimals,
# exponent) rather than stripping trailing non-digits: `sub(/[^0-9.].*/,
# "", s)` reads "9.5e-1" as 9.5 — a 10x misparse that once let a losing
# speedup sail past the floor. scripts/bench_guard_selftest.sh pins the
# fixed behaviour with synthetic artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

# awk body shared by every section: parse the leading float of s,
# exponent form included; flag = 0 when nothing numeric is there.
NUM_FN='
  function num(s) {
    if (match(s, /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?/))
      return substr(s, RSTART, RLENGTH) + 0
    num_bad = 1
    return 0
  }
'

ARTIFACT="${1:-BENCH_kernels.json}"
REMAP_TARGET=1.5
HYPERVIS_TARGET=1.5
LANE_RESIDENT_FLOOR=0.9

if [[ -f "$ARTIFACT" ]]; then
    awk -F'"' -v target="$REMAP_TARGET" -v hv_target="$HYPERVIS_TARGET" \
        -v lane_floor="$LANE_RESIDENT_FLOOR" "$NUM_FN"'
      /"smoke": true/ { smoke = 1 }
      /\{"name":/ {
        name = $4
        sp = $0
        sub(/.*"speedup": /, "", sp)
        speedup[name] = num(sp)
        nrows++
      }
      END {
        if (nrows == 0) { print "bench guard: no kernel rows parsed"; exit 1 }
        if (num_bad) { print "bench guard: unparseable speedup value"; exit 1 }
        if (!("vertical_remap" in speedup)) {
          print "bench guard: vertical_remap row missing"; exit 1
        }
        if (!("vertical_remap_planned" in speedup)) {
          print "bench guard: vertical_remap_planned row missing"; exit 1
        }
        if (!("biharmonic_planned" in speedup)) {
          print "bench guard: biharmonic_planned row missing"; exit 1
        }
        if (!("hypervis_fullpass" in speedup)) {
          print "bench guard: hypervis_fullpass row missing"; exit 1
        }
        if (!("hypervis_member_lanes" in speedup)) {
          print "bench guard: hypervis_member_lanes row missing; re-run the kernels bench"; exit 1
        }
        if (!("hypervis_member_lanes_resident" in speedup)) {
          print "bench guard: hypervis_member_lanes_resident row missing; re-run the kernels bench"; exit 1
        }
        if (smoke) { printf "bench guard: smoke artifact, %d rows, skipping speedup floors\n", nrows; exit 0 }
        bad = 0
        for (name in speedup) {
          # The end-to-end lane row pays gather + scatter against a
          # baseline that pays neither; its floor is the resident row.
          if (name == "hypervis_member_lanes") continue
          if (speedup[name] < 1.0) {
            printf "bench guard: %s speedup %.3f < 1.0 (blocked path lost to scalar)\n", name, speedup[name]
            bad = 1
          }
        }
        if (speedup["vertical_remap"] < target) {
          printf "bench guard: vertical_remap speedup %.3f < %.1f target\n", speedup["vertical_remap"], target
          bad = 1
        }
        if (speedup["hypervis_fullpass"] < hv_target) {
          printf "bench guard: hypervis_fullpass speedup %.3f < %.1f target\n", speedup["hypervis_fullpass"], hv_target
          bad = 1
        }
        if (speedup["hypervis_member_lanes_resident"] < lane_floor) {
          printf "bench guard: hypervis_member_lanes_resident %.3fx < %.2fx floor (lane sweep losing member-serial compute, not just the transpose)\n", speedup["hypervis_member_lanes_resident"], lane_floor
          bad = 1
        }
        if (!bad) printf "bench guard: OK (%d kernels >= 1.0x, vertical_remap %.3fx >= %.1fx, hypervis_fullpass %.3fx >= %.1fx, lane resident %.3fx >= %.2fx; lane end-to-end %.3fx informational)\n", nrows, speedup["vertical_remap"], target, speedup["hypervis_fullpass"], hv_target, speedup["hypervis_member_lanes_resident"], lane_floor, speedup["hypervis_member_lanes"]
        exit bad
      }
    ' "$ARTIFACT"
else
    echo "bench guard: $ARTIFACT not present (smoke runs don't write it);" \
         "run 'cargo run --release -p swcam-bench --bin kernels' to enforce the speedup floors"
fi

# Parallel-floor guard over the full-step artifact: the message-driven
# task-graph step must beat the bulk-synchronous parallel step by >= 1.2x
# once real cores are available (the graph's whole point is erasing the
# DSS barriers). On hosts without >= 4 cores the comparison is noise —
# worker threads just time-slice one core — so the floor is structurally
# skipped with the reason logged, never silently. The same goes for an
# artifact that records "oversubscribed": true (SWCAM_BENCH_THREADS
# forced more workers than cores): its parallel timings measure
# time-slicing, not parallelism.
FULLSTEP="${2:-BENCH_fullstep.json}"
TASKGRAPH_FLOOR=1.2

if [[ -f "$FULLSTEP" ]]; then
    awk -v floor="$TASKGRAPH_FLOOR" "$NUM_FN"'
      /"cores":/ { c = $0; sub(/.*"cores": /, "", c); cores = num(c) }
      /"oversubscribed": true/ { oversub = 1 }
      /"taskgraph_speedup_vs_bulk_parallel":/ {
        s = $0
        sub(/.*"taskgraph_speedup_vs_bulk_parallel": /, "", s)
        ratio = num(s)
        seen = 1
      }
      END {
        if (!seen) {
          print "bench guard: fullstep artifact predates the task-graph fields; re-run the fullstep bench"
          exit 1
        }
        if (num_bad) { print "bench guard: unparseable fullstep value"; exit 1 }
        if (cores < 4) {
          printf "bench guard: SKIP task-graph parallel floor — only %d core(s); the floor needs >= 4 real cores\n", cores
          exit 0
        }
        if (oversub) {
          print "bench guard: SKIP task-graph parallel floor — artifact marked oversubscribed (threads forced past cores)"
          exit 0
        }
        if (ratio < floor) {
          printf "bench guard: task-graph parallel step %.3fx vs bulk < %.1fx floor\n", ratio, floor
          exit 1
        }
        printf "bench guard: OK task-graph parallel step %.3fx >= %.1fx floor (%d cores)\n", ratio, floor, cores
      }
    ' "$FULLSTEP"
else
    echo "bench guard: $FULLSTEP not present;" \
         "run 'cargo run --release -p swcam-bench --bin fullstep' to enforce the task-graph parallel floor"
fi

# Ensemble-engine guard: BENCH_ensemble.json comes from `--bin ensemble`.
# Hard requirements on any artifact (smoke included): the bitwise pin held
# (every batched member identical to its standalone run) and the speedup
# fields parse. Floors bind on full artifacts only: end-to-end and
# steady-state members/sec must clear ENSEMBLE_FLOOR (default 0.9 — the
# batch driver must never cost more than it saves; the register-spill
# regression this floor exists for measured 0.55x).
#
# Lane steady floor: when the artifact records the member-lane kernel path
# armed at a full 4-lane batch ("member_kernel_path": "lanes", "members"
# >= 4, full mode), the steady-state ratio must additionally clear the
# artifact's own steady_target_speedup (1.8x) — *provided the host gives
# the lane arithmetic a structural edge*. The edge is read from the
# kernels artifact's hypervis_member_lanes_resident row: when that row is
# below LANE_EDGE_MIN, the spatially-blocked kernels already compile to
# the same hardware SIMD as the lane kernels (measured ~1.0x on
# target-cpu=native x86), the lane path's win is limited to shared
# plans/DSS walks, and a 1.8x arithmetic floor would only institutionalise
# a permanently red check — so the floor is skipped with the reason
# logged, never silently (same discipline as the task-graph core-count
# skip above). On targets where the resident row shows a real edge (the
# scalar-baseline regime the lane family was built for), the 1.8x floor
# binds. The ROADMAP-4 3x end-to-end aspiration is recorded in the
# artifact (target_speedup/target_met) and reported here, but not
# enforced (see DESIGN.md sections 5.9-5.10).
ENSEMBLE="${3:-BENCH_ensemble.json}"
ENSEMBLE_FLOOR="${ENSEMBLE_FLOOR:-0.9}"
LANE_EDGE_MIN="${LANE_EDGE_MIN:-1.5}"

if [[ ! -f "$ENSEMBLE" ]]; then
    echo "bench guard: $ENSEMBLE not present;" \
         "run 'cargo run --release -p swcam-bench --bin ensemble' to enforce the ensemble floors"
    exit 0
fi

# The lane compute edge comes from the kernels artifact (empty when that
# artifact is absent, smoke, or predates the lane rows).
lane_edge=""
if [[ -f "$ARTIFACT" ]]; then
    lane_edge=$(awk -F'"' "$NUM_FN"'
      /"smoke": true/ { smoke = 1 }
      /\{"name":/ {
        if ($4 == "hypervis_member_lanes_resident") {
          sp = $0
          sub(/.*"speedup": /, "", sp)
          v = num(sp)
          seen = 1
        }
      }
      END { if (seen && !smoke && !num_bad) print v }
    ' "$ARTIFACT")
fi

awk -v floor="$ENSEMBLE_FLOOR" -v lane_edge="$lane_edge" \
    -v edge_min="$LANE_EDGE_MIN" "$NUM_FN"'
  /"mode": "smoke"/ { smoke = 1 }
  /"bitwise_ok": true/ { bitwise = 1; bitwise_seen = 1 }
  /"bitwise_ok": false/ { bitwise = 0; bitwise_seen = 1 }
  /"member_kernel_path": "lanes"/ { lanes_armed = 1 }
  # Top-level member count: first occurrence only — every per-batch row
  # repeats a "members": key below it.
  /"members":/ && !members_seen {
    s = $0; sub(/.*"members": /, "", s); members = num(s); members_seen = 1
  }
  /"speedup_end_to_end":/ {
    s = $0; sub(/.*"speedup_end_to_end": /, "", s); e2e = num(s); e2e_seen = 1
  }
  /"speedup_steady_state":/ {
    s = $0; sub(/.*"speedup_steady_state": /, "", s); steady = num(s); steady_seen = 1
  }
  /"steady_target_speedup":/ {
    s = $0; sub(/.*"steady_target_speedup": /, "", s); steady_tgt = num(s); steady_tgt_seen = 1
  }
  /"target_speedup":/ && !/"steady_target_speedup":/ {
    s = $0; sub(/.*"target_speedup": /, "", s); tgt = num(s); tgt_seen = 1
  }
  /"target_met": true/ && !/"steady_target_met"/ { met = 1 }
  END {
    if (!bitwise_seen || !e2e_seen || !steady_seen || !tgt_seen) {
      print "bench guard: ensemble artifact missing bitwise_ok/speedup/target fields; re-run the ensemble bench"
      exit 1
    }
    if (num_bad) { print "bench guard: unparseable ensemble value"; exit 1 }
    if (!bitwise) {
      print "bench guard: ensemble bitwise pin FAILED — a batched member diverged from its standalone run"
      exit 1
    }
    if (smoke) {
      print "bench guard: ensemble smoke artifact, bitwise pin ok, skipping speedup floors"
      exit 0
    }
    bad = 0
    if (e2e < floor) {
      printf "bench guard: ensemble end-to-end %.3fx < %.2fx floor (batch driver costs more than it saves)\n", e2e, floor
      bad = 1
    }
    if (steady < floor) {
      printf "bench guard: ensemble steady-state %.3fx < %.2fx floor (member batching lost to serial stepping)\n", steady, floor
      bad = 1
    }
    if (lanes_armed && members >= 4) {
      if (!steady_tgt_seen) {
        print "bench guard: lane path armed but steady_target_speedup missing; re-run the ensemble bench"
        bad = 1
      } else if (lane_edge == "") {
        printf "bench guard: SKIP lane steady floor — no full kernels artifact with the hypervis_member_lanes_resident row to establish the lane compute edge (steady %.3fx vs %.1fx target, informational)\n", steady, steady_tgt
      } else if (lane_edge + 0 < edge_min) {
        printf "bench guard: SKIP lane steady floor — lane arithmetic has no structural edge on this host (resident %.2fx < %.1fx: blocked kernels already hardware-SIMD); steady %.3fx vs %.1fx target, informational\n", lane_edge + 0, edge_min, steady, steady_tgt
      } else if (steady < steady_tgt) {
        printf "bench guard: lane steady-state %.3fx < %.1fx floor with a %.2fx lane compute edge — the lane path regressed, not the host\n", steady, steady_tgt, lane_edge + 0
        bad = 1
      } else {
        printf "bench guard: lane steady-state %.3fx >= %.1fx floor (lane compute edge %.2fx)\n", steady, steady_tgt, lane_edge + 0
      }
    }
    if (!bad) {
      printf "bench guard: OK ensemble end-to-end %.3fx, steady-state %.3fx >= %.2fx floor, bitwise pin held\n", e2e, steady, floor
      if (!met) printf "bench guard: note — recorded %.1fx members/sec target not met (end-to-end %.3fx); see DESIGN.md section 5.9\n", tgt, e2e
    }
    exit bad
  }
' "$ENSEMBLE"
