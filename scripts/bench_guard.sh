#!/usr/bin/env bash
# Bench-regression guard over the locally produced bench artifacts.
#
# Section 1 reads BENCH_kernels.json from the most recent full `kernels`
# bench run (BENCH_*.json is gitignored, so the artifact is always locally
# produced) and fails if any blocked kernel lost to its scalar oracle
# (speedup < 1.0), the planned vertical remap slipped under its 1.5x
# acceptance bar, or the planned hyperviscosity full pass slipped under
# its own 1.5x bar. Smoke runs never write the artifact (and a hand-kept
# "smoke": true one only gets structural checks), so on a fresh checkout —
# CI included — there is nothing to judge and the section skips; the
# timing floors bind on every development-host tier-1 run, where the full
# artifact lives alongside the tree.
#
# Section 2 reads BENCH_fullstep.json and enforces the task-graph parallel
# floor (see below). Each section skips independently when its artifact is
# absent. awk-only: CI and the offline dev container both lack jq.
set -euo pipefail
cd "$(dirname "$0")/.."

ARTIFACT="${1:-BENCH_kernels.json}"
REMAP_TARGET=1.5
HYPERVIS_TARGET=1.5

if [[ -f "$ARTIFACT" ]]; then
    awk -F'"' -v target="$REMAP_TARGET" -v hv_target="$HYPERVIS_TARGET" '
      /"smoke": true/ { smoke = 1 }
      /\{"name":/ {
        name = $4
        sp = $0
        sub(/.*"speedup": /, "", sp)
        sub(/[^0-9.].*/, "", sp)
        speedup[name] = sp + 0
        nrows++
      }
      END {
        if (nrows == 0) { print "bench guard: no kernel rows parsed"; exit 1 }
        if (!("vertical_remap" in speedup)) {
          print "bench guard: vertical_remap row missing"; exit 1
        }
        if (!("vertical_remap_planned" in speedup)) {
          print "bench guard: vertical_remap_planned row missing"; exit 1
        }
        if (!("biharmonic_planned" in speedup)) {
          print "bench guard: biharmonic_planned row missing"; exit 1
        }
        if (!("hypervis_fullpass" in speedup)) {
          print "bench guard: hypervis_fullpass row missing"; exit 1
        }
        if (smoke) { printf "bench guard: smoke artifact, %d rows, skipping speedup floors\n", nrows; exit 0 }
        bad = 0
        for (name in speedup) {
          if (speedup[name] < 1.0) {
            printf "bench guard: %s speedup %.3f < 1.0 (blocked path lost to scalar)\n", name, speedup[name]
            bad = 1
          }
        }
        if (speedup["vertical_remap"] < target) {
          printf "bench guard: vertical_remap speedup %.3f < %.1f target\n", speedup["vertical_remap"], target
          bad = 1
        }
        if (speedup["hypervis_fullpass"] < hv_target) {
          printf "bench guard: hypervis_fullpass speedup %.3f < %.1f target\n", speedup["hypervis_fullpass"], hv_target
          bad = 1
        }
        if (!bad) printf "bench guard: OK (%d kernels >= 1.0x, vertical_remap %.3fx >= %.1fx, hypervis_fullpass %.3fx >= %.1fx)\n", nrows, speedup["vertical_remap"], target, speedup["hypervis_fullpass"], hv_target
        exit bad
      }
    ' "$ARTIFACT"
else
    echo "bench guard: $ARTIFACT not present (smoke runs don't write it);" \
         "run 'cargo run --release -p swcam-bench --bin kernels' to enforce the speedup floors"
fi

# Parallel-floor guard over the full-step artifact: the message-driven
# task-graph step must beat the bulk-synchronous parallel step by >= 1.2x
# once real cores are available (the graph's whole point is erasing the
# DSS barriers). On hosts without >= 4 cores the comparison is noise —
# worker threads just time-slice one core — so the floor is structurally
# skipped with the reason logged, never silently.
FULLSTEP="${2:-BENCH_fullstep.json}"
TASKGRAPH_FLOOR=1.2

if [[ ! -f "$FULLSTEP" ]]; then
    echo "bench guard: $FULLSTEP not present;" \
         "run 'cargo run --release -p swcam-bench --bin fullstep' to enforce the task-graph parallel floor"
    exit 0
fi

awk -v floor="$TASKGRAPH_FLOOR" '
  /"cores":/ { c = $0; sub(/.*"cores": /, "", c); sub(/[^0-9].*/, "", c); cores = c + 0 }
  /"taskgraph_speedup_vs_bulk_parallel":/ {
    s = $0
    sub(/.*"taskgraph_speedup_vs_bulk_parallel": /, "", s)
    sub(/[^0-9.].*/, "", s)
    ratio = s + 0
    seen = 1
  }
  END {
    if (!seen) {
      print "bench guard: fullstep artifact predates the task-graph fields; re-run the fullstep bench"
      exit 1
    }
    if (cores < 4) {
      printf "bench guard: SKIP task-graph parallel floor — only %d core(s); the floor needs >= 4 real cores\n", cores
      exit 0
    }
    if (ratio < floor) {
      printf "bench guard: task-graph parallel step %.3fx vs bulk < %.1fx floor\n", ratio, floor
      exit 1
    }
    printf "bench guard: OK task-graph parallel step %.3fx >= %.1fx floor (%d cores)\n", ratio, floor, cores
  }
' "$FULLSTEP"
