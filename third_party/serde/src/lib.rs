//! Offline stand-in for `serde`. The workspace only ever *derives*
//! `Serialize`/`Deserialize` (on config structs, for forward compatibility
//! with a future serialization backend) and never serializes anything —
//! there is no serde_json in the tree. So the traits here are empty
//! markers and the derive macros (from the sibling `serde_derive` stub)
//! expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
