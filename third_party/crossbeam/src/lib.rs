//! Offline stand-in for the `crossbeam` API subset this workspace uses:
//! `channel::{unbounded, bounded, Sender, Receiver, RecvTimeoutError}` and
//! `thread::scope`. Built on `std::sync::mpsc` / `std::thread::scope`.
//!
//! The one behavioural delta that matters: crossbeam's `Receiver` is `Sync`
//! and cloneable (MPMC); std's is neither. The consumers here share a
//! `Receiver` across threads behind `Arc` (sw26010 regcomm fabric), so the
//! stub wraps the std receiver in a `Mutex` — receives serialize, which is
//! fine for a simulator.

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Cloneable sender, mirroring `crossbeam_channel::Sender`. Carries the
    /// queued-message counter backing `Receiver::len`.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)?;
            self.queued.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    /// Shareable receiver, mirroring `crossbeam_channel::Receiver` (Sync +
    /// Clone). Receives lock a mutex; contention only matters under heavy
    /// multi-consumer load, which the simulator does not generate.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            let v = self.inner.lock().unwrap_or_else(|p| p.into_inner()).recv()?;
            self.queued.fetch_sub(1, Ordering::SeqCst);
            Ok(v)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let v = self
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .recv_timeout(timeout)?;
            self.queued.fetch_sub(1, Ordering::SeqCst);
            Ok(v)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let v = self
                .inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .try_recv()?;
            self.queued.fetch_sub(1, Ordering::SeqCst);
            Ok(v)
        }

        /// Messages queued but not yet received (approximate under
        /// concurrency, exact when quiescent — matches how the regcomm
        /// fabric uses it for drain checks).
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::SeqCst)
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                queued: Arc::clone(&queued),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
                queued,
            },
        )
    }

    /// Capacity is accepted for API compatibility but not enforced: std's
    /// sync_channel would enforce it, at the cost of `send` blocking, which
    /// changes deadlock behaviour vs crossbeam's disconnect semantics the
    /// regcomm fabric relies on. Unbounded is strictly more permissive.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

pub mod thread {
    /// Scoped threads via `std::thread::scope`. The closure receives the
    /// std scope; `scope.spawn(..)` matches the crossbeam call shape used
    /// in this workspace. Unlike crossbeam this returns `R` directly, not
    /// `thread::Result<R>` — panics propagate, which every caller here
    /// wants anyway.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn shared_receiver_across_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        let rx2 = rx.clone();
        let t = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(7).unwrap();
        assert_eq!(t.join().unwrap(), 7);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
    }
}
