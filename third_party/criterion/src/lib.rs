//! Offline stand-in for the `criterion` API subset this workspace's
//! benches use. No statistics engine, plots, or CLI — each benchmark is
//! timed with a short warm-up and a fixed batch of timed iterations, and
//! the median per-iteration wall time is printed as
//! `bench <group>/<id> ... <time>`. Good enough to keep `cargo bench`
//! runnable and comparable run-to-run offline; real criterion can be
//! swapped back in by repointing the workspace dependency.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing handle passed to the bench closure.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed runs so first-call effects (allocation,
        // page faults, lazy init) don't land in the samples.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        let samples = self.sample_size.max(1);
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut b = Bencher {
            last: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        match b.last {
            Some(t) => println!("bench {}/{id} ... {t:?}/iter", self.name),
            None => println!("bench {}/{id} ... (no iter() call)", self.name),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(&name).run_one("", f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Re-export so `criterion::black_box` callers work; `std::hint::black_box`
/// is the modern implementation anyway.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
