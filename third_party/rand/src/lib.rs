//! Offline stand-in for the small slice of the `rand` crate API this
//! workspace uses: a deterministic seeded generator (`rngs::StdRng` +
//! `SeedableRng::seed_from_u64`) and `Rng::gen_range` over numeric ranges.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `rand` cannot be fetched; the workspace `Cargo.toml` path-patches the
//! dependency to this crate instead. The generator is xoshiro256++ —
//! high-quality, fast, and (unlike the real `StdRng`) guaranteed stable
//! across versions, which is exactly what the deterministic test fixtures
//! want. The streams differ from crates.io `rand`; nothing in the repo
//! depends on the specific values, only on determinism.

use std::ops::Range;

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling surface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open, like `rand`).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, &range)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Rejection-free modulo is fine here: spans are tiny vs 2^64
                // and these are test fixtures, not statistics.
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + (range.end - range.start) * rng.gen_f64()
    }
}

impl SampleUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + (range.end - range.start) * rng.gen_f64() as f32
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding — the stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `use rand::prelude::*;` compatibility.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-30.0f64..30.0);
            assert_eq!(x, b.gen_range(-30.0f64..30.0));
            assert!((-30.0..30.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.gen_range(1usize..8);
            assert!((1..8).contains(&v));
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 1..8 reachable");
        for _ in 0..100 {
            let v = r.gen_range(0u8..4);
            assert!(v < 4);
        }
    }
}
