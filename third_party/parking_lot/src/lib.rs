//! Offline stand-in for the `parking_lot` API subset this workspace uses,
//! implemented over `std::sync`. Differences from the real crate that matter
//! here:
//!
//! - `Mutex::lock()` returns the guard directly (no `Result`); poisoning is
//!   translated into a panic, which is what the callers would want anyway.
//! - `Condvar::wait(&mut guard)` takes the guard by `&mut` (parking_lot
//!   style) rather than by value (std style). Internally the guard holds an
//!   `Option` of the std guard so `wait` can move it out and back.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutex with parking_lot's infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|p| p.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Guard wrapping the std guard in an `Option` so `Condvar::wait` can take
/// it by `&mut` and temporarily move the std guard out.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condvar with parking_lot's `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|p| p.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// RwLock with infallible `read()`/`write()` (subset; provided for parity).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        drop(done);
        t.join().unwrap();
    }
}
