//! Offline stand-in for the `proptest` API subset this workspace uses.
//!
//! Real proptest does generation + shrinking + persistence. This stub keeps
//! the same *test surface* — the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `Strategy` with `prop_map`, range / tuple / vec /
//! array strategies, `any::<bool>()` — but runs a fixed number of
//! deterministically seeded cases per test and simply panics (no
//! shrinking) on failure. Each test's seed is derived from its name, so
//! failures are reproducible run-to-run.

use std::ops::Range;

/// Cases per `proptest!` test. Real proptest defaults to 256; 48 keeps the
/// heavier thread-spawning property tests fast while still exercising a
/// spread of inputs.
pub const NUM_CASES: u64 = 48;

/// Deterministic case-generation RNG (xoshiro256++, seeded from the test
/// name via FNV-1a + SplitMix64).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy (`Just(x)`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- Range strategies -------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ---- Tuple strategies -------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- any::<T>() -------------------------------------------------------

/// Types with a default "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;
impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $s:ident),*) => {$(
        pub struct $s;
        impl Strategy for $s {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}
impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
    usize => AnyUsize, i8 => AnyI8, i16 => AnyI16, i32 => AnyI32,
    i64 => AnyI64, isize => AnyIsize);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---- collection::vec --------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size spec for `collection::vec`: a fixed `usize` or a `Range<usize>`
    /// (mirrors proptest's `SizeRange` conversions).
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

// ---- sample::select ---------------------------------------------------

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed option list (subset of
    /// `proptest::sample::Select`).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "empty select strategy");
        Select { options }
    }
}

// ---- array::uniformN --------------------------------------------------

pub mod array {
    use super::{Strategy, TestRng};

    pub struct UniformArray<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    pub fn uniform4<S: Strategy>(elem: S) -> UniformArray<S, 4> {
        UniformArray { elem }
    }

    pub fn uniform16<S: Strategy>(elem: S) -> UniformArray<S, 16> {
        UniformArray { elem }
    }
}

// ---- macros -----------------------------------------------------------

/// Subset of `proptest::proptest!`: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs `NUM_CASES` deterministically seeded
/// cases. No shrinking — a failing case panics with the plain assert
/// message (inputs are reproducible from the fixed per-test seed).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` → plain `assert!` (panic instead of proptest's
/// Err-propagation; no shrinking in the stub anyway).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` → plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` → plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        /// Doc comments and cfg-style metas pass through.
        #[test]
        fn ranges_vecs_arrays_tuples(
            x in -5.0f64..5.0,
            n in 1usize..4,
            v in crate::collection::vec(0u8..3, 2..6),
            a in crate::array::uniform4(-1.0f64..1.0),
            p in pair(),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..4).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 3));
            prop_assert!(a.iter().all(|&y| (-1.0..1.0).contains(&y)));
            prop_assert_eq!(p.0 % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::TestRng::from_name("seed");
        let mut r2 = crate::TestRng::from_name("seed");
        for _ in 0..64 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
