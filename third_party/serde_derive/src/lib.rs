//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline `serde` stub: the workspace derives the traits but never calls
//! them, so the expansion is empty. Emitting nothing (rather than a trait
//! impl) avoids needing to parse the input type at all.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
