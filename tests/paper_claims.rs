//! Capstone: one test per headline claim of the paper, each asserting the
//! reproduced *shape* (orderings and factor bands, not absolute seconds).
//! This file is the executable summary of EXPERIMENTS.md.

use homme::kernels::Variant;
use perfmodel::scaling::{figure_model, strong_scaling, weak_scaling, HommeWorkload};
use perfmodel::{homme_runtime, sypd, CamRun, Machine, CASES};
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::taihulight)
}

/// Abstract: "achieve a sustainable double-precision performance of 3.3
/// PFlops for a 750 m global simulation when using 10,075,000 cores".
#[test]
fn claim_petascale_at_ten_million_cores() {
    let model = figure_model(machine());
    let full = weak_scaling(&model, 650, 128, perfmodel::NGGPS_QSIZE, &[155_000]);
    assert_eq!(full[0].cores, 10_075_000, "the headline core count");
    assert!(
        full[0].pflops > 1.0 && full[0].pflops < 12.0,
        "PFlops-scale sustained performance, got {}",
        full[0].pflops
    );
    // A few percent of machine peak, like the paper's 3.3/125.
    let peak_pflops = 155_000.0 * 742.4e9 / 1e15;
    let frac = full[0].pflops / peak_pflops;
    assert!(frac > 0.01 && frac < 0.10, "fraction of peak {frac}");
}

/// Abstract: "3.4 SYPD for ne120 ... 21.5 SYPD for ne30".
#[test]
fn claim_sypd_magnitudes() {
    let ne30 = sypd(machine(), CamRun::ne30(), Variant::Athread, 5_400);
    assert!((7.0..60.0).contains(&ne30), "ne30 athread SYPD {ne30} (paper 21.5)");
    let ne120 = sypd(machine(), CamRun::ne120(), Variant::OpenAcc, 28_800);
    assert!((0.5..12.0).contains(&ne120), "ne120 openacc SYPD {ne120} (paper 3.4)");
}

/// Section 7.1: "we achieve up to 22x speedup for the compute-intensive
/// kernels" (OpenACC over MPE) and "the fine-grained Athread approach ...
/// can further improve the major kernels by another 10 to 15 times".
#[test]
fn claim_kernel_speedup_bands() {
    use homme::kernels::{verify, KernelData, KernelId};
    let env = verify::KernelEnv::default();
    let mut best_acc_over_mpe = 0.0f64;
    let mut best_ath_over_acc = 0.0f64;
    for kernel in KernelId::ALL {
        let mut d = KernelData::synth(16, 32, 4, 5150);
        let t_mpe = verify::run(kernel, Variant::Mpe, &mut d, &env).seconds;
        let t_acc = verify::run(kernel, Variant::OpenAcc, &mut d, &env).seconds;
        let t_ath = verify::run(kernel, Variant::Athread, &mut d, &env).seconds;
        best_acc_over_mpe = best_acc_over_mpe.max(t_mpe / t_acc);
        best_ath_over_acc = best_ath_over_acc.max(t_acc / t_ath);
    }
    assert!(
        best_acc_over_mpe > 5.0,
        "compute-dense kernels must see double-digit-class OpenACC gains, got {best_acc_over_mpe}"
    );
    assert!(
        best_ath_over_acc > 5.0,
        "Athread must multiply the best kernels again, got {best_ath_over_acc}"
    );
}

/// Section 7.2/Implications: one CG lands in the "7 to 46 Intel CPU cores"
/// equivalence band for the redesigned kernels.
#[test]
fn claim_cg_worth_many_intel_cores() {
    use homme::kernels::{verify, KernelData, KernelId};
    let env = verify::KernelEnv::default();
    for kernel in [KernelId::HypervisDp2, KernelId::VerticalRemap, KernelId::EulerStep] {
        let mut d = KernelData::synth(16, 32, 4, 5151);
        let t_ref = verify::run(kernel, Variant::Reference, &mut d, &env).seconds;
        let t_ath = verify::run(kernel, Variant::Athread, &mut d, &env).seconds;
        let equiv_cores = t_ref / t_ath;
        assert!(
            (2.0..80.0).contains(&equiv_cores),
            "{}: one CG worth {equiv_cores} Intel cores (paper band 7-46)",
            kernel.name()
        );
    }
}

/// Table 3: "the performance advantage is even better [at 3 km], and is
/// 2.1 times ... better than FV3".
#[test]
fn claim_nggps_win_grows_with_resolution() {
    let m = machine();
    let r12 = CASES[0].fv3_seconds / homme_runtime(m, &CASES[0]);
    let r3 = CASES[1].fv3_seconds / homme_runtime(m, &CASES[1]);
    assert!(r12 > 1.0, "must beat FV3 at 12.5 km ({r12})");
    assert!(r3 > r12, "advantage must grow at 3 km ({r12} -> {r3})");
    assert!(r3 > 1.5 && r3 < 8.0, "3 km factor {r3} (paper 2.1)");
}

/// Figure 7: strong-scaling efficiency collapses for ne256 but stays much
/// higher for ne1024 at 131,072 processes.
#[test]
fn claim_strong_scaling_shape() {
    let model = figure_model(machine());
    let ranks = [4096usize, 131_072];
    let ne256 = strong_scaling(&model, HommeWorkload { ne: 256, nlev: 128, qsize: 10 }, &ranks);
    let ranks2 = [8192usize, 131_072];
    let ne1024 =
        strong_scaling(&model, HommeWorkload { ne: 1024, nlev: 128, qsize: 10 }, &ranks2);
    let e256 = ne256.last().unwrap().efficiency;
    let e1024 = ne1024.last().unwrap().efficiency;
    assert!(e256 < 0.45, "ne256 efficiency collapse, got {e256} (paper 21.7%)");
    assert!(e1024 > e256 + 0.2, "ne1024 much healthier: {e1024} vs {e256}");
}

/// Section 7.3: the Athread rewrite cuts euler_step transfers to a small
/// fraction of the OpenACC version (paper: "to 10%").
#[test]
fn claim_transfer_reduction() {
    use homme::kernels::{verify, KernelData, KernelId};
    let env = verify::KernelEnv::default();
    let mut acc = KernelData::synth(16, 32, 25, 5152);
    let mut ath = KernelData::synth(16, 32, 25, 5152);
    let b_acc = verify::run(KernelId::EulerStep, Variant::OpenAcc, &mut acc, &env)
        .counters
        .mem_bytes();
    let b_ath = verify::run(KernelId::EulerStep, Variant::Athread, &mut ath, &env)
        .counters
        .mem_bytes();
    let ratio = b_ath as f64 / b_acc as f64;
    assert!(ratio < 0.25, "transfer ratio {ratio} (paper 0.10)");
}

/// Section 7.6: the redesigned exchange cuts the modeled large-scale step
/// time by double-digit percent (paper: "23% in the best cases").
#[test]
fn claim_overlap_gain() {
    use perfmodel::stepmodel::{CommMode, RankWork, StepModel};
    let m = machine();
    let w = RankWork { elems: 4, nlev: 128, qsize: 25 };
    let t_orig = StepModel::new(m, Variant::Athread, CommMode::Original).step_seconds(w, 131_072);
    let t_new = StepModel::new(m, Variant::Athread, CommMode::Redesigned).step_seconds(w, 131_072);
    let gain = 1.0 - t_new / t_orig;
    assert!(gain > 0.10 && gain < 0.5, "overlap gain {gain} (paper up to 0.23)");
}
