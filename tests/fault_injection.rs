//! End-to-end fault injection: the distributed dycore under a seeded
//! fault plan commits the **same bits** as an undisturbed run.
//!
//! Three escalating scenarios:
//!
//! 1. message faults only (drops, duplicates, delayed/reordered sends) —
//!    the communicator's reliable mode absorbs them inside `step`, no
//!    driver involvement;
//! 2. serial checkpoint/restart — a run resumed from a mid-run checkpoint
//!    file finishes bitwise-identical to an uninterrupted run;
//! 3. a rank crash at a step boundary — `run_resilient` detects the
//!    cascade of receive timeouts, rolls every rank back to the last
//!    snapshot in lockstep, and replays to the same final bits.

use std::time::Duration;

use cubesphere::consts::P0;
use cubesphere::{CubedSphere, Partition, NPTS};
use homme::hypervis::HypervisConfig;
use homme::{Dims, DistDycore, Dycore, DycoreConfig, ExchangeMode, HealthConfig, State, StepPath};
use swcam_core::{run_resilient, run_resilient_with, ResilienceConfig};
use swmpi::{run_ranks_with, CommConfig, FaultPlan, WorldOptions};

const NE: usize = 3;
const NLEV: usize = 4;
const QSIZE: usize = 2;
const NRANKS: usize = 5;
const NSTEPS: usize = 6;

fn config() -> DycoreConfig {
    let nu = HypervisConfig::for_ne(NE).nu;
    DycoreConfig {
        dt: 300.0 * 30.0 / NE as f64,
        hypervis: HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 2.5e5, sponge_layers: 2 },
        limiter: true,
        rsplit: 1,
    }
}

fn dims() -> Dims {
    Dims { nlev: NLEV, qsize: QSIZE }
}

fn initial_state(dy: &Dycore) -> State {
    let d = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems: Vec<_> = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..d.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.v[i] = 2.0 * lon.sin();
                es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, ps);
                for q in 0..d.qsize {
                    es.qdp[(q * d.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                }
            }
        }
    }
    st
}

/// Per-rank (owned element ids, final local state) pairs.
type RankStates = Vec<(Vec<usize>, State)>;

fn assert_bitwise(a: &RankStates, b: &RankStates, what: &str) {
    assert_eq!(a.len(), b.len());
    for (rank, ((owned_a, sa), (owned_b, sb))) in a.iter().zip(b).enumerate() {
        assert_eq!(owned_a, owned_b, "{what}: rank {rank} owns different elements");
        for (name, fa, fb) in [
            ("u", &sa.u, &sb.u),
            ("v", &sa.v, &sb.v),
            ("t", &sa.t, &sb.t),
            ("dp3d", &sa.dp3d, &sb.dp3d),
            ("qdp", &sa.qdp, &sb.qdp),
            ("phis", &sa.phis, &sb.phis),
        ] {
            assert_eq!(fa.len(), fb.len());
            for (i, (x, y)) in fa.iter().zip(fb).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "{what}: rank {rank} {name}[{i}] differs: {x:e} vs {y:e}"
                );
            }
        }
    }
}

/// Run `NSTEPS` plain distributed steps on every rank under `opts`.
fn run_dist_steps_on(
    grid: &CubedSphere,
    part: &Partition,
    init: &State,
    opts: WorldOptions,
    path: StepPath,
) -> RankStates {
    let cfg = config();
    run_ranks_with(NRANKS, opts, |ctx| {
        let mut dist =
            DistDycore::new(grid, part, ctx.rank(), dims(), 2000.0, cfg, ExchangeMode::Redesigned);
        dist.step_path = path;
        let mut local = dist.local_state(init);
        for step in 0..NSTEPS {
            ctx.set_step(step as u64);
            dist.step(ctx, &mut local).expect("step");
        }
        assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
        (dist.plan.owned.clone(), local)
    })
}

fn run_dist_steps(grid: &CubedSphere, part: &Partition, init: &State, opts: WorldOptions) -> RankStates {
    run_dist_steps_on(grid, part, init, opts, StepPath::Bulk)
}

/// Run `NSTEPS` committed steps through the resilient driver under `opts`.
/// Returns the per-rank states plus rank 0's report.
fn run_resilient_steps_on(
    grid: &CubedSphere,
    part: &Partition,
    init: &State,
    opts: WorldOptions,
    path: StepPath,
) -> (RankStates, swcam_core::ResilientReport) {
    let cfg = config();
    let rcfg = ResilienceConfig { checkpoint_interval: 2, max_rollbacks_per_step: 3 };
    let mut out = run_ranks_with(NRANKS, opts, |ctx| {
        let mut dist =
            DistDycore::new(grid, part, ctx.rank(), dims(), 2000.0, cfg, ExchangeMode::Redesigned);
        dist.step_path = path;
        dist.health = HealthConfig::on();
        let mut local = dist.local_state(init);
        let report = run_resilient(ctx, &mut dist, &mut local, NSTEPS as u64, &rcfg)
            .expect("resilient run");
        (dist.plan.owned.clone(), local, report)
    });
    let report = out[0].2;
    for (rank, (_, _, r)) in out.iter().enumerate() {
        assert_eq!(*r, report, "rank {rank} reports a different run than rank 0");
    }
    (out.drain(..).map(|(o, s, _)| (o, s)).collect(), report)
}

fn run_resilient_steps(
    grid: &CubedSphere,
    part: &Partition,
    init: &State,
    opts: WorldOptions,
) -> (RankStates, swcam_core::ResilientReport) {
    run_resilient_steps_on(grid, part, init, opts, StepPath::Bulk)
}

/// Seeded message faults (drops, duplicates, delays) are absorbed by the
/// communicator's reliable mode: the faulted trajectory is bitwise equal
/// to the clean one, and the clean one matches the serial dycore.
#[test]
fn message_faults_do_not_change_the_answer() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    let clean = run_dist_steps(&grid, &part, &init, WorldOptions::default());

    let faults = FaultPlan::seeded(0x5EED_FA17)
        .drop_per_mille(30)
        .duplicate_per_mille(30)
        .delay_per_mille(30, 3);
    let opts = WorldOptions {
        comm: CommConfig { recv_timeout: Duration::from_secs(20), ..CommConfig::default() },
        faults: Some(faults),
    };
    let faulted = run_dist_steps(&grid, &part, &init, opts);
    assert_bitwise(&clean, &faulted, "faulted vs clean");

    // And the clean distributed run tracks the serial engine to round-off.
    let mut sdy = Dycore::new(NE, dims(), 2000.0, config());
    let mut st = init.clone();
    for _ in 0..NSTEPS {
        sdy.step(&mut st);
    }
    for (owned, local) in &clean {
        for (li, &e) in owned.iter().enumerate() {
            let es = local.elem(li);
            let rf = st.elem(e);
            for i in 0..dims().field_len() {
                assert!(
                    (es.u[i] - rf.u[i]).abs() < 1e-9
                        && (es.t[i] - rf.t[i]).abs() < 1e-9
                        && (es.dp3d[i] - rf.dp3d[i]).abs() < 1e-9,
                    "clean dist vs serial: elem {e} idx {i}"
                );
            }
        }
    }
}

/// A run resumed from a mid-run checkpoint file finishes bitwise-equal to
/// an uninterrupted run of the same length.
#[test]
fn checkpoint_restart_is_bitwise_exact() {
    use swcam_core::{ModelConfig, SuiteChoice, Swcam};

    let make = || {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.nlev = 6;
        cfg.qsize = 0;
        cfg.suite = SuiteChoice::None;
        Swcam::new(cfg)
    };

    let mut straight = make();
    straight.run_steps(8);

    let path = std::env::temp_dir().join(format!("swckpt_restart_{}.swckpt", std::process::id()));
    let mut first = make();
    first.run_steps(4);
    first.write_checkpoint(&path).expect("write checkpoint");

    let mut resumed = make();
    resumed.restore_checkpoint(&path).expect("restore checkpoint");
    assert_eq!(resumed.steps_taken(), 4);
    resumed.run_steps(4);
    std::fs::remove_file(&path).ok();

    assert_eq!(resumed.steps_taken(), straight.steps_taken());
    for (name, a, b) in [
        ("u", &straight.state.u, &resumed.state.u),
        ("v", &straight.state.v, &resumed.state.v),
        ("t", &straight.state.t, &resumed.state.t),
        ("dp3d", &straight.state.dp3d, &resumed.state.dp3d),
        ("qdp", &straight.state.qdp, &resumed.state.qdp),
        ("phis", &straight.state.phis, &resumed.state.phis),
    ] {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "restart mismatch in {name}[{i}]: {x:e} vs {y:e}"
            );
        }
    }
}

/// With periodic checkpointing enabled, the model drops a decodable
/// checkpoint file every `interval` coupled steps.
#[test]
fn periodic_checkpoints_are_written_and_restorable() {
    use swcam_core::{ModelConfig, SuiteChoice, Swcam};

    let dir = std::env::temp_dir().join(format!("swckpt_periodic_{}", std::process::id()));
    let mut cfg = ModelConfig::for_ne(2);
    cfg.nlev = 6;
    cfg.qsize = 0;
    cfg.suite = SuiteChoice::None;
    let mut model = Swcam::new(cfg);
    model.enable_checkpointing(2, &dir);
    model.run_steps(5);

    for step in [2usize, 4] {
        let path = dir.join(format!("ckpt_{step:08}.swckpt"));
        assert!(path.exists(), "missing periodic checkpoint {path:?}");
        let mut probe = {
            let mut cfg = ModelConfig::for_ne(2);
            cfg.nlev = 6;
            cfg.qsize = 0;
            cfg.suite = SuiteChoice::None;
            Swcam::new(cfg)
        };
        probe.restore_checkpoint(&path).expect("periodic checkpoint decodes");
        assert_eq!(probe.steps_taken(), step);
    }
    assert!(!dir.join("ckpt_00000005.swckpt").exists(), "interval must be respected");
    std::fs::remove_dir_all(&dir).ok();
}

/// A crashed rank is detected by its peers' receive timeouts; the
/// resilient driver rolls every rank back to the last snapshot and
/// replays, committing the same bits as an undisturbed resilient run.
#[test]
fn crashed_rank_rolls_back_and_recovers() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    let (clean, clean_report) = run_resilient_steps(&grid, &part, &init, WorldOptions::default());
    assert_eq!(clean_report.steps, NSTEPS as u64);
    assert_eq!(clean_report.rollbacks, 0);
    assert_eq!(clean_report.final_epoch, 0);

    // Rank 1 dies at the start of step 3; the snapshot interval is 2, so
    // recovery replays step 3 from the step-2 snapshot.
    let opts = WorldOptions {
        comm: CommConfig { recv_timeout: Duration::from_millis(500), ..CommConfig::default() },
        faults: Some(FaultPlan::seeded(9).crash_rank(1, 3)),
    };
    let (crashed, report) = run_resilient_steps(&grid, &part, &init, opts);
    // The step-2 snapshot means step 2 is committed twice (once before the
    // crash, once on replay), so the commit count exceeds the request.
    assert!(report.steps > NSTEPS as u64, "replayed commits must show in the report");
    assert!(report.rollbacks >= 1, "the crash must force at least one rollback");
    assert!(report.final_epoch >= 1, "recovery must bump the rollback epoch");
    assert_bitwise(&clean, &crashed, "crashed vs clean");
}

/// Run `NSTEPS` committed steps through the resilient driver with a
/// per-attempt state-corruption hook and a shared health config. The hook
/// receives `(rank, dist, state, step)` and is expected to key off
/// `dist.epoch()` so the injection is one-shot.
fn run_resilient_steps_with(
    grid: &CubedSphere,
    part: &Partition,
    init: &State,
    health: HealthConfig,
    hook: impl Fn(usize, &mut homme::DistDycore, &mut State, u64) + Send + Sync,
) -> (RankStates, swcam_core::ResilientReport) {
    let cfg = config();
    let rcfg = ResilienceConfig { checkpoint_interval: 2, max_rollbacks_per_step: 3 };
    let hook = &hook;
    let mut out = run_ranks_with(NRANKS, WorldOptions::default(), |ctx| {
        let mut dist =
            DistDycore::new(grid, part, ctx.rank(), dims(), 2000.0, cfg, ExchangeMode::Redesigned);
        dist.health = health;
        let mut local = dist.local_state(init);
        let rank = ctx.rank();
        let report = run_resilient_with(ctx, &mut dist, &mut local, NSTEPS as u64, &rcfg, |d, s, step| {
            hook(rank, d, s, step)
        })
        .expect("resilient run must recover from a one-shot injection");
        (dist.plan.owned.clone(), local, report)
    });
    let report = out[0].2;
    for (rank, (_, _, r)) in out.iter().enumerate() {
        assert_eq!(*r, report, "rank {rank} reports a different run than rank 0");
    }
    (out.drain(..).map(|(o, s, _)| (o, s)).collect(), report)
}

/// A NaN injected into the tracer-mass arena mid-run trips the post-
/// advection guard (`TRACER_STAGE` scan), the global verdict rolls every
/// rank back to the last snapshot, and the replay — where the one-shot
/// injection no longer fires — commits the same bits as a clean run.
#[test]
fn injected_tracer_nan_rolls_back_and_recovers() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    let no_inject = |_: usize, _: &mut homme::DistDycore, _: &mut State, _: u64| {};
    let (clean, clean_report) =
        run_resilient_steps_with(&grid, &part, &init, HealthConfig::on(), no_inject);
    assert_eq!(clean_report.rollbacks, 0);

    let (poisoned, report) = run_resilient_steps_with(
        &grid,
        &part,
        &init,
        HealthConfig::on(),
        |rank, dist, state, step| {
            // One-shot: only in the original epoch; the replay is clean.
            if rank == 0 && step == 3 && dist.epoch() == 0 {
                state.qdp[0] = f64::NAN;
            }
        },
    );
    assert!(report.rollbacks >= 1, "the tracer NaN must force a rollback");
    assert!(report.steps > NSTEPS as u64, "replayed commits must show in the report");
    assert!(report.final_epoch >= 1, "recovery must bump the rollback epoch");
    assert_bitwise(&clean, &poisoned, "tracer-NaN injection vs clean");
}

/// A collapsed (negative) Lagrangian layer that slips past the relaxed
/// stage guards is still caught by the vertical remap's typed error
/// ([`homme::RemapError`]), which routes into the same rollback path —
/// the run recovers instead of panicking on a bare assert.
#[test]
fn injected_remap_failure_rolls_back_instead_of_panicking() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    // Disarm the ThinLayer stage guard so the corrupted column reaches the
    // remap, which must reject it with a typed error (not an assert).
    let health = HealthConfig { min_dp3d: f64::NEG_INFINITY, ..HealthConfig::on() };

    let no_inject = |_: usize, _: &mut homme::DistDycore, _: &mut State, _: u64| {};
    let (clean, clean_report) = run_resilient_steps_with(&grid, &part, &init, health, no_inject);
    assert_eq!(clean_report.rollbacks, 0);

    let (poisoned, report) =
        run_resilient_steps_with(&grid, &part, &init, health, |rank, dist, state, step| {
            if rank == 0 && step == 3 && dist.epoch() == 0 {
                // Collapse one whole element level: interior GLL points are
                // untouched by DSS and the in-element tendency is O(1) Pa,
                // so the layer is still negative when the remap sees it.
                for p in 0..NPTS {
                    state.dp3d[NPTS + p] = -5000.0;
                }
            }
        });
    assert!(report.rollbacks >= 1, "the collapsed layer must force a rollback");
    assert!(report.final_epoch >= 1, "recovery must bump the rollback epoch");
    assert_bitwise(&clean, &poisoned, "remap-failure injection vs clean");
}

/// A stalled (slow) rank is NOT a failure: peers wait it out through the
/// retry path and the run commits with zero rollbacks.
#[test]
fn stalled_rank_is_waited_out_without_rollback() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    let (clean, _) = run_resilient_steps(&grid, &part, &init, WorldOptions::default());
    let opts = WorldOptions {
        comm: CommConfig { recv_timeout: Duration::from_secs(20), ..CommConfig::default() },
        faults: Some(FaultPlan::seeded(3).stall_rank(2, 1, Duration::from_millis(200))),
    };
    let (stalled, report) = run_resilient_steps(&grid, &part, &init, opts);
    assert_eq!(report.rollbacks, 0, "a stall must not trigger recovery");
    assert_bitwise(&clean, &stalled, "stalled vs clean");
}

/// The message-driven task-graph step under seeded drops, duplicates and
/// delayed/reordered sends: the canonical-order accumulation makes the
/// result arrival-order independent by construction, and the reliable
/// mode absorbs the losses — faulted, clean task-graph and clean bulk
/// trajectories are all bitwise equal.
#[test]
fn taskgraph_message_faults_do_not_change_the_answer() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    let bulk = run_dist_steps(&grid, &part, &init, WorldOptions::default());
    let clean =
        run_dist_steps_on(&grid, &part, &init, WorldOptions::default(), StepPath::TaskGraph);
    assert_bitwise(&bulk, &clean, "clean task-graph vs clean bulk");

    let faults = FaultPlan::seeded(0x5EED_FA17)
        .drop_per_mille(30)
        .duplicate_per_mille(30)
        .delay_per_mille(30, 3);
    let opts = WorldOptions {
        comm: CommConfig { recv_timeout: Duration::from_secs(20), ..CommConfig::default() },
        faults: Some(faults),
    };
    let faulted = run_dist_steps_on(&grid, &part, &init, opts, StepPath::TaskGraph);
    assert_bitwise(&clean, &faulted, "faulted task-graph vs clean");
}

/// A rank crash mid-run under the task-graph step: peers block on the
/// dead rank's stage payload, the timeout surfaces through the event
/// loop, and the resilient driver's rollback re-seeds the whole graph
/// (fresh epoch, fresh tags) — recovery commits the same bits as an
/// undisturbed task-graph run.
#[test]
fn taskgraph_crashed_rank_rolls_back_and_recovers() {
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims(), 2000.0, config());
    let init = initial_state(&serial);

    let (clean, clean_report) = run_resilient_steps_on(
        &grid,
        &part,
        &init,
        WorldOptions::default(),
        StepPath::TaskGraph,
    );
    assert_eq!(clean_report.steps, NSTEPS as u64);
    assert_eq!(clean_report.rollbacks, 0);

    let opts = WorldOptions {
        comm: CommConfig { recv_timeout: Duration::from_millis(500), ..CommConfig::default() },
        faults: Some(FaultPlan::seeded(9).crash_rank(1, 3)),
    };
    let (crashed, report) = run_resilient_steps_on(&grid, &part, &init, opts, StepPath::TaskGraph);
    assert!(report.steps > NSTEPS as u64, "replayed commits must show in the report");
    assert!(report.rollbacks >= 1, "the crash must force at least one rollback");
    assert!(report.final_epoch >= 1, "recovery must bump the rollback epoch");
    assert_bitwise(&clean, &crashed, "crashed task-graph vs clean");
}
