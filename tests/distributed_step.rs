//! Cross-crate integration: distributed DSS (swmpi ranks + the redesigned
//! boundary exchange) agrees with the serial engine on multi-level fields,
//! under every partition and both exchange schedules.

use cubesphere::{CubedSphere, Partition, NPTS};
use homme::bndry::{CopyStats, ExchangeMode, ExchangePlan};
use homme::dss::Dss;
use swmpi::run_ranks;

fn field_value(e: usize, k: usize, p: usize) -> f64 {
    ((e * 131 + k * 17 + p * 7) % 97) as f64 - 48.0
}

fn serial(grid: &CubedSphere, nlev: usize) -> Vec<Vec<f64>> {
    let mut dss = Dss::new(grid);
    let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
        .map(|e| {
            (0..nlev)
                .flat_map(|k| (0..NPTS).map(move |p| field_value(e, k, p)))
                .collect()
        })
        .collect();
    dss.apply(&mut fields, nlev);
    fields
}

#[test]
fn multilevel_distributed_dss_matches_serial() {
    let grid = CubedSphere::new(4);
    let nlev = 3;
    let reference = serial(&grid, nlev);
    for nranks in [2usize, 4, 7, 12] {
        for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
            let part = Partition::new(&grid, nranks);
            let plans: Vec<ExchangePlan> =
                (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
            let results = run_ranks(nranks, |ctx| {
                let plan = &plans[ctx.rank()];
                // Per-level exchange of the multi-level field.
                let mut full: Vec<Vec<f64>> = plan
                    .owned
                    .iter()
                    .map(|&e| {
                        (0..nlev)
                            .flat_map(|k| (0..NPTS).map(move |p| field_value(e, k, p)))
                            .collect::<Vec<f64>>()
                    })
                    .collect();
                let mut stats = CopyStats::default();
                for k in 0..nlev {
                    let mut level: Vec<Vec<f64>> = full
                        .iter()
                        .map(|f| f[k * NPTS..(k + 1) * NPTS].to_vec())
                        .collect();
                    plan.dss_level(ctx, &mut level, mode, k as u64, || {}, &mut stats)
                        .expect("dss level");
                    for (f, l) in full.iter_mut().zip(&level) {
                        f[k * NPTS..(k + 1) * NPTS].copy_from_slice(l);
                    }
                }
                (plan.owned.clone(), full)
            });
            for (owned, fields) in results {
                for (e, f) in owned.into_iter().zip(fields) {
                    for i in 0..nlev * NPTS {
                        assert!(
                            (f[i] - reference[e][i]).abs() < 1e-10,
                            "{mode:?} nranks={nranks} elem {e} idx {i}: {} vs {}",
                            f[i],
                            reference[e][i]
                        );
                    }
                }
            }
        }
    }
}

/// The blocked kernel path commits the same bits as the scalar oracle in
/// the distributed driver too: ten full steps across ranks, every
/// prognostic field compared to the last bit.
#[test]
fn distributed_blocked_path_matches_scalar_bitwise() {
    use cubesphere::consts::P0;
    use cubesphere::Partition;
    use homme::hypervis::HypervisConfig;
    use homme::{Dims, DistDycore, Dycore, DycoreConfig, KernelPath, State};

    const NE: usize = 3;
    const NRANKS: usize = 4;
    const NSTEPS: usize = 10;
    let dims = Dims { nlev: 5, qsize: 2 };
    let nu = HypervisConfig::for_ne(NE).nu;
    let cfg = DycoreConfig {
        dt: 300.0 * 30.0 / NE as f64,
        hypervis: HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 2.5e5, sponge_layers: 2 },
        limiter: true,
        rsplit: 2,
    };

    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims, 2000.0, cfg);
    let init = {
        let vert = serial.rhs.vert.clone();
        let mut st = serial.zero_state();
        for (es, el) in st.elems_mut().zip(&serial.grid.elements) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let lon = el.metric[p].lon;
                let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
                for k in 0..dims.nlev {
                    let i = k * NPTS + p;
                    es.u[i] = 20.0 * lat.cos();
                    es.v[i] = 2.0 * lon.sin();
                    es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                    es.dp3d[i] = vert.dp_ref(k, ps);
                    for q in 0..dims.qsize {
                        es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                    }
                }
            }
        }
        st
    };

    let run = |path: KernelPath| -> Vec<(Vec<usize>, State)> {
        run_ranks(NRANKS, |ctx| {
            let mut dist = DistDycore::new(
                &grid,
                &part,
                ctx.rank(),
                dims,
                2000.0,
                cfg,
                ExchangeMode::Redesigned,
            );
            dist.kernels = path;
            let mut local = dist.local_state(&init);
            for step in 0..NSTEPS {
                ctx.set_step(step as u64);
                dist.step(ctx, &mut local).expect("step");
            }
            (dist.plan.owned.clone(), local)
        })
    };

    let scalar = run(KernelPath::Scalar);
    let blocked = run(KernelPath::Blocked);
    for (rank, ((owned_s, ss), (owned_b, sb))) in scalar.iter().zip(&blocked).enumerate() {
        assert_eq!(owned_s, owned_b, "rank {rank} owns different elements");
        for (name, fa, fb) in [
            ("u", &ss.u, &sb.u),
            ("v", &ss.v, &sb.v),
            ("t", &ss.t, &sb.t),
            ("dp3d", &ss.dp3d, &sb.dp3d),
            ("qdp", &ss.qdp, &sb.qdp),
        ] {
            for (i, (x, y)) in fa.iter().zip(fb.iter()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "rank {rank} {name}[{i}] differs: {x:e} vs {y:e}"
                );
            }
        }
    }
}

/// The message-driven task-graph step tracks the bulk-synchronous step
/// bit for bit over a long run, on both kernel paths: ten full steps
/// (limiter, sponge, subcycled hyperviscosity, rsplit remap) across four
/// ranks, every prognostic field compared to the last bit.
#[test]
fn distributed_taskgraph_matches_bulk_bitwise() {
    use cubesphere::consts::P0;
    use cubesphere::Partition;
    use homme::hypervis::HypervisConfig;
    use homme::{Dims, DistDycore, Dycore, DycoreConfig, KernelPath, State, StepPath};

    const NE: usize = 3;
    const NRANKS: usize = 4;
    const NSTEPS: usize = 10;
    let dims = Dims { nlev: 5, qsize: 2 };
    let nu = HypervisConfig::for_ne(NE).nu;
    let cfg = DycoreConfig {
        dt: 300.0 * 30.0 / NE as f64,
        hypervis: HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 2.5e5, sponge_layers: 2 },
        limiter: true,
        rsplit: 2,
    };

    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(NE, dims, 2000.0, cfg);
    let init = {
        let vert = serial.rhs.vert.clone();
        let mut st = serial.zero_state();
        for (es, el) in st.elems_mut().zip(&serial.grid.elements) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let lon = el.metric[p].lon;
                let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
                for k in 0..dims.nlev {
                    let i = k * NPTS + p;
                    es.u[i] = 20.0 * lat.cos();
                    es.v[i] = 2.0 * lon.sin();
                    es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                    es.dp3d[i] = vert.dp_ref(k, ps);
                    for q in 0..dims.qsize {
                        es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                    }
                }
            }
        }
        st
    };

    let run = |step_path: StepPath, kernels: KernelPath| -> Vec<(Vec<usize>, State)> {
        run_ranks(NRANKS, |ctx| {
            let mut dist = DistDycore::new(
                &grid,
                &part,
                ctx.rank(),
                dims,
                2000.0,
                cfg,
                ExchangeMode::Redesigned,
            );
            dist.step_path = step_path;
            dist.kernels = kernels;
            let mut local = dist.local_state(&init);
            for step in 0..NSTEPS {
                ctx.set_step(step as u64);
                dist.step(ctx, &mut local).expect("step");
            }
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            (dist.plan.owned.clone(), local)
        })
    };

    for kernels in [KernelPath::Scalar, KernelPath::Blocked] {
        let bulk = run(StepPath::Bulk, kernels);
        let graph = run(StepPath::TaskGraph, kernels);
        for (rank, ((owned_b, sb), (owned_g, sg))) in bulk.iter().zip(&graph).enumerate() {
            assert_eq!(owned_b, owned_g, "rank {rank} owns different elements");
            for (name, fa, fb) in [
                ("u", &sb.u, &sg.u),
                ("v", &sb.v, &sg.v),
                ("t", &sb.t, &sg.t),
                ("dp3d", &sb.dp3d, &sg.dp3d),
                ("qdp", &sb.qdp, &sg.qdp),
            ] {
                for (i, (x, y)) in fa.iter().zip(fb.iter()).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "{kernels:?} rank {rank} {name}[{i}] differs: {x:e} vs {y:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn redesigned_mode_overlaps_useful_interior_work() {
    // The interior closure's work must actually contribute: use it to
    // compute the interior elements' local sums while halo messages fly,
    // then check the exchange still produced the right answer.
    let grid = CubedSphere::new(4);
    let nranks = 6;
    let part = Partition::new(&grid, nranks);
    let plans: Vec<ExchangePlan> =
        (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
    let reference = serial(&grid, 1);
    let results = run_ranks(nranks, |ctx| {
        let plan = &plans[ctx.rank()];
        let mut fields: Vec<Vec<f64>> = plan
            .owned
            .iter()
            .map(|&e| (0..NPTS).map(|p| field_value(e, 0, p)).collect())
            .collect();
        let mut stats = CopyStats::default();
        let mut interior_sum = 0.0;
        let interior: Vec<usize> = plan.interior.clone();
        let snapshot = fields.clone();
        plan.dss_level(
            ctx,
            &mut fields,
            ExchangeMode::Redesigned,
            0,
            || {
                for &li in &interior {
                    interior_sum += snapshot[li].iter().sum::<f64>();
                }
            },
            &mut stats,
        )
        .expect("dss level");
        (plan.owned.clone(), fields, interior_sum)
    });
    for (owned, fields, interior_sum) in results {
        assert!(interior_sum.is_finite());
        for (e, f) in owned.into_iter().zip(fields) {
            for p in 0..NPTS {
                assert!((f[p] - reference[e][p]).abs() < 1e-10);
            }
        }
    }
}
