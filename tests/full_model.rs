//! Cross-crate integration: the assembled model (cubesphere + homme +
//! swphysics + swcam-core) runs stably and conserves what it must.

use swcam_core::{ModelConfig, Planet, SuiteChoice, Swcam};

fn moist_aquaplanet(ne: usize, nlev: usize) -> Swcam {
    let mut cfg = ModelConfig::for_ne(ne);
    cfg.nlev = nlev;
    cfg.suite = SuiteChoice::Simple;
    cfg.sst = 301.0;
    let mut model = Swcam::new(cfg);
    model.init_with(
        |_, _| cubesphere::P0,
        |lat, _lon, _k, pm| {
            let sigma = pm / cubesphere::P0;
            let t = 300.0 - 55.0 * (1.0 - sigma) - 25.0 * lat.sin() * lat.sin();
            (8.0 * lat.cos(), 0.0, t.max(200.0), 0.012 * sigma.powi(3))
        },
    );
    model
}

#[test]
fn moist_model_conserves_dry_mass_and_stays_bounded() {
    let mut model = moist_aquaplanet(3, 8);
    let m0 = model.dycore.total_mass(&model.state);
    for _ in 0..8 {
        model.step();
    }
    let m1 = model.dycore.total_mass(&model.state);
    assert!(((m1 - m0) / m0).abs() < 1e-10, "dry mass drift {}", (m1 - m0) / m0);
    assert!(model.max_surface_wind() < 80.0);
    for es in model.state.elems() {
        for &t in es.t {
            assert!((150.0..360.0).contains(&t), "temperature {t} out of range");
        }
        for &dp in es.dp3d {
            assert!(dp > 0.0, "negative layer thickness");
        }
        for &q in es.qdp {
            assert!(q >= 0.0, "limiter must keep tracers non-negative");
        }
    }
}

#[test]
fn physics_injects_water_which_rains_back_out() {
    let mut model = moist_aquaplanet(2, 8);
    // Dry out the initial state: all moisture must then come from the ocean.
    for q in model.state.qdp.iter_mut() {
        *q = 0.0;
    }
    let q0 = model.dycore.total_tracer_mass(&model.state, 0);
    assert_eq!(q0, 0.0);
    for _ in 0..10 {
        model.step();
    }
    let q1 = model.dycore.total_tracer_mass(&model.state, 0);
    assert!(q1 > 0.0, "surface evaporation must moisten the dry atmosphere");
}

#[test]
fn held_suarez_develops_circulation_from_rest() {
    let mut cfg = ModelConfig::for_ne(2);
    cfg.nlev = 8;
    cfg.qsize = 0;
    cfg.suite = SuiteChoice::HeldSuarez;
    cfg.dt = 900.0;
    let mut model = Swcam::new(cfg);
    model.init_with(
        |_, _| cubesphere::P0,
        |lat, _, _k, pm| {
            let t = 285.0 - 30.0 * lat.sin().powi(2) * (pm / cubesphere::P0).powf(0.3);
            (0.0, 0.0, t, 0.0)
        },
    );
    assert!(model.max_surface_wind() < 1e-12, "starts at rest");
    // Two simulated days: differential heating must spin up a circulation.
    for _ in 0..192 {
        model.step();
    }
    let wind = model.dycore.max_wind(&model.state);
    assert!(wind > 1.0, "no circulation developed: {wind}");
    assert!(wind < 80.0, "unstable: {wind}");
}

#[test]
fn small_planet_scaling_preserves_the_flow_regime() {
    // The same (angularly identical) initial state on Earth and on a 1/10
    // planet with 10x rotation: after one *scaled* time unit the states
    // should be close (small-planet similarity).
    let run = |reduction: f64| -> Vec<f64> {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.nlev = 6;
        cfg.qsize = 0;
        cfg.suite = SuiteChoice::None;
        cfg.planet = if reduction > 1.0 { Planet::small(reduction) } else { Planet::default() };
        let mut model = Swcam::new(cfg);
        model.init_with(
            |lat, _| cubesphere::P0 * (1.0 - 0.002 * (2.0 * lat).sin()),
            |lat, lon, _k, _pm| (15.0 * lat.cos(), 0.0, 280.0 + 2.0 * lon.sin(), 0.0),
        );
        // Identical *step counts*: dt scales with 1/reduction internally.
        for _ in 0..4 {
            model.step();
        }
        model.surface_pressure()
    };
    let earth = run(1.0);
    let small = run(10.0);
    let mut worst: f64 = 0.0;
    for (a, b) in earth.iter().zip(&small) {
        worst = worst.max((a - b).abs());
    }
    // Pressure anomalies are ~200 Pa; the regimes must agree to a fraction
    // of that (Coriolis-to-advection ratio is preserved by construction).
    assert!(worst < 60.0, "small-planet similarity broken: {worst} Pa");
}

#[test]
fn resting_atmosphere_over_topography_stays_quiet() {
    // The classic pressure-gradient-force test: a resting isothermal
    // atmosphere over a smooth mountain must stay (nearly) at rest — the
    // terrain-following coordinate's pressure-gradient and geopotential-
    // gradient terms must cancel to truncation error.
    let mut cfg = ModelConfig::for_ne(3);
    cfg.nlev = 8;
    cfg.qsize = 0;
    cfg.suite = SuiteChoice::None;
    cfg.dt = 300.0;
    let mut model = Swcam::new(cfg);
    let t0 = 300.0;
    model.init_with(|_, _| cubesphere::P0, move |_, _, _, _| (0.0, 0.0, t0, 0.0));
    // A 1 km Gaussian mountain at (30N, 0E).
    let g = cubesphere::GRAV;
    model.set_topography(
        move |lat, lon| {
            let d2 = (lat - std::f64::consts::FRAC_PI_6).powi(2) + (lon * lat.cos()).powi(2);
            g * 1000.0 * (-d2 / 0.09).exp()
        },
        t0,
    );
    for _ in 0..20 {
        model.step();
    }
    let wind = model.dycore.max_wind(&model.state);
    // Truncation-error winds only: far below any dynamically meaningful
    // speed (a broken PGF balance produces tens of m/s immediately).
    assert!(wind < 2.0, "spurious terrain-induced wind: {wind} m/s");
}
