//! Cross-crate integration: every Table-1 kernel produces the same answer
//! in all four implementation generations on a production-shaped workload
//! (the nlev = 128 column split of the paper's Figure 2), and the
//! simulator's retired-operation counters stay consistent with the
//! analytic op-count formulas that drive the performance model.

use homme::kernels::{op_count, verify, KernelData, KernelId, Variant};

#[test]
fn production_shape_nlev128_equivalence() {
    // 8 elements x 128 levels x 3 tracers: each CPE row owns 16 levels,
    // exactly the paper's decomposition.
    let env = verify::KernelEnv::default();
    for kernel in KernelId::ALL {
        let mut reference = KernelData::synth(8, 128, 3, 31);
        verify::run(kernel, Variant::Reference, &mut reference, &env);
        for variant in [Variant::OpenAcc, Variant::Athread] {
            let mut other = KernelData::synth(8, 128, 3, 31);
            verify::run(kernel, variant, &mut other, &env);
            let diff = verify::output_diff(kernel, &reference, &other);
            assert!(
                diff < 1e-7,
                "{} {variant:?} diverges by {diff} at nlev=128",
                kernel.name()
            );
        }
    }
}

#[test]
fn athread_wins_every_kernel_at_production_shape() {
    let env = verify::KernelEnv::default();
    for kernel in KernelId::ALL {
        let mut d_ref = KernelData::synth(8, 128, 3, 32);
        let t_ref = verify::run(kernel, Variant::Reference, &mut d_ref, &env).seconds;
        let mut d_ath = KernelData::synth(8, 128, 3, 32);
        let t_ath = verify::run(kernel, Variant::Athread, &mut d_ath, &env).seconds;
        let speedup = t_ref / t_ath;
        // The paper's Figure 5 band: one CG is worth 7-46 Intel cores. Allow
        // a wide band, but the redesign must always win.
        assert!(speedup > 1.5, "{}: athread speedup only {speedup}", kernel.name());
        assert!(speedup < 200.0, "{}: implausible speedup {speedup}", kernel.name());
    }
}

#[test]
fn counters_track_op_count_formulas() {
    let env = verify::KernelEnv::default();
    for kernel in [KernelId::HypervisDp1, KernelId::HypervisDp2, KernelId::BiharmonicDp3d] {
        let mut d = KernelData::synth(8, 32, 2, 33);
        let oc = op_count(kernel, &d);
        let res = verify::run(kernel, Variant::Athread, &mut d, &env);
        assert_eq!(res.counters.vflops, oc.flops, "{}", kernel.name());
    }
    // euler_step: the simulator charges exactly the formula's flops.
    let mut d = KernelData::synth(8, 32, 4, 34);
    let oc = op_count(KernelId::EulerStep, &d);
    let res = verify::run(KernelId::EulerStep, Variant::Athread, &mut d, &env);
    assert_eq!(res.counters.vflops, oc.flops);
}

#[test]
fn register_communication_volume_matches_the_decomposition() {
    // The scan chain sends 3 chains x 7 hops x 4 vectors per element batch
    // of the RHS kernel; verify the counters see exactly that.
    let env = verify::KernelEnv::default();
    let nelem = 16; // two batches of 8
    let mut d = KernelData::synth(nelem, 32, 0, 35);
    let res = verify::run(KernelId::ComputeAndApplyRhs, Variant::Athread, &mut d, &env);
    // Per column (8 elements share a batch, one batch per CPE column):
    // 3 scans x 7 hops x 4 V4F64 messages, for each of the 8 columns and
    // each of the nelem/8 sweeps.
    let expected = (nelem / 8) as u64 * 8 * 3 * 7 * 4;
    assert_eq!(res.counters.reg_sends, expected);
    assert_eq!(res.counters.reg_recvs, expected);
}
