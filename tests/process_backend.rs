//! The TCP / multi-process backend against the in-process mailbox:
//!
//! 1. **Loopback TCP parity** — the same 4-rank distributed run over real
//!    loopback sockets ([`swmpi::run_ranks_tcp`]) commits bitwise the
//!    same state as the pooled in-process mailbox backend;
//! 2. **multi-process parity** — ranks as real child processes
//!    ([`swmpi::process_world`]: supervisor + hub + socket mesh) commit
//!    bitwise the same state again;
//! 3. **elastic resilience** — the multi-process world running the
//!    elastic resilient driver ([`swcam_core::run_resilient_elastic`],
//!    `SWCKPT01` checkpoint files) matches the in-process resilient
//!    driver bitwise; and when [`swmpi::FaultPlan::kill_process`]
//!    SIGKILLs one rank mid-step, the supervisor respawns it from its
//!    checkpoint, the world re-admits it at the agreed epoch, and the run
//!    still commits the same bits as an undisturbed resilient run.

use std::time::Duration;

use cubesphere::consts::P0;
use cubesphere::{CubedSphere, Partition, NPTS};
use homme::hypervis::HypervisConfig;
use homme::{Dims, DistDycore, Dycore, DycoreConfig, ExchangeMode, HealthConfig, State};
use swcam_core::{run_resilient, run_resilient_elastic, ResilienceConfig};
use swmpi::{
    process_world, run_ranks_tcp, run_ranks_with, CommConfig, FaultPlan, RankCtx, WorldOptions,
};

const NRANKS: usize = 4;

/// One model scale: the small one keeps the process worlds quick; the
/// parity one is the issue's ne4 / nlev26 / qsize4 / 10-step prescription.
#[derive(Clone, Copy)]
struct Scale {
    ne: usize,
    nlev: usize,
    qsize: usize,
    nsteps: u64,
}

const SMALL: Scale = Scale { ne: 3, nlev: 4, qsize: 2, nsteps: 6 };
const PARITY: Scale = Scale { ne: 4, nlev: 26, qsize: 4, nsteps: 10 };

impl Scale {
    fn config(&self) -> DycoreConfig {
        let nu = HypervisConfig::for_ne(self.ne).nu;
        DycoreConfig {
            dt: 300.0 * 30.0 / self.ne as f64,
            hypervis: HypervisConfig {
                nu,
                nu_p: nu,
                subcycles: 3,
                nu_top: 2.5e5,
                sponge_layers: 2,
            },
            limiter: true,
            rsplit: 1,
        }
    }

    fn dims(&self) -> Dims {
        Dims { nlev: self.nlev, qsize: self.qsize }
    }

    fn initial_state(&self, dy: &Dycore) -> State {
        let d = dy.dims;
        let vert = dy.rhs.vert.clone();
        let elems: Vec<_> = dy.grid.elements.clone();
        let mut st = dy.zero_state();
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let lon = el.metric[p].lon;
                let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
                for k in 0..d.nlev {
                    let i = k * NPTS + p;
                    es.u[i] = 20.0 * lat.cos();
                    es.v[i] = 2.0 * lon.sin();
                    es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                    es.dp3d[i] = vert.dp_ref(k, ps);
                    for q in 0..d.qsize {
                        es.qdp[(q * d.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                    }
                }
            }
        }
        st
    }
}

/// Canonical bitwise serialization of one rank's outcome: incarnation
/// byte, owned element ids, then every state field as raw f64 bits. Two
/// runs agree iff these byte strings agree — and the byte string is what
/// a child process can ship to the supervisor.
fn encode_result(incarnation: u32, owned: &[usize], s: &State) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(incarnation.min(u8::MAX as u32) as u8);
    out.extend_from_slice(&(owned.len() as u64).to_le_bytes());
    for &e in owned {
        out.extend_from_slice(&(e as u64).to_le_bytes());
    }
    for field in [&s.u, &s.v, &s.t, &s.dp3d, &s.qdp, &s.phis] {
        out.extend_from_slice(&(field.len() as u64).to_le_bytes());
        for &x in field.iter() {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    out
}

fn assert_same_state(a: &[Vec<u8>], b: &[Vec<u8>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: world sizes differ");
    for (rank, (ra, rb)) in a.iter().zip(b).enumerate() {
        // Byte 0 is the incarnation — runs legitimately differ there.
        assert_eq!(
            ra[1..],
            rb[1..],
            "{what}: rank {rank} state bytes differ (inc {} vs {})",
            ra[0],
            rb[0]
        );
    }
}

/// The plain distributed step loop every backend runs; returns the
/// canonical serialization of this rank's outcome.
fn step_body(ctx: &mut RankCtx, scale: Scale, grid: &CubedSphere, part: &Partition, init: &State) -> Vec<u8> {
    let mut dist = DistDycore::new(
        grid,
        part,
        ctx.rank(),
        scale.dims(),
        2000.0,
        scale.config(),
        ExchangeMode::Redesigned,
    );
    let mut local = dist.local_state(init);
    for step in 0..scale.nsteps {
        ctx.set_step(step);
        dist.step(ctx, &mut local).expect("step");
    }
    assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
    let inc = ctx.elastic().map_or(0, |l| l.incarnation());
    encode_result(inc, &dist.plan.owned, &local)
}

/// The elastic resilient body (file checkpoints, hub verdicts, readmit on
/// rollback) used by the process worlds.
fn elastic_body(
    ctx: &mut RankCtx,
    scale: Scale,
    grid: &CubedSphere,
    part: &Partition,
    init: &State,
) -> Vec<u8> {
    let mut dist = DistDycore::new(
        grid,
        part,
        ctx.rank(),
        scale.dims(),
        2000.0,
        scale.config(),
        ExchangeMode::Redesigned,
    );
    dist.health = HealthConfig::on();
    let mut local = dist.local_state(init);
    let rcfg = ResilienceConfig { checkpoint_interval: 2, max_rollbacks_per_step: 3 };
    run_resilient_elastic(ctx, &mut dist, &mut local, scale.nsteps, &rcfg)
        .expect("elastic resilient run");
    let inc = ctx.elastic().map_or(0, |l| l.incarnation());
    encode_result(inc, &dist.plan.owned, &local)
}

/// In-process mailbox reference for the resilient scenarios: the existing
/// thread-world `run_resilient` with in-memory snapshots.
fn thread_resilient_reference(scale: Scale, grid: &CubedSphere, part: &Partition, init: &State) -> Vec<Vec<u8>> {
    run_ranks_with(NRANKS, WorldOptions::default(), |ctx| {
        let mut dist = DistDycore::new(
            grid,
            part,
            ctx.rank(),
            scale.dims(),
            2000.0,
            scale.config(),
            ExchangeMode::Redesigned,
        );
        dist.health = HealthConfig::on();
        let mut local = dist.local_state(init);
        let rcfg = ResilienceConfig { checkpoint_interval: 2, max_rollbacks_per_step: 3 };
        let report = run_resilient(ctx, &mut dist, &mut local, scale.nsteps, &rcfg)
            .expect("thread resilient run");
        assert_eq!(report.rollbacks, 0, "the reference run must be undisturbed");
        encode_result(0, &dist.plan.owned, &local)
    })
}

/// The loopback TCP backend (threads-as-ranks, every message over a real
/// socket) commits bitwise the same 10-step ne4/nlev26/qsize4 trajectory
/// as the pooled in-process mailbox backend.
#[test]
fn tcp_backend_matches_mailbox_backend() {
    let scale = PARITY;
    let grid = CubedSphere::new(scale.ne);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(scale.ne, scale.dims(), 2000.0, scale.config());
    let init = scale.initial_state(&serial);

    let mailbox = run_ranks_with(NRANKS, WorldOptions::default(), |ctx| {
        step_body(ctx, scale, &grid, &part, &init)
    });
    let tcp = run_ranks_tcp(NRANKS, WorldOptions::default(), |ctx| {
        step_body(ctx, scale, &grid, &part, &init)
    });
    assert_same_state(&mailbox, &tcp, "tcp vs mailbox");
}

/// Real child processes (supervisor + hub + full socket mesh) commit
/// bitwise the same trajectory as the in-process mailbox world.
#[test]
fn multi_process_tcp_matches_in_process_mailbox() {
    let scale = SMALL;
    let grid = CubedSphere::new(scale.ne);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(scale.ne, scale.dims(), 2000.0, scale.config());
    let init = scale.initial_state(&serial);

    // In a child process this call runs the body and never returns.
    let procs = process_world(
        "multi_process_tcp_matches_in_process_mailbox",
        NRANKS,
        WorldOptions::default(),
        |ctx| step_body(ctx, scale, &grid, &part, &init),
    );

    let mailbox = run_ranks_with(NRANKS, WorldOptions::default(), |ctx| {
        step_body(ctx, scale, &grid, &part, &init)
    });
    assert_same_state(&mailbox, &procs, "multi-process tcp vs mailbox");
    assert!(procs.iter().all(|r| r[0] == 0), "no rank should have been respawned");
}

/// The elastic resilient driver over an undisturbed multi-process world
/// matches the in-process resilient driver bitwise (file checkpoints and
/// hub verdicts change nothing).
#[test]
fn clean_elastic_run_matches_thread_resilient_run() {
    let scale = SMALL;
    let grid = CubedSphere::new(scale.ne);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(scale.ne, scale.dims(), 2000.0, scale.config());
    let init = scale.initial_state(&serial);

    let procs = process_world(
        "clean_elastic_run_matches_thread_resilient_run",
        NRANKS,
        WorldOptions::default(),
        |ctx| elastic_body(ctx, scale, &grid, &part, &init),
    );

    let reference = thread_resilient_reference(scale, &grid, &part, &init);
    assert_same_state(&reference, &procs, "clean elastic vs thread resilient");
    assert!(procs.iter().all(|r| r[0] == 0), "no rank should have been respawned");
}

/// One rank's process is SIGKILLed mid-run; its peers see the dead
/// sockets, fail the step verdict (absent rank), and roll back to their
/// checkpoint files while the supervisor respawns the rank from ITS
/// checkpoint file; the re-admission round re-assembles the world at one
/// agreed epoch and the replay commits the same bits as an undisturbed
/// resilient run.
#[test]
fn kill_and_respawn_recovers_bitwise() {
    let scale = SMALL;
    let grid = CubedSphere::new(scale.ne);
    let part = Partition::new(&grid, NRANKS);
    let serial = Dycore::new(scale.ne, scale.dims(), 2000.0, scale.config());
    let init = scale.initial_state(&serial);

    // Rank 1 is killed at the start of step 3; the checkpoint interval is
    // 2, so everyone replays from the step-2 files.
    let opts = WorldOptions {
        comm: CommConfig { recv_timeout: Duration::from_secs(20), ..CommConfig::default() },
        faults: Some(FaultPlan::seeded(9).kill_process(1, 3)),
    };
    let procs = process_world("kill_and_respawn_recovers_bitwise", NRANKS, opts, |ctx| {
        elastic_body(ctx, scale, &grid, &part, &init)
    });

    // The kill must actually have happened: rank 1 finished as a respawned
    // incarnation, everyone else as the original.
    assert_eq!(procs[1][0], 1, "rank 1 must have been respawned exactly once");
    for (rank, r) in procs.iter().enumerate() {
        if rank != 1 {
            assert_eq!(r[0], 0, "rank {rank} must not have been respawned");
        }
    }

    let reference = thread_resilient_reference(scale, &grid, &part, &init);
    assert_same_state(&reference, &procs, "killed+respawned vs clean resilient");
}
