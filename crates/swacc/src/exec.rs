//! The Sunway OpenACC directive executor.
//!
//! Runs a planned parallel region on the CPE cluster with the *schedule the
//! directive compiler would emit*: collapsed iterations dealt cyclically to
//! the 64 CPEs, and for every collapsed iteration the copyin/copyout sets
//! transferred anew, tile by tile — because "the customized OpenACC compiler
//! only supports single collapse for multiple levels of loops, and we cannot
//! insert code between two loops once it is collapsed. ... even if the next
//! loop reuses the same array, it reads the data again" (Section 7.3).
//!
//! The body closure performs the real numerics; the executor owns all cost
//! accounting (redundant DMA, scalar-only flops — directives cannot
//! vectorize the Sunway pipeline — and the per-region spawn overhead that
//! the paper calls "a huge issue for programs ... with no clear hot spots").

use crate::footprint::{analyze, FootprintReport, Placement, LDM_RESERVE};
use crate::ir::{Intent, LoopNest};
use crate::transform::{plan, ParallelPlan, PlanError};
use std::ops::Range;
use sw26010::{CpeCluster, CpeCtx, KernelReport};

/// A compiled OpenACC parallel region: nest + plan + footprint decisions.
#[derive(Debug, Clone)]
pub struct AccRegion {
    /// The analyzed loop nest.
    pub nest: LoopNest,
    /// The collapse decision.
    pub plan: ParallelPlan,
    /// The LDM placement decisions.
    pub footprint: FootprintReport,
}

impl AccRegion {
    /// "Compile" a region: run the loop transformation and footprint tools.
    pub fn compile(nest: LoopNest) -> Result<Self, PlanError> {
        let plan = plan(&nest)?;
        let footprint = analyze(&nest, &plan, sw26010::LDM_BYTES);
        Ok(AccRegion { nest, plan, footprint })
    }

    /// Human-readable report of the tools' decisions for this region —
    /// what the source-to-source translator would print in verbose mode.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "region `{}`:", self.nest.name);
        let collapsed: Vec<&str> =
            self.plan.collapsed.iter().map(|&i| self.nest.loops[i].name.as_str()).collect();
        let serial: Vec<&str> =
            self.plan.serial.iter().map(|&i| self.nest.loops[i].name.as_str()).collect();
        let _ = writeln!(
            s,
            "  collapse({}) over [{}] -> {} iterations ({})",
            self.plan.collapsed.len(),
            collapsed.join(", "),
            self.plan.parallel_iters,
            if self.plan.sufficient_parallelism {
                "fills the 64-CPE cluster"
            } else {
                "INSUFFICIENT parallelism for 64 CPEs"
            }
        );
        if serial.is_empty() {
            let _ = writeln!(s, "  no serial loops");
        } else {
            let _ = writeln!(
                s,
                "  serial [{}], extent {}, LDM tile {} (of {})",
                serial.join(", "),
                self.footprint.serial_extent,
                self.footprint.tile,
                self.footprint.serial_extent
            );
        }
        let _ = writeln!(s, "  LDM footprint: {} B per CPE", self.footprint.ldm_bytes);
        for a in &self.footprint.arrays {
            let _ = writeln!(
                s,
                "    {:12} {:?}{}{}",
                a.name,
                a.placement,
                match a.intent {
                    crate::ir::Intent::In => " copyin",
                    crate::ir::Intent::Out => " copyout",
                    crate::ir::Intent::InOut => " copy",
                },
                if a.redundant_transfer {
                    "  [re-transferred every collapsed iteration]"
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(
            s,
            "  transfer volume: {} B per collapsed iteration",
            self.footprint.bytes_per_parallel_iter()
        );
        s
    }

    /// Decode a flat collapsed-iteration index into per-loop indices
    /// (ordered as `plan.collapsed`).
    pub fn decode(&self, mut flat: usize) -> Vec<usize> {
        let mut idx = vec![0; self.plan.collapsed.len()];
        for (slot, &l) in self.plan.collapsed.iter().enumerate().rev() {
            let ext = self.nest.loops[l].extent;
            idx[slot] = flat % ext;
            flat /= ext;
        }
        idx
    }

    /// Execute the region on `cluster`.
    ///
    /// `body(ctx, collapsed_indices, tile_range)` performs the numerics for
    /// one serial tile of one collapsed iteration; `tile_range` indexes the
    /// combined serial-loop extent. All DMA/flop accounting is done here.
    pub fn run<F>(&self, cluster: &CpeCluster, body: F) -> KernelReport
    where
        F: Fn(&mut CpeCtx<'_>, &[usize], Range<usize>) + Sync,
    {
        let iters = self.plan.parallel_iters;
        let serial_extent = self.footprint.serial_extent;
        let tile = self.footprint.tile;
        let flops_per_point = self.nest.flops_per_point;

        // Per-tile transfer volumes from the placement decisions.
        let mut copyin_per_tile_point = 0usize; // bytes per serial point, inbound
        let mut copyout_per_tile_point = 0usize;
        let mut gld_per_tile_point = 0usize;
        for (a, fp) in self.nest.arrays.iter().zip(&self.footprint.arrays) {
            let b = a.elems_per_point * a.elem_bytes;
            match fp.placement {
                Placement::LdmTile => match a.intent {
                    Intent::In => copyin_per_tile_point += b,
                    Intent::Out => copyout_per_tile_point += b,
                    Intent::InOut => {
                        copyin_per_tile_point += b;
                        copyout_per_tile_point += b;
                    }
                },
                Placement::GlobalDirect => gld_per_tile_point += b,
            }
        }

        cluster.run(|ctx| {
            // Model the LDM residency of one tile's buffers.
            let resident = ctx
                .ldm
                .alloc_f64(self.footprint.ldm_bytes.min(sw26010::LDM_BYTES - LDM_RESERVE) / 8)
                .expect("footprint tool guaranteed fit");
            // Cyclic schedule: iteration i runs on CPE i mod 64.
            let mut flat = ctx.id();
            while flat < iters {
                let idx = self.decode(flat);
                let mut s = 0;
                while s < serial_extent {
                    let t = (s + tile).min(serial_extent);
                    let pts = t - s;
                    ctx.charge_dma_traffic(copyin_per_tile_point * pts, true);
                    body(ctx, &idx, s..t);
                    ctx.charge_sflops(flops_per_point * pts as u64);
                    ctx.charge_gld_traffic(gld_per_tile_point * pts);
                    ctx.charge_dma_traffic(copyout_per_tile_point * pts, false);
                    s = t;
                }
                flat += sw26010::CPES_PER_CG;
            }
            ctx.ldm.free(resident);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw26010::{ChipConfig, SharedSliceMut, WriteTracker};

    #[test]
    fn functional_result_matches_serial() {
        // qdp[ie][q][k] += 1. 64 x 5 collapsed iterations keep `k` serial,
        // matching the paper's collapse(2) schedule.
        let nest = LoopNest::euler_step_example(64, 5, 16);
        let region = AccRegion::compile(nest).unwrap();
        assert_eq!(region.plan.collapsed, vec![0, 1]);
        let cluster = CpeCluster::new(ChipConfig::checked());
        let n = 64 * 5 * 16;
        let mut qdp: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expect: Vec<f64> = qdp.iter().map(|x| x + 1.0).collect();
        {
            let view = SharedSliceMut::new(&mut qdp).with_tracker(WriteTracker::new());
            region.run(&cluster, |ctx, idx, krange| {
                let (ie, q) = (idx[0], idx[1]);
                for k in krange {
                    let i = (ie * 5 + q) * 16 + k;
                    let v = view.get(i);
                    view.set(i, v + 1.0, ctx.id());
                }
            });
        }
        assert_eq!(qdp, expect);
    }

    #[test]
    fn redundant_transfers_are_charged_per_q_iteration() {
        // The Algorithm 1 pathology: total DMA-in must scale with
        // (elements x tracers), even though the q-invariant arrays only
        // change per element.
        let nest = LoopNest::euler_step_example(16, 5, 32);
        let region = AccRegion::compile(nest.clone()).unwrap();
        let cluster = CpeCluster::with_defaults();
        let report = region.run(&cluster, |_, _, _| {});
        // Per (ie, q) iteration: qdp(16) + derived_dp(16) + derived_vn0(32)
        // = 64 elems x 8 B x 32 levels inbound.
        let per_iter = 64 * 8 * 32;
        assert_eq!(
            report.counters.dma_bytes_in,
            (16 * 5 * per_iter) as u64
        );
        // Outbound: only qdp.
        assert_eq!(report.counters.dma_bytes_out, (16 * 5 * 16 * 8 * 32) as u64);
        // Flops booked scalar (no directive vectorization).
        assert_eq!(report.counters.vflops, 0);
        assert_eq!(report.counters.sflops, 16 * 5 * 32 * nest.flops_per_point);
    }

    #[test]
    fn decode_roundtrip() {
        let nest = LoopNest::euler_step_example(64, 25, 128);
        let region = AccRegion::compile(nest).unwrap();
        // collapsed = [ie, q]; flat = ie * 25 + q.
        assert_eq!(region.decode(0), vec![0, 0]);
        assert_eq!(region.decode(26), vec![1, 1]);
        assert_eq!(region.decode(63 * 25 + 24), vec![63, 24]);
    }

    #[test]
    fn explain_names_the_decisions() {
        let nest = LoopNest::euler_step_example(64, 25, 128);
        let region = AccRegion::compile(nest).unwrap();
        let report = region.explain();
        assert!(report.contains("euler_step"));
        assert!(report.contains("collapse(2) over [ie, q]"));
        assert!(report.contains("1600 iterations"));
        assert!(report.contains("fills the 64-CPE cluster"));
        assert!(report.contains("re-transferred every collapsed iteration"));
        assert!(report.contains("qdp"));
        assert!(report.contains("derived_dp"));
    }

    #[test]
    fn spawn_overhead_dominates_tiny_regions() {
        // Many tiny kernels: the threading-overhead problem. One launch with
        // almost no work must still cost the spawn overhead.
        let nest = LoopNest {
            name: "tiny".into(),
            loops: vec![crate::ir::Loop::parallel("i", 64)],
            arrays: vec![],
            flops_per_point: 1,
        };
        let region = AccRegion::compile(nest).unwrap();
        let cluster = CpeCluster::with_defaults();
        let report = region.run(&cluster, |_, _, _| {});
        let spawn = cluster.config().cost.spawn_overhead_cycles;
        assert!(report.elapsed_cycles >= spawn);
        assert!(report.elapsed_cycles < spawn * 1.1, "work should be negligible");
    }
}
