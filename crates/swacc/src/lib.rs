//! # swacc — the Sunway OpenACC analog
//!
//! The paper's first migration stage refactored all of CAM with a customized
//! OpenACC compiler plus two source-to-source tools (Section 7.2). This
//! crate reproduces that stage as a library:
//!
//! * [`ir`] — a loop-nest abstraction (loops, dependences, array references)
//!   standing in for the Fortran source the real tools parsed.
//! * [`transform`] — the *loop transformation tool*: selects and collapses
//!   the loop levels that feed the 64-CPE cluster.
//! * [`footprint`] — the *memory footprint analysis and reduction tool*:
//!   fits frequently-accessed arrays into the 64 KB LDM, tiling serial loops
//!   (the paper's 32-level blocking) and demoting what cannot fit.
//! * [`exec`] — the directive executor: runs a compiled region on the
//!   [`sw26010`] cluster with the schedule the directive compiler would
//!   emit, including its characteristic inefficiencies (per-iteration
//!   re-transfer of collapse-invariant arrays, scalar-only compute, spawn
//!   overhead per region). Those modeled inefficiencies are what the
//!   Athread redesign of the `homme` crate then removes — reproducing the
//!   paper's Table 1 / Figure 5 gaps.

pub mod exec;
pub mod footprint;
pub mod ir;
pub mod transform;

pub use exec::AccRegion;
pub use footprint::{analyze, ArrayFootprint, FootprintReport, Placement, LDM_RESERVE};
pub use ir::{ArrayRef, Intent, Loop, LoopNest};
pub use transform::{plan, ParallelPlan, PlanError};
