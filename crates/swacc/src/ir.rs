//! A loop-nest intermediate representation for the refactoring tools.
//!
//! The paper's OpenACC port of CAM did not hand-edit half a million lines:
//! it ran source-to-source tools over the Fortran — a *loop transformation
//! tool* that finds the right loop level to parallelize on the CPE cluster,
//! and a *memory footprint analysis and reduction tool* that fits the
//! frequently-accessed variables into the 64 KB LDM (Section 7.2). Those
//! tools reason about a simple abstraction of each kernel: the loop nest,
//! which loops carry dependences, and which arrays the body touches indexed
//! by which loops. This module is that abstraction.

/// One loop of a nest, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Source-level name of the induction variable (`ie`, `q`, `k`, ...).
    pub name: String,
    /// Trip count.
    pub extent: usize,
    /// True if iterations must run in order (loop-carried dependence) —
    /// e.g. the vertical scan `p(k) = p(k-1) + a(k)`.
    pub carries_dependence: bool,
}

impl Loop {
    /// Convenience constructor for a parallelizable loop.
    pub fn parallel(name: &str, extent: usize) -> Self {
        Loop { name: name.into(), extent, carries_dependence: false }
    }

    /// Convenience constructor for a dependence-carrying loop.
    pub fn sequential(name: &str, extent: usize) -> Self {
        Loop { name: name.into(), extent, carries_dependence: true }
    }
}

/// Data-flow direction of an array reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// Read only (`copyin`).
    In,
    /// Written only (`copyout`).
    Out,
    /// Read and written (`copy`).
    InOut,
}

/// One array referenced by the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Source-level name.
    pub name: String,
    /// Bytes per element (8 for the double-precision model state).
    pub elem_bytes: usize,
    /// Indices (into `LoopNest::loops`) of the loops this array is indexed
    /// by. A loop *not* listed here means the array is invariant across it —
    /// the reuse opportunity Algorithm 2 exploits and Algorithm 1 wastes.
    pub indexed_by: Vec<usize>,
    /// Elements touched per combined innermost iteration.
    pub elems_per_point: usize,
    /// Data-flow direction.
    pub intent: Intent,
}

/// A kernel's loop nest plus its array references.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Kernel name (for reports).
    pub name: String,
    /// Loops, outermost first.
    pub loops: Vec<Loop>,
    /// Arrays the body touches.
    pub arrays: Vec<ArrayRef>,
    /// Double-precision flops per innermost iteration point.
    pub flops_per_point: u64,
}

impl LoopNest {
    /// Total iteration-space size.
    pub fn points(&self) -> usize {
        self.loops.iter().map(|l| l.extent).product()
    }

    /// Iteration count of the loops in `set` (product of extents).
    pub fn extent_of(&self, set: &[usize]) -> usize {
        set.iter().map(|&i| self.loops[i].extent).product()
    }

    /// The euler_step nest of the paper's Algorithm 1/2:
    /// `ie` (elements) x `q` (tracers) x `k` (128 levels), with `qdp`
    /// indexed by all three and the derived fields invariant in `q`.
    pub fn euler_step_example(nelem: usize, qsize: usize, nlev: usize) -> Self {
        LoopNest {
            name: "euler_step".into(),
            loops: vec![
                Loop::parallel("ie", nelem),
                Loop::parallel("q", qsize),
                Loop::parallel("k", nlev),
            ],
            arrays: vec![
                ArrayRef {
                    name: "qdp".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 1, 2],
                    elems_per_point: 16, // np x np per (ie, q, k)
                    intent: Intent::InOut,
                },
                ArrayRef {
                    name: "derived_dp".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 2], // invariant across q
                    elems_per_point: 16,
                    intent: Intent::In,
                },
                ArrayRef {
                    name: "derived_vn0".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0, 2], // invariant across q
                    elems_per_point: 32, // two velocity components
                    intent: Intent::In,
                },
            ],
            flops_per_point: 250,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euler_step_nest_shape() {
        let nest = LoopNest::euler_step_example(64, 25, 128);
        assert_eq!(nest.points(), 64 * 25 * 128);
        assert_eq!(nest.extent_of(&[0, 1]), 64 * 25);
        assert_eq!(nest.loops[0].name, "ie");
        assert!(!nest.loops[0].carries_dependence);
        assert_eq!(nest.arrays[1].indexed_by, vec![0, 2]);
    }

    #[test]
    fn loop_constructors() {
        let p = Loop::parallel("i", 10);
        let s = Loop::sequential("k", 5);
        assert!(!p.carries_dependence);
        assert!(s.carries_dependence);
        assert_eq!(s.extent, 5);
    }
}
