//! The loop transformation tool.
//!
//! "For the physics parts, which includes numerous modules with different
//! code styles by different scientists, we design a loop transformation tool
//! to identify and expose the most suitable level of loop body for the
//! parallelization on the CPE cluster." (Section 7.2)
//!
//! Given a [`LoopNest`], the tool selects the outermost run of
//! dependence-free loops and collapses enough of them to feed 64 CPEs. The
//! Sunway OpenACC compiler "only supports single collapse for multiple
//! levels of loops, and we cannot insert code between two loops once it is
//! collapsed" — the plan records that constraint: every array indexed by a
//! collapsed loop *or inner to the collapse* must be re-transferred each
//! collapsed iteration (no staging point exists between the loops), which
//! is exactly why Algorithm 1 rereads the `q`-invariant arrays every `q`.

use crate::ir::LoopNest;
use sw26010::CPES_PER_CG;

/// Result of the loop-selection pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelPlan {
    /// Indices of the loops collapsed into the parallel dimension
    /// (outermost first, always a prefix of the parallelizable run).
    pub collapsed: Vec<usize>,
    /// Indices of the loops that remain serial inside each CPE iteration.
    pub serial: Vec<usize>,
    /// Total collapsed iterations.
    pub parallel_iters: usize,
    /// Whether the nest offered enough parallelism for the cluster.
    pub sufficient_parallelism: bool,
}

/// Reason the tool rejected a nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The outermost loop already carries a dependence; the directive
    /// approach has nothing to parallelize (the paper's
    /// `compute_and_apply_rhs` situation before the register-communication
    /// redesign).
    OutermostDependence,
    /// Empty nest.
    Empty,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::OutermostDependence => {
                write!(f, "outermost loop carries a dependence; no parallel level found")
            }
            PlanError::Empty => write!(f, "empty loop nest"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Select the collapse that feeds the CPE cluster.
///
/// Collapses the longest prefix of dependence-free loops, stopping early
/// once at least `4 x 64` iterations are available (more collapse than that
/// only shrinks the serial body and increases per-iteration transfer
/// overhead).
pub fn plan(nest: &LoopNest) -> Result<ParallelPlan, PlanError> {
    if nest.loops.is_empty() {
        return Err(PlanError::Empty);
    }
    if nest.loops[0].carries_dependence {
        return Err(PlanError::OutermostDependence);
    }

    let target = 4 * CPES_PER_CG;
    let mut collapsed = Vec::new();
    let mut iters = 1usize;
    for (i, l) in nest.loops.iter().enumerate() {
        if l.carries_dependence {
            break;
        }
        collapsed.push(i);
        iters *= l.extent;
        if iters >= target {
            break;
        }
    }
    let serial = (0..nest.loops.len()).filter(|i| !collapsed.contains(i)).collect();
    Ok(ParallelPlan {
        parallel_iters: iters,
        sufficient_parallelism: iters >= CPES_PER_CG,
        collapsed,
        serial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Loop;

    #[test]
    fn euler_step_collapses_ie_and_q() {
        // 64 elements x 25 tracers = 1600 >= 256, so k stays serial: this is
        // the paper's Algorithm 1 `collapse(2)`.
        let nest = LoopNest::euler_step_example(64, 25, 128);
        let p = plan(&nest).unwrap();
        assert_eq!(p.collapsed, vec![0, 1]);
        assert_eq!(p.serial, vec![2]);
        assert_eq!(p.parallel_iters, 1600);
        assert!(p.sufficient_parallelism);
    }

    #[test]
    fn small_element_count_collapses_deeper() {
        let nest = LoopNest::euler_step_example(4, 5, 128);
        let p = plan(&nest).unwrap();
        // 4 x 5 = 20 < 256, so the level loop joins the collapse.
        assert_eq!(p.collapsed, vec![0, 1, 2]);
        assert!(p.sufficient_parallelism);
    }

    #[test]
    fn dependence_stops_the_collapse() {
        let nest = LoopNest {
            name: "hydrostatic".into(),
            loops: vec![Loop::parallel("ie", 8), Loop::sequential("k", 128)],
            arrays: vec![],
            flops_per_point: 10,
        };
        let p = plan(&nest).unwrap();
        assert_eq!(p.collapsed, vec![0]);
        assert_eq!(p.serial, vec![1]);
        assert_eq!(p.parallel_iters, 8);
        // Only 8-way parallelism for 64 CPEs: the tool flags it. This is the
        // "modules with heavy data dependency and inadequate parallelism"
        // case that Section 7.4 solves with register communication instead.
        assert!(!p.sufficient_parallelism);
    }

    #[test]
    fn outermost_dependence_is_an_error() {
        let nest = LoopNest {
            name: "scan".into(),
            loops: vec![Loop::sequential("k", 128)],
            arrays: vec![],
            flops_per_point: 2,
        };
        assert_eq!(plan(&nest).unwrap_err(), PlanError::OutermostDependence);
    }

    #[test]
    fn empty_nest_is_an_error() {
        let nest =
            LoopNest { name: "x".into(), loops: vec![], arrays: vec![], flops_per_point: 0 };
        assert_eq!(plan(&nest).unwrap_err(), PlanError::Empty);
    }
}
