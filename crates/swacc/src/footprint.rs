//! The memory footprint analysis and reduction tool.
//!
//! "We also design a memory footprint analysis and reduction tool, and a
//! number of customized Sunway OpenACC features, to fit the
//! frequently-accessed variables into the local fast buffer of the CPE."
//! (Section 7.2)
//!
//! For each array of a planned kernel the tool computes the LDM bytes one
//! CPE iteration needs. If the total exceeds the budget, it *tiles* the
//! serial loops — the `for s ← 1 to vlayers, step 32` blocking visible in
//! the paper's Algorithm 1 — halving the tile until everything fits or the
//! tile bottoms out (in which case the residual arrays are demoted to
//! direct global access, the slow path).

use crate::ir::{Intent, LoopNest};
use crate::transform::ParallelPlan;

/// Placement decision for one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Buffered in LDM for the duration of a serial tile.
    LdmTile,
    /// Left in main memory; accessed by gld/gst (slow).
    GlobalDirect,
}

/// Per-array analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayFootprint {
    /// Array name.
    pub name: String,
    /// Bytes of LDM one tile of this array occupies (0 for GlobalDirect).
    pub tile_bytes: usize,
    /// Placement decision.
    pub placement: Placement,
    /// Whether the array is invariant across at least one collapsed loop —
    /// i.e. the OpenACC schedule will *re-transfer* data that fine-grained
    /// Athread code could keep resident (the Algorithm 1 vs 2 gap).
    pub redundant_transfer: bool,
    /// Data-flow direction (drives copyin/copyout accounting).
    pub intent: Intent,
}

/// Whole-kernel analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintReport {
    /// Chosen tile length over the serial loops' combined extent.
    pub tile: usize,
    /// Combined extent of the serial loops.
    pub serial_extent: usize,
    /// Per-array decisions.
    pub arrays: Vec<ArrayFootprint>,
    /// Total LDM bytes of one tile.
    pub ldm_bytes: usize,
}

impl FootprintReport {
    /// Bytes DMA-transferred per collapsed iteration under the OpenACC
    /// schedule (every LDM-placed array moves once per tile, every tile).
    pub fn bytes_per_parallel_iter(&self) -> usize {
        let tiles = self.serial_extent.div_ceil(self.tile);
        self.arrays
            .iter()
            .map(|a| {
                let per_tile = match (a.placement, a.intent) {
                    (Placement::GlobalDirect, _) => 0,
                    (Placement::LdmTile, Intent::In) | (Placement::LdmTile, Intent::Out) => {
                        a.tile_bytes
                    }
                    (Placement::LdmTile, Intent::InOut) => 2 * a.tile_bytes,
                };
                per_tile * tiles
            })
            .sum()
    }
}

/// LDM bytes reserved for the runtime, spill slots, and stack.
pub const LDM_RESERVE: usize = 8 * 1024;

/// Analyze a planned nest against the LDM budget.
pub fn analyze(nest: &LoopNest, plan: &ParallelPlan, ldm_budget: usize) -> FootprintReport {
    let budget = ldm_budget.saturating_sub(LDM_RESERVE);
    let serial_extent = plan.serial.iter().map(|&i| nest.loops[i].extent).product::<usize>().max(1);

    // Bytes per serial-iteration point for each array.
    let per_point: Vec<usize> =
        nest.arrays.iter().map(|a| a.elems_per_point * a.elem_bytes).collect();

    let mut tile = serial_extent;
    loop {
        let total: usize = per_point.iter().map(|b| b * tile).sum();
        if total <= budget || tile == 1 {
            break;
        }
        tile = (tile / 2).max(1);
    }

    // If even tile = 1 does not fit, demote the largest arrays to direct
    // global access until the rest fits.
    let mut placement = vec![Placement::LdmTile; nest.arrays.len()];
    let fits = |placement: &[Placement], tile: usize| -> usize {
        placement
            .iter()
            .zip(&per_point)
            .map(|(p, b)| if *p == Placement::LdmTile { b * tile } else { 0 })
            .sum()
    };
    while fits(&placement, tile) > budget {
        // Demote the largest still-resident array.
        let victim = placement
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Placement::LdmTile)
            .max_by_key(|(i, _)| per_point[*i])
            .map(|(i, _)| i)
            .expect("budget exceeded with nothing resident");
        placement[victim] = Placement::GlobalDirect;
    }

    let arrays = nest
        .arrays
        .iter()
        .zip(&placement)
        .map(|(a, &p)| ArrayFootprint {
            name: a.name.clone(),
            tile_bytes: if p == Placement::LdmTile { a.elems_per_point * a.elem_bytes * tile } else { 0 },
            placement: p,
            // Invariant across a collapsed loop => that loop's iterations
            // each re-transfer the array.
            redundant_transfer: plan.collapsed.iter().any(|l| !a.indexed_by.contains(l)),
            intent: a.intent,
        })
        .collect::<Vec<_>>();

    let ldm_bytes = arrays.iter().map(|a| a.tile_bytes).sum();
    FootprintReport { tile, serial_extent, arrays, ldm_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayRef, Loop};
    use crate::transform::plan;
    use sw26010::LDM_BYTES;

    #[test]
    fn euler_step_tiles_the_level_loop() {
        let nest = LoopNest::euler_step_example(64, 25, 128);
        let p = plan(&nest).unwrap();
        let r = analyze(&nest, &p, LDM_BYTES);
        // 128 levels x (16 + 16 + 32) elems x 8 B = 64 KB > budget, so the
        // tool must tile below the full column: the paper blocks by 32.
        assert!(r.tile < 128, "tile = {}", r.tile);
        assert!(r.tile >= 16);
        assert!(r.ldm_bytes <= LDM_BYTES - LDM_RESERVE);
        assert!(r.arrays.iter().all(|a| a.placement == Placement::LdmTile));
    }

    #[test]
    fn q_invariant_arrays_are_flagged_redundant() {
        let nest = LoopNest::euler_step_example(64, 25, 128);
        let p = plan(&nest).unwrap();
        let r = analyze(&nest, &p, LDM_BYTES);
        let by_name = |n: &str| r.arrays.iter().find(|a| a.name == n).unwrap();
        assert!(!by_name("qdp").redundant_transfer);
        assert!(by_name("derived_dp").redundant_transfer);
        assert!(by_name("derived_vn0").redundant_transfer);
    }

    #[test]
    fn oversized_arrays_get_demoted() {
        let nest = LoopNest {
            name: "fat".into(),
            loops: vec![Loop::parallel("ie", 512)],
            arrays: vec![
                ArrayRef {
                    name: "huge".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0],
                    elems_per_point: 20_000, // 160 KB per iteration point
                    intent: Intent::In,
                },
                ArrayRef {
                    name: "small".into(),
                    elem_bytes: 8,
                    indexed_by: vec![0],
                    elems_per_point: 64,
                    intent: Intent::Out,
                },
            ],
            flops_per_point: 1,
        };
        let p = plan(&nest).unwrap();
        let r = analyze(&nest, &p, LDM_BYTES);
        let huge = r.arrays.iter().find(|a| a.name == "huge").unwrap();
        let small = r.arrays.iter().find(|a| a.name == "small").unwrap();
        assert_eq!(huge.placement, Placement::GlobalDirect);
        assert_eq!(small.placement, Placement::LdmTile);
        assert!(r.ldm_bytes <= LDM_BYTES - LDM_RESERVE);
    }

    #[test]
    fn transfer_volume_counts_tiles_and_inout_twice() {
        let nest = LoopNest::euler_step_example(64, 25, 128);
        let p = plan(&nest).unwrap();
        let r = analyze(&nest, &p, LDM_BYTES);
        let tiles = r.serial_extent.div_ceil(r.tile);
        let expect: usize = r
            .arrays
            .iter()
            .map(|a| match a.intent {
                Intent::InOut => 2 * a.tile_bytes * tiles,
                _ => a.tile_bytes * tiles,
            })
            .sum();
        assert_eq!(r.bytes_per_parallel_iter(), expect);
        assert!(expect > 0);
    }
}
