//! Property-based tests of the refactoring tools.

use proptest::prelude::*;
use swacc::{analyze, plan, ArrayRef, Intent, Loop, LoopNest, Placement};

fn arb_nest() -> impl Strategy<Value = LoopNest> {
    (
        1usize..6,                                      // number of loops
        proptest::collection::vec(1usize..200, 5),      // extents
        proptest::collection::vec(any::<bool>(), 5),    // dependences
        1usize..5,                                      // number of arrays
        proptest::collection::vec(1usize..4000, 4),     // footprints
    )
        .prop_map(|(nloops, extents, deps, narrays, footprints)| {
            let loops: Vec<Loop> = (0..nloops)
                .map(|i| Loop {
                    name: format!("l{i}"),
                    extent: extents[i % extents.len()],
                    // The outermost loop is kept parallel so plan() succeeds.
                    carries_dependence: i > 0 && deps[i % deps.len()],
                })
                .collect();
            let arrays: Vec<ArrayRef> = (0..narrays)
                .map(|a| ArrayRef {
                    name: format!("a{a}"),
                    elem_bytes: 8,
                    indexed_by: (0..nloops).filter(|i| (i + a) % 2 == 0).collect(),
                    elems_per_point: footprints[a % footprints.len()],
                    intent: match a % 3 {
                        0 => Intent::In,
                        1 => Intent::Out,
                        _ => Intent::InOut,
                    },
                })
                .collect();
            LoopNest { name: "fuzz".into(), loops, arrays, flops_per_point: 10 }
        })
}

proptest! {
    /// The footprint tool never plans an LDM tile over budget, and every
    /// array is either resident or demoted — never lost.
    #[test]
    fn footprint_respects_budget(nest in arb_nest(), budget in 16_384usize..65_536) {
        let p = plan(&nest).unwrap();
        let r = analyze(&nest, &p, budget);
        prop_assert!(r.ldm_bytes + swacc::LDM_RESERVE <= budget.max(swacc::LDM_RESERVE),
            "tile {} over budget {budget}", r.ldm_bytes);
        prop_assert_eq!(r.arrays.len(), nest.arrays.len());
        prop_assert!(r.tile >= 1 && r.tile <= r.serial_extent.max(1));
        // Residency implies a positive tile size.
        for a in &r.arrays {
            match a.placement {
                Placement::LdmTile => prop_assert!(a.tile_bytes > 0 || r.tile == 0),
                Placement::GlobalDirect => prop_assert_eq!(a.tile_bytes, 0),
            }
        }
    }

    /// The collapse is always a prefix of the loops, never crosses a
    /// dependence, and covers the whole nest's parallel iterations.
    #[test]
    fn plan_collapse_is_a_dependence_free_prefix(nest in arb_nest()) {
        let p = plan(&nest).unwrap();
        prop_assert!(!p.collapsed.is_empty());
        for (slot, &l) in p.collapsed.iter().enumerate() {
            prop_assert_eq!(slot, l, "collapse must be a prefix");
            prop_assert!(!nest.loops[l].carries_dependence);
        }
        let product: usize = p.collapsed.iter().map(|&l| nest.loops[l].extent).product();
        prop_assert_eq!(product, p.parallel_iters);
    }
}
