//! Deterministic fault injection for the in-process rank world.
//!
//! On the paper's target machine (10M+ cores) message loss, duplication,
//! delay and node failure are routine events, not exceptions. This module
//! makes every one of those failure modes a *reproducible* test input: a
//! seeded [`FaultPlan`] decides, purely as a function of `(seed, rank,
//! send_index)`, what happens to each message a rank sends, and can
//! additionally schedule one rank to stall or crash at a chosen step.
//!
//! Because the decision is a pure hash (no shared RNG state), the injected
//! fault sequence is independent of thread interleaving: the same plan
//! always perturbs the same sends, which is what lets the fault-injection
//! tests assert bitwise-identical trajectories after recovery.
//!
//! The plan is armed per-world through
//! [`run_ranks_with`](crate::runner::run_ranks_with); when no plan is armed
//! the communicator's send/receive hot paths check a single `Option` and
//! take the exact pre-existing code path (zero cost).

use std::time::Duration;

/// What happens to one message at its send point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// The message is "lost on the wire": it is diverted to the world's
    /// retransmit log and only reaches the receiver when its retry path
    /// fetches it (see `Comm::wait`).
    Drop,
    /// The message is delivered twice; the receiver's sequence-number
    /// watermark must discard the second copy.
    Duplicate,
    /// Delivery is withheld until `n` further sends by the same rank (or
    /// until the sender next blocks, whichever comes first) — this reorders
    /// the message stream seen by the receivers.
    Delay(u32),
}

/// A seeded, deterministic fault schedule for one rank world.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    drop_per_mille: u16,
    dup_per_mille: u16,
    delay_per_mille: u16,
    max_delay: u32,
    crash: Option<(usize, u64)>,
    stall: Option<(usize, u64, Duration)>,
    kill: Option<(usize, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed; combine with the
    /// builder methods below.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, max_delay: 1, ..FaultPlan::default() }
    }

    /// Drop roughly `n`/1000 of all sent messages (recovered via retry).
    pub fn drop_per_mille(mut self, n: u16) -> Self {
        self.drop_per_mille = n;
        self.check_rates();
        self
    }

    /// Duplicate roughly `n`/1000 of all sent messages.
    pub fn duplicate_per_mille(mut self, n: u16) -> Self {
        self.dup_per_mille = n;
        self.check_rates();
        self
    }

    /// Delay (and thereby reorder) roughly `n`/1000 of all sent messages by
    /// 1..=`max_delay` subsequent sends.
    pub fn delay_per_mille(mut self, n: u16, max_delay: u32) -> Self {
        assert!(max_delay >= 1, "max_delay must be at least 1");
        self.delay_per_mille = n;
        self.max_delay = max_delay;
        self.check_rates();
        self
    }

    /// Schedule `rank` to fail (once) at the start of `step`. The rank does
    /// not compute or send anything for that step attempt; its peers time
    /// out and the driver's recovery protocol takes over.
    pub fn crash_rank(mut self, rank: usize, step: u64) -> Self {
        self.crash = Some((rank, step));
        self
    }

    /// Schedule `rank`'s *process* to be SIGKILLed (once) at the start of
    /// `step`. In the multi-process world ([`crate::process`]) this kills
    /// the real PID — peers observe a closed socket, the supervisor
    /// observes the exit and respawns the rank from its last checkpoint.
    /// Only the first incarnation fires the kill (a respawned rank must
    /// not re-kill itself when it replays the same step). In the
    /// in-process thread world the kill degrades to a [`FaultPlan::crash_rank`]
    /// crash: there is no real PID per rank to kill.
    pub fn kill_process(mut self, rank: usize, step: u64) -> Self {
        self.kill = Some((rank, step));
        self
    }

    /// Schedule `rank` to pause for `pause` (once) at the start of `step` —
    /// a slow-node / OS-jitter model that recovery must tolerate without
    /// rolling back.
    pub fn stall_rank(mut self, rank: usize, step: u64, pause: Duration) -> Self {
        self.stall = Some((rank, step, pause));
        self
    }

    fn check_rates(&self) {
        let total = self.drop_per_mille + self.dup_per_mille + self.delay_per_mille;
        assert!(total <= 1000, "fault rates sum to {total}/1000 > 1000");
    }

    /// The scheduled crash, if any, as `(rank, step)`.
    #[inline]
    pub fn crash(&self) -> Option<(usize, u64)> {
        self.crash
    }

    /// The scheduled stall, if any, as `(rank, step, pause)`.
    #[inline]
    pub fn stall(&self) -> Option<(usize, u64, Duration)> {
        self.stall
    }

    /// The scheduled process kill, if any, as `(rank, step)`.
    #[inline]
    pub fn kill(&self) -> Option<(usize, u64)> {
        self.kill
    }

    /// True if any per-message fault rate is nonzero.
    #[inline]
    pub fn perturbs_messages(&self) -> bool {
        self.drop_per_mille + self.dup_per_mille + self.delay_per_mille > 0
    }

    /// The fate of the `send_index`-th message sent by `rank`. Pure
    /// function of the plan — independent of timing and interleaving.
    pub fn message_action(&self, rank: usize, send_index: u64) -> FaultAction {
        let total = self.drop_per_mille + self.dup_per_mille + self.delay_per_mille;
        if total == 0 {
            return FaultAction::Deliver;
        }
        let x = splitmix64(
            self.seed
                ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ send_index.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        let draw = (x % 1000) as u16;
        if draw < self.drop_per_mille {
            FaultAction::Drop
        } else if draw < self.drop_per_mille + self.dup_per_mille {
            FaultAction::Duplicate
        } else if draw < total {
            FaultAction::Delay(1 + ((x >> 32) % self.max_delay as u64) as u32)
        } else {
            FaultAction::Deliver
        }
    }
}

/// SplitMix64 finalizer — a full-avalanche integer hash. Also used by the
/// communicator's retry backoff to derive deterministic jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_delivers() {
        let plan = FaultPlan::seeded(7);
        for i in 0..1000 {
            assert_eq!(plan.message_action(3, i), FaultAction::Deliver);
        }
        assert!(!plan.perturbs_messages());
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::seeded(42).drop_per_mille(50).duplicate_per_mille(50).delay_per_mille(50, 3);
        let b = a.clone();
        for rank in 0..4 {
            for i in 0..500 {
                assert_eq!(a.message_action(rank, i), b.message_action(rank, i));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1).drop_per_mille(500);
        let b = FaultPlan::seeded(2).drop_per_mille(500);
        let diff = (0..200).filter(|&i| a.message_action(0, i) != b.message_action(0, i)).count();
        assert!(diff > 0, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::seeded(9).drop_per_mille(100).duplicate_per_mille(100).delay_per_mille(100, 4);
        let n = 10_000u64;
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        for i in 0..n {
            match plan.message_action(0, i) {
                FaultAction::Drop => drops += 1,
                FaultAction::Duplicate => dups += 1,
                FaultAction::Delay(k) => {
                    assert!((1..=4).contains(&k));
                    delays += 1;
                }
                FaultAction::Deliver => {}
            }
        }
        for count in [drops, dups, delays] {
            assert!((700..1300).contains(&count), "rate off: {count}/10000 vs 1000 expected");
        }
    }

    #[test]
    fn crash_and_stall_are_recorded() {
        let plan =
            FaultPlan::seeded(0).crash_rank(2, 5).stall_rank(1, 3, Duration::from_millis(10));
        assert_eq!(plan.crash(), Some((2, 5)));
        assert_eq!(plan.stall(), Some((1, 3, Duration::from_millis(10))));
    }

    #[test]
    fn kill_is_recorded_and_does_not_perturb_messages() {
        let plan = FaultPlan::seeded(0).kill_process(3, 4);
        assert_eq!(plan.kill(), Some((3, 4)));
        assert!(!plan.perturbs_messages());
    }

    #[test]
    #[should_panic(expected = "fault rates")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::seeded(0).drop_per_mille(600).duplicate_per_mille(600);
    }
}
