//! # swmpi — in-process MPI-like rank runtime + TaihuLight network model
//!
//! The paper's CAM-SE runs as "MPI + X": one MPI process per core group,
//! OpenACC/Athread inside. This crate supplies the MPI side of the
//! reproduction at two fidelities:
//!
//! * **Functional**: [`runner::run_ranks`] executes one closure per rank on
//!   its own thread with real point-to-point channels ([`comm`]) and
//!   collectives ([`collective`]) — enough concurrency to genuinely validate
//!   the redesigned, overlap-capable boundary exchange of the paper's
//!   Section 7.6.
//! * **Modeled**: [`netmodel::NetworkModel`] prices messages on the
//!   TaihuLight's two-level interconnect (fully connected supernodes of 256
//!   processors under central switches) for the full-machine scaling figures
//!   that no laptop can run functionally.
//!
//! Point-to-point traffic flows through a transport seam with two
//! implementations: the pooled in-process mailbox (the allocation-free
//! fast path) and a byte-oriented loopback TCP backend ([`tcp`]) with
//! CRC-framed messages and reconnect/backoff. On top of the TCP backend,
//! [`process::process_world`] runs ranks as *real child processes* under a
//! supervisor that respawns killed ranks from their checkpoints — the
//! elastic-rank failure model of the paper's resilience story.

pub mod collective;
pub mod comm;
pub mod fault;
pub mod netmodel;
pub mod process;
pub mod runner;
pub mod tcp;
pub mod topology;
mod transport;

pub use collective::{Collectives, ReduceLink, ReduceOp};
pub use comm::{Comm, CommConfig, CommError, CommStats, Message, RecvRequest, ANY_SOURCE};
pub use fault::{FaultAction, FaultPlan};
pub use netmodel::{Locality, NetworkModel};
pub use process::{process_world, ElasticLink};
pub use topology::{census, sfc_neighbor_pairs, LocalityCensus, Placement};
pub use runner::{
    run_ranks, run_ranks_tcp, run_ranks_with, try_run_ranks, RankCtx, RankError, WorldOptions,
};
