//! Cost model of the TaihuLight interconnect.
//!
//! "The machine takes a two-level approach to build the network. Inside a
//! supernode with 256 processors, all the processors are fully connected
//! through a customized network board. Above the supernode, the central
//! network switches process the communication packets." (paper Section 5.1)
//!
//! Each SW26010 processor hosts 4 CGs (MPI ranks), so a supernode holds
//! 1024 ranks. Messages between ranks on the same processor move through
//! shared memory; within a supernode they cross the network board; above
//! that they traverse the central switch, with a modest contention factor
//! that grows with job size.

/// Parameters of the two-level network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Ranks (CGs) per processor.
    pub ranks_per_processor: usize,
    /// Processors per supernode.
    pub processors_per_supernode: usize,
    /// Same-processor (shared-memory) latency, s.
    pub lat_shm: f64,
    /// Same-processor bandwidth, bytes/s.
    pub bw_shm: f64,
    /// Intra-supernode latency, s.
    pub lat_supernode: f64,
    /// Intra-supernode per-rank bandwidth, bytes/s.
    pub bw_supernode: f64,
    /// Cross-supernode (central switch) latency, s.
    pub lat_central: f64,
    /// Cross-supernode per-rank bandwidth, bytes/s.
    pub bw_central: f64,
    /// Per-hop software overhead of a collective stage, s.
    pub collective_stage: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            ranks_per_processor: 4,
            processors_per_supernode: 256,
            lat_shm: 6.0e-7,
            bw_shm: 12.0e9,
            lat_supernode: 2.0e-6,
            bw_supernode: 6.0e9,
            lat_central: 4.5e-6,
            bw_central: 3.0e9,
            collective_stage: 3.0e-6,
        }
    }
}

/// Distance class between two ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    SameProcessor,
    SameSupernode,
    CrossSupernode,
}

impl NetworkModel {
    /// Ranks per supernode.
    pub fn ranks_per_supernode(&self) -> usize {
        self.ranks_per_processor * self.processors_per_supernode
    }

    /// Distance class of a rank pair.
    pub fn locality(&self, a: usize, b: usize) -> Locality {
        if a / self.ranks_per_processor == b / self.ranks_per_processor {
            Locality::SameProcessor
        } else if a / self.ranks_per_supernode() == b / self.ranks_per_supernode() {
            Locality::SameSupernode
        } else {
            Locality::CrossSupernode
        }
    }

    /// Time for one point-to-point message of `bytes` between ranks `a`, `b`.
    pub fn msg_time(&self, bytes: usize, a: usize, b: usize) -> f64 {
        let (lat, bw) = match self.locality(a, b) {
            Locality::SameProcessor => (self.lat_shm, self.bw_shm),
            Locality::SameSupernode => (self.lat_supernode, self.bw_supernode),
            Locality::CrossSupernode => (self.lat_central, self.bw_central),
        };
        lat + bytes as f64 / bw
    }

    /// Time of a halo exchange where a rank sends `messages` messages of
    /// `bytes_each`, a fraction `remote_frac` of which cross supernodes.
    /// Messages to different peers are pipelined: latency is paid per
    /// message but bandwidth is the serialized injection cost.
    pub fn halo_time(&self, messages: usize, bytes_each: usize, remote_frac: f64) -> f64 {
        if messages == 0 {
            return 0.0;
        }
        let lat = self.lat_supernode * (1.0 - remote_frac) + self.lat_central * remote_frac;
        let bw = self.bw_supernode * (1.0 - remote_frac) + self.bw_central * remote_frac;
        // Latency pipelines across peers (overlapped injection), volume does
        // not: the NIC serializes outgoing bytes.
        lat + (messages * bytes_each) as f64 / bw
    }

    /// Time of an allreduce of `bytes` over `nranks` (binomial tree up +
    /// broadcast down, log2 stages each way).
    pub fn allreduce_time(&self, nranks: usize, bytes: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let stages = (nranks as f64).log2().ceil();
        2.0 * stages * (self.collective_stage + bytes as f64 / self.bw_central)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_classes() {
        let m = NetworkModel::default();
        assert_eq!(m.ranks_per_supernode(), 1024);
        assert_eq!(m.locality(0, 3), Locality::SameProcessor);
        assert_eq!(m.locality(0, 4), Locality::SameSupernode);
        assert_eq!(m.locality(1023, 1024), Locality::CrossSupernode);
        assert_eq!(m.locality(2048, 2050), Locality::SameProcessor);
    }

    #[test]
    fn nearer_is_faster() {
        let m = NetworkModel::default();
        let b = 64 * 1024;
        let shm = m.msg_time(b, 0, 1);
        let sn = m.msg_time(b, 0, 100);
        let cross = m.msg_time(b, 0, 5000);
        assert!(shm < sn && sn < cross, "{shm} {sn} {cross}");
    }

    #[test]
    fn halo_time_scales_with_volume_and_distance() {
        let m = NetworkModel::default();
        let near = m.halo_time(8, 4096, 0.0);
        let far = m.halo_time(8, 4096, 1.0);
        assert!(far > near);
        let big = m.halo_time(8, 8192, 0.0);
        assert!(big > near);
        assert_eq!(m.halo_time(0, 4096, 0.5), 0.0);
    }

    #[test]
    fn allreduce_is_logarithmic() {
        let m = NetworkModel::default();
        let t1k = m.allreduce_time(1024, 8);
        let t1m = m.allreduce_time(1 << 20, 8);
        // 2x the stages, so 2x the time.
        assert!((t1m / t1k - 2.0).abs() < 1e-9);
        assert_eq!(m.allreduce_time(1, 8), 0.0);
    }
}
