//! Threaded rank harness: run one closure per rank, collect results.

use crate::collective::Collectives;
use crate::comm::Comm;

/// Everything one rank needs: point-to-point plus collectives.
pub struct RankCtx {
    /// Point-to-point communicator.
    pub comm: Comm,
    /// Collective machinery shared by the world.
    pub coll: Collectives,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }
}

/// Run an `n`-rank job: `body` is invoked once per rank on its own thread.
/// Returns the per-rank results in rank order.
///
/// # Panics
/// Propagates the first rank panic.
pub fn run_ranks<T, F>(n: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    let coll = Collectives::new(n);
    let world = Comm::world(n);
    let results: Vec<T> = std::thread::scope(|scope| {
        let handles: Vec<_> = world
            .into_iter()
            .map(|comm| {
                let coll = coll.clone();
                let body = &body;
                scope.spawn(move || {
                    let mut ctx = RankCtx { comm, coll };
                    body(&mut ctx)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::ReduceOp;

    #[test]
    fn ring_pass() {
        // Each rank sends its id around a ring; after n hops everyone has
        // their own id back and has accumulated the world sum.
        let n = 6;
        let sums = run_ranks(n, |ctx| {
            let mut token = ctx.rank() as f64;
            let mut acc = token;
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            for hop in 0..n - 1 {
                ctx.comm.send(next, hop as u64, &[token]);
                token = ctx.comm.recv(prev, hop as u64).data[0];
                acc += token;
            }
            acc
        });
        let expected = (0..n).sum::<usize>() as f64;
        for s in sums {
            assert_eq!(s, expected);
        }
    }

    #[test]
    fn overlap_pattern_irecv_compute_wait() {
        // The redesigned bndry_exchangev pattern: post receives, send, do
        // local compute, then wait — must complete without ordering luck.
        let n = 4;
        let results = run_ranks(n, |ctx| {
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            let req = ctx.comm.irecv(prev, 0);
            ctx.comm.send(next, 0, &[ctx.rank() as f64]);
            // "Interior computation" while the message is in flight.
            let local: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
            let msg = ctx.comm.wait(req);
            (local, msg.data[0])
        });
        for (r, (local, got)) in results.into_iter().enumerate() {
            assert!(local > 0.0);
            assert_eq!(got, ((r + n - 1) % n) as f64);
        }
    }

    #[test]
    fn collectives_inside_ranks() {
        let maxes = run_ranks(5, |ctx| {
            ctx.coll.allreduce_scalar(ctx.rank() as f64 * 2.0, ReduceOp::Max)
        });
        assert!(maxes.into_iter().all(|m| m == 8.0));
    }
}
