//! Threaded rank harness: run one closure per rank, collect results.
//!
//! [`run_ranks`] is the plain harness; [`run_ranks_with`] additionally
//! takes [`WorldOptions`] (communicator config + an optional seeded
//! [`FaultPlan`]); [`try_run_ranks`] is the fallible variant that joins
//! *all* rank threads even when some panic and reports every failure with
//! its rank id and last-announced step. A panicking rank is flagged on the
//! world-failure monitor and every mailbox is interrupted, so peers
//! blocked in a receive fail fast with
//! [`CommError::RankFailed`](crate::CommError::RankFailed) instead of
//! waiting out their full receive timeout — no rank thread can outlive the
//! harness.
//!
//! [`run_ranks_tcp`] runs the same shape of world over the loopback TCP
//! backend ([`crate::tcp`]) — ranks are still threads (collectives stay
//! shared-memory), but every point-to-point message crosses a real socket.
//! This is the harness the TCP↔mailbox parity tests and the exchange
//! bench's TCP row use; the fully multi-process world lives in
//! [`crate::process`].

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::collective::Collectives;
use crate::comm::{Comm, CommConfig};
use crate::fault::FaultPlan;
use crate::process::ElasticLink;
use crate::tcp::TcpTransport;
use crate::transport::{Mailbox, WorldMonitor};

/// Per-world run options for [`run_ranks_with`] / [`try_run_ranks`].
#[derive(Debug, Clone, Default)]
pub struct WorldOptions {
    /// Communicator tuning (receive timeout, retry cadence).
    pub comm: CommConfig,
    /// Optional seeded fault schedule; arming one switches the
    /// communicators into reliable (sequence-numbered) mode.
    pub faults: Option<FaultPlan>,
}

/// One rank's failure, as reported by [`try_run_ranks`].
#[derive(Debug, Clone)]
pub struct RankError {
    /// The rank whose thread panicked.
    pub rank: usize,
    /// The last step the rank announced via [`RankCtx::set_step`] (0 if it
    /// never announced one).
    pub step: u64,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for RankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked at step {}: {}", self.rank, self.step, self.message)
    }
}

/// World-failure alarm for the in-process world: the failure monitor plus
/// every rank's mailbox, so flagging a death also wakes all blocked
/// receivers (they re-check the monitor and error out promptly).
pub(crate) struct WorldAlarm {
    boxes: Vec<Arc<Mailbox>>,
    monitor: Arc<WorldMonitor>,
}

impl WorldAlarm {
    pub(crate) fn new(boxes: Vec<Arc<Mailbox>>, monitor: Arc<WorldMonitor>) -> Self {
        WorldAlarm { boxes, monitor }
    }

    fn flag(&self, rank: usize, step: u64) {
        self.monitor.flag_failure(rank, step);
        for b in &self.boxes {
            b.interrupt();
        }
    }
}

/// Everything one rank needs: point-to-point plus collectives.
pub struct RankCtx {
    /// Point-to-point communicator.
    pub comm: Comm,
    /// Collective machinery shared by the world.
    pub coll: Collectives,
    step: Arc<AtomicU64>,
    faults: Option<Arc<FaultPlan>>,
    crashed: bool,
    stalled: bool,
    killed: bool,
    elastic: Option<Arc<ElasticLink>>,
}

impl RankCtx {
    pub(crate) fn assemble(
        comm: Comm,
        coll: Collectives,
        faults: Option<Arc<FaultPlan>>,
        elastic: Option<Arc<ElasticLink>>,
    ) -> RankCtx {
        RankCtx {
            comm,
            coll,
            step: Arc::new(AtomicU64::new(0)),
            faults,
            crashed: false,
            stalled: false,
            killed: false,
            elastic,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The elastic-world link, present only when this rank is a child
    /// process under a supervisor ([`crate::process::process_world`]).
    /// Resilient drivers use it for checkpoint placement and epoch
    /// re-admission after a process death.
    pub fn elastic(&self) -> Option<&Arc<ElasticLink>> {
        self.elastic.as_ref()
    }

    /// Announce the step this rank is working on, so a panic anywhere in
    /// the world can be attributed to `rank N at step S`.
    pub fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
    }

    /// The last step announced via [`RankCtx::set_step`].
    pub fn step(&self) -> u64 {
        self.step.load(Ordering::Relaxed)
    }

    /// Step-boundary fault hook for resilient drivers: records the step,
    /// serves any scheduled stall (sleeps in place, once), and returns
    /// `true` if the armed plan kills this rank at this step (once) — the
    /// caller must then skip the step attempt and report itself failed.
    ///
    /// A scheduled [`FaultPlan::kill_process`] behaves differently per
    /// world: in a supervised child process (first incarnation) it
    /// SIGKILLs the real PID and never returns — peers see a dead socket
    /// and the supervisor respawns the rank from its checkpoint. A
    /// respawned incarnation ignores it (the kill already happened). In
    /// the in-process thread world there is no PID per rank, so it
    /// degrades to a simulated crash, exactly like
    /// [`FaultPlan::crash_rank`].
    pub fn begin_step(&mut self, step: u64) -> bool {
        self.set_step(step);
        let Some(plan) = &self.faults else { return false };
        if let Some((rank, at, pause)) = plan.stall() {
            if rank == self.rank() && at == step && !self.stalled {
                self.stalled = true;
                std::thread::sleep(pause);
            }
        }
        if let Some((rank, at)) = plan.kill() {
            if rank == self.rank() && at == step && !self.killed {
                self.killed = true;
                match &self.elastic {
                    Some(link) if link.incarnation() == 0 => crate::process::kill_self(),
                    Some(_) => {} // respawned: the kill already happened
                    None => return true,
                }
            }
        }
        if let Some((rank, at)) = plan.crash() {
            if rank == self.rank() && at == step && !self.crashed {
                self.crashed = true;
                return true;
            }
        }
        false
    }
}

/// Run an `n`-rank job: `body` is invoked once per rank on its own thread.
/// Returns the per-rank results in rank order.
///
/// # Panics
/// If any rank panics, all remaining ranks are still joined, then a single
/// panic is raised naming every failed rank and its last announced step.
pub fn run_ranks<T, F>(n: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    run_ranks_with(n, WorldOptions::default(), body)
}

/// [`run_ranks`] with explicit [`WorldOptions`] (comm config, fault plan).
///
/// # Panics
/// Same contract as [`run_ranks`].
pub fn run_ranks_with<T, F>(n: usize, opts: WorldOptions, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    match try_run_ranks(n, opts, body) {
        Ok(results) => results,
        Err(failures) => {
            let list: Vec<String> = failures.iter().map(|e| e.to_string()).collect();
            panic!("{} of {} ranks panicked: {}", failures.len(), n, list.join("; "));
        }
    }
}

/// Fallible rank harness: every rank thread is joined even when some
/// panic, and all failures are returned together, each naming its rank
/// and last announced step. A panicking rank immediately flags the world
/// monitor and interrupts every mailbox, so surviving ranks blocked in a
/// receive get [`CommError::RankFailed`](crate::CommError::RankFailed)
/// right away — the join loop below therefore never waits out a surviving
/// rank's full receive timeout, and no rank thread can leak past this
/// function.
pub fn try_run_ranks<T, F>(n: usize, opts: WorldOptions, body: F) -> Result<Vec<T>, Vec<RankError>>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    let coll = Collectives::new(n);
    let faults = opts.faults.map(Arc::new);
    let (world, alarm) = Comm::world_with(n, opts.comm, faults.clone());
    let steps: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let alarm = &alarm;
    std::thread::scope(|scope| {
        let handles: Vec<_> = world
            .into_iter()
            .zip(&steps)
            .map(|(comm, step)| {
                let coll = coll.clone();
                let body = &body;
                let step = Arc::clone(step);
                let faults = faults.clone();
                scope.spawn(move || {
                    let rank = comm.rank();
                    let mut ctx = RankCtx {
                        comm,
                        coll,
                        step: Arc::clone(&step),
                        faults,
                        crashed: false,
                        stalled: false,
                        killed: false,
                        elastic: None,
                    };
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                    if result.is_err() {
                        // Fail fast: wake every blocked receiver in the
                        // world before this thread exits.
                        alarm.flag(rank, step.load(Ordering::Relaxed));
                    }
                    result
                })
            })
            .collect();
        let mut results = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for (rank, handle) in handles.into_iter().enumerate() {
            // The body's panic was caught inside the thread; join itself
            // only fails if harness code outside catch_unwind panicked.
            match handle.join().expect("rank harness thread") {
                Ok(value) => results.push(value),
                Err(payload) => failures.push(RankError {
                    rank,
                    step: steps[rank].load(Ordering::Relaxed),
                    message: panic_message(payload),
                }),
            }
        }
        if failures.is_empty() {
            Ok(results)
        } else {
            Err(failures)
        }
    })
}

/// [`run_ranks_with`], but every point-to-point message crosses a real
/// loopback TCP socket ([`crate::tcp`]): ranks are still threads in this
/// process (collectives stay shared-memory), each owning a bound listener
/// and a full socket mesh. This is the apples-to-apples harness for
/// proving the TCP backend bitwise-equal to the mailbox backend.
///
/// Message-perturbation fault plans (drop/duplicate/delay) are rejected:
/// they model an unreliable wire and TCP *is* the reliable wire. Crash /
/// stall schedules are fine — they live above the transport.
///
/// # Panics
/// Same contract as [`run_ranks`], plus on socket setup failure.
pub fn run_ranks_tcp<T, F>(n: usize, opts: WorldOptions, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    if let Some(plan) = &opts.faults {
        assert!(
            !plan.perturbs_messages(),
            "message-perturbation faults are mailbox-only; TCP is the reliable wire"
        );
    }
    let coll = Collectives::new(n);
    let faults = opts.faults.map(Arc::new);
    // Bind every listener first so the full address vector exists before
    // anyone dials.
    let transports: Vec<TcpTransport> = (0..n)
        .map(|r| TcpTransport::bind(r, n, 0, opts.comm).expect("bind tcp rank listener"))
        .collect();
    let addrs: Vec<SocketAddr> = transports.iter().map(|t| t.local_addr()).collect();
    let addrs = &addrs;
    std::thread::scope(|scope| {
        let handles: Vec<_> = transports
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| {
                let coll = coll.clone();
                let body = &body;
                let faults = faults.clone();
                scope.spawn(move || {
                    transport
                        .connect_mesh(addrs, Duration::from_secs(30))
                        .unwrap_or_else(|e| panic!("rank {rank}: tcp mesh failed: {e}"));
                    let comm = Comm::from_transport(rank, n, Box::new(transport), opts.comm);
                    let mut ctx = RankCtx::assemble(comm, coll, faults, None);
                    let out = body(&mut ctx);
                    // Sync before teardown so no rank closes its sockets
                    // while a peer still expects traffic from it.
                    ctx.coll.barrier();
                    out
                })
            })
            .collect();
        let mut results = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(value) => results.push(value),
                Err(payload) => failures.push(RankError {
                    rank,
                    step: 0,
                    message: panic_message(payload),
                }),
            }
        }
        if !failures.is_empty() {
            let list: Vec<String> = failures.iter().map(|e| e.to_string()).collect();
            panic!("{} of {n} tcp ranks panicked: {}", failures.len(), list.join("; "));
        }
        results
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::ReduceOp;
    use crate::comm::CommError;
    use crate::fault::FaultPlan;
    use std::time::{Duration, Instant};

    #[test]
    fn ring_pass() {
        // Each rank sends its id around a ring; after n hops everyone has
        // their own id back and has accumulated the world sum.
        let n = 6;
        let sums = run_ranks(n, |ctx| {
            let mut token = ctx.rank() as f64;
            let mut acc = token;
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            for hop in 0..n - 1 {
                ctx.comm.send(next, hop as u64, &[token]);
                token = ctx.comm.recv(prev, hop as u64).expect("ring recv").data[0];
                acc += token;
            }
            acc
        });
        let expected = (0..n).sum::<usize>() as f64;
        for s in sums {
            assert_eq!(s, expected);
        }
    }

    #[test]
    fn overlap_pattern_irecv_compute_wait() {
        // The redesigned bndry_exchangev pattern: post receives, send, do
        // local compute, then wait — must complete without ordering luck.
        let n = 4;
        let results = run_ranks(n, |ctx| {
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            let req = ctx.comm.irecv(prev, 0);
            ctx.comm.send(next, 0, &[ctx.rank() as f64]);
            // "Interior computation" while the message is in flight.
            let local: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
            let msg = ctx.comm.wait(req).expect("overlap recv");
            (local, msg.data[0])
        });
        for (r, (local, got)) in results.into_iter().enumerate() {
            assert!(local > 0.0);
            assert_eq!(got, ((r + n - 1) % n) as f64);
        }
    }

    #[test]
    fn collectives_inside_ranks() {
        let maxes = run_ranks(5, |ctx| {
            ctx.coll.allreduce_scalar(ctx.rank() as f64 * 2.0, ReduceOp::Max)
        });
        assert!(maxes.into_iter().all(|m| m == 8.0));
    }

    #[test]
    fn all_ranks_joined_when_one_panics() {
        // Rank 1 panics at step 3; the others finish normally. The
        // harness must join everyone and name the failing rank and step.
        let err = try_run_ranks(3, WorldOptions::default(), |ctx| {
            ctx.set_step(3);
            if ctx.rank() == 1 {
                panic!("injected failure");
            }
            ctx.rank()
        })
        .unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].rank, 1);
        assert_eq!(err[0].step, 3);
        assert!(err[0].message.contains("injected failure"), "got: {}", err[0].message);
    }

    #[test]
    fn blocked_peers_fail_fast_when_a_rank_dies() {
        // Rank 0 panics immediately; ranks 1 and 2 are blocked in receives
        // with a LONG timeout. The world alarm must wake them with
        // RankFailed well before that timeout — previously each would
        // burn the full window before the harness could join them.
        let opts = WorldOptions {
            comm: CommConfig { recv_timeout: Duration::from_secs(60), ..CommConfig::default() },
            ..WorldOptions::default()
        };
        let started = Instant::now();
        let err = try_run_ranks(3, opts, |ctx| {
            ctx.set_step(9);
            if ctx.rank() == 0 {
                panic!("early death");
            }
            match ctx.comm.recv(0, 1) {
                Err(CommError::RankFailed { rank, step }) => (rank, step),
                other => panic!("expected RankFailed, got {other:?}"),
            }
        })
        .unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "survivors waited out the timeout: {:?}",
            started.elapsed()
        );
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].rank, 0);
        assert_eq!(err[0].step, 9);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked at step 7")]
    fn run_ranks_names_failing_rank_and_step() {
        run_ranks(4, |ctx| {
            ctx.set_step(7);
            if ctx.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn ring_survives_message_faults() {
        // Drop, duplicate and delay a large fraction of all messages; the
        // ring must still deliver every payload exactly once.
        let n = 5;
        let opts = WorldOptions {
            comm: CommConfig {
                recv_timeout: Duration::from_secs(5),
                ..CommConfig::default()
            },
            faults: Some(
                FaultPlan::seeded(1234)
                    .drop_per_mille(150)
                    .duplicate_per_mille(150)
                    .delay_per_mille(150, 2),
            ),
        };
        let sums = run_ranks_with(n, opts, |ctx| {
            let mut token = ctx.rank() as f64;
            let mut acc = token;
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            for hop in 0..200u64 {
                ctx.comm.send(next, hop, &[token]);
                token = ctx.comm.recv(prev, hop).expect("faulty ring recv").data[0];
                acc += token;
            }
            assert_eq!(ctx.comm.unmatched(), 0);
            acc
        });
        assert_eq!(sums.len(), n);
    }

    #[test]
    fn begin_step_fires_crash_once() {
        let opts = WorldOptions {
            faults: Some(FaultPlan::seeded(0).crash_rank(1, 2)),
            ..WorldOptions::default()
        };
        let hits = run_ranks_with(2, opts, |ctx| {
            let mut crashes = 0;
            for step in 0..5u64 {
                if ctx.begin_step(step) {
                    crashes += 1;
                }
                // Re-visiting the same step (post-rollback) must not
                // re-fire the one-shot crash.
                if ctx.begin_step(step) {
                    crashes += 1;
                }
            }
            crashes
        });
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn kill_degrades_to_crash_in_thread_world() {
        // Without a real process per rank, kill_process must behave
        // exactly like crash_rank: one-shot, at the scheduled step.
        let opts = WorldOptions {
            faults: Some(FaultPlan::seeded(0).kill_process(1, 2)),
            ..WorldOptions::default()
        };
        let hits = run_ranks_with(2, opts, |ctx| {
            let mut kills = 0;
            for step in 0..5u64 {
                if ctx.begin_step(step) {
                    kills += 1;
                }
                if ctx.begin_step(step) {
                    kills += 1;
                }
            }
            kills
        });
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn tcp_ring_pass_over_loopback() {
        // The run_ranks ring, but every hop crosses a real socket.
        let n = 4;
        let sums = run_ranks_tcp(n, WorldOptions::default(), |ctx| {
            let mut token = ctx.rank() as f64;
            let mut acc = token;
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            for hop in 0..n - 1 {
                ctx.comm.send(next, hop as u64, &[token]);
                token = ctx.comm.recv(prev, hop as u64).expect("tcp ring recv").data[0];
                acc += token;
            }
            assert_eq!(ctx.comm.unmatched(), 0);
            acc
        });
        let expected = (0..n).sum::<usize>() as f64;
        for s in sums {
            assert_eq!(s, expected);
        }
    }

    #[test]
    #[should_panic(expected = "mailbox-only")]
    fn tcp_world_rejects_message_perturbation_plans() {
        let opts = WorldOptions {
            faults: Some(FaultPlan::seeded(1).drop_per_mille(10)),
            ..WorldOptions::default()
        };
        run_ranks_tcp(2, opts, |_| ());
    }
}
