//! Rank placement on the TaihuLight topology.
//!
//! The scheduler maps MPI ranks onto core groups; how it does so decides
//! which halo messages stay inside a supernode's fully connected board and
//! which cross the central switch. This module provides the two classic
//! placements and measures a partition's communication locality under
//! them — the inputs behind `perfmodel`'s `remote_frac`.

use crate::netmodel::{Locality, NetworkModel};

/// Placement strategy of ranks onto the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Consecutive ranks fill a processor, then a supernode (the scheduler
    /// default; pairs naturally with space-filling-curve partitions).
    Block,
    /// Ranks scattered round-robin across supernodes (the pathological
    /// placement; for contrast experiments).
    RoundRobinSupernodes,
}

impl Placement {
    /// Physical core-group slot of `rank` in a `nranks`-rank job.
    pub fn slot(&self, rank: usize, nranks: usize, net: &NetworkModel) -> usize {
        match self {
            Placement::Block => rank,
            Placement::RoundRobinSupernodes => {
                let sn_count =
                    nranks.div_ceil(net.ranks_per_supernode()).max(1);
                let sn = rank % sn_count;
                let within = rank / sn_count;
                sn * net.ranks_per_supernode() + within
            }
        }
    }
}

/// Locality census of a set of communicating rank pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityCensus {
    /// Pairs on the same processor (shared memory).
    pub same_processor: usize,
    /// Pairs within one supernode.
    pub same_supernode: usize,
    /// Pairs crossing supernodes.
    pub cross_supernode: usize,
}

impl LocalityCensus {
    /// Fraction of pairs that cross supernodes.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.same_processor + self.same_supernode + self.cross_supernode;
        if total == 0 {
            0.0
        } else {
            self.cross_supernode as f64 / total as f64
        }
    }
}

/// Census of the communicating pairs under a placement.
pub fn census(
    pairs: &[(usize, usize)],
    nranks: usize,
    placement: Placement,
    net: &NetworkModel,
) -> LocalityCensus {
    let mut c = LocalityCensus::default();
    for &(a, b) in pairs {
        let sa = placement.slot(a, nranks, net);
        let sb = placement.slot(b, nranks, net);
        match net.locality(sa, sb) {
            Locality::SameProcessor => c.same_processor += 1,
            Locality::SameSupernode => c.same_supernode += 1,
            Locality::CrossSupernode => c.cross_supernode += 1,
        }
    }
    c
}

/// Nearest-neighbour pairs of an SFC-style partition: each rank talks to a
/// contiguous window of ranks around it (the compact-patch approximation).
pub fn sfc_neighbor_pairs(nranks: usize, peers_each: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for r in 0..nranks {
        for d in 1..=peers_each / 2 {
            let p = (r + d) % nranks;
            pairs.push((r, p));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_is_identity() {
        let net = NetworkModel::default();
        for r in [0usize, 5, 1023, 5000] {
            assert_eq!(Placement::Block.slot(r, 8192, &net), r);
        }
    }

    #[test]
    fn round_robin_scatters_consecutive_ranks() {
        let net = NetworkModel::default();
        let nranks = 4096; // 4 supernodes
        let s0 = Placement::RoundRobinSupernodes.slot(0, nranks, &net);
        let s1 = Placement::RoundRobinSupernodes.slot(1, nranks, &net);
        assert_ne!(
            s0 / net.ranks_per_supernode(),
            s1 / net.ranks_per_supernode(),
            "consecutive ranks must land in different supernodes"
        );
    }

    #[test]
    fn block_placement_keeps_sfc_neighbors_local() {
        let net = NetworkModel::default();
        let nranks = 8192; // 8 supernodes
        let pairs = sfc_neighbor_pairs(nranks, 8);
        let block = census(&pairs, nranks, Placement::Block, &net);
        let rr = census(&pairs, nranks, Placement::RoundRobinSupernodes, &net);
        assert!(
            block.remote_fraction() < 0.05,
            "block placement should keep SFC halos local: {}",
            block.remote_fraction()
        );
        assert!(
            rr.remote_fraction() > 0.9,
            "round-robin should scatter them: {}",
            rr.remote_fraction()
        );
    }

    #[test]
    fn census_totals_match_pair_count() {
        let net = NetworkModel::default();
        let pairs = sfc_neighbor_pairs(100, 6);
        let c = census(&pairs, 100, Placement::Block, &net);
        assert_eq!(
            c.same_processor + c.same_supernode + c.cross_supernode,
            pairs.len()
        );
        // 100 ranks fit in one supernode: nothing crosses.
        assert_eq!(c.cross_supernode, 0);
        assert_eq!(c.remote_fraction(), 0.0);
    }
}
