//! Collective operations over an in-process rank world.
//!
//! Barrier and allreduce are implemented with a shared generation-counted
//! rendezvous (the in-process analog of the TaihuLight's hardware-assisted
//! collectives). Every rank holds an [`Collectives`] handle cloned from the
//! same world.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

struct State {
    arrived: usize,
    generation: u64,
    accum: Vec<f64>,
    result: Vec<f64>,
}

/// Handle to the world's collective machinery; clone one per rank.
#[derive(Clone)]
pub struct Collectives {
    size: usize,
    shared: Arc<Shared>,
}

impl Collectives {
    /// Machinery for an `n`-rank world.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Collectives {
            size: n,
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    arrived: 0,
                    generation: 0,
                    accum: Vec::new(),
                    result: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Block until all ranks have entered. Allocation-free.
    pub fn barrier(&self) {
        self.allreduce_into(&[], ReduceOp::Sum, &mut []);
    }

    /// Element-wise allreduce of `contrib` across all ranks.
    pub fn allreduce(&self, contrib: &[f64], op: ReduceOp) -> Vec<f64> {
        let mut out = vec![0.0; contrib.len()];
        self.allreduce_into(contrib, op, &mut out);
        out
    }

    /// Element-wise allreduce writing the result into a caller-provided
    /// buffer. The shared accumulator is reused across generations, so
    /// steady-state reductions allocate nothing — this is the path the
    /// per-step health-verdict reduction takes inside the zero-allocation
    /// gates.
    pub fn allreduce_into(&self, contrib: &[f64], op: ReduceOp, out: &mut [f64]) {
        assert_eq!(contrib.len(), out.len(), "allreduce output length mismatch");
        let shared = &*self.shared;
        let mut st = shared.state.lock();
        let my_gen = st.generation;
        if st.arrived == 0 {
            st.accum.clear();
            st.accum.resize(contrib.len(), op.identity());
        }
        assert_eq!(
            st.accum.len(),
            contrib.len(),
            "ranks disagree on allreduce length"
        );
        for (a, &c) in st.accum.iter_mut().zip(contrib) {
            *a = op.combine(*a, c);
        }
        st.arrived += 1;
        if st.arrived == self.size {
            // Keep both buffers alive: the old result becomes the next
            // generation's accumulator (cleared + resized above).
            let s = &mut *st;
            std::mem::swap(&mut s.result, &mut s.accum);
            st.arrived = 0;
            st.generation += 1;
            shared.cv.notify_all();
        } else {
            while st.generation == my_gen {
                shared.cv.wait(&mut st);
            }
        }
        out.copy_from_slice(&st.result);
    }

    /// Allreduce of one scalar. Allocation-free.
    pub fn allreduce_scalar(&self, x: f64, op: ReduceOp) -> f64 {
        let mut out = [0.0];
        self.allreduce_into(&[x], op, &mut out);
        out[0]
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sum_max_min_over_threads() {
        let coll = Collectives::new(8);
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let c = coll.clone();
                thread::spawn(move || {
                    let s = c.allreduce_scalar(r as f64, ReduceOp::Sum);
                    let mx = c.allreduce_scalar(r as f64, ReduceOp::Max);
                    let mn = c.allreduce_scalar(r as f64, ReduceOp::Min);
                    (s, mx, mn)
                })
            })
            .collect();
        for h in handles {
            let (s, mx, mn) = h.join().unwrap();
            assert_eq!(s, 28.0);
            assert_eq!(mx, 7.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn vector_allreduce() {
        let coll = Collectives::new(4);
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let c = coll.clone();
                thread::spawn(move || c.allreduce(&[r as f64, 1.0], ReduceOp::Sum))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![6.0, 4.0]);
        }
    }

    #[test]
    fn repeated_barriers_do_not_cross_generations() {
        let coll = Collectives::new(4);
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let c = coll.clone();
                thread::spawn(move || {
                    let mut acc = 0.0;
                    for round in 0..50 {
                        acc += c.allreduce_scalar((r * round) as f64, ReduceOp::Sum);
                    }
                    acc
                })
            })
            .collect();
        let expected: f64 = (0..50).map(|round| 6.0 * round as f64).sum();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn single_rank_world_is_trivial() {
        let coll = Collectives::new(1);
        assert_eq!(coll.allreduce_scalar(5.0, ReduceOp::Sum), 5.0);
        coll.barrier();
        assert_eq!(coll.size(), 1);
    }
}
