//! Collective operations over a rank world.
//!
//! Two backends share one [`Collectives`] handle type:
//!
//! * **Shared-memory rendezvous** (the default, [`Collectives::new`]):
//!   barrier and allreduce via a generation-counted rendezvous — the
//!   in-process analog of the TaihuLight's hardware-assisted collectives.
//!   Allocation-free at steady state (the health-verdict reduction runs
//!   inside the zero-allocation step gates).
//! * **Reduce link** ([`Collectives::over_link`]): each call is one
//!   round-trip through an external reduction fabric implementing
//!   [`ReduceLink`] — in the multi-process world this is a star topology
//!   through the supervisor hub ([`crate::process`]), which also knows
//!   which ranks are currently *absent* (dead, awaiting respawn) and
//!   reports their count so resilient drivers can treat an incomplete
//!   reduction as a failed step instead of deadlocking on a dead peer.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

use crate::comm::CommError;

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    pub(crate) fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f64::NEG_INFINITY,
            ReduceOp::Min => f64::INFINITY,
        }
    }

    pub(crate) fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Stable wire encoding for link-backed reductions.
    pub(crate) fn code(self) -> u8 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Max => 1,
            ReduceOp::Min => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<ReduceOp> {
        match code {
            0 => Some(ReduceOp::Sum),
            1 => Some(ReduceOp::Max),
            2 => Some(ReduceOp::Min),
            _ => None,
        }
    }
}

/// An external reduction fabric: one call performs one world-wide
/// reduction round and reports how many ranks were *absent* from it
/// (dead or not yet re-admitted). The multi-process backend implements
/// this as a star through the supervisor hub.
pub trait ReduceLink: Send + Sync {
    /// Contribute `contrib` to the current reduction round, block for the
    /// combined result, and return the number of absent ranks. `out` must
    /// be the same length as `contrib` (a zero-length reduction is a
    /// barrier).
    fn reduce(&self, op: ReduceOp, contrib: &[f64], out: &mut [f64]) -> Result<u32, CommError>;
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

struct State {
    arrived: usize,
    generation: u64,
    accum: Vec<f64>,
    result: Vec<f64>,
}

#[derive(Clone)]
enum Backend {
    Shared(Arc<Shared>),
    Link(Arc<dyn ReduceLink>),
}

/// Handle to the world's collective machinery; clone one per rank
/// (shared-memory backend) or build one per process over a reduce link.
#[derive(Clone)]
pub struct Collectives {
    size: usize,
    backend: Backend,
}

impl Collectives {
    /// Shared-memory machinery for an `n`-rank world.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Collectives {
            size: n,
            backend: Backend::Shared(Arc::new(Shared {
                state: Mutex::new(State {
                    arrived: 0,
                    generation: 0,
                    accum: Vec::new(),
                    result: Vec::new(),
                }),
                cv: Condvar::new(),
            })),
        }
    }

    /// Machinery for an `n`-rank world whose reductions travel through an
    /// external [`ReduceLink`] (the multi-process supervisor hub).
    pub fn over_link(n: usize, link: Arc<dyn ReduceLink>) -> Self {
        assert!(n > 0);
        Collectives { size: n, backend: Backend::Link(link) }
    }

    /// Block until all ranks have entered. Allocation-free.
    pub fn barrier(&self) {
        self.allreduce_into(&[], ReduceOp::Sum, &mut []);
    }

    /// Element-wise allreduce of `contrib` across all ranks.
    pub fn allreduce(&self, contrib: &[f64], op: ReduceOp) -> Vec<f64> {
        let mut out = vec![0.0; contrib.len()];
        self.allreduce_into(contrib, op, &mut out);
        out
    }

    /// Element-wise allreduce writing the result into a caller-provided
    /// buffer. On the shared-memory backend the accumulator is reused
    /// across generations, so steady-state reductions allocate nothing —
    /// this is the path the per-step health-verdict reduction takes inside
    /// the zero-allocation gates.
    ///
    /// # Panics
    /// On a link backend, panics if the link fails or any rank was absent
    /// — callers that can *recover* from either use
    /// [`Collectives::allreduce_checked`] instead.
    pub fn allreduce_into(&self, contrib: &[f64], op: ReduceOp, out: &mut [f64]) {
        match self.allreduce_checked(contrib, op, out) {
            Ok(0) => {}
            Ok(absent) => panic!("allreduce incomplete: {absent} ranks absent"),
            Err(e) => panic!("allreduce failed: {e}"),
        }
    }

    /// Element-wise allreduce that reports, instead of panicking on,
    /// link failures and absent ranks. On the shared-memory backend this
    /// always returns `Ok(0)` — every rank is a live thread by
    /// construction. Resilient drivers in the multi-process world treat
    /// `Ok(absent > 0)` as a failed step verdict: the round completed
    /// among the survivors, but a dead rank's contribution is missing, so
    /// the step must be rolled back and retried once the rank is
    /// respawned and re-admitted.
    pub fn allreduce_checked(
        &self,
        contrib: &[f64],
        op: ReduceOp,
        out: &mut [f64],
    ) -> Result<u32, CommError> {
        assert_eq!(contrib.len(), out.len(), "allreduce output length mismatch");
        match &self.backend {
            Backend::Shared(shared) => {
                self.rendezvous(shared, contrib, op, out);
                Ok(0)
            }
            Backend::Link(link) => link.reduce(op, contrib, out),
        }
    }

    fn rendezvous(&self, shared: &Shared, contrib: &[f64], op: ReduceOp, out: &mut [f64]) {
        let mut st = shared.state.lock();
        let my_gen = st.generation;
        if st.arrived == 0 {
            st.accum.clear();
            st.accum.resize(contrib.len(), op.identity());
        }
        assert_eq!(
            st.accum.len(),
            contrib.len(),
            "ranks disagree on allreduce length"
        );
        for (a, &c) in st.accum.iter_mut().zip(contrib) {
            *a = op.combine(*a, c);
        }
        st.arrived += 1;
        if st.arrived == self.size {
            // Keep both buffers alive: the old result becomes the next
            // generation's accumulator (cleared + resized above).
            let s = &mut *st;
            std::mem::swap(&mut s.result, &mut s.accum);
            st.arrived = 0;
            st.generation += 1;
            shared.cv.notify_all();
        } else {
            while st.generation == my_gen {
                shared.cv.wait(&mut st);
            }
        }
        out.copy_from_slice(&st.result);
    }

    /// Allreduce of one scalar. Allocation-free.
    pub fn allreduce_scalar(&self, x: f64, op: ReduceOp) -> f64 {
        let mut out = [0.0];
        self.allreduce_into(&[x], op, &mut out);
        out[0]
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sum_max_min_over_threads() {
        let coll = Collectives::new(8);
        let handles: Vec<_> = (0..8)
            .map(|r| {
                let c = coll.clone();
                thread::spawn(move || {
                    let s = c.allreduce_scalar(r as f64, ReduceOp::Sum);
                    let mx = c.allreduce_scalar(r as f64, ReduceOp::Max);
                    let mn = c.allreduce_scalar(r as f64, ReduceOp::Min);
                    (s, mx, mn)
                })
            })
            .collect();
        for h in handles {
            let (s, mx, mn) = h.join().unwrap();
            assert_eq!(s, 28.0);
            assert_eq!(mx, 7.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn vector_allreduce() {
        let coll = Collectives::new(4);
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let c = coll.clone();
                thread::spawn(move || c.allreduce(&[r as f64, 1.0], ReduceOp::Sum))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![6.0, 4.0]);
        }
    }

    #[test]
    fn repeated_barriers_do_not_cross_generations() {
        let coll = Collectives::new(4);
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let c = coll.clone();
                thread::spawn(move || {
                    let mut acc = 0.0;
                    for round in 0..50 {
                        acc += c.allreduce_scalar((r * round) as f64, ReduceOp::Sum);
                    }
                    acc
                })
            })
            .collect();
        let expected: f64 = (0..50).map(|round| 6.0 * round as f64).sum();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn single_rank_world_is_trivial() {
        let coll = Collectives::new(1);
        assert_eq!(coll.allreduce_scalar(5.0, ReduceOp::Sum), 5.0);
        coll.barrier();
        assert_eq!(coll.size(), 1);
    }

    #[test]
    fn shared_backend_checked_reports_no_absentees() {
        let coll = Collectives::new(1);
        let mut out = [0.0];
        assert_eq!(coll.allreduce_checked(&[3.0], ReduceOp::Sum, &mut out), Ok(0));
        assert_eq!(out, [3.0]);
    }

    #[test]
    fn link_backend_routes_and_reports_absentees() {
        struct FakeHub {
            absent: u32,
        }
        impl ReduceLink for FakeHub {
            fn reduce(
                &self,
                op: ReduceOp,
                contrib: &[f64],
                out: &mut [f64],
            ) -> Result<u32, CommError> {
                // A 1-member "world": combine with the identity.
                for (o, &c) in out.iter_mut().zip(contrib) {
                    *o = op.combine(op.identity(), c);
                }
                Ok(self.absent)
            }
        }
        let coll = Collectives::over_link(4, Arc::new(FakeHub { absent: 0 }));
        assert_eq!(coll.allreduce_scalar(2.5, ReduceOp::Max), 2.5);
        assert_eq!(coll.size(), 4);

        let coll = Collectives::over_link(4, Arc::new(FakeHub { absent: 1 }));
        let mut out = [0.0];
        assert_eq!(coll.allreduce_checked(&[1.0], ReduceOp::Sum, &mut out), Ok(1));
    }

    #[test]
    fn op_wire_codes_roundtrip() {
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            assert_eq!(ReduceOp::from_code(op.code()), Some(op));
        }
        assert_eq!(ReduceOp::from_code(9), None);
    }
}
