//! TCP transport: real sockets behind the [`Transport`] seam.
//!
//! Messages travel as length-prefixed, CRC-framed byte records over one
//! duplex `TcpStream` per unordered rank pair (both directions share the
//! connection). The frame codec is `no_std`-shaped on purpose — pure
//! functions over byte slices — so the proptest suite can hammer it
//! without any sockets: see [`encode_frame`] / [`decode_frame`].
//!
//! ## Wire format
//!
//! ```text
//! frame := magic "SWFR" (4) | source u32 | tag u64 | len u32 | payload len×f64 | crc u32
//! ```
//!
//! All integers little-endian; `len` counts `f64`s; the CRC-32 covers
//! everything between the magic and the CRC field. A receiver that sees a
//! bad magic, an oversized length, or a CRC mismatch treats the whole
//! connection as corrupt and drops it — framing on a byte stream cannot
//! resynchronize reliably after damage, and the reliable-mode sequence
//! watermarks upstream make reconnect-and-resend safe.
//!
//! ## Connection lifecycle
//!
//! Every rank owns a listener (an acceptor thread) and one [`PeerSlot`]
//! per peer holding the write half; a reader thread per live connection
//! feeds a shared inbox. Connections open with a tiny handshake — the
//! dialer sends `"SWHI" rank incarnation`, the acceptor installs the
//! connection (replacing any older-incarnation one) and answers `"SWAK"`
//! — so ACK receipt *happens after* the acceptor swapped its slot, which
//! is what makes elastic re-admission deterministic: a respawned rank
//! dials every peer, and by the time it has collected all ACKs, every
//! peer's writer for it points at the new socket.
//!
//! Initial mesh: rank `i` dials every `j < i` and accepts from `j > i`.
//! A respawned rank (incarnation > 0) dials *everyone*; the handshake's
//! incarnation ordering lets acceptors replace the dead connection.
//! Dialing retries with the same exponential-backoff-plus-jitter schedule
//! the receive path uses ([`crate::comm::backoff_slice`]).
//!
//! Peer death is detected at the reader (EOF / reset ⇒ slot marked dead,
//! blocked receivers woken); sends to a dead slot drop the payload —
//! failures always surface on the receive side as
//! [`CommError::ConnectionLost`](crate::CommError::ConnectionLost), which
//! the resilient drivers translate into a rollback + re-admission.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::comm::{backoff_slice, CommConfig, CommError, Message};
use crate::transport::Transport;

/// Frame magic: "SWFR".
pub const FRAME_MAGIC: [u8; 4] = *b"SWFR";
/// Handshake hello magic: "SWHI".
const HELLO_MAGIC: [u8; 4] = *b"SWHI";
/// Handshake ack: "SWAK".
const ACK: [u8; 4] = *b"SWAK";

/// Fixed part of a frame before the payload: magic + source + tag + len.
const HEADER_LEN: usize = 4 + 4 + 8 + 4;

/// Hard cap on payload length (in `f64`s): 2^24 doubles = 128 MiB. Far
/// above any real exchange message; a length beyond this is a corrupt or
/// hostile frame, not a big one.
pub const MAX_FRAME_F64S: usize = 1 << 24;

/// Why a byte slice failed to decode as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The first bytes are not (a prefix of) the frame magic.
    BadMagic,
    /// A valid prefix, but the frame is not complete yet — read more.
    Incomplete,
    /// The length field exceeds [`MAX_FRAME_F64S`].
    TooLarge,
    /// The checksum does not match the header + payload bytes.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::Incomplete => write!(f, "incomplete frame"),
            FrameError::TooLarge => write!(f, "frame length over cap"),
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE, reflected). Local copy: `swcam-core` has one for the
/// checkpoint codec, but that crate depends on this one, so the frame
/// codec keeps its own 30 lines instead of inverting the dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Append the wire encoding of `m` to `out`.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_FRAME_F64S`] — the dycore's
/// messages are orders of magnitude smaller; hitting the cap is a bug.
pub fn encode_frame(m: &Message, out: &mut Vec<u8>) {
    assert!(m.data.len() <= MAX_FRAME_F64S, "frame payload too large: {}", m.data.len());
    let start = out.len();
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(m.source as u32).to_le_bytes());
    out.extend_from_slice(&m.tag.to_le_bytes());
    out.extend_from_slice(&(m.data.len() as u32).to_le_bytes());
    for &x in &m.data {
        out.extend_from_slice(&x.to_le_bytes());
    }
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Try to decode one frame from the front of `buf`. On success returns the
/// message and the number of bytes consumed; [`FrameError::Incomplete`]
/// means "valid so far, read more bytes and retry".
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), FrameError> {
    let probe = buf.len().min(4);
    if buf[..probe] != FRAME_MAGIC[..probe] {
        return Err(FrameError::BadMagic);
    }
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Incomplete);
    }
    let source = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    let tag = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_F64S {
        return Err(FrameError::TooLarge);
    }
    let total = HEADER_LEN + len * 8 + 4;
    if buf.len() < total {
        return Err(FrameError::Incomplete);
    }
    let stored = u32::from_le_bytes(buf[total - 4..total].try_into().expect("4 bytes"));
    if crc32(&buf[4..total - 4]) != stored {
        return Err(FrameError::BadCrc);
    }
    let data = buf[HEADER_LEN..total - 4]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Ok((Message { source, tag, data }, total))
}

/// Write half + liveness for one peer.
struct PeerSlot {
    /// Write half of the current connection (`None` before connect /
    /// after loss).
    writer: Mutex<Option<TcpStream>>,
    /// Is the current connection believed up?
    alive: AtomicBool,
    /// Local generation counter for installed connections: a reader only
    /// gets to declare the peer dead if its own generation is still the
    /// installed one (an already-replaced connection's EOF is stale news).
    conn_gen: AtomicU32,
    /// Incarnation the remote presented at handshake; an inbound dial with
    /// a lower incarnation is stale and rejected.
    remote_inc: AtomicU32,
}

impl PeerSlot {
    fn new() -> Self {
        PeerSlot {
            writer: Mutex::new(None),
            alive: AtomicBool::new(false),
            conn_gen: AtomicU32::new(0),
            remote_inc: AtomicU32::new(0),
        }
    }
}

/// State shared between the transport handle, the acceptor thread, and
/// every reader thread.
struct Shared {
    rank: usize,
    inbox: Mutex<VecDeque<Message>>,
    arrived: Condvar,
    slots: Vec<PeerSlot>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn deliver(&self, m: Message) {
        let mut q = self.inbox.lock().unwrap_or_else(|_| {
            panic!("rank {}: tcp inbox mutex poisoned", self.rank)
        });
        q.push_back(m);
        drop(q);
        self.arrived.notify_one();
    }

    /// Install `stream` as the live connection to `peer` and spawn its
    /// reader. Caller already validated the handshake. Returns false if a
    /// newer incarnation is already installed (stale dial).
    fn install(self: &Arc<Self>, peer: usize, stream: TcpStream, remote_inc: u32) -> bool {
        let slot = &self.slots[peer];
        let mut writer = slot.writer.lock().unwrap_or_else(|_| {
            panic!("rank {}: peer {peer} writer mutex poisoned", self.rank)
        });
        if remote_inc < slot.remote_inc.load(Ordering::Acquire) {
            let _ = stream.shutdown(Shutdown::Both);
            return false;
        }
        if let Some(old) = writer.take() {
            // A replaced connection's socket is shut down fully so its
            // reader exits promptly instead of lingering on a dead clone.
            let _ = old.shutdown(Shutdown::Both);
        }
        let _ = stream.set_nodelay(true);
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                slot.alive.store(false, Ordering::Release);
                return false;
            }
        };
        slot.remote_inc.store(remote_inc, Ordering::Release);
        let gen = slot.conn_gen.fetch_add(1, Ordering::AcqRel) + 1;
        *writer = Some(stream);
        slot.alive.store(true, Ordering::Release);
        drop(writer);
        let shared = Arc::clone(self);
        let handle = std::thread::spawn(move || reader_loop(shared, read_half, peer, gen));
        self.readers
            .lock()
            .unwrap_or_else(|_| panic!("rank {}: reader registry poisoned", self.rank))
            .push(handle);
        true
    }

    /// Mark the generation-`gen` connection to `peer` dead (no-op if it
    /// was already replaced) and wake blocked receivers so they observe
    /// the loss instead of sleeping out their timeout.
    fn mark_dead(&self, peer: usize, gen: u32) {
        let slot = &self.slots[peer];
        if slot.conn_gen.load(Ordering::Acquire) == gen {
            slot.alive.store(false, Ordering::Release);
        }
        self.arrived.notify_all();
    }
}

/// Read frames off one connection until EOF/corruption, delivering into
/// the shared inbox.
fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream, peer: usize, gen: u32) {
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                loop {
                    match decode_frame(&buf) {
                        Ok((m, used)) => {
                            buf.drain(..used);
                            shared.deliver(m);
                        }
                        Err(FrameError::Incomplete) => break,
                        Err(_) => {
                            // Corrupt stream: no reliable resync point on
                            // a byte stream — drop the connection, the
                            // watermarks upstream make reconnect safe.
                            let _ = stream.shutdown(Shutdown::Both);
                            shared.mark_dead(peer, gen);
                            return;
                        }
                    }
                }
            }
        }
    }
    shared.mark_dead(peer, gen);
}

/// Socket transport for one rank: a listener + one slot per peer.
pub struct TcpTransport {
    rank: usize,
    size: usize,
    incarnation: u32,
    listen_addr: SocketAddr,
    shared: Arc<Shared>,
    /// Reused frame-encode scratch so steady-state sends cost one memcpy,
    /// not one allocation.
    scratch: Vec<u8>,
    accept_handle: Option<JoinHandle<()>>,
    cfg: CommConfig,
}

impl TcpTransport {
    /// Bind a loopback listener for `rank` of `size` and start accepting.
    /// `incarnation` 0 is the first launch; a supervisor respawn passes
    /// the next incarnation so peers can tell fresh connections from
    /// stale ones.
    pub fn bind(rank: usize, size: usize, incarnation: u32, cfg: CommConfig) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let listen_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            rank,
            inbox: Mutex::new(VecDeque::with_capacity(256)),
            arrived: Condvar::new(),
            slots: (0..size).map(|_| PeerSlot::new()).collect(),
            readers: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::spawn(move || accept_loop(accept_shared, listener));
        Ok(TcpTransport {
            rank,
            size,
            incarnation,
            listen_addr,
            shared,
            scratch: Vec::with_capacity(64 * 1024),
            accept_handle: Some(accept_handle),
            cfg,
        })
    }

    /// Address peers should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// This transport's incarnation.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Dial one peer, retrying with exponential backoff + jitter until
    /// the handshake completes or `deadline` passes.
    pub fn connect_peer(
        &self,
        peer: usize,
        addr: SocketAddr,
        deadline: Instant,
    ) -> Result<(), CommError> {
        assert!(peer < self.size && peer != self.rank, "bad peer {peer}");
        let mut attempt = 0u32;
        loop {
            match self.try_dial(peer, addr) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(CommError::Io {
                            rank: self.rank,
                            detail: format!(
                                "dialing rank {peer} at {addr} failed after {attempt} attempts: {e}"
                            ),
                        });
                    }
                    let pause = backoff_slice(&self.cfg, self.rank, attempt).min(deadline - now);
                    attempt += 1;
                    std::thread::sleep(pause);
                }
            }
        }
    }

    fn try_dial(&self, peer: usize, addr: SocketAddr) -> std::io::Result<()> {
        let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut hello = [0u8; 12];
        hello[..4].copy_from_slice(&HELLO_MAGIC);
        hello[4..8].copy_from_slice(&(self.rank as u32).to_le_bytes());
        hello[8..12].copy_from_slice(&self.incarnation.to_le_bytes());
        stream.write_all(&hello)?;
        let mut ack = [0u8; 4];
        stream.read_exact(&mut ack)?;
        if ack != ACK {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "bad handshake ack"));
        }
        stream.set_read_timeout(None)?;
        if !self.shared.install(peer, stream, self.remote_inc_guess(peer)) {
            return Err(std::io::Error::other("stale incarnation"));
        }
        Ok(())
    }

    /// Incarnation recorded for an *outbound* connection's slot: keep
    /// whatever the peer last presented (we don't learn theirs from
    /// dialing; replacement ordering only matters for inbound dials).
    fn remote_inc_guess(&self, peer: usize) -> u32 {
        self.shared.slots[peer].remote_inc.load(Ordering::Acquire)
    }

    /// Establish the full mesh given every rank's listen address. First
    /// incarnations dial only lower ranks (the canonical direction);
    /// respawned incarnations dial everyone, replacing the dead
    /// connections peer-side. Blocks until every peer is live.
    pub fn connect_mesh(&self, addrs: &[SocketAddr], timeout: Duration) -> Result<(), CommError> {
        assert_eq!(addrs.len(), self.size, "one address per rank");
        let deadline = Instant::now() + timeout;
        let targets: Vec<usize> = if self.incarnation > 0 {
            (0..self.size).filter(|&p| p != self.rank).collect()
        } else {
            (0..self.rank).collect()
        };
        for peer in targets {
            self.connect_peer(peer, addrs[peer], deadline)?;
        }
        self.wait_connected(deadline)
    }

    /// Block until every peer slot is alive (higher ranks dial us) or the
    /// deadline passes.
    pub fn wait_connected(&self, deadline: Instant) -> Result<(), CommError> {
        loop {
            let missing: Vec<usize> = (0..self.size)
                .filter(|&p| p != self.rank && !self.shared.slots[p].alive.load(Ordering::Acquire))
                .collect();
            if missing.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(CommError::Io {
                    rank: self.rank,
                    detail: format!("mesh incomplete: peers {missing:?} never connected"),
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        handle_inbound(&shared, stream);
    }
}

fn handle_inbound(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Bounded handshake read so a half-open connection can't wedge the
    // acceptor forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut hello = [0u8; 12];
    if stream.read_exact(&mut hello).is_err() || hello[..4] != HELLO_MAGIC {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let peer = u32::from_le_bytes(hello[4..8].try_into().expect("4 bytes")) as usize;
    let inc = u32::from_le_bytes(hello[8..12].try_into().expect("4 bytes"));
    if peer >= shared.slots.len() || peer == shared.rank {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let _ = stream.set_read_timeout(None);
    let mut ack_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    // Install BEFORE acking: the dialer treats the ACK as proof that our
    // writer now points at this connection (elastic re-admission keys on
    // this ordering).
    if !shared.install(peer, stream, inc) {
        return;
    }
    if ack_half.write_all(&ACK).is_err() {
        let _ = ack_half.shutdown(Shutdown::Both);
        let slot = &shared.slots[peer];
        slot.alive.store(false, Ordering::Release);
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, dest: usize, m: Message) {
        let slot = &self.shared.slots[dest];
        let mut writer = slot.writer.lock().unwrap_or_else(|_| {
            panic!("rank {}: peer {dest} writer mutex poisoned", self.rank)
        });
        let Some(w) = writer.as_mut() else { return }; // peer down: drop
        self.scratch.clear();
        encode_frame(&m, &mut self.scratch);
        if w.write_all(&self.scratch).is_err() {
            let _ = w.shutdown(Shutdown::Both);
            *writer = None;
            slot.alive.store(false, Ordering::Release);
        }
    }

    fn drain(&mut self, sink: &mut VecDeque<Message>) {
        let mut q = self.shared.inbox.lock().unwrap_or_else(|_| {
            panic!("rank {}: tcp inbox mutex poisoned", self.rank)
        });
        while let Some(m) = q.pop_front() {
            sink.push_back(m);
        }
    }

    fn drain_wait(&mut self, slice: Duration, sink: &mut VecDeque<Message>) {
        let mut q = self.shared.inbox.lock().unwrap_or_else(|_| {
            panic!("rank {}: tcp inbox mutex poisoned", self.rank)
        });
        if q.is_empty() {
            let (guard, _) = self
                .shared
                .arrived
                .wait_timeout(q, slice)
                .unwrap_or_else(|_| panic!("rank {}: tcp inbox condvar poisoned", self.rank));
            q = guard;
        }
        while let Some(m) = q.pop_front() {
            sink.push_back(m);
        }
    }

    fn for_each_queued(&self, f: &mut dyn FnMut(&Message)) {
        let q = self.shared.inbox.lock().unwrap_or_else(|_| {
            panic!("rank {}: tcp inbox mutex poisoned", self.rank)
        });
        for m in q.iter() {
            f(m);
        }
    }

    fn peer_alive(&self, peer: usize) -> bool {
        peer == self.rank || self.shared.slots[peer].alive.load(Ordering::Acquire)
    }

    fn failed_peer(&self) -> Option<(usize, u64)> {
        // TCP failures are per-connection and potentially recoverable
        // (respawn + reconnect); never world-fatal from down here.
        None
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for slot in &self.shared.slots {
            if let Ok(mut w) = slot.writer.lock() {
                if let Some(stream) = w.take() {
                    // Full shutdown kills the reader's clone too (readers
                    // block in read(); this turns that into EOF).
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        // Unblock the acceptor with a dummy connection, then join it.
        let _ = TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(500));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let readers = match self.shared.readers.lock() {
            Ok(mut r) => std::mem::take(&mut *r),
            Err(_) => Vec::new(),
        };
        for h in readers {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(source: usize, tag: u64, data: Vec<f64>) -> Message {
        Message { source, tag, data }
    }

    #[test]
    fn frame_roundtrip() {
        let m = msg(3, 0x0123_4567_89AB_CDEF, vec![1.5, -2.25, f64::MIN_POSITIVE, 0.0]);
        let mut wire = Vec::new();
        encode_frame(&m, &mut wire);
        let (back, used) = decode_frame(&wire).expect("decodes");
        assert_eq!(used, wire.len());
        assert_eq!(back.source, m.source);
        assert_eq!(back.tag, m.tag);
        let bits: Vec<u64> = back.data.iter().map(|x| x.to_bits()).collect();
        let want: Vec<u64> = m.data.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn truncation_reads_as_incomplete_and_corruption_as_bad_crc() {
        let m = msg(1, 42, vec![3.125; 7]);
        let mut wire = Vec::new();
        encode_frame(&m, &mut wire);
        for cut in 0..wire.len() {
            assert_eq!(
                decode_frame(&wire[..cut]).unwrap_err(),
                FrameError::Incomplete,
                "cut at {cut}"
            );
        }
        // Flip one payload byte: CRC must catch it.
        let mut bad = wire.clone();
        bad[HEADER_LEN + 3] ^= 0x40;
        assert_eq!(decode_frame(&bad).unwrap_err(), FrameError::BadCrc);
        // Wrong magic is rejected immediately, even on a short prefix.
        let mut wrong = wire;
        wrong[0] = b'X';
        assert_eq!(decode_frame(&wrong).unwrap_err(), FrameError::BadMagic);
        assert_eq!(decode_frame(&wrong[..2]).unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn oversized_length_field_is_rejected() {
        let m = msg(0, 1, vec![1.0]);
        let mut wire = Vec::new();
        encode_frame(&m, &mut wire);
        wire[16..20].copy_from_slice(&(MAX_FRAME_F64S as u32 + 1).to_le_bytes());
        assert_eq!(decode_frame(&wire).unwrap_err(), FrameError::TooLarge);
    }

    #[test]
    fn back_to_back_frames_decode_in_sequence() {
        let a = msg(0, 1, vec![1.0, 2.0]);
        let b = msg(1, 2, vec![]);
        let mut wire = Vec::new();
        encode_frame(&a, &mut wire);
        encode_frame(&b, &mut wire);
        let (first, used) = decode_frame(&wire).expect("first");
        assert_eq!(first.tag, 1);
        let (second, used2) = decode_frame(&wire[used..]).expect("second");
        assert_eq!(second.tag, 2);
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn two_transports_exchange_over_loopback() {
        let cfg = CommConfig::default();
        let t0 = TcpTransport::bind(0, 2, 0, cfg).expect("bind 0");
        let t1 = TcpTransport::bind(1, 2, 0, cfg).expect("bind 1");
        let addrs = [t0.local_addr(), t1.local_addr()];
        let deadline = Duration::from_secs(10);
        let (mut t0, mut t1) = std::thread::scope(|s| {
            let h0 = s.spawn(|| {
                t0.connect_mesh(&addrs, deadline).expect("mesh 0");
                t0
            });
            let h1 = s.spawn(|| {
                t1.connect_mesh(&addrs, deadline).expect("mesh 1");
                t1
            });
            (h0.join().expect("join 0"), h1.join().expect("join 1"))
        });
        t0.send(1, msg(0, 7, vec![1.0, 2.0, 3.0]));
        let mut sink = VecDeque::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.is_empty() {
            assert!(Instant::now() < deadline, "message never arrived");
            t1.drain_wait(Duration::from_millis(10), &mut sink);
        }
        let got = sink.pop_front().expect("one message");
        assert_eq!(got.source, 0);
        assert_eq!(got.tag, 7);
        assert_eq!(got.data, vec![1.0, 2.0, 3.0]);
        assert!(t1.peer_alive(0));
        // Tear down rank 0; rank 1 must observe the loss.
        drop(t0);
        let lost = Instant::now() + Duration::from_secs(5);
        while t1.peer_alive(0) {
            assert!(Instant::now() < lost, "peer death never detected");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
