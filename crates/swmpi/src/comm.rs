//! Point-to-point communication between in-process ranks.
//!
//! The reproduction runs "MPI processes" as threads inside one OS process:
//! each rank owns a [`Comm`] handle with a mailbox channel. Sends are
//! buffered (eager) and never block; receives match on `(source, tag)` and
//! may be posted as nonblocking requests — which is the property the paper's
//! redesigned `bndry_exchangev` relies on ("start the asynchronous MPI
//! communication on the MPE with an MPI wait in the end", Section 7.6).

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::time::Duration;

/// Wildcard source for receives.
pub const ANY_SOURCE: usize = usize::MAX;

/// How long a blocking receive waits before declaring the job deadlocked.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub source: usize,
    /// User tag.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Traffic counters for one rank (feed the network performance model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent.
    pub sends: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
    /// Bytes received.
    pub bytes_received: u64,
}

/// A nonblocking receive request. Call [`RecvRequest::wait`] on the owning
/// rank's [`Comm`] to complete it.
#[derive(Debug, Clone, Copy)]
pub struct RecvRequest {
    source: usize,
    tag: u64,
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    peers: Vec<Sender<Message>>,
    inbox: Receiver<Message>,
    /// Arrived-but-unmatched messages.
    pending: VecDeque<Message>,
    stats: CommStats,
}

impl Comm {
    /// Build the communicator handles for an `n`-rank world.
    pub(crate) fn world(n: usize) -> Vec<Comm> {
        let channels: Vec<_> = (0..n).map(|_| unbounded::<Message>()).collect();
        let senders: Vec<Sender<Message>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
        channels
            .into_iter()
            .enumerate()
            .map(|(rank, (_, rx))| Comm {
                rank,
                size: n,
                peers: senders.clone(),
                inbox: rx,
                pending: VecDeque::new(),
                stats: CommStats::default(),
            })
            .collect()
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Buffered (eager) send: copies the payload and returns immediately,
    /// i.e. `MPI_Isend` with an implicit buffer.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or the destination has hung up.
    pub fn send(&mut self, dest: usize, tag: u64, data: &[f64]) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        self.stats.sends += 1;
        self.stats.bytes_sent += (data.len() * 8) as u64;
        self.peers[dest]
            .send(Message { source: self.rank, tag, data: data.to_vec() })
            .expect("destination rank terminated");
    }

    /// Post a nonblocking receive for `(source, tag)`. Matching happens at
    /// [`Comm::wait`]; posting never blocks.
    pub fn irecv(&self, source: usize, tag: u64) -> RecvRequest {
        RecvRequest { source, tag }
    }

    /// Complete a posted receive, blocking until a matching message arrives.
    ///
    /// # Panics
    /// Panics after [`RECV_TIMEOUT`] with a deadlock diagnostic.
    pub fn wait(&mut self, req: RecvRequest) -> Message {
        // First check messages that already arrived out of order.
        if let Some(pos) = self.pending.iter().position(|m| Self::matches(m, &req)) {
            let m = self.pending.remove(pos).expect("position valid");
            self.account_recv(&m);
            return m;
        }
        loop {
            match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok(m) => {
                    if Self::matches(&m, &req) {
                        self.account_recv(&m);
                        return m;
                    }
                    self.pending.push_back(m);
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "rank {} deadlocked waiting for (source {:?}, tag {}): {} unmatched pending",
                    self.rank,
                    req.source,
                    req.tag,
                    self.pending.len()
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("rank {}: all senders terminated", self.rank)
                }
            }
        }
    }

    /// Blocking receive (`irecv` + `wait`).
    pub fn recv(&mut self, source: usize, tag: u64) -> Message {
        let req = self.irecv(source, tag);
        self.wait(req)
    }

    fn matches(m: &Message, req: &RecvRequest) -> bool {
        (req.source == ANY_SOURCE || m.source == req.source) && m.tag == req.tag
    }

    fn account_recv(&mut self, m: &Message) {
        self.stats.recvs += 1;
        self.stats.bytes_received += (m.data.len() * 8) as u64;
    }

    /// Messages that have arrived but not been matched yet.
    pub fn unmatched(&self) -> usize {
        self.pending.len() + self.inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_roundtrip() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 7, &[1.0, 2.0]);
        let m = c1.recv(0, 7);
        assert_eq!(m.data, vec![1.0, 2.0]);
        assert_eq!(m.source, 0);
        assert_eq!(c0.stats().bytes_sent, 16);
        assert_eq!(c1.stats().bytes_received, 16);
    }

    #[test]
    fn out_of_order_matching() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 1, &[1.0]);
        c0.send(1, 2, &[2.0]);
        // Receive tag 2 first even though tag 1 arrived first.
        assert_eq!(c1.recv(0, 2).data, vec![2.0]);
        assert_eq!(c1.unmatched(), 1);
        assert_eq!(c1.recv(0, 1).data, vec![1.0]);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let mut world = Comm::world(3);
        let mut c2 = world.pop().unwrap();
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(2, 9, &[0.5]);
        c1.send(2, 9, &[1.5]);
        let a = c2.recv(ANY_SOURCE, 9);
        let b = c2.recv(ANY_SOURCE, 9);
        let mut sources = [a.source, b.source];
        sources.sort_unstable();
        assert_eq!(sources, [0, 1]);
    }

    #[test]
    fn irecv_can_be_posted_before_send() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let req = c1.irecv(0, 3);
        c0.send(1, 3, &[4.0]);
        assert_eq!(c1.wait(req).data, vec![4.0]);
    }

    #[test]
    #[should_panic(expected = "send to rank")]
    fn send_out_of_range() {
        let mut world = Comm::world(1);
        let mut c0 = world.pop().unwrap();
        c0.send(1, 0, &[]);
    }
}
