//! Point-to-point communication between in-process ranks.
//!
//! The reproduction runs "MPI processes" as threads inside one OS process:
//! each rank owns a [`Comm`] handle with a mailbox. Sends are buffered
//! (eager) and never block; receives match on `(source, tag)` and may be
//! posted as nonblocking requests — which is the property the paper's
//! redesigned `bndry_exchangev` relies on ("start the asynchronous MPI
//! communication on the MPE with an MPI wait in the end", Section 7.6).
//!
//! The mailbox is a plain `Mutex<VecDeque>` + `Condvar` rather than a
//! channel so that the steady-state hot path allocates nothing: payload
//! buffers are pooled per rank ([`Comm::take_buffer`] /
//! [`Comm::send_owned`] / [`Comm::recycle`]) and travel by move, and the
//! queue storage is reserved up front. Symmetric exchange patterns (every
//! halo exchange in this codebase) keep the pools balanced: each rank
//! recycles exactly as many buffers as it hands out.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wildcard source for receives.
pub const ANY_SOURCE: usize = usize::MAX;

/// How long a blocking receive waits before declaring the job deadlocked.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Queue storage reserved per mailbox / unmatched list so steady-state
/// traffic never grows them.
const QUEUE_RESERVE: usize = 256;

/// Pooled payload buffers kept per rank.
const POOL_RESERVE: usize = 64;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub source: usize,
    /// User tag.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Traffic counters for one rank (feed the network performance model and
/// the aggregation assertions in the distributed tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent.
    pub sends: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
    /// Bytes received.
    pub bytes_received: u64,
}

/// A nonblocking receive request. Call [`Comm::wait`] on the owning rank's
/// [`Comm`] to complete it.
#[derive(Debug, Clone, Copy)]
pub struct RecvRequest {
    source: usize,
    tag: u64,
}

/// One rank's incoming message queue, shared with every sender.
#[derive(Debug)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    arrived: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::with_capacity(QUEUE_RESERVE)),
            arrived: Condvar::new(),
        }
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    peers: Vec<Arc<Mailbox>>,
    inbox: Arc<Mailbox>,
    /// Arrived-but-unmatched messages.
    pending: VecDeque<Message>,
    /// Recycled payload buffers, reused by [`Comm::take_buffer`].
    pool: Vec<Vec<f64>>,
    stats: CommStats,
}

impl Comm {
    /// Build the communicator handles for an `n`-rank world.
    pub(crate) fn world(n: usize) -> Vec<Comm> {
        let boxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::new())).collect();
        (0..n)
            .map(|rank| Comm {
                rank,
                size: n,
                peers: boxes.clone(),
                inbox: Arc::clone(&boxes[rank]),
                pending: VecDeque::with_capacity(QUEUE_RESERVE),
                pool: Vec::with_capacity(POOL_RESERVE),
                stats: CommStats::default(),
            })
            .collect()
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Take a payload buffer of length `len` from the pool (zero-filled),
    /// falling back to a fresh allocation when the pool is dry. Pair with
    /// [`Comm::send_owned`] to send without copying, and [`Comm::recycle`]
    /// on the receiving side to keep the pools stocked.
    pub fn take_buffer(&mut self, len: usize) -> Vec<f64> {
        if let Some(pos) = self.pool.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.pool.swap_remove(pos);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        } else {
            vec![0.0; len]
        }
    }

    /// Return a received payload buffer to this rank's pool.
    pub fn recycle(&mut self, buf: Vec<f64>) {
        if self.pool.len() < self.pool.capacity() {
            self.pool.push(buf);
        }
    }

    /// Buffered (eager) send: copies the payload and returns immediately,
    /// i.e. `MPI_Isend` with an implicit buffer. The copy goes into a
    /// pooled buffer, so steady-state sends do not allocate.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send(&mut self, dest: usize, tag: u64, data: &[f64]) {
        let mut buf = self.take_buffer(data.len());
        buf.copy_from_slice(data);
        self.send_owned(dest, tag, buf);
    }

    /// Zero-copy send: the caller hands over the payload buffer (typically
    /// obtained from [`Comm::take_buffer`]) and it travels by move.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send_owned(&mut self, dest: usize, tag: u64, data: Vec<f64>) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        self.stats.sends += 1;
        self.stats.bytes_sent += (data.len() * 8) as u64;
        let mailbox = &self.peers[dest];
        let mut queue = mailbox.queue.lock().expect("mailbox poisoned");
        queue.push_back(Message { source: self.rank, tag, data });
        drop(queue);
        mailbox.arrived.notify_one();
    }

    /// Post a nonblocking receive for `(source, tag)`. Matching happens at
    /// [`Comm::wait`]; posting never blocks.
    pub fn irecv(&self, source: usize, tag: u64) -> RecvRequest {
        RecvRequest { source, tag }
    }

    /// Complete a posted receive, blocking until a matching message arrives.
    ///
    /// # Panics
    /// Panics after [`RECV_TIMEOUT`] with a deadlock diagnostic.
    pub fn wait(&mut self, req: RecvRequest) -> Message {
        // First check messages that already arrived out of order.
        if let Some(pos) = self.pending.iter().position(|m| Self::matches(m, &req)) {
            let m = self.pending.remove(pos).expect("position valid");
            self.account_recv(&m);
            return m;
        }
        let inbox = Arc::clone(&self.inbox);
        let deadline = Instant::now() + RECV_TIMEOUT;
        let mut queue = inbox.queue.lock().expect("mailbox poisoned");
        loop {
            while let Some(m) = queue.pop_front() {
                if Self::matches(&m, &req) {
                    drop(queue);
                    self.account_recv(&m);
                    return m;
                }
                self.pending.push_back(m);
            }
            let now = Instant::now();
            if now >= deadline {
                panic!(
                    "rank {} deadlocked waiting for (source {:?}, tag {}): {} unmatched pending",
                    self.rank,
                    req.source,
                    req.tag,
                    self.pending.len()
                );
            }
            let (guard, _) =
                inbox.arrived.wait_timeout(queue, deadline - now).expect("mailbox poisoned");
            queue = guard;
        }
    }

    /// Blocking receive (`irecv` + `wait`).
    pub fn recv(&mut self, source: usize, tag: u64) -> Message {
        let req = self.irecv(source, tag);
        self.wait(req)
    }

    fn matches(m: &Message, req: &RecvRequest) -> bool {
        (req.source == ANY_SOURCE || m.source == req.source) && m.tag == req.tag
    }

    fn account_recv(&mut self, m: &Message) {
        self.stats.recvs += 1;
        self.stats.bytes_received += (m.data.len() * 8) as u64;
    }

    /// Messages that have arrived but not been matched yet.
    pub fn unmatched(&self) -> usize {
        self.pending.len() + self.inbox.queue.lock().expect("mailbox poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_roundtrip() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 7, &[1.0, 2.0]);
        let m = c1.recv(0, 7);
        assert_eq!(m.data, vec![1.0, 2.0]);
        assert_eq!(m.source, 0);
        assert_eq!(c0.stats().bytes_sent, 16);
        assert_eq!(c1.stats().bytes_received, 16);
    }

    #[test]
    fn out_of_order_matching() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 1, &[1.0]);
        c0.send(1, 2, &[2.0]);
        // Receive tag 2 first even though tag 1 arrived first.
        assert_eq!(c1.recv(0, 2).data, vec![2.0]);
        assert_eq!(c1.unmatched(), 1);
        assert_eq!(c1.recv(0, 1).data, vec![1.0]);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let mut world = Comm::world(3);
        let mut c2 = world.pop().unwrap();
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(2, 9, &[0.5]);
        c1.send(2, 9, &[1.5]);
        let a = c2.recv(ANY_SOURCE, 9);
        let b = c2.recv(ANY_SOURCE, 9);
        let mut sources = [a.source, b.source];
        sources.sort_unstable();
        assert_eq!(sources, [0, 1]);
    }

    #[test]
    fn irecv_can_be_posted_before_send() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let req = c1.irecv(0, 3);
        c0.send(1, 3, &[4.0]);
        assert_eq!(c1.wait(req).data, vec![4.0]);
    }

    #[test]
    fn send_owned_moves_payload_and_recycle_reuses_it() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let mut buf = c0.take_buffer(3);
        buf.copy_from_slice(&[1.0, 2.0, 3.0]);
        let ptr = buf.as_ptr();
        c0.send_owned(1, 5, buf);
        let m = c1.wait(c1.irecv(0, 5));
        assert_eq!(m.data, vec![1.0, 2.0, 3.0]);
        // The payload travelled by move: same backing storage end to end.
        assert_eq!(m.data.as_ptr(), ptr);
        c1.recycle(m.data);
        let reused = c1.take_buffer(2);
        assert_eq!(reused.as_ptr(), ptr);
        assert_eq!(reused, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "send to rank")]
    fn send_out_of_range() {
        let mut world = Comm::world(1);
        let mut c0 = world.pop().unwrap();
        c0.send(1, 0, &[]);
    }
}
