//! Point-to-point communication between ranks.
//!
//! Each rank owns a [`Comm`] handle. Sends are buffered (eager) and never
//! block; receives match on `(source, tag)` and may be posted as
//! nonblocking requests — which is the property the paper's redesigned
//! `bndry_exchangev` relies on ("start the asynchronous MPI communication
//! on the MPE with an MPI wait in the end", Section 7.6).
//!
//! `Comm` is transport-agnostic: all protocol state (matching, pooled
//! payload buffers, sequence watermarks, the fault layer, retry/backoff)
//! lives here, and raw delivery goes through the [`Transport`] seam
//! ([`crate::transport`]). The default backend is the in-process pooled
//! mailbox (ranks are threads; a send is a queue push and payloads travel
//! by move, so the steady-state hot path allocates nothing); the
//! [`crate::tcp`] backend speaks length-prefixed CRC-framed messages over
//! one `TcpStream` per peer pair and is what the multi-process world
//! ([`crate::process`]) runs on.
//!
//! # Failure semantics
//!
//! Receives are fallible: [`Comm::wait`] and [`Comm::recv`] return
//! `Result<Message, CommError>` and time out after the configurable
//! [`CommConfig::recv_timeout`] instead of killing the process. A receive
//! whose source rank is known dead fails fast with
//! [`CommError::ConnectionLost`] (TCP: the peer's socket closed) or
//! [`CommError::RankFailed`] (thread world: the peer's thread panicked —
//! the runner flags the world and wakes every blocked waiter).
//!
//! When a [`FaultPlan`] is armed on the world the communicator
//! additionally runs in *reliable* mode:
//!
//! * messages the plan "drops" are diverted to a world-shared retransmit
//!   log; the receiver's wait loop polls that log on every retry —
//!   retries pace themselves with exponential backoff plus deterministic
//!   jitter from [`CommConfig::retry_interval`] up to
//!   [`CommConfig::retry_max_interval`], bounded by
//!   [`CommConfig::max_retries`] — and recovers the exact payload: the
//!   in-process model of a sender-side retransmission protocol;
//! * every consumed message advances a per-source sequence watermark
//!   (exchange tags are strictly increasing per sender), and any message
//!   at or below the watermark is discarded on arrival — duplicated or
//!   re-delivered messages therefore accumulate exactly once;
//! * [`Comm::purge_below`] lets a recovery protocol advance the watermark
//!   wholesale after a rollback, so stale in-flight messages from an
//!   aborted step epoch can never contaminate the re-run.
//!
//! Reliable mode requires tags to be unique and non-decreasing per sender
//! — the distributed dycore's monotone exchange counter satisfies this.
//! The TCP backend always runs in reliable mode (process death and
//! reconnection make stale in-flight messages a real possibility), but
//! does not support the message-perturbation faults (drop/duplicate/
//! delay): those model an unreliable wire, and TCP *is* the reliable
//! wire. Without an armed plan on the mailbox backend, none of this
//! machinery is consulted: the hot path costs one `Option` check.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::fault::{splitmix64, FaultAction, FaultPlan};
use crate::transport::{MailboxTransport, Transport};

/// Wildcard source for receives.
pub const ANY_SOURCE: usize = usize::MAX;

/// Default for [`CommConfig::recv_timeout`]: how long a blocking receive
/// waits before reporting the job deadlocked.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Queue storage reserved for the unmatched list so steady-state traffic
/// never grows it.
const QUEUE_RESERVE: usize = 256;

/// Pooled payload buffers kept per rank.
const POOL_RESERVE: usize = 64;

/// Tunable communicator behavior, set per world via
/// [`run_ranks_with`](crate::runner::run_ranks_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// How long [`Comm::wait`] blocks before returning
    /// [`CommError::Timeout`]. Replaces the old hard-coded 60 s const.
    pub recv_timeout: Duration,
    /// In reliable mode, the *initial* pause between retransmit-log polls
    /// of a blocked receive. Subsequent polls back off exponentially
    /// (doubling per attempt, plus deterministic jitter) up to
    /// [`CommConfig::retry_max_interval`].
    pub retry_interval: Duration,
    /// Ceiling of the exponential retry backoff.
    pub retry_max_interval: Duration,
    /// In reliable mode, how many retransmit-log polls a single wait may
    /// make before giving up (bounds retry work even under a long
    /// `recv_timeout`).
    pub max_retries: u32,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            recv_timeout: RECV_TIMEOUT,
            retry_interval: Duration::from_millis(2),
            retry_max_interval: Duration::from_millis(50),
            max_retries: 100_000,
        }
    }
}

/// The retry pause before reliable-mode poll number `attempt` (0-based):
/// `retry_interval · 2^attempt`, capped at `retry_max_interval`, plus a
/// deterministic jitter of up to 25% drawn from `(rank, attempt)` — so
/// colliding ranks de-synchronize their polls without any shared RNG, and
/// the schedule is reproducible for a given world shape.
pub(crate) fn backoff_slice(cfg: &CommConfig, rank: usize, attempt: u32) -> Duration {
    let base = cfg.retry_interval.max(Duration::from_micros(50));
    let exp = attempt.min(20); // 2^20 · anything sane already exceeds the cap
    let grown = base
        .checked_mul(1u32 << exp)
        .map_or(cfg.retry_max_interval, |d| d.min(cfg.retry_max_interval));
    let jitter_room = (grown.as_nanos() / 4) as u64;
    let draw = splitmix64(
        (rank as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ u64::from(attempt) ^ 0xB0FF_5EED,
    );
    grown + Duration::from_nanos(if jitter_room == 0 { 0 } else { draw % (jitter_room + 1) })
}

/// Typed communication failure, surfaced instead of a panic so drivers can
/// abort a step, roll back to a checkpoint, and retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the configured window.
    Timeout {
        /// Receiving rank.
        rank: usize,
        /// Expected source ([`ANY_SOURCE`] shows as `usize::MAX`).
        source: usize,
        /// Expected tag.
        tag: u64,
        /// Arrived-but-unmatched messages held by the receiver.
        unmatched: usize,
        /// How long the receive waited, in milliseconds.
        waited_ms: u64,
    },
    /// A rank was declared failed (by fault injection or by a driver's
    /// failure detector) at the given step.
    RankFailed {
        /// The failed rank.
        rank: usize,
        /// The step at which it failed.
        step: u64,
    },
    /// The connection to `peer` is down (TCP backend: the peer's socket
    /// closed or reset — typically a dead process). The peer may come
    /// back: a supervisor respawn re-establishes the connection and
    /// subsequent receives succeed again.
    ConnectionLost {
        /// Receiving rank.
        rank: usize,
        /// The unreachable peer.
        peer: usize,
    },
    /// A transport-level I/O failure that is not a clean connection loss
    /// (socket errors on control channels, malformed frames, filesystem
    /// errors in process bootstrap).
    Io {
        /// Rank reporting the failure.
        rank: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { rank, source, tag, unmatched, waited_ms } => write!(
                f,
                "rank {rank} timed out after {waited_ms} ms waiting for (source {source:?}, \
                 tag {tag}): {unmatched} unmatched pending"
            ),
            CommError::RankFailed { rank, step } => {
                write!(f, "rank {rank} failed at step {step}")
            }
            CommError::ConnectionLost { rank, peer } => {
                write!(f, "rank {rank}: connection to rank {peer} lost")
            }
            CommError::Io { rank, detail } => write!(f, "rank {rank}: transport I/O failed: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub source: usize,
    /// User tag.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
}

/// Traffic counters for one rank (feed the network performance model and
/// the aggregation assertions in the distributed tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent.
    pub sends: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub recvs: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Dropped messages recovered from the retransmit log (reliable mode).
    pub recovered: u64,
    /// Stale (duplicated or superseded-epoch) messages discarded by the
    /// sequence watermark (reliable mode).
    pub stale_dropped: u64,
    /// Reliable-mode retry polls performed by blocked receives (each poll
    /// re-checks the retransmit log after one backoff pause).
    pub retry_attempts: u64,
}

/// A nonblocking receive request. Call [`Comm::wait`] on the owning rank's
/// [`Comm`] to complete it.
#[derive(Debug, Clone, Copy)]
pub struct RecvRequest {
    source: usize,
    tag: u64,
}

/// Per-rank message-fault machinery; only present when a plan that
/// perturbs messages is armed.
struct FaultLayer {
    plan: Arc<FaultPlan>,
    /// Messages sent so far by this rank (indexes the plan's schedule).
    sent: u64,
    /// Withheld messages: (remaining send slots, dest, message).
    delayed: Vec<(u32, usize, Message)>,
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    size: usize,
    /// Raw delivery backend (mailbox or TCP).
    link: Box<dyn Transport>,
    /// Arrived-but-unmatched messages.
    pending: VecDeque<Message>,
    /// Recycled payload buffers, reused by [`Comm::take_buffer`].
    pool: Vec<Vec<f64>>,
    stats: CommStats,
    cfg: CommConfig,
    /// Sequence-numbered idempotent delivery active (armed fault plan, or
    /// always on the TCP backend).
    reliable: bool,
    /// Per-source watermark: tags `< watermark[src]` have been consumed or
    /// superseded and are discarded on sight. Only advanced in reliable mode.
    watermark: Vec<u64>,
    /// World-shared retransmit log, indexed by destination rank: messages
    /// the fault plan "drops" land here and are recovered by the
    /// receiver's retry path. Mailbox worlds share one; TCP worlds hold an
    /// always-empty private one (the wire itself is reliable).
    relay: Arc<Vec<Mutex<Vec<Message>>>>,
    faults: Option<FaultLayer>,
}

impl Comm {
    /// Build the communicator handles for an `n`-rank world with default
    /// config and no fault plan.
    #[cfg(test)]
    pub(crate) fn world(n: usize) -> Vec<Comm> {
        Self::world_with(n, CommConfig::default(), None).0
    }

    /// Build an `n`-rank in-process (mailbox) world with explicit config
    /// and an optional armed fault plan. Also returns the world-failure
    /// alarm the runner uses to wake blocked receivers when a rank dies.
    pub(crate) fn world_with(
        n: usize,
        cfg: CommConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> (Vec<Comm>, crate::runner::WorldAlarm) {
        let (transports, boxes, monitor) = MailboxTransport::world(n);
        let relay: Arc<Vec<Mutex<Vec<Message>>>> =
            Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
        let comms = transports
            .into_iter()
            .enumerate()
            .map(|(rank, link)| Comm {
                rank,
                size: n,
                link: Box::new(link),
                pending: VecDeque::with_capacity(QUEUE_RESERVE),
                pool: Vec::with_capacity(POOL_RESERVE),
                stats: CommStats::default(),
                cfg,
                reliable: faults.is_some(),
                watermark: vec![0; n],
                relay: Arc::clone(&relay),
                faults: faults.as_ref().filter(|p| p.perturbs_messages()).map(|p| FaultLayer {
                    plan: Arc::clone(p),
                    sent: 0,
                    delayed: Vec::new(),
                }),
            })
            .collect();
        (comms, crate::runner::WorldAlarm::new(boxes, monitor))
    }

    /// Build one communicator over an arbitrary transport (the TCP
    /// backend). Always reliable (sequence watermarks armed): process
    /// death, reconnection and epoch rollback make stale in-flight
    /// messages a real possibility on a socket world. Message-perturbation
    /// fault plans are not supported here — the TCP stream *is* the
    /// reliable wire; process-level faults (kill, stall) live in the
    /// runner/supervisor instead.
    pub(crate) fn from_transport(
        rank: usize,
        size: usize,
        link: Box<dyn Transport>,
        cfg: CommConfig,
    ) -> Comm {
        Comm {
            rank,
            size,
            link,
            pending: VecDeque::with_capacity(QUEUE_RESERVE),
            pool: Vec::with_capacity(POOL_RESERVE),
            stats: CommStats::default(),
            cfg,
            reliable: true,
            watermark: vec![0; size],
            relay: Arc::new((0..size).map(|_| Mutex::new(Vec::new())).collect()),
            faults: None,
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Current communicator configuration.
    #[inline]
    pub fn config(&self) -> CommConfig {
        self.cfg
    }

    /// Adjust the receive timeout (the old hard-coded [`RECV_TIMEOUT`] is
    /// now just this knob's default).
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.cfg.recv_timeout = timeout;
    }

    /// Buffers currently parked in this rank's recycle pool.
    #[inline]
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Hard cap on pooled buffers (the pool never grows past this).
    #[inline]
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Take a payload buffer of length `len` from the pool (zero-filled),
    /// falling back to a fresh allocation when the pool is dry. Pair with
    /// [`Comm::send_owned`] to send without copying, and [`Comm::recycle`]
    /// on the receiving side to keep the pools stocked.
    ///
    /// Selection prefers an exact capacity match, then the smallest buffer
    /// that fits. Exact-fit matters for determinism, not just footprint:
    /// link message sizes are symmetric (both directions of a link carry
    /// the same per-stage payload widths), so per-rank pool levels are
    /// invariant per size class across a step — but only if a small
    /// request never walks off with a larger class's buffer. First-fit let
    /// exactly that happen, and the resulting cross-rank size-class drift
    /// made steady-state allocations timing-dependent.
    pub fn take_buffer(&mut self, len: usize) -> Vec<f64> {
        let mut pick: Option<(usize, usize)> = None;
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            if cap == len {
                pick = Some((i, cap));
                break;
            }
            if cap > len && pick.is_none_or(|(_, c)| cap < c) {
                pick = Some((i, cap));
            }
        }
        if let Some((pos, _)) = pick {
            let mut buf = self.pool.swap_remove(pos);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        } else {
            vec![0.0; len]
        }
    }

    /// Ensure the pool holds at least `count` buffers of capacity exactly
    /// `len`, allocating the shortfall up front (bounded by
    /// [`Comm::pool_capacity`]). Drivers whose send timing is
    /// thread-schedule-dependent (the task-graph step) call this at setup
    /// with one buffer per (link, distinct payload width) class: the
    /// in-order link protocol bounds each class's transient take/recycle
    /// deficit at one, so a stocked class never goes dry mid-step and
    /// steady-state sends stay allocation-free regardless of timing.
    pub fn stock_buffers(&mut self, len: usize, count: usize) {
        if len == 0 {
            return;
        }
        let have = self.pool.iter().filter(|b| b.capacity() == len).count();
        for _ in have..count {
            if self.pool.len() >= self.pool.capacity() {
                break;
            }
            self.pool.push(vec![0.0; len]);
        }
    }

    /// Return a received payload buffer to this rank's pool.
    pub fn recycle(&mut self, buf: Vec<f64>) {
        if self.pool.len() < self.pool.capacity() {
            self.pool.push(buf);
        }
    }

    /// Buffered (eager) send: copies the payload and returns immediately,
    /// i.e. `MPI_Isend` with an implicit buffer. The copy goes into a
    /// pooled buffer, so steady-state sends do not allocate.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send(&mut self, dest: usize, tag: u64, data: &[f64]) {
        let mut buf = self.take_buffer(data.len());
        buf.copy_from_slice(data);
        self.send_owned(dest, tag, buf);
    }

    /// Zero-copy send: the caller hands over the payload buffer (typically
    /// obtained from [`Comm::take_buffer`]) and it travels by move.
    ///
    /// Sends never report delivery failure: on a dead TCP peer the payload
    /// is dropped and the peer flagged lost — the receive side (here or at
    /// the peer) surfaces the failure as a typed error, which is what the
    /// rollback protocols key off.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send_owned(&mut self, dest: usize, tag: u64, data: Vec<f64>) {
        assert!(dest < self.size, "send to rank {dest} of {}", self.size);
        self.stats.sends += 1;
        self.stats.bytes_sent += (data.len() * 8) as u64;
        if self.faults.is_some() {
            self.send_through_faults(dest, tag, data);
        } else {
            self.link.send(dest, Message { source: self.rank, tag, data });
        }
    }

    /// Fault-layer send path: consult the plan, then deliver / divert /
    /// duplicate / withhold. Only reached with an armed plan, so this path
    /// is allowed to allocate.
    fn send_through_faults(&mut self, dest: usize, tag: u64, data: Vec<f64>) {
        // Age withheld messages by one send slot and collect the due ones.
        let mut due: Vec<(usize, Message)> = Vec::new();
        let action = {
            let layer = self.faults.as_mut().expect("fault layer present");
            let idx = layer.sent;
            layer.sent += 1;
            let mut i = 0;
            while i < layer.delayed.len() {
                layer.delayed[i].0 -= 1;
                if layer.delayed[i].0 == 0 {
                    let (_, d, m) = layer.delayed.swap_remove(i);
                    due.push((d, m));
                } else {
                    i += 1;
                }
            }
            layer.plan.message_action(self.rank, idx)
        };
        for (d, m) in due {
            self.link.send(d, m);
        }
        let msg = Message { source: self.rank, tag, data };
        match action {
            FaultAction::Deliver => self.link.send(dest, msg),
            FaultAction::Drop => {
                // Lost on the wire: park in the retransmit log for the
                // receiver's retry path.
                self.lock_relay(dest, "retransmit-log push").push(msg);
            }
            FaultAction::Duplicate => {
                self.link.send(dest, msg.clone());
                self.link.send(dest, msg);
            }
            FaultAction::Delay(k) => {
                let layer = self.faults.as_mut().expect("fault layer present");
                layer.delayed.push((k, dest, msg));
            }
        }
    }

    /// Deliver every withheld (fault-delayed) message now. Called whenever
    /// this rank is about to block — a sender that is stalled in a wait
    /// cannot credibly still have messages "in flight" — and on drop.
    pub fn flush_delayed(&mut self) {
        let Some(layer) = self.faults.as_mut() else { return };
        if layer.delayed.is_empty() {
            return;
        }
        let due: Vec<(usize, Message)> =
            layer.delayed.drain(..).map(|(_, d, m)| (d, m)).collect();
        for (d, m) in due {
            self.link.send(d, m);
        }
    }

    fn lock_relay(&self, slot: usize, what: &str) -> MutexGuard<'_, Vec<Message>> {
        self.relay[slot].lock().unwrap_or_else(|_| {
            panic!("rank {}: {what} mutex poisoned (a peer rank panicked)", self.rank)
        })
    }

    /// Post a nonblocking receive for `(source, tag)`. Matching happens at
    /// [`Comm::wait`]; posting never blocks.
    pub fn irecv(&self, source: usize, tag: u64) -> RecvRequest {
        RecvRequest { source, tag }
    }

    /// Scan the pending list for a match, sweeping stale entries along the
    /// way (reliable mode).
    fn match_pending(&mut self, req: &RecvRequest) -> Option<Message> {
        let mut i = 0;
        while i < self.pending.len() {
            if self.reliable && self.is_stale(&self.pending[i]) {
                let m = self.pending.remove(i).expect("position valid");
                self.discard_stale(m);
                continue;
            }
            if Self::matches(&self.pending[i], req) {
                let m = self.pending.remove(i).expect("position valid");
                self.consume(&m);
                return Some(m);
            }
            i += 1;
        }
        None
    }

    /// World-fatal or source-specific failure that should abort this
    /// receive, if any.
    fn dead_peer_error(&self, req: &RecvRequest) -> Option<CommError> {
        if let Some((rank, step)) = self.link.failed_peer() {
            return Some(CommError::RankFailed { rank, step });
        }
        if req.source != ANY_SOURCE && !self.link.peer_alive(req.source) {
            return Some(CommError::ConnectionLost { rank: self.rank, peer: req.source });
        }
        None
    }

    /// Complete a posted receive, blocking until a matching message
    /// arrives or the configured timeout expires.
    ///
    /// In reliable mode (armed fault plan, or the TCP backend) the wait
    /// also polls the retransmit log to recover dropped messages — pacing
    /// the polls with exponential backoff + deterministic jitter — and
    /// discards stale (below-watermark) arrivals so duplicates accumulate
    /// exactly once. A receive from a known-dead source fails fast with
    /// [`CommError::ConnectionLost`] / [`CommError::RankFailed`] instead
    /// of burning the whole timeout.
    pub fn wait(&mut self, req: RecvRequest) -> Result<Message, CommError> {
        self.flush_delayed();
        if let Some(m) = self.match_pending(&req) {
            return Ok(m);
        }
        let start = Instant::now();
        let deadline = start + self.cfg.recv_timeout;
        let mut attempts = 0u32;
        loop {
            // Pull in whatever has arrived since we last looked.
            let mut sink = std::mem::take(&mut self.pending);
            self.link.drain(&mut sink);
            self.pending = sink;
            if let Some(m) = self.match_pending(&req) {
                return Ok(m);
            }
            if self.reliable {
                if let Some(m) = self.take_from_relay(&req) {
                    self.stats.recovered += 1;
                    self.consume(&m);
                    return Ok(m);
                }
            }
            if let Some(err) = self.dead_peer_error(&req) {
                return Err(err);
            }
            let now = Instant::now();
            if now >= deadline || (self.reliable && attempts >= self.cfg.max_retries) {
                return Err(self.timeout_error(&req, start));
            }
            let slice = if self.reliable {
                self.stats.retry_attempts += 1;
                backoff_slice(&self.cfg, self.rank, attempts).min(deadline - now)
            } else {
                deadline - now
            };
            attempts += 1;
            let mut sink = std::mem::take(&mut self.pending);
            self.link.drain_wait(slice, &mut sink);
            self.pending = sink;
        }
    }

    /// Nonblocking completion probe for a posted receive: returns
    /// `Ok(Some(..))` if a matching message is already here, `Ok(None)`
    /// otherwise — never blocks and never times out. The event-driven step
    /// drivers poll with this while useful work remains and fall back to
    /// [`Comm::wait`] only when the task graph runs dry.
    ///
    /// In reliable mode the probe also sweeps stale arrivals and checks
    /// the retransmit log, so dropped messages can be recovered without a
    /// blocking wait. A known-dead source surfaces as an error, exactly as
    /// in [`Comm::wait`].
    pub fn try_wait(&mut self, req: RecvRequest) -> Result<Option<Message>, CommError> {
        self.flush_delayed();
        if let Some(m) = self.match_pending(&req) {
            return Ok(Some(m));
        }
        let mut sink = std::mem::take(&mut self.pending);
        self.link.drain(&mut sink);
        self.pending = sink;
        if let Some(m) = self.match_pending(&req) {
            return Ok(Some(m));
        }
        if self.reliable {
            if let Some(m) = self.take_from_relay(&req) {
                self.stats.recovered += 1;
                self.consume(&m);
                return Ok(Some(m));
            }
        }
        if let Some(err) = self.dead_peer_error(&req) {
            return Err(err);
        }
        Ok(None)
    }

    /// Blocking receive (`irecv` + `wait`).
    pub fn recv(&mut self, source: usize, tag: u64) -> Result<Message, CommError> {
        let req = self.irecv(source, tag);
        self.wait(req)
    }

    fn timeout_error(&self, req: &RecvRequest, start: Instant) -> CommError {
        CommError::Timeout {
            rank: self.rank,
            source: req.source,
            tag: req.tag,
            unmatched: self.unmatched(),
            waited_ms: start.elapsed().as_millis() as u64,
        }
    }

    fn matches(m: &Message, req: &RecvRequest) -> bool {
        (req.source == ANY_SOURCE || m.source == req.source) && m.tag == req.tag
    }

    /// Account a consumed message and advance the per-source watermark so
    /// any later copy of it is recognized as stale.
    fn consume(&mut self, m: &Message) {
        self.stats.recvs += 1;
        self.stats.bytes_received += (m.data.len() * 8) as u64;
        if self.reliable {
            let wm = &mut self.watermark[m.source];
            *wm = (*wm).max(m.tag + 1);
        }
    }

    #[inline]
    fn is_stale(&self, m: &Message) -> bool {
        m.tag < self.watermark[m.source]
    }

    fn discard_stale(&mut self, m: Message) {
        self.stats.stale_dropped += 1;
        self.recycle(m.data);
    }

    fn take_from_relay(&mut self, req: &RecvRequest) -> Option<Message> {
        let mut slot = self.lock_relay(self.rank, "retransmit-log scan");
        let pos = slot
            .iter()
            .position(|m| Self::matches(m, req) && !(self.reliable && self.is_stale(m)))?;
        Some(slot.swap_remove(pos))
    }

    /// Advance every per-source watermark to at least `floor` and discard
    /// all held messages below it (pending list, transport inbox, and this
    /// rank's retransmit-log slot). Recovery protocols call this after
    /// restoring a checkpoint with the new epoch's tag floor, so in-flight
    /// messages from the aborted attempt can never be matched by the
    /// re-run. Returns the number of messages purged.
    pub fn purge_below(&mut self, floor: u64) -> usize {
        for wm in &mut self.watermark {
            *wm = (*wm).max(floor);
        }
        let mut sink = std::mem::take(&mut self.pending);
        self.link.drain(&mut sink);
        self.pending = sink;
        let mut purged = 0;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].tag < floor {
                let m = self.pending.remove(i).expect("position valid");
                self.discard_stale(m);
                purged += 1;
            } else {
                i += 1;
            }
        }
        let mut slot = self.lock_relay(self.rank, "retransmit-log purge");
        let before = slot.len();
        slot.retain(|m| m.tag >= floor);
        purged + (before - slot.len())
    }

    /// Messages that have arrived but not been matched yet. In reliable
    /// mode, stale (below-watermark) copies awaiting lazy discard are not
    /// counted — they can never match anything.
    pub fn unmatched(&self) -> usize {
        let live = |m: &Message| !self.reliable || m.tag >= self.watermark[m.source];
        let mut queued = 0usize;
        self.link.for_each_queued(&mut |m| {
            if live(m) {
                queued += 1;
            }
        });
        self.pending.iter().filter(|m| live(m)).count() + queued
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // A rank that exits while holding fault-delayed messages must put
        // them on the wire — peers may still be blocked waiting for them.
        self.flush_delayed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_roundtrip() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 7, &[1.0, 2.0]);
        let m = c1.recv(0, 7).unwrap();
        assert_eq!(m.data, vec![1.0, 2.0]);
        assert_eq!(m.source, 0);
        assert_eq!(c0.stats().bytes_sent, 16);
        assert_eq!(c1.stats().bytes_received, 16);
    }

    #[test]
    fn out_of_order_matching() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 1, &[1.0]);
        c0.send(1, 2, &[2.0]);
        // Receive tag 2 first even though tag 1 arrived first.
        assert_eq!(c1.recv(0, 2).unwrap().data, vec![2.0]);
        assert_eq!(c1.unmatched(), 1);
        assert_eq!(c1.recv(0, 1).unwrap().data, vec![1.0]);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let mut world = Comm::world(3);
        let mut c2 = world.pop().unwrap();
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(2, 9, &[0.5]);
        c1.send(2, 9, &[1.5]);
        let a = c2.recv(ANY_SOURCE, 9).unwrap();
        let b = c2.recv(ANY_SOURCE, 9).unwrap();
        let mut sources = [a.source, b.source];
        sources.sort_unstable();
        assert_eq!(sources, [0, 1]);
    }

    #[test]
    fn irecv_can_be_posted_before_send() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let req = c1.irecv(0, 3);
        c0.send(1, 3, &[4.0]);
        assert_eq!(c1.wait(req).unwrap().data, vec![4.0]);
    }

    #[test]
    fn send_owned_moves_payload_and_recycle_reuses_it() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let mut buf = c0.take_buffer(3);
        buf.copy_from_slice(&[1.0, 2.0, 3.0]);
        let ptr = buf.as_ptr();
        c0.send_owned(1, 5, buf);
        let m = c1.wait(c1.irecv(0, 5)).unwrap();
        assert_eq!(m.data, vec![1.0, 2.0, 3.0]);
        // The payload travelled by move: same backing storage end to end.
        assert_eq!(m.data.as_ptr(), ptr);
        c1.recycle(m.data);
        let reused = c1.take_buffer(2);
        assert_eq!(reused.as_ptr(), ptr);
        assert_eq!(reused, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "send to rank")]
    fn send_out_of_range() {
        let mut world = Comm::world(1);
        let mut c0 = world.pop().unwrap();
        c0.send(1, 0, &[]);
    }

    #[test]
    fn recv_times_out_with_typed_error_and_unmatched_intact() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c1.set_recv_timeout(Duration::from_millis(30));
        // An unrelated message arrives but must not match — and must still
        // be accounted as unmatched after the timeout fires.
        c0.send(1, 99, &[3.0]);
        let err = c1.recv(0, 7).unwrap_err();
        match err {
            CommError::Timeout { rank, source, tag, unmatched, .. } => {
                assert_eq!(rank, 1);
                assert_eq!(source, 0);
                assert_eq!(tag, 7);
                assert_eq!(unmatched, 1);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(c1.unmatched(), 1);
        // The unrelated message is still deliverable afterwards.
        assert_eq!(c1.recv(0, 99).unwrap().data, vec![3.0]);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn pool_stays_bounded_under_asymmetric_traffic() {
        // Rank 0 sends far more than it receives; rank 1 recycles every
        // payload. Neither pool may grow past its reserved capacity.
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        for round in 0..(8 * POOL_RESERVE) {
            c0.send(1, round as u64, &[round as f64; 16]);
            let m = c1.recv(0, round as u64).unwrap();
            c1.recycle(m.data);
        }
        assert!(c0.pool_len() <= POOL_RESERVE, "sender pool grew to {}", c0.pool_len());
        assert!(c1.pool_len() <= POOL_RESERVE, "receiver pool grew to {}", c1.pool_len());
        assert_eq!(c1.pool_capacity(), POOL_RESERVE);
        // The receiver's pool now feeds its own sends without allocating:
        // buffers keep cycling, the count never exceeds the cap.
        for round in 0..POOL_RESERVE {
            c1.send(0, round as u64, &[1.0; 16]);
            let m = c0.recv(1, round as u64).unwrap();
            c0.recycle(m.data);
        }
        assert!(c0.pool_len() <= POOL_RESERVE);
        assert!(c1.pool_len() <= POOL_RESERVE);
    }

    #[test]
    fn take_buffer_prefers_exact_fit_and_stock_prevents_class_drift() {
        let mut world = Comm::world(1);
        let mut c = world.pop().unwrap();
        // Stock two size classes; the pool records the shortfall exactly.
        c.stock_buffers(8, 1);
        c.stock_buffers(32, 1);
        assert_eq!(c.pool_len(), 2);
        // A request for the small class must take the 8-capacity buffer,
        // not walk off with the 32-capacity one (first-fit used to).
        let small = c.take_buffer(8);
        assert_eq!(small.capacity(), 8);
        // The large class is still intact for its own request.
        let large = c.take_buffer(32);
        assert_eq!(large.capacity(), 32);
        assert_eq!(c.pool_len(), 0);
        c.recycle(small);
        c.recycle(large);
        // With no exact match, the smallest adequate buffer is picked.
        let mid = c.take_buffer(16);
        assert_eq!(mid.capacity(), 32);
        c.recycle(mid);
        // Re-stocking an already-stocked class allocates nothing new.
        c.stock_buffers(8, 1);
        c.stock_buffers(32, 1);
        assert_eq!(c.pool_len(), 2);
        // Zero-length classes are ignored.
        c.stock_buffers(0, 4);
        assert_eq!(c.pool_len(), 2);
    }

    #[test]
    fn dropped_message_is_recovered_from_relay() {
        // Drop everything: every send is diverted to the retransmit log
        // and must come back through the retry path, payload intact.
        let plan = Arc::new(FaultPlan::seeded(3).drop_per_mille(1000));
        let (mut world, _alarm) = Comm::world_with(2, CommConfig::default(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 11, &[5.0, 6.0]);
        let m = c1.recv(0, 11).unwrap();
        assert_eq!(m.data, vec![5.0, 6.0]);
        assert_eq!(c1.stats().recovered, 1);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn duplicates_are_consumed_exactly_once() {
        let plan = Arc::new(FaultPlan::seeded(3).duplicate_per_mille(1000));
        let (mut world, _alarm) = Comm::world_with(2, CommConfig::default(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 1, &[1.0]);
        c0.send(1, 2, &[2.0]);
        assert_eq!(c1.recv(0, 1).unwrap().data, vec![1.0]);
        assert_eq!(c1.recv(0, 2).unwrap().data, vec![2.0]);
        // The duplicate copies are stale and invisible to unmatched().
        assert_eq!(c1.unmatched(), 0);
        // A later wait sweeps them into the recycle pool.
        c0.send(1, 3, &[3.0]);
        assert_eq!(c1.recv(0, 3).unwrap().data, vec![3.0]);
        assert_eq!(c1.stats().stale_dropped, 2);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn try_wait_is_nonblocking_and_matches_when_ready() {
        let mut world = Comm::world(2);
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        let req = c1.irecv(0, 4);
        // Nothing there yet: immediate None, no timeout.
        assert!(c1.try_wait(req).unwrap().is_none());
        c0.send(1, 4, &[8.0]);
        assert_eq!(c1.try_wait(req).unwrap().unwrap().data, vec![8.0]);
        // Non-matching arrivals are parked, not lost.
        c0.send(1, 77, &[9.0]);
        assert!(c1.try_wait(c1.irecv(0, 5)).unwrap().is_none());
        assert_eq!(c1.unmatched(), 1);
        assert_eq!(c1.recv(0, 77).unwrap().data, vec![9.0]);
    }

    #[test]
    fn try_wait_recovers_dropped_message_from_relay() {
        let plan = Arc::new(FaultPlan::seeded(3).drop_per_mille(1000));
        let (mut world, _alarm) = Comm::world_with(2, CommConfig::default(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 11, &[5.0]);
        let m = c1.try_wait(c1.irecv(0, 11)).unwrap().expect("relayed");
        assert_eq!(m.data, vec![5.0]);
        assert_eq!(c1.stats().recovered, 1);
        // A duplicate of a consumed tag is swept as stale by the probe.
        let plan = Arc::new(FaultPlan::seeded(3).duplicate_per_mille(1000));
        let (mut world, _alarm) = Comm::world_with(2, CommConfig::default(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 1, &[1.0]);
        assert_eq!(c1.recv(0, 1).unwrap().data, vec![1.0]);
        assert!(c1.try_wait(c1.irecv(0, 2)).unwrap().is_none());
        assert_eq!(c1.stats().stale_dropped, 1);
    }

    #[test]
    fn purge_below_discards_stale_epoch() {
        let plan = Arc::new(FaultPlan::seeded(0)); // armed => reliable mode
        let (mut world, _alarm) = Comm::world_with(2, CommConfig::default(), Some(plan));
        let mut c1 = world.pop().unwrap();
        let mut c0 = world.pop().unwrap();
        c0.send(1, 5, &[1.0]);
        c0.send(1, 6, &[2.0]);
        c0.send(1, 100, &[3.0]);
        let purged = c1.purge_below(100);
        assert_eq!(purged, 2);
        assert_eq!(c1.unmatched(), 1);
        assert_eq!(c1.recv(0, 100).unwrap().data, vec![3.0]);
        assert_eq!(c1.unmatched(), 0);
    }

    #[test]
    fn reliable_retries_back_off_and_are_counted() {
        // Reliable mode (armed empty plan) with nothing arriving: the wait
        // must make several backoff-paced retry polls, count them in the
        // stats, and still time out with the typed error.
        let plan = Arc::new(FaultPlan::seeded(0));
        let cfg = CommConfig {
            recv_timeout: Duration::from_millis(60),
            retry_interval: Duration::from_millis(1),
            retry_max_interval: Duration::from_millis(8),
            max_retries: 1000,
        };
        let (mut world, _alarm) = Comm::world_with(2, cfg, Some(plan));
        let mut c1 = world.pop().unwrap();
        let err = c1.recv(0, 7).unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }), "got {err:?}");
        let polls = c1.stats().retry_attempts;
        // 1+2+4+8+8+... ms covers 60 ms in well under 15 polls; a fixed
        // 1 ms cadence would need ~60. The backoff must show in the count.
        assert!((3..20).contains(&polls), "retry polls: {polls}");
    }

    #[test]
    fn backoff_slice_is_deterministic_and_bounded() {
        let cfg = CommConfig::default();
        for rank in 0..4 {
            for attempt in 0..24 {
                let a = backoff_slice(&cfg, rank, attempt);
                let b = backoff_slice(&cfg, rank, attempt);
                assert_eq!(a, b, "jitter must be deterministic");
                assert!(a >= cfg.retry_interval);
                // Cap plus 25% jitter headroom.
                assert!(a <= cfg.retry_max_interval + cfg.retry_max_interval / 4 + Duration::from_nanos(1));
            }
        }
        // Different ranks de-synchronize: not all slices identical.
        let r0 = backoff_slice(&cfg, 0, 3);
        let r1 = backoff_slice(&cfg, 1, 3);
        let r2 = backoff_slice(&cfg, 2, 3);
        assert!(r0 != r1 || r1 != r2, "jitter should separate ranks");
    }
}
