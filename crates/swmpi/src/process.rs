//! Multi-process rank world: real child processes, a supervising hub, and
//! elastic (respawnable) ranks.
//!
//! [`process_world`] turns one `#[test]` function into an `n`-process job:
//! the supervisor re-executes the *current test binary* once per rank
//! (`--exact <test>` plus `SWMPI_PROC_*` env vars), and when the re-run
//! reaches the same `process_world` call inside the child, it takes the
//! child branch instead of supervising again. Closures cannot cross a
//! process boundary; re-execution is how the rank body gets to the other
//! side.
//!
//! ## The hub
//!
//! Each child keeps one control connection to the supervisor's hub, used
//! for four things:
//!
//! * **bootstrap** — `HELLO{rank, incarnation, listen_port}` up,
//!   `ADDRS{ports}` down once the world is assembled, after which the
//!   children dial each other's [`TcpTransport`](crate::tcp::TcpTransport)
//!   listeners directly (point-to-point traffic never touches the hub);
//! * **collectives** — a star-topology reduction
//!   ([`ReduceLink`](crate::collective::ReduceLink)): the round completes
//!   when every *admitted, live* rank has contributed, and the reply
//!   carries the count of absent ranks so resilient drivers can treat an
//!   incomplete verdict as a failed step instead of deadlocking on a dead
//!   peer;
//! * **re-admission** — an `ADMIT` round that completes only when all
//!   `n` ranks (including a freshly respawned one) have entered; its
//!   reply carries the post-round `world_epoch`, which every rank feeds
//!   to `DistDycore::set_epoch` so the whole world lands in the same
//!   rollback epoch. The respawned rank only ADMITs *after* its mesh
//!   reconnect handshakes completed, so when the round releases, every
//!   peer's writer already points at the new sockets;
//! * **results** — each rank's final bytes travel up as `RESULT`; the
//!   supervisor returns them in rank order.
//!
//! ## Elasticity
//!
//! The supervisor owns the real PIDs. When a child dies without having
//! delivered a result — e.g. [`FaultPlan::kill_process`]
//! (crate::FaultPlan::kill_process) SIGKILLed it mid-step — the
//! supervisor respawns that rank with `incarnation + 1` pointing at the
//! same checkpoint directory. The respawned process re-runs the body from
//! scratch; the elastic resilient driver (swcam-core's
//! `run_resilient_elastic`) notices `is_respawned()`, re-admits itself,
//! and restores from the last `SWCKPT01` checkpoint file instead of the
//! initial state. Survivors observe the death as a failed verdict (absent
//! rank or a `ConnectionLost` step error), roll back to *their* last
//! checkpoint — written at the same committed steps — and meet the
//! respawned rank in the ADMIT round. From there the whole world replays
//! deterministically, which is what makes a killed run bitwise-equal to
//! an undisturbed one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::collective::{Collectives, ReduceLink, ReduceOp};
use crate::comm::{Comm, CommError};
use crate::runner::{RankCtx, WorldOptions};
use crate::tcp::TcpTransport;

/// Opcodes on the child⇄hub control connection.
mod op {
    pub const HELLO: u8 = 1;
    pub const ADDRS: u8 = 2;
    pub const REDUCE: u8 = 3;
    pub const REDUCE_OK: u8 = 4;
    pub const ADMIT: u8 = 5;
    pub const ADMIT_OK: u8 = 6;
    pub const RESULT: u8 = 7;
}

/// Env vars carrying the child's identity across the exec boundary.
const ENV_TEST: &str = "SWMPI_PROC_TEST";
const ENV_RANK: &str = "SWMPI_PROC_RANK";
const ENV_SIZE: &str = "SWMPI_PROC_SIZE";
const ENV_HUB: &str = "SWMPI_PROC_HUB";
const ENV_INC: &str = "SWMPI_PROC_INC";
const ENV_CKPT: &str = "SWMPI_PROC_CKPT";

/// How many process respawns one world tolerates before the supervisor
/// gives up.
const MAX_RESPAWNS: u32 = 3;

/// Hard wall-clock ceiling on one supervised world (CI hang protection).
const WORLD_DEADLINE: Duration = Duration::from_secs(240);

// ---------------------------------------------------------------------------
// Wire helpers
// ---------------------------------------------------------------------------

fn read_arr<const N: usize>(s: &mut TcpStream) -> std::io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    s.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u8(s: &mut TcpStream) -> std::io::Result<u8> {
    Ok(read_arr::<1>(s)?[0])
}

fn read_u16(s: &mut TcpStream) -> std::io::Result<u16> {
    Ok(u16::from_le_bytes(read_arr::<2>(s)?))
}

fn read_u32(s: &mut TcpStream) -> std::io::Result<u32> {
    Ok(u32::from_le_bytes(read_arr::<4>(s)?))
}

fn read_u64(s: &mut TcpStream) -> std::io::Result<u64> {
    Ok(u64::from_le_bytes(read_arr::<8>(s)?))
}

fn read_f64s(s: &mut TcpStream, n: usize) -> std::io::Result<Vec<f64>> {
    let mut bytes = vec![0u8; n * 8];
    s.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

fn push_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn io_err(rank: usize, what: &str, e: impl std::fmt::Display) -> CommError {
    CommError::Io { rank, detail: format!("{what}: {e}") }
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// One child's control connection to the supervisor hub. Requests are
/// strictly sequential (the rank body is single-threaded), so a plain
/// mutexed stream with write-then-read turns is enough.
pub(crate) struct HubClient {
    rank: usize,
    stream: Mutex<TcpStream>,
}

impl HubClient {
    fn connect(
        addr: SocketAddr,
        rank: usize,
        incarnation: u32,
        listen_port: u16,
    ) -> std::io::Result<HubClient> {
        let deadline = Instant::now() + Duration::from_secs(30);
        let stream = loop {
            match TcpStream::connect_timeout(&addr, Duration::from_secs(2)) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        stream.set_nodelay(true)?;
        let mut hello = Vec::with_capacity(11);
        hello.push(op::HELLO);
        hello.extend_from_slice(&(rank as u32).to_le_bytes());
        hello.extend_from_slice(&incarnation.to_le_bytes());
        hello.extend_from_slice(&listen_port.to_le_bytes());
        let mut s = stream;
        s.write_all(&hello)?;
        Ok(HubClient { rank, stream: Mutex::new(s) })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TcpStream> {
        self.stream
            .lock()
            .unwrap_or_else(|_| panic!("rank {}: hub stream mutex poisoned", self.rank))
    }

    /// Block for the `ADDRS` reply (the supervisor holds it until every
    /// first-incarnation rank has said hello).
    fn wait_addrs(&self, size: usize) -> Result<Vec<SocketAddr>, CommError> {
        let mut s = self.lock();
        let code = read_u8(&mut s).map_err(|e| io_err(self.rank, "hub addrs", e))?;
        if code != op::ADDRS {
            return Err(io_err(self.rank, "hub addrs", format!("unexpected opcode {code}")));
        }
        let n = read_u32(&mut s).map_err(|e| io_err(self.rank, "hub addrs", e))? as usize;
        if n != size {
            return Err(io_err(self.rank, "hub addrs", format!("world size {n} != {size}")));
        }
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let port = read_u16(&mut s).map_err(|e| io_err(self.rank, "hub addrs", e))?;
            addrs.push(SocketAddr::from(([127, 0, 0, 1], port)));
        }
        Ok(addrs)
    }

    /// Enter the world-wide re-admission round; blocks until every rank
    /// has entered and returns the agreed post-round epoch.
    fn admit(&self) -> Result<u64, CommError> {
        let mut s = self.lock();
        s.write_all(&[op::ADMIT]).map_err(|e| io_err(self.rank, "hub admit", e))?;
        let code = read_u8(&mut s).map_err(|e| io_err(self.rank, "hub admit", e))?;
        if code != op::ADMIT_OK {
            return Err(io_err(self.rank, "hub admit", format!("unexpected opcode {code}")));
        }
        read_u64(&mut s).map_err(|e| io_err(self.rank, "hub admit", e))
    }

    fn send_result(&self, bytes: &[u8]) -> Result<(), CommError> {
        let mut s = self.lock();
        let mut msg = Vec::with_capacity(5 + bytes.len());
        msg.push(op::RESULT);
        msg.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        msg.extend_from_slice(bytes);
        s.write_all(&msg).map_err(|e| io_err(self.rank, "hub result", e))
    }
}

impl ReduceLink for HubClient {
    fn reduce(&self, rop: ReduceOp, contrib: &[f64], out: &mut [f64]) -> Result<u32, CommError> {
        let mut s = self.lock();
        let mut msg = Vec::with_capacity(6 + contrib.len() * 8);
        msg.push(op::REDUCE);
        msg.push(rop.code());
        msg.extend_from_slice(&(contrib.len() as u32).to_le_bytes());
        push_f64s(&mut msg, contrib);
        s.write_all(&msg).map_err(|e| io_err(self.rank, "hub reduce", e))?;
        let code = read_u8(&mut s).map_err(|e| io_err(self.rank, "hub reduce", e))?;
        if code != op::REDUCE_OK {
            return Err(io_err(self.rank, "hub reduce", format!("unexpected opcode {code}")));
        }
        let absent = read_u32(&mut s).map_err(|e| io_err(self.rank, "hub reduce", e))?;
        let n = read_u32(&mut s).map_err(|e| io_err(self.rank, "hub reduce", e))? as usize;
        if n != out.len() {
            return Err(io_err(self.rank, "hub reduce", format!("reply len {n} != {}", out.len())));
        }
        let data = read_f64s(&mut s, n).map_err(|e| io_err(self.rank, "hub reduce", e))?;
        out.copy_from_slice(&data);
        Ok(absent)
    }
}

/// A child rank's handle on the elastic world: who am I, where do my
/// checkpoints live, and how do I get back in after a death.
pub struct ElasticLink {
    rank: usize,
    size: usize,
    incarnation: u32,
    ckpt_dir: PathBuf,
    hub: Arc<HubClient>,
}

impl ElasticLink {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// 0 on first launch; incremented by the supervisor on every respawn.
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// True if this process replaces a dead incarnation and must restore
    /// from its checkpoint file instead of the initial state.
    pub fn is_respawned(&self) -> bool {
        self.incarnation > 0
    }

    /// Directory holding every rank's checkpoint files, shared across
    /// incarnations of this world.
    pub fn checkpoint_dir(&self) -> &Path {
        &self.ckpt_dir
    }

    /// This rank's checkpoint file path.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.ckpt_dir.join(format!("rank{}.swckpt", self.rank))
    }

    /// Enter the world-wide re-admission round (all `n` ranks must enter
    /// before anyone is released — this is both the membership change and
    /// the rollback barrier). Returns the agreed world epoch to feed to
    /// the driver's `set_epoch`.
    pub fn readmit(&self) -> Result<u64, CommError> {
        self.hub.admit()
    }
}

/// SIGKILL the current process — a *real* kill, exactly what
/// [`FaultPlan::kill_process`](crate::FaultPlan::kill_process) promises:
/// no destructors, no flushes, sockets die with the PID.
pub(crate) fn kill_self() -> ! {
    let pid = std::process::id();
    let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
    // SIGKILL delivery is asynchronous; give it a moment, then make
    // certain we never return even where no `kill` binary exists.
    std::thread::sleep(Duration::from_secs(2));
    std::process::abort();
}

/// Child branch of [`process_world`]: assemble transports, run the body,
/// ship the result, exit.
fn run_child<F>(n: usize, opts: WorldOptions, body: F) -> !
where
    F: FnOnce(&mut RankCtx) -> Vec<u8>,
{
    let get = |k: &str| {
        std::env::var(k).unwrap_or_else(|_| panic!("child process missing env {k}"))
    };
    let rank: usize = get(ENV_RANK).parse().expect("rank env");
    let size: usize = get(ENV_SIZE).parse().expect("size env");
    assert_eq!(size, n, "world size disagrees with the supervising call");
    let incarnation: u32 = get(ENV_INC).parse().expect("incarnation env");
    let hub_addr: SocketAddr = get(ENV_HUB).parse().expect("hub addr env");
    let ckpt_dir = PathBuf::from(get(ENV_CKPT));

    let transport = TcpTransport::bind(rank, n, incarnation, opts.comm)
        .expect("child: bind rank listener");
    let hub = Arc::new(
        HubClient::connect(hub_addr, rank, incarnation, transport.local_addr().port())
            .expect("child: connect hub"),
    );
    let addrs = hub.wait_addrs(n).expect("child: world addresses");
    transport
        .connect_mesh(&addrs, Duration::from_secs(60))
        .expect("child: socket mesh");

    let coll = Collectives::over_link(n, Arc::clone(&hub) as Arc<dyn ReduceLink>);
    let comm = Comm::from_transport(rank, n, Box::new(transport), opts.comm);
    let link = Arc::new(ElasticLink {
        rank,
        size: n,
        incarnation,
        ckpt_dir,
        hub: Arc::clone(&hub),
    });
    let faults = opts.faults.map(Arc::new);
    let mut ctx = RankCtx::assemble(comm, coll, faults, Some(link));
    let result = body(&mut ctx);
    hub.send_result(&result).expect("child: deliver result");
    drop(ctx); // closes the mesh cleanly (peers see EOF after final data)
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

struct Member {
    alive: bool,
    /// Participates in reduce rounds. True from first hello; a respawned
    /// incarnation stays false until its ADMIT round completes.
    admitted: bool,
    incarnation: u32,
    port: u16,
    said_hello: bool,
    contributed: bool,
    admit_waiting: bool,
    result: Option<Vec<u8>>,
}

struct ReduceRound {
    generation: u64,
    rop: Option<ReduceOp>,
    accum: Vec<f64>,
    last_result: Vec<f64>,
    last_absent: u32,
}

struct HubState {
    members: Vec<Member>,
    reduce: ReduceRound,
    admit_generation: u64,
    world_epoch: u64,
}

struct Hub {
    size: usize,
    state: Mutex<HubState>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl Hub {
    fn new(size: usize) -> Hub {
        Hub {
            size,
            state: Mutex::new(HubState {
                members: (0..size)
                    .map(|_| Member {
                        alive: false,
                        admitted: false,
                        incarnation: 0,
                        port: 0,
                        said_hello: false,
                        contributed: false,
                        admit_waiting: false,
                        result: None,
                    })
                    .collect(),
                reduce: ReduceRound {
                    generation: 0,
                    rop: None,
                    accum: Vec::new(),
                    last_result: Vec::new(),
                    last_absent: 0,
                },
                admit_generation: 0,
                world_epoch: 0,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HubState> {
        self.state.lock().unwrap_or_else(|_| panic!("hub state mutex poisoned"))
    }

    /// Complete the reduce round if every admitted live rank contributed.
    fn maybe_complete_reduce(&self, st: &mut HubState) {
        let Some(rop) = st.reduce.rop else { return };
        let required_missing = st
            .members
            .iter()
            .any(|m| m.admitted && m.alive && !m.contributed);
        if required_missing {
            return;
        }
        let contributors = st.members.iter().filter(|m| m.contributed).count();
        let _ = rop;
        st.reduce.last_result.clear();
        st.reduce.last_result.extend_from_slice(&st.reduce.accum);
        st.reduce.last_absent = (self.size - contributors) as u32;
        st.reduce.rop = None;
        for m in &mut st.members {
            m.contributed = false;
        }
        st.reduce.generation += 1;
        self.cv.notify_all();
    }

    /// Complete the admit round only when ALL ranks of the world have
    /// entered — the round is the respawn rendezvous, so it must wait for
    /// the respawned rank no matter how long the supervisor takes.
    fn maybe_complete_admit(&self, st: &mut HubState) {
        if st.members.iter().any(|m| !m.admit_waiting) {
            return;
        }
        st.world_epoch += 1;
        for m in &mut st.members {
            m.admit_waiting = false;
            m.admitted = true;
        }
        st.admit_generation += 1;
        self.cv.notify_all();
    }

    fn mark_dead(&self, rank: usize, incarnation: u32) {
        let mut st = self.lock();
        if st.members[rank].incarnation != incarnation {
            return; // stale connection's EOF; a newer incarnation took over
        }
        st.members[rank].alive = false;
        st.members[rank].admitted = false;
        self.maybe_complete_reduce(&mut st);
        // NOT maybe_complete_admit: a dead rank cannot satisfy the all-in
        // requirement, and its admit_waiting was already false.
        self.cv.notify_all();
    }
}

/// Serve one child's control connection (runs on its own thread).
fn serve_child(hub: Arc<Hub>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (rank, incarnation) = {
        let Ok(code) = read_u8(&mut stream) else { return };
        if code != op::HELLO {
            return;
        }
        let Ok(rank) = read_u32(&mut stream) else { return };
        let Ok(inc) = read_u32(&mut stream) else { return };
        let Ok(port) = read_u16(&mut stream) else { return };
        let rank = rank as usize;
        let mut st = hub.lock();
        if rank >= st.members.len() || inc < st.members[rank].incarnation {
            return;
        }
        let m = &mut st.members[rank];
        m.alive = true;
        m.incarnation = inc;
        m.port = port;
        m.said_hello = true;
        // Incarnation 0 joins the reduce population immediately; a
        // respawn must pass through the ADMIT round first.
        m.admitted = inc == 0;
        hub.cv.notify_all();
        if inc == 0 {
            // Hold the ADDRS reply until the whole first world said hello.
            while st.members.iter().any(|m| !m.said_hello) {
                st = hub.cv.wait(st).unwrap_or_else(|_| panic!("hub cv poisoned"));
            }
        }
        let ports: Vec<u16> = st.members.iter().map(|m| m.port).collect();
        drop(st);
        let mut msg = Vec::with_capacity(5 + ports.len() * 2);
        msg.push(op::ADDRS);
        msg.extend_from_slice(&(ports.len() as u32).to_le_bytes());
        for p in &ports {
            msg.extend_from_slice(&p.to_le_bytes());
        }
        if stream.write_all(&msg).is_err() {
            hub.mark_dead(rank, inc);
            return;
        }
        (rank, inc)
    };
    // Request loop: reads block indefinitely between requests.
    let _ = stream.set_read_timeout(None);
    // EOF or reset on the opcode read means the child is gone.
    while let Ok(code) = read_u8(&mut stream) {
        let ok = match code {
            op::REDUCE => handle_reduce(&hub, &mut stream, rank),
            op::ADMIT => handle_admit(&hub, &mut stream, rank),
            op::RESULT => handle_result(&hub, &mut stream, rank),
            _ => false,
        };
        if !ok {
            break;
        }
    }
    hub.mark_dead(rank, incarnation);
}

fn handle_reduce(hub: &Arc<Hub>, stream: &mut TcpStream, rank: usize) -> bool {
    let Ok(code) = read_u8(stream) else { return false };
    let Some(rop) = ReduceOp::from_code(code) else { return false };
    let Ok(len) = read_u32(stream) else { return false };
    let Ok(data) = read_f64s(stream, len as usize) else { return false };
    let (absent, result) = {
        let mut st = hub.lock();
        let my_gen = st.reduce.generation;
        if st.reduce.rop.is_none() {
            st.reduce.rop = Some(rop);
            st.reduce.accum.clear();
            st.reduce.accum.resize(data.len(), rop.identity());
        }
        assert_eq!(
            st.reduce.accum.len(),
            data.len(),
            "ranks disagree on reduction length"
        );
        for (a, &c) in st.reduce.accum.iter_mut().zip(&data) {
            *a = rop.combine(*a, c);
        }
        st.members[rank].contributed = true;
        hub.maybe_complete_reduce(&mut st);
        while st.reduce.generation == my_gen {
            st = hub.cv.wait(st).unwrap_or_else(|_| panic!("hub cv poisoned"));
        }
        (st.reduce.last_absent, st.reduce.last_result.clone())
    };
    let mut msg = Vec::with_capacity(9 + result.len() * 8);
    msg.push(op::REDUCE_OK);
    msg.extend_from_slice(&absent.to_le_bytes());
    msg.extend_from_slice(&(result.len() as u32).to_le_bytes());
    push_f64s(&mut msg, &result);
    stream.write_all(&msg).is_ok()
}

fn handle_admit(hub: &Arc<Hub>, stream: &mut TcpStream, rank: usize) -> bool {
    let epoch = {
        let mut st = hub.lock();
        let my_gen = st.admit_generation;
        st.members[rank].admit_waiting = true;
        hub.maybe_complete_admit(&mut st);
        while st.admit_generation == my_gen {
            st = hub.cv.wait(st).unwrap_or_else(|_| panic!("hub cv poisoned"));
        }
        st.world_epoch
    };
    let mut msg = Vec::with_capacity(9);
    msg.push(op::ADMIT_OK);
    msg.extend_from_slice(&epoch.to_le_bytes());
    stream.write_all(&msg).is_ok()
}

fn handle_result(hub: &Arc<Hub>, stream: &mut TcpStream, rank: usize) -> bool {
    let Ok(len) = read_u32(stream) else { return false };
    let mut bytes = vec![0u8; len as usize];
    if stream.read_exact(&mut bytes).is_err() {
        return false;
    }
    let mut st = hub.lock();
    st.members[rank].result = Some(bytes);
    hub.cv.notify_all();
    true
}

/// One exited child, as observed by its waiter thread.
struct ExitEvent {
    rank: usize,
    incarnation: u32,
    success: bool,
    status: String,
}

struct SpawnSpec {
    exe: PathBuf,
    test: String,
    size: usize,
    hub_addr: SocketAddr,
    ckpt_dir: PathBuf,
}

impl SpawnSpec {
    fn spawn(
        &self,
        rank: usize,
        incarnation: u32,
        tx: &mpsc::Sender<ExitEvent>,
    ) -> std::io::Result<u32> {
        let child: Child = Command::new(&self.exe)
            .arg("--exact")
            .arg(&self.test)
            .arg("--test-threads=1")
            .env(ENV_TEST, &self.test)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_SIZE, self.size.to_string())
            .env(ENV_HUB, self.hub_addr.to_string())
            .env(ENV_INC, incarnation.to_string())
            .env(ENV_CKPT, &self.ckpt_dir)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .stdin(Stdio::null())
            .spawn()?;
        let pid = child.id();
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut child = child;
            let (success, status) = match child.wait() {
                Ok(st) => (st.success(), format!("{st}")),
                Err(e) => (false, format!("wait failed: {e}")),
            };
            let _ = tx.send(ExitEvent { rank, incarnation, success, status });
        });
        Ok(pid)
    }
}

fn kill_pid(pid: u32) {
    let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
}

/// Supervisor branch of [`process_world`]: launch, monitor, respawn,
/// collect.
fn supervise(test: &str, n: usize) -> Vec<Vec<u8>> {
    let hub_listener = TcpListener::bind("127.0.0.1:0").expect("bind hub listener");
    let hub_addr = hub_listener.local_addr().expect("hub addr");
    let hub = Arc::new(Hub::new(n));
    let accept_hub = Arc::clone(&hub);
    let accept_handle = std::thread::spawn(move || {
        loop {
            let (stream, _) = match hub_listener.accept() {
                Ok(pair) => pair,
                Err(_) => {
                    if accept_hub.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
            };
            if accept_hub.shutdown.load(Ordering::Acquire) {
                return;
            }
            let hub = Arc::clone(&accept_hub);
            std::thread::spawn(move || serve_child(hub, stream));
        }
    });

    let ckpt_dir = std::env::temp_dir().join(format!(
        "swmpi-{}-{}",
        test.replace(|c: char| !c.is_ascii_alphanumeric(), "_"),
        std::process::id()
    ));
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let spec = SpawnSpec {
        exe: std::env::current_exe().expect("current test binary"),
        test: test.to_string(),
        size: n,
        hub_addr,
        ckpt_dir: ckpt_dir.clone(),
    };

    let (tx, rx) = mpsc::channel();
    let mut spawned_inc = vec![0u32; n];
    let mut pids = vec![0u32; n];
    for rank in 0..n {
        pids[rank] = spec.spawn(rank, 0, &tx).expect("spawn child rank");
    }

    let deadline = Instant::now() + WORLD_DEADLINE;
    let kill_all = |pids: &[u32]| {
        for &pid in pids {
            if pid != 0 {
                kill_pid(pid);
            }
        }
    };
    let mut done = vec![false; n];
    let mut respawns_used = 0u32;
    while done.iter().any(|d| !d) {
        let now = Instant::now();
        if now >= deadline {
            kill_all(&pids);
            panic!("process world '{test}' exceeded its {WORLD_DEADLINE:?} deadline");
        }
        let ev = match rx.recv_timeout(deadline - now) {
            Ok(ev) => ev,
            Err(_) => {
                kill_all(&pids);
                panic!("process world '{test}' exceeded its {WORLD_DEADLINE:?} deadline");
            }
        };
        if ev.incarnation < spawned_inc[ev.rank] {
            continue; // stale event from an already-replaced incarnation
        }
        if ev.success {
            // Exit 0: the result bytes may still be in flight on the hub
            // connection — wait briefly for the handler to store them.
            let result_deadline = Instant::now() + Duration::from_secs(10);
            let arrived = loop {
                {
                    let st = hub.lock();
                    if st.members[ev.rank].result.is_some() {
                        break true;
                    }
                }
                if Instant::now() >= result_deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(10));
            };
            if !arrived {
                kill_all(&pids);
                panic!(
                    "rank {} exited cleanly without delivering a result \
                     (is '{test}' the exact test name?)",
                    ev.rank
                );
            }
            done[ev.rank] = true;
        } else {
            let has_result = hub.lock().members[ev.rank].result.is_some();
            if has_result {
                // Result already delivered; a messy exit after that is
                // still a completed rank.
                done[ev.rank] = true;
                continue;
            }
            respawns_used += 1;
            if respawns_used > MAX_RESPAWNS {
                kill_all(&pids);
                panic!(
                    "rank {} died ({}) and the respawn budget ({MAX_RESPAWNS}) is spent",
                    ev.rank, ev.status
                );
            }
            spawned_inc[ev.rank] = ev.incarnation + 1;
            pids[ev.rank] =
                spec.spawn(ev.rank, spawned_inc[ev.rank], &tx).expect("respawn child rank");
        }
    }

    let results: Vec<Vec<u8>> = {
        let mut st = hub.lock();
        st.members
            .iter_mut()
            .enumerate()
            .map(|(r, m)| m.result.take().unwrap_or_else(|| panic!("rank {r} missing result")))
            .collect()
    };
    hub.shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect_timeout(&hub_addr, Duration::from_millis(500));
    let _ = accept_handle.join();
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    results
}

/// Run `body` once per rank as REAL child processes of the current test
/// binary, supervising deaths and respawns. In the parent (supervisor)
/// this spawns `n` copies of the current executable re-running exactly
/// the test named `test` (it must be this test's full libtest name);
/// inside each child the same call takes the child branch, runs `body`,
/// ships its returned bytes to the supervisor, and exits — so from the
/// test's point of view, `process_world` simply returns every rank's
/// bytes in rank order.
///
/// The body gets a fully assembled [`RankCtx`]: TCP point-to-point mesh,
/// hub-backed collectives, and an [`ElasticLink`] (via
/// [`RankCtx::elastic`]) for checkpoint placement and re-admission. A
/// rank killed mid-run (e.g. by
/// [`FaultPlan::kill_process`](crate::FaultPlan::kill_process)) is
/// respawned from the same checkpoint directory with its incarnation
/// bumped, up to 3 times per world.
pub fn process_world<F>(test: &str, n: usize, opts: WorldOptions, body: F) -> Vec<Vec<u8>>
where
    F: FnOnce(&mut RankCtx) -> Vec<u8>,
{
    assert!(n > 0, "world must have at least one rank");
    if let Some(plan) = &opts.faults {
        assert!(
            !plan.perturbs_messages(),
            "message-perturbation faults are mailbox-only; TCP is the reliable wire"
        );
    }
    if let Ok(t) = std::env::var(ENV_TEST) {
        assert_eq!(
            t, test,
            "child process reached process_world('{test}') but was spawned for '{t}' — \
             one process_world scenario per test function"
        );
        run_child(n, opts, body);
    }
    supervise(test, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full end-to-end process worlds are exercised from the integration
    // tests (tests/process_backend.rs) where the test binary can be
    // re-executed by name. Unit scope here: the hub's round bookkeeping.

    #[test]
    fn hub_reduce_completes_without_dead_ranks_and_counts_absent() {
        let hub = Arc::new(Hub::new(3));
        {
            let mut st = hub.lock();
            for m in &mut st.members {
                m.alive = true;
                m.admitted = true;
                m.said_hello = true;
            }
            // Rank 2 dies before contributing.
            st.members[2].alive = false;
            st.members[2].admitted = false;
        }
        let mut st = hub.lock();
        st.reduce.rop = Some(ReduceOp::Max);
        st.reduce.accum = vec![f64::NEG_INFINITY];
        st.reduce.accum[0] = ReduceOp::Max.combine(st.reduce.accum[0], 4.0);
        st.members[0].contributed = true;
        hub.maybe_complete_reduce(&mut st);
        assert_eq!(st.reduce.generation, 0, "rank 1 still owes its contribution");
        st.reduce.accum[0] = ReduceOp::Max.combine(st.reduce.accum[0], 7.0);
        st.members[1].contributed = true;
        hub.maybe_complete_reduce(&mut st);
        assert_eq!(st.reduce.generation, 1);
        assert_eq!(st.reduce.last_result, vec![7.0]);
        assert_eq!(st.reduce.last_absent, 1);
        assert!(st.members.iter().all(|m| !m.contributed));
    }

    #[test]
    fn hub_admit_requires_the_full_world_and_bumps_the_epoch() {
        let hub = Arc::new(Hub::new(2));
        {
            let mut st = hub.lock();
            for m in &mut st.members {
                m.alive = true;
            }
        }
        let mut st = hub.lock();
        st.members[0].admit_waiting = true;
        hub.maybe_complete_admit(&mut st);
        assert_eq!(st.admit_generation, 0, "one rank cannot complete the round");
        assert_eq!(st.world_epoch, 0);
        st.members[1].admit_waiting = true;
        hub.maybe_complete_admit(&mut st);
        assert_eq!(st.admit_generation, 1);
        assert_eq!(st.world_epoch, 1);
        assert!(st.members.iter().all(|m| m.admitted && !m.admit_waiting));
    }

    #[test]
    fn stale_connection_death_does_not_kill_the_new_incarnation() {
        let hub = Arc::new(Hub::new(2));
        {
            let mut st = hub.lock();
            st.members[1].alive = true;
            st.members[1].admitted = true;
            st.members[1].incarnation = 1; // respawn already registered
        }
        hub.mark_dead(1, 0); // incarnation-0 connection's EOF arrives late
        let st = hub.lock();
        assert!(st.members[1].alive, "stale EOF must not mark the respawn dead");
    }
}
