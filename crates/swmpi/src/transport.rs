//! The transport seam: how bytes (well, `f64`s) actually move between
//! ranks.
//!
//! [`Comm`](crate::Comm) owns all *protocol* state — matching, pooled
//! payload buffers, sequence watermarks, the fault layer, retry/backoff —
//! and delegates raw delivery to a [`Transport`]. Two implementations
//! exist:
//!
//! * [`MailboxTransport`] — the in-process fast path: every rank is a
//!   thread in one OS process and a "send" is a `VecDeque` push under a
//!   mutex plus a condvar wake. Allocation-free at steady state (payloads
//!   travel by move), which is what the zero-allocation step gates pin.
//! * [`crate::tcp::TcpTransport`] — real sockets: length-prefixed
//!   CRC-framed messages over one duplex `TcpStream` per peer pair, with
//!   per-peer reconnect. This is the backend the multi-process world
//!   ([`crate::process`]) runs on.
//!
//! The seam is deliberately narrow: outbound delivery, a nonblocking
//! inbound drain, a bounded blocking drain, and peer-liveness queries.
//! Everything above it (tags, watermarks, epoch purges, timeouts) is
//! transport-agnostic, which is why `homme::dist` and the task-graph
//! driver run unchanged over TCP.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::comm::Message;

/// Raw message movement between ranks. See the module docs for the
/// division of labor between this trait and [`Comm`](crate::Comm).
pub(crate) trait Transport: Send {
    /// Deliver `m` to `dest`'s inbox. Never blocks on the receiver being
    /// ready; a transport that cannot currently reach `dest` (e.g. a dead
    /// TCP peer) drops the message and flags the peer lost — the receive
    /// side surfaces the failure as a typed error.
    fn send(&mut self, dest: usize, m: Message);

    /// Move every already-arrived message into `sink` (FIFO). Nonblocking.
    fn drain(&mut self, sink: &mut VecDeque<Message>);

    /// Block up to `slice` for at least one arrival, then drain everything
    /// into `sink`. Returning with an empty `sink` after `slice` elapsed
    /// is normal (the caller's retry loop decides what to do next).
    fn drain_wait(&mut self, slice: Duration, sink: &mut VecDeque<Message>);

    /// Visit every queued-but-undrained inbound message (diagnostics:
    /// feeds [`Comm::unmatched`](crate::Comm::unmatched)).
    fn for_each_queued(&self, f: &mut dyn FnMut(&Message));

    /// Is `peer` currently reachable? The mailbox world answers `true`
    /// unless the world-failure monitor has flagged a dead rank; TCP
    /// answers per connection.
    fn peer_alive(&self, peer: usize) -> bool;

    /// First failed peer this transport knows about, if any, as
    /// `(peer, last_step)`. Used to build typed errors.
    fn failed_peer(&self) -> Option<(usize, u64)>;
}

/// World-shared failure monitor for the in-process (thread) world: when a
/// rank's body panics, the runner flags it here and wakes every mailbox so
/// peers blocked in a receive fail fast with
/// [`CommError::RankFailed`](crate::CommError::RankFailed) instead of
/// burning their full receive timeout — the harness then joins every
/// thread promptly.
#[derive(Debug)]
pub(crate) struct WorldMonitor {
    /// `usize::MAX` = no failure; otherwise the first failed rank.
    failed_rank: AtomicUsize,
    /// The step the failed rank last announced.
    failed_step: AtomicU64,
}

impl WorldMonitor {
    pub(crate) fn new() -> Self {
        WorldMonitor {
            failed_rank: AtomicUsize::new(usize::MAX),
            failed_step: AtomicU64::new(0),
        }
    }

    /// Record the first failure (later failures keep the first rank).
    pub(crate) fn flag_failure(&self, rank: usize, step: u64) {
        if self
            .failed_rank
            .compare_exchange(usize::MAX, rank, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.failed_step.store(step, Ordering::Release);
        }
    }

    pub(crate) fn failure(&self) -> Option<(usize, u64)> {
        let rank = self.failed_rank.load(Ordering::Acquire);
        (rank != usize::MAX).then(|| (rank, self.failed_step.load(Ordering::Acquire)))
    }
}

/// One rank's incoming message queue, shared with every sender.
#[derive(Debug)]
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    arrived: Condvar,
}

/// Queue storage reserved per mailbox so steady-state traffic never grows
/// it.
const QUEUE_RESERVE: usize = 256;

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            queue: Mutex::new(VecDeque::with_capacity(QUEUE_RESERVE)),
            arrived: Condvar::new(),
        }
    }

    /// Wake anyone blocked on this mailbox (used by the runner when a
    /// peer rank dies, so waiters re-check the world monitor).
    pub(crate) fn interrupt(&self) {
        self.arrived.notify_all();
    }
}

/// Lock a mailbox queue, reporting rank context if the mutex was poisoned
/// (i.e. some rank thread panicked mid-send — the poison is a symptom,
/// the original panic is the disease, so name the scene).
fn lock_queue<'a>(
    mb: &'a Mailbox,
    rank: usize,
    what: &str,
) -> std::sync::MutexGuard<'a, VecDeque<Message>> {
    mb.queue.lock().unwrap_or_else(|_| {
        panic!("rank {rank}: mailbox mutex poisoned during {what} (a peer rank panicked)")
    })
}

/// The in-process transport: one [`Mailbox`] per rank, shared by `Arc`.
pub(crate) struct MailboxTransport {
    rank: usize,
    peers: Vec<Arc<Mailbox>>,
    inbox: Arc<Mailbox>,
    monitor: Arc<WorldMonitor>,
}

impl MailboxTransport {
    /// Build the transports for an `n`-rank world, plus the shared
    /// mailbox list and failure monitor the runner uses to interrupt
    /// blocked waiters when a rank dies.
    pub(crate) fn world(n: usize) -> (Vec<MailboxTransport>, Vec<Arc<Mailbox>>, Arc<WorldMonitor>) {
        let boxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::new())).collect();
        let monitor = Arc::new(WorldMonitor::new());
        let transports = (0..n)
            .map(|rank| MailboxTransport {
                rank,
                peers: boxes.clone(),
                inbox: Arc::clone(&boxes[rank]),
                monitor: Arc::clone(&monitor),
            })
            .collect();
        (transports, boxes, monitor)
    }
}

impl Transport for MailboxTransport {
    fn send(&mut self, dest: usize, m: Message) {
        let mailbox = &self.peers[dest];
        let mut queue = lock_queue(mailbox, self.rank, "send");
        queue.push_back(m);
        drop(queue);
        mailbox.arrived.notify_one();
    }

    fn drain(&mut self, sink: &mut VecDeque<Message>) {
        let mut queue = lock_queue(&self.inbox, self.rank, "drain");
        while let Some(m) = queue.pop_front() {
            sink.push_back(m);
        }
    }

    fn drain_wait(&mut self, slice: Duration, sink: &mut VecDeque<Message>) {
        let mut queue = lock_queue(&self.inbox, self.rank, "drain_wait");
        if queue.is_empty() {
            let (guard, _) =
                self.inbox.arrived.wait_timeout(queue, slice).unwrap_or_else(|_| {
                    panic!(
                        "rank {}: mailbox condvar poisoned during wait (a peer rank panicked)",
                        self.rank
                    )
                });
            queue = guard;
        }
        while let Some(m) = queue.pop_front() {
            sink.push_back(m);
        }
    }

    fn for_each_queued(&self, f: &mut dyn FnMut(&Message)) {
        let queue = lock_queue(&self.inbox, self.rank, "unmatched scan");
        for m in queue.iter() {
            f(m);
        }
    }

    fn peer_alive(&self, peer: usize) -> bool {
        match self.monitor.failure() {
            Some((rank, _)) => rank != peer,
            None => true,
        }
    }

    fn failed_peer(&self) -> Option<(usize, u64)> {
        self.monitor.failure()
    }
}
