//! Property-based tests of the TCP backend's frame codec: arbitrary
//! messages survive encode→decode bitwise, and every corruption the wire
//! can produce — truncation, flipped bytes, bad magic, absurd lengths —
//! is rejected with the right [`FrameError`], never mis-decoded.

use proptest::prelude::*;
use swmpi::tcp::{decode_frame, encode_frame, FrameError, FRAME_MAGIC};
use swmpi::Message;

fn arb_message() -> impl Strategy<Value = Message> {
    (
        0usize..64,
        any::<u64>(),
        proptest::collection::vec(any::<u64>(), 0..64),
    )
        .prop_map(|(source, tag, bits)| Message {
            source,
            tag,
            // Drive payloads from raw bit patterns so NaNs, infinities,
            // subnormals and negative zero all cross the wire.
            data: bits.into_iter().map(f64::from_bits).collect(),
        })
}

proptest! {
    /// encode→decode is the identity, bit for bit, and consumes exactly
    /// the encoded length.
    #[test]
    fn frame_roundtrip_is_bitwise_identity(m in arb_message()) {
        let mut wire = Vec::new();
        encode_frame(&m, &mut wire);
        let (back, used) = decode_frame(&wire).expect("well-formed frame");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(back.source, m.source);
        prop_assert_eq!(back.tag, m.tag);
        prop_assert_eq!(back.data.len(), m.data.len());
        for (a, b) in back.data.iter().zip(&m.data) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Every proper prefix of a frame reads as Incomplete (wait for more
    /// bytes), never as a decoded message or a hard error.
    #[test]
    fn truncated_frames_are_incomplete(m in arb_message(), cut_frac in 0.0f64..1.0) {
        let mut wire = Vec::new();
        encode_frame(&m, &mut wire);
        let cut = ((wire.len() as f64 * cut_frac) as usize).min(wire.len() - 1);
        prop_assert_eq!(decode_frame(&wire[..cut]).unwrap_err(), FrameError::Incomplete);
    }

    /// Flipping any single byte of header-CRC-covered or payload bytes is
    /// caught — as BadMagic if it hits the magic, otherwise as BadCrc or a
    /// structural error, but NEVER as a silently different message.
    #[test]
    fn corruption_never_decodes_silently(m in arb_message(), pos_frac in 0.0f64..1.0, flip in 1u8..255) {
        let mut wire = Vec::new();
        encode_frame(&m, &mut wire);
        let pos = ((wire.len() as f64 * pos_frac) as usize).min(wire.len() - 1);
        wire[pos] ^= flip;
        match decode_frame(&wire) {
            Err(_) => {} // any rejection is correct
            Ok((back, _)) => {
                // A flip inside the length field can still CRC-fail or
                // read Incomplete; if something decoded, it must be
                // because the flip cancelled out — impossible with a
                // nonzero XOR — so decoding "successfully" is a bug.
                prop_assert!(
                    false,
                    "corrupt frame decoded: source {} tag {} len {}",
                    back.source, back.tag, back.data.len()
                );
            }
        }
    }

    /// Junk that does not start with the frame magic is BadMagic as soon
    /// as the divergence is visible.
    #[test]
    fn junk_prefix_is_bad_magic(mut junk in proptest::collection::vec(any::<u8>(), 4..64)) {
        // Force a divergence from the magic in the first byte rather than
        // assuming one (the vendored proptest has no prop_assume).
        if junk[0] == FRAME_MAGIC[0] {
            junk[0] = junk[0].wrapping_add(1);
        }
        prop_assert_eq!(decode_frame(&junk).unwrap_err(), FrameError::BadMagic);
    }
}

#[test]
fn oversized_length_is_rejected_not_allocated() {
    let mut wire = Vec::new();
    encode_frame(&Message { source: 1, tag: 2, data: vec![3.0] }, &mut wire);
    // Rewrite the length field (bytes 16..20) to an absurd count; decode
    // must reject it before trusting it.
    wire[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(decode_frame(&wire).unwrap_err(), FrameError::TooLarge);
}
