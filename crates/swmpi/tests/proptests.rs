//! Property-based tests of the rank runtime and network model.

use proptest::prelude::*;
use swmpi::{run_ranks, NetworkModel, ReduceOp};

proptest! {
    /// Allreduce equals the serial reduction for arbitrary contributions
    /// and world sizes.
    #[test]
    fn allreduce_matches_serial(
        contribs in proptest::collection::vec(-1e6f64..1e6, 2..9),
    ) {
        let n = contribs.len();
        let contribs2 = contribs.clone();
        let sums = run_ranks(n, move |ctx| {
            ctx.coll.allreduce_scalar(contribs2[ctx.rank()], ReduceOp::Sum)
        });
        let expect: f64 = contribs.iter().sum();
        for s in sums {
            prop_assert!((s - expect).abs() < 1e-6 * expect.abs().max(1.0));
        }
    }

    /// Message payloads survive arbitrary ring routing bit-exactly.
    #[test]
    fn ring_payloads_are_bit_exact(
        data in proptest::collection::vec(-1e12f64..1e12, 1..33),
        n in 2usize..7,
    ) {
        let data2 = data.clone();
        let results = run_ranks(n, move |ctx| {
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            ctx.comm.send(next, 42, &data2);
            ctx.comm.recv(prev, 42).expect("ring recv").data
        });
        for r in results {
            prop_assert_eq!(&r, &data);
        }
    }

    /// The network cost model is monotone: more bytes never cost less, and
    /// greater distance never costs less.
    #[test]
    fn network_model_is_monotone(
        b1 in 0usize..1_000_000,
        b2 in 0usize..1_000_000,
        a in 0usize..200_000,
    ) {
        let m = NetworkModel::default();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(m.msg_time(lo, 0, 1) <= m.msg_time(hi, 0, 1));
        // Same-processor <= same-supernode <= cross-supernode.
        let t_proc = m.msg_time(lo, a, a / 4 * 4);
        let t_sn = m.msg_time(lo, a, (a / 1024) * 1024 + (a + 5) % 1024);
        let _ = (t_proc, t_sn);
        prop_assert!(m.msg_time(lo, 0, 1) <= m.msg_time(lo, 0, 4));
        prop_assert!(m.msg_time(lo, 0, 4) <= m.msg_time(lo, 0, 2048));
    }
}
