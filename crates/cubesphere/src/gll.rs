//! Gauss–Lobatto–Legendre (GLL) basis: nodes, quadrature weights, and the
//! spectral derivative matrix.
//!
//! CAM-SE places `np x np` GLL points in each spectral element (CAM uses
//! `np = 4`, i.e. cubic elements). The same nodes serve as interpolation
//! points and quadrature points, which is what makes the mass matrix
//! diagonal and Direct Stiffness Summation (DSS) an averaging operation.

/// The number of GLL points per element edge used by CAM-SE.
pub const NP: usize = 4;

/// GLL basis data for `np` points on the reference interval [-1, 1].
#[derive(Debug, Clone, PartialEq)]
pub struct GllBasis {
    /// Number of points.
    pub np: usize,
    /// Node coordinates, ascending, `points[0] = -1`, `points[np-1] = 1`.
    pub points: Vec<f64>,
    /// Quadrature weights (sum to 2).
    pub weights: Vec<f64>,
    /// Derivative matrix: `deriv[i][j] = L_j'(x_i)` where `L_j` is the
    /// Lagrange cardinal function of node `j`. Stored row-major,
    /// `deriv[i * np + j]`.
    pub deriv: Vec<f64>,
}

/// Evaluate Legendre polynomial `P_n` and its derivative at `x` by the
/// three-term recurrence. Returns `(P_n(x), P_n'(x))`.
fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let (mut p_prev, mut p) = (1.0, x);
    for k in 1..n {
        let p_next = ((2 * k + 1) as f64 * x * p - k as f64 * p_prev) / (k + 1) as f64;
        p_prev = p;
        p = p_next;
    }
    // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1), regular away from the
    // endpoints (the endpoints are handled analytically by callers).
    let dp = if (x * x - 1.0).abs() < 1e-14 {
        // P_n'(+-1) = (+-1)^{n-1} n(n+1)/2
        let sign = if x > 0.0 || n % 2 == 1 { 1.0 } else { -1.0 };
        sign * (n * (n + 1)) as f64 / 2.0
    } else {
        n as f64 * (x * p - p_prev) / (x * x - 1.0)
    };
    (p, dp)
}

impl GllBasis {
    /// Construct the basis for `np >= 2` points.
    ///
    /// Interior nodes are the roots of `P_{np-1}'`, found by Newton
    /// iteration from Chebyshev–Lobatto initial guesses; weights are
    /// `2 / (np (np-1) P_{np-1}(x_i)^2)`.
    ///
    /// # Panics
    /// Panics if `np < 2`.
    pub fn new(np: usize) -> Self {
        assert!(np >= 2, "GLL basis needs at least 2 points");
        let n = np - 1; // polynomial degree
        let mut points = vec![0.0; np];
        points[0] = -1.0;
        points[np - 1] = 1.0;
        for i in 1..np - 1 {
            // Chebyshev-Lobatto initial guess (descending in cos, so flip).
            let mut x = -(std::f64::consts::PI * i as f64 / n as f64).cos();
            for _ in 0..100 {
                // Newton on f(x) = P_n'(x). f'(x) = P_n''(x) from the
                // Legendre ODE: (1-x^2) P'' = 2x P' - n(n+1) P.
                let (p, dp) = legendre(n, x);
                let ddp = (2.0 * x * dp - (n * (n + 1)) as f64 * p) / (1.0 - x * x);
                let step = dp / ddp;
                x -= step;
                if step.abs() < 1e-15 {
                    break;
                }
            }
            points[i] = x;
        }
        // Enforce exact symmetry.
        for i in 0..np / 2 {
            let avg = 0.5 * (points[i] - points[np - 1 - i]);
            points[i] = avg;
            points[np - 1 - i] = -avg;
        }
        if np % 2 == 1 {
            points[np / 2] = 0.0;
        }

        let weights: Vec<f64> = points
            .iter()
            .map(|&x| {
                let (p, _) = legendre(n, x);
                2.0 / ((np * n) as f64 * p * p)
            })
            .collect();

        // Derivative matrix for GLL-Legendre nodes (Canuto et al.):
        //   D_ij = P_n(x_i) / (P_n(x_j) (x_i - x_j))     i != j
        //   D_00 = -n(n+1)/4,  D_{n,n} = n(n+1)/4,  else 0.
        let mut deriv = vec![0.0; np * np];
        for i in 0..np {
            for j in 0..np {
                if i == j {
                    deriv[i * np + j] = if i == 0 {
                        -((n * (n + 1)) as f64) / 4.0
                    } else if i == np - 1 {
                        (n * (n + 1)) as f64 / 4.0
                    } else {
                        0.0
                    };
                } else {
                    let (pi, _) = legendre(n, points[i]);
                    let (pj, _) = legendre(n, points[j]);
                    deriv[i * np + j] = pi / (pj * (points[i] - points[j]));
                }
            }
        }

        GllBasis { np, points, weights, deriv }
    }

    /// The CAM-SE basis (`np = 4`).
    pub fn cam_se() -> Self {
        Self::new(NP)
    }

    /// `deriv[i][j]`.
    #[inline]
    pub fn d(&self, i: usize, j: usize) -> f64 {
        self.deriv[i * self.np + j]
    }

    /// Differentiate nodal values `f` (length `np`), writing `f'` at the
    /// nodes into `out`.
    pub fn differentiate(&self, f: &[f64], out: &mut [f64]) {
        assert_eq!(f.len(), self.np);
        assert_eq!(out.len(), self.np);
        for i in 0..self.np {
            let mut acc = 0.0;
            for j in 0..self.np {
                acc += self.d(i, j) * f[j];
            }
            out[i] = acc;
        }
    }

    /// Quadrature of nodal values: `sum_i w_i f_i`.
    pub fn integrate(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.np);
        f.iter().zip(&self.weights).map(|(a, w)| a * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn np4_nodes_and_weights_match_known_values() {
        let b = GllBasis::cam_se();
        let s5 = 1.0 / 5.0_f64.sqrt();
        let expect = [-1.0, -s5, s5, 1.0];
        for (x, e) in b.points.iter().zip(expect) {
            assert!((x - e).abs() < TOL, "{x} vs {e}");
        }
        let wexpect = [1.0 / 6.0, 5.0 / 6.0, 5.0 / 6.0, 1.0 / 6.0];
        for (w, e) in b.weights.iter().zip(wexpect) {
            assert!((w - e).abs() < TOL, "{w} vs {e}");
        }
    }

    #[test]
    fn weights_sum_to_two_for_various_np() {
        for np in 2..=8 {
            let b = GllBasis::new(np);
            let sum: f64 = b.weights.iter().sum();
            assert!((sum - 2.0).abs() < 1e-11, "np={np}: {sum}");
        }
    }

    #[test]
    fn quadrature_exact_to_degree_2np_minus_3() {
        for np in 3..=7 {
            let b = GllBasis::new(np);
            for deg in 0..=(2 * np - 3) {
                let f: Vec<f64> = b.points.iter().map(|x| x.powi(deg as i32)).collect();
                let got = b.integrate(&f);
                let exact = if deg % 2 == 1 { 0.0 } else { 2.0 / (deg as f64 + 1.0) };
                assert!((got - exact).abs() < 1e-10, "np={np} deg={deg}: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn derivative_exact_for_polynomials() {
        for np in 2..=7 {
            let b = GllBasis::new(np);
            for deg in 0..np {
                let f: Vec<f64> = b.points.iter().map(|x| x.powi(deg as i32)).collect();
                let mut df = vec![0.0; np];
                b.differentiate(&f, &mut df);
                for (i, &x) in b.points.iter().enumerate() {
                    let exact =
                        if deg == 0 { 0.0 } else { deg as f64 * x.powi(deg as i32 - 1) };
                    assert!(
                        (df[i] - exact).abs() < 1e-9,
                        "np={np} deg={deg} i={i}: {} vs {exact}",
                        df[i]
                    );
                }
            }
        }
    }

    #[test]
    fn derivative_rows_annihilate_constants() {
        let b = GllBasis::new(6);
        for i in 0..6 {
            let row_sum: f64 = (0..6).map(|j| b.d(i, j)).sum();
            assert!(row_sum.abs() < 1e-10);
        }
    }

    #[test]
    fn summation_by_parts() {
        // GLL quadrature + derivative satisfy integration by parts exactly
        // for products of polynomials of total degree <= 2np-3:
        //   sum_i w_i (f' g + f g')_i = [f g]_{-1}^{1}
        let b = GllBasis::new(5);
        let f: Vec<f64> = b.points.iter().map(|x| x * x).collect();
        let g: Vec<f64> = b.points.iter().map(|x| x * x * x - x).collect();
        let mut df = vec![0.0; 5];
        let mut dg = vec![0.0; 5];
        b.differentiate(&f, &mut df);
        b.differentiate(&g, &mut dg);
        let lhs: f64 =
            (0..5).map(|i| b.weights[i] * (df[i] * g[i] + f[i] * dg[i])).sum();
        let boundary = f[4] * g[4] - f[0] * g[0];
        assert!((lhs - boundary).abs() < 1e-10, "{lhs} vs {boundary}");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_np_below_two() {
        let _ = GllBasis::new(1);
    }

    #[test]
    fn legendre_endpoint_derivative() {
        // P_3'(1) = 6, P_3'(-1) = 6 (sign (+1)^{n-1} n(n+1)/2 with n=3).
        let (_, dp1) = legendre(3, 1.0);
        assert!((dp1 - 6.0).abs() < TOL);
        let (_, dpm1) = legendre(3, -1.0);
        assert!((dpm1 - 6.0).abs() < TOL);
    }
}
