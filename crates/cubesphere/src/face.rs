//! The six faces of the equiangular gnomonic cubed sphere.
//!
//! Each face covers `(alpha, beta) in [-pi/4, pi/4]^2`. A face is described
//! by three constant vectors: the face-center direction `c` and two edge
//! directions `e1`, `e2`; a face point is the normalized
//! `Q = c + tan(alpha) e1 + tan(beta) e2`. Faces 0–3 ring the equator
//! (centers at longitudes 0, 90, 180, 270 degrees), face 4 is the Arctic
//! cap, face 5 the Antarctic cap. All faces are oriented right-handed:
//! `t_alpha x t_beta` points outward.

use crate::consts::QUARTER_PI;
use crate::geom::Vec3;

/// Number of cube faces.
pub const NUM_FACES: usize = 6;

/// One cubed-sphere face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Face {
    /// Face index, 0..6.
    pub index: usize,
    /// Face-center direction.
    pub center: Vec3,
    /// Direction of increasing `alpha`.
    pub e1: Vec3,
    /// Direction of increasing `beta`.
    pub e2: Vec3,
}

/// The table of face frames.
const FACES: [(Vec3, Vec3, Vec3); NUM_FACES] = [
    // center                      e1 (alpha)                    e2 (beta)
    (Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, 1.0)),
    (Vec3::new(0.0, 1.0, 0.0), Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)),
    (Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 0.0, 1.0)),
    (Vec3::new(0.0, -1.0, 0.0), Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0)),
    (Vec3::new(0.0, 0.0, 1.0), Vec3::new(0.0, 1.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)),
    (Vec3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0)),
];

impl Face {
    /// Face `index` (0..6).
    ///
    /// # Panics
    /// Panics if `index >= 6`.
    pub fn new(index: usize) -> Self {
        assert!(index < NUM_FACES, "face index {index} out of range");
        let (center, e1, e2) = FACES[index];
        Face { index, center, e1, e2 }
    }

    /// All six faces.
    pub fn all() -> impl Iterator<Item = Face> {
        (0..NUM_FACES).map(Face::new)
    }

    /// Unit sphere direction of face point `(alpha, beta)`.
    pub fn to_sphere(&self, alpha: f64, beta: f64) -> Vec3 {
        debug_assert!(alpha.abs() <= QUARTER_PI + 1e-12 && beta.abs() <= QUARTER_PI + 1e-12);
        let q = self.center + self.e1 * alpha.tan() + self.e2 * beta.tan();
        q.normalized()
    }

    /// Unit-sphere tangent vectors `(dP/dalpha, dP/dbeta)` at `(alpha, beta)`.
    ///
    /// With `x = tan(alpha)`, `Q = c + x e1 + y e2`, `P = Q/|Q|`:
    /// `dP/dx = (e1 - P (P . e1)) / |Q|` and `dP/dalpha = (1 + x^2) dP/dx`.
    pub fn tangents(&self, alpha: f64, beta: f64) -> (Vec3, Vec3) {
        let x = alpha.tan();
        let y = beta.tan();
        let q = self.center + self.e1 * x + self.e2 * y;
        let r = q.norm();
        let p = q * (1.0 / r);
        let dp_dx = (self.e1 - p * p.dot(self.e1)) * (1.0 / r);
        let dp_dy = (self.e2 - p * p.dot(self.e2)) * (1.0 / r);
        (dp_dx * (1.0 + x * x), dp_dy * (1.0 + y * y))
    }

    /// Which face contains the unit direction `p` (ties broken by index).
    pub fn containing(p: Vec3) -> usize {
        let mut best = 0;
        let mut best_dot = f64::MIN;
        for f in Face::all() {
            let d = f.center.dot(p);
            if d > best_dot {
                best_dot = d;
                best = f.index;
            }
        }
        best
    }

    /// Inverse map: `(alpha, beta)` of the unit direction `p`, which must
    /// lie on this face (`center . p > 0`).
    pub fn from_sphere(&self, p: Vec3) -> (f64, f64) {
        let c = self.center.dot(p);
        assert!(c > 0.0, "point is on the far side of face {}", self.index);
        let x = self.e1.dot(p) / c;
        let y = self.e2.dot(p) / c;
        (x.atan(), y.atan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centers_are_axes_and_frames_right_handed() {
        for f in Face::all() {
            assert!((f.center.norm() - 1.0).abs() < 1e-15);
            assert!((f.e1.norm() - 1.0).abs() < 1e-15);
            assert!(f.e1.dot(f.e2).abs() < 1e-15);
            assert!(f.center.dot(f.e1).abs() < 1e-15);
            // Right-handed with outward normal.
            assert!((f.e1.cross(f.e2) - f.center).norm() < 1e-15, "face {}", f.index);
        }
    }

    #[test]
    fn face_centers_map_to_themselves() {
        for f in Face::all() {
            let p = f.to_sphere(0.0, 0.0);
            assert!((p - f.center).norm() < 1e-15);
        }
    }

    #[test]
    fn roundtrip_through_inverse_map() {
        for f in Face::all() {
            for &a in &[-0.7, -0.3, 0.0, 0.45, QUARTER_PI * 0.999] {
                for &b in &[-0.6, 0.2, 0.7] {
                    let p = f.to_sphere(a, b);
                    let (a2, b2) = f.from_sphere(p);
                    assert!((a - a2).abs() < 1e-12 && (b - b2).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn containing_face_agrees_with_construction() {
        for f in Face::all() {
            // Strictly interior points should classify to their own face.
            let p = f.to_sphere(0.3, -0.5);
            assert_eq!(Face::containing(p), f.index);
        }
    }

    #[test]
    fn tangents_match_finite_differences() {
        let h = 1e-6;
        for f in Face::all() {
            let (a, b) = (0.31, -0.44);
            let (ta, tb) = f.tangents(a, b);
            let fd_a = (f.to_sphere(a + h, b) - f.to_sphere(a - h, b)) * (1.0 / (2.0 * h));
            let fd_b = (f.to_sphere(a, b + h) - f.to_sphere(a, b - h)) * (1.0 / (2.0 * h));
            assert!((ta - fd_a).norm() < 1e-8, "face {} alpha", f.index);
            assert!((tb - fd_b).norm() < 1e-8, "face {} beta", f.index);
        }
    }

    #[test]
    fn tangents_are_tangent_to_sphere() {
        for f in Face::all() {
            let p = f.to_sphere(0.2, 0.6);
            let (ta, tb) = f.tangents(0.2, 0.6);
            assert!(ta.dot(p).abs() < 1e-14);
            assert!(tb.dot(p).abs() < 1e-14);
            // Outward orientation.
            assert!(ta.cross(tb).dot(p) > 0.0);
        }
    }

    #[test]
    fn neighbouring_faces_meet_at_edges() {
        // Face 0's alpha = +pi/4 edge is face 1's alpha = -pi/4 edge.
        let f0 = Face::new(0);
        let f1 = Face::new(1);
        for &b in &[-0.5, 0.0, 0.5] {
            let p0 = f0.to_sphere(QUARTER_PI, b);
            let p1 = f1.to_sphere(-QUARTER_PI, b);
            assert!((p0 - p1).norm() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_face_index() {
        let _ = Face::new(6);
    }
}
