//! Regridding element fields to a regular latitude–longitude raster.
//!
//! CAM's history output interpolates the cubed-sphere GLL fields to
//! lat–lon grids; the reproduction needs the same to render the Figure-4
//! climatology maps and the Figure-9 storm snapshots. The interpolation is
//! the natural one for spectral elements: locate the containing element,
//! convert to its reference coordinates, and evaluate the GLL cardinal
//! basis (exact for the polynomial data the elements actually hold).

use crate::face::Face;
use crate::geom::Vec3;
use crate::gll::GllBasis;
use crate::grid::CubedSphere;

/// A regular lat–lon raster of `nlat x nlon` cell centers.
#[derive(Debug, Clone, PartialEq)]
pub struct LatLonGrid {
    /// Latitude rows, radians, south to north.
    pub lats: Vec<f64>,
    /// Longitude columns, radians, -pi to pi.
    pub lons: Vec<f64>,
}

impl LatLonGrid {
    /// Cell-centered global raster.
    pub fn new(nlat: usize, nlon: usize) -> Self {
        assert!(nlat > 0 && nlon > 0);
        let lats = (0..nlat)
            .map(|i| -std::f64::consts::FRAC_PI_2 + (i as f64 + 0.5) * std::f64::consts::PI / nlat as f64)
            .collect();
        let lons = (0..nlon)
            .map(|j| -std::f64::consts::PI + (j as f64 + 0.5) * 2.0 * std::f64::consts::PI / nlon as f64)
            .collect();
        LatLonGrid { lats, lons }
    }
}

/// Lagrange cardinal values of the GLL basis at reference coordinate `x`.
fn cardinal(basis: &GllBasis, x: f64) -> Vec<f64> {
    let np = basis.np;
    let mut vals = vec![0.0; np];
    for (j, v) in vals.iter_mut().enumerate() {
        let mut acc = 1.0;
        for m in 0..np {
            if m != j {
                acc *= (x - basis.points[m]) / (basis.points[j] - basis.points[m]);
            }
        }
        *v = acc;
    }
    vals
}

/// Interpolator from a grid's element fields to arbitrary sphere points.
pub struct Regridder<'g> {
    grid: &'g CubedSphere,
}

impl<'g> Regridder<'g> {
    /// Build for a grid.
    pub fn new(grid: &'g CubedSphere) -> Self {
        Regridder { grid }
    }

    /// Evaluate the element field at `(lat, lon)`. `field[e]` holds NPTS
    /// nodal values per element.
    pub fn sample(&self, field: &[Vec<f64>], lat: f64, lon: f64) -> f64 {
        let dir = Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin());
        let face_idx = Face::containing(dir);
        let face = Face::new(face_idx);
        let (alpha, beta) = face.from_sphere(dir);
        // Element indices within the face.
        let ne = self.grid.ne;
        let dab = 2.0 * crate::consts::QUARTER_PI / ne as f64;
        let fi = (((alpha + crate::consts::QUARTER_PI) / dab).floor() as isize)
            .clamp(0, ne as isize - 1) as usize;
        let fj = (((beta + crate::consts::QUARTER_PI) / dab).floor() as isize)
            .clamp(0, ne as isize - 1) as usize;
        let e = face_idx * ne * ne + fi * ne + fj;
        let el = &self.grid.elements[e];
        // Reference coordinates in [-1, 1].
        let xi = 2.0 * (alpha - el.alpha0) / el.dab - 1.0;
        let eta = 2.0 * (beta - el.beta0) / el.dab - 1.0;
        let ci = cardinal(&self.grid.basis, xi.clamp(-1.0, 1.0));
        let cj = cardinal(&self.grid.basis, eta.clamp(-1.0, 1.0));
        let mut acc = 0.0;
        for i in 0..self.grid.basis.np {
            for j in 0..self.grid.basis.np {
                acc += ci[i] * cj[j] * field[e][i * self.grid.basis.np + j];
            }
        }
        acc
    }

    /// Regrid the whole field onto a raster (row-major, `lats x lons`).
    pub fn to_latlon(&self, field: &[Vec<f64>], raster: &LatLonGrid) -> Vec<f64> {
        let mut out = Vec::with_capacity(raster.lats.len() * raster.lons.len());
        for &lat in &raster.lats {
            for &lon in &raster.lons {
                out.push(self.sample(field, lat, lon));
            }
        }
        out
    }
}

/// Render a raster as a coarse ASCII map (for terminal output of the
/// figure binaries); `levels` characters map min..max.
pub fn ascii_map(values: &[f64], nlat: usize, nlon: usize, levels: &str) -> String {
    assert_eq!(values.len(), nlat * nlon);
    let chars: Vec<char> = levels.chars().collect();
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-300);
    let mut s = String::new();
    // North at the top.
    for i in (0..nlat).rev() {
        for j in 0..nlon {
            let f = (values[i * nlon + j] - min) / span;
            let idx = ((f * (chars.len() - 1) as f64).round() as usize).min(chars.len() - 1);
            s.push(chars[idx]);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // sin(lat) cos(lat) cos(lon) = z*x on the unit sphere: a polynomial in
    // Cartesian coordinates, smooth in every face chart (unlike cos(2 lon),
    // which is singular at the poles in gnomonic coordinates).
    fn smooth_field(grid: &CubedSphere) -> Vec<Vec<f64>> {
        grid.elements
            .iter()
            .map(|el| {
                el.metric
                    .iter()
                    .map(|m| m.lat.sin() * m.lat.cos() * m.lon.cos())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sampling_reproduces_nodal_values() {
        let grid = CubedSphere::new(3);
        let field = smooth_field(&grid);
        let rg = Regridder::new(&grid);
        // At interior GLL points the interpolant must reproduce the data.
        for (e, el) in grid.elements.iter().enumerate().step_by(7) {
            for p in [5usize, 6, 9, 10] {
                let m = &el.metric[p];
                let got = rg.sample(&field, m.lat, m.lon);
                assert!(
                    (got - field[e][p]).abs() < 1e-10,
                    "elem {e} pt {p}: {got} vs {}",
                    field[e][p]
                );
            }
        }
    }

    #[test]
    fn regridded_smooth_field_is_accurate() {
        let grid = CubedSphere::new(4);
        let field = smooth_field(&grid);
        let rg = Regridder::new(&grid);
        let raster = LatLonGrid::new(13, 24);
        let vals = rg.to_latlon(&field, &raster);
        let mut worst: f64 = 0.0;
        let mut idx = 0;
        for &lat in &raster.lats {
            for &lon in &raster.lons {
                let exact = lat.sin() * lat.cos() * lon.cos();
                worst = worst.max((vals[idx] - exact).abs());
                idx += 1;
            }
        }
        assert!(worst < 0.02, "interpolation error {worst}");
    }

    #[test]
    fn raster_covers_the_globe() {
        let g = LatLonGrid::new(10, 20);
        assert_eq!(g.lats.len(), 10);
        assert_eq!(g.lons.len(), 20);
        assert!(g.lats[0] < -1.2 && g.lats[9] > 1.2);
        assert!(g.lons[0] < -2.9 && g.lons[19] > 2.9);
    }

    #[test]
    fn ascii_map_shape_and_extremes() {
        let vals = vec![0.0, 0.5, 1.0, 0.25, 0.75, 0.5];
        let map = ascii_map(&vals, 2, 3, " .:#");
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        assert!(map.contains('#') && map.contains(' '));
    }
}
