//! Physical constants, matching the values CAM/CESM uses (`shr_const_mod`).

/// Earth radius, m.
pub const EARTH_RADIUS: f64 = 6.371_22e6;
/// Earth rotation rate, 1/s.
pub const OMEGA: f64 = 7.292_115e-5;
/// Gravitational acceleration, m/s^2.
pub const GRAV: f64 = 9.806_16;
/// Dry-air gas constant, J/(kg K).
pub const RD: f64 = 287.042_31;
/// Dry-air specific heat at constant pressure, J/(kg K).
pub const CP: f64 = 1004.64;
/// `RD / CP`.
pub const KAPPA: f64 = RD / CP;
/// Reference surface pressure, Pa.
pub const P0: f64 = 100_000.0;
/// Gas constant for water vapour, J/(kg K).
pub const RV: f64 = 461.5;
/// Latent heat of vaporization, J/kg.
pub const LATVAP: f64 = 2.501e6;
/// Quarter pi: the half-width of a cubed-sphere face in equiangular coords.
pub const QUARTER_PI: f64 = std::f64::consts::FRAC_PI_4;

/// Approximate horizontal grid spacing (km) for a given `ne`, using the
/// paper's convention (ne30 ~ 100 km, ne120 ~ 25 km, ne4096 ~ 750 m).
pub fn resolution_km(ne: usize) -> f64 {
    3000.0 / ne as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_resolution_mapping() {
        assert!((resolution_km(30) - 100.0).abs() < 1e-12);
        assert!((resolution_km(120) - 25.0).abs() < 1e-12);
        assert!((resolution_km(256) - 11.72).abs() < 0.1); // "12.5 km class"
        assert!((resolution_km(1024) - 2.93).abs() < 0.1); // "3 km class"
        assert!((resolution_km(4096) - 0.732).abs() < 0.01); // "750 m class"
    }

    #[test]
    fn kappa_is_r_over_cp() {
        assert!((KAPPA - 0.2857).abs() < 1e-3);
    }
}
