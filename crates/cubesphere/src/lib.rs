//! # cubesphere — the CAM-SE cubed-sphere spectral-element mesh
//!
//! The horizontal discretization substrate of the reproduction: an
//! equiangular gnomonic cubed sphere tiled with `np = 4`
//! Gauss–Lobatto–Legendre spectral elements, exactly the mesh family of the
//! paper's Table 2 (`ne64` … `ne4096`).
//!
//! * [`gll`] — GLL nodes, weights, derivative matrix.
//! * [`face`] — the six equiangular faces and their sphere mappings.
//! * [`metric`] — Jacobians and velocity-transform matrices at GLL points.
//! * [`grid`] — assembled elements with the global DSS map (built by
//!   geometric hashing, so cube-edge orientation cases cannot be miscoded).
//! * [`sfc`] — Hilbert/snake space-filling-curve partitioning and the halo
//!   statistics that feed the scaling performance model.
//! * [`consts`] — physical constants (CESM `shr_const` values).

pub mod consts;
pub mod face;
pub mod geom;
pub mod gll;
pub mod grid;
pub mod metric;
pub mod regrid;
pub mod sfc;

pub use consts::{resolution_km, EARTH_RADIUS, GRAV, KAPPA, OMEGA, P0, RD};
pub use face::{Face, NUM_FACES};
pub use geom::Vec3;
pub use gll::{GllBasis, NP};
pub use grid::{pidx, CubedSphere, Element, NPTS};
pub use metric::PointMetric;
pub use regrid::{ascii_map, LatLonGrid, Regridder};
pub use sfc::{HaloStats, Partition};
