//! The assembled cubed-sphere spectral-element grid.
//!
//! A [`CubedSphere`] holds every element's GLL-point metric data plus the
//! global assembly map used by Direct Stiffness Summation: GLL points on
//! shared element edges receive one global id, found by geometric hashing of
//! their (exactly coincident) sphere positions. This sidesteps the 12-case
//! face-edge orientation bookkeeping of the Fortran original while producing
//! the identical assembly structure — including the eight cube corners where
//! three elements meet.

use crate::consts::QUARTER_PI;
use crate::face::{Face, NUM_FACES};
use crate::gll::{GllBasis, NP};
use crate::metric::PointMetric;
use std::collections::HashMap;

/// GLL points per element (`np x np`).
pub const NPTS: usize = NP * NP;

/// Flat index of GLL point `(i, j)` — `i` along `alpha`, `j` along `beta`.
#[inline]
pub const fn pidx(i: usize, j: usize) -> usize {
    i * NP + j
}

/// One spectral element.
#[derive(Debug, Clone)]
pub struct Element {
    /// Cube face this element lies on.
    pub face: usize,
    /// Element index along `alpha` within the face, 0..ne.
    pub ei: usize,
    /// Element index along `beta` within the face, 0..ne.
    pub ej: usize,
    /// `alpha` of the element's low edge.
    pub alpha0: f64,
    /// `beta` of the element's low edge.
    pub beta0: f64,
    /// Element width in `alpha` (= width in `beta`).
    pub dab: f64,
    /// Metric data at each GLL point, indexed by [`pidx`].
    pub metric: Vec<PointMetric>,
    /// Quadrature/assembly weight at each GLL point:
    /// `w_i w_j (dab/2)^2 metdet` (HOMME's `spheremp`).
    pub spheremp: Vec<f64>,
    /// Global GLL ids for assembly, indexed by [`pidx`].
    pub gids: Vec<usize>,
}

impl Element {
    /// `2 / dab`: factor converting reference-interval derivatives to
    /// derivatives in `alpha`/`beta`.
    #[inline]
    pub fn dscale(&self) -> f64 {
        2.0 / self.dab
    }
}

/// The full grid.
#[derive(Debug, Clone)]
pub struct CubedSphere {
    /// Elements along each cube-face edge.
    pub ne: usize,
    /// The GLL basis (np = 4).
    pub basis: GllBasis,
    /// All `6 ne^2` elements, ordered face-major then `ei`-major.
    pub elements: Vec<Element>,
    /// Number of unique (assembled) GLL points.
    pub nglobal: usize,
    /// `1 / sum(spheremp)` per global id: the inverse DSS mass.
    pub inv_mass: Vec<f64>,
    /// How many elements share each global point (1, 2, 3 or 4).
    pub multiplicity: Vec<u8>,
    /// Edge-adjacent neighbours of each element (always 4 on the sphere).
    pub edge_neighbors: Vec<[usize; 4]>,
    /// All neighbours sharing at least one GLL point (edge + corner).
    pub all_neighbors: Vec<Vec<usize>>,
}

/// Quantization scale for geometric hashing of unit directions. GLL point
/// separations are O(1/ne) on the unit sphere; 1e-8 absolute tolerance is
/// safe for any feasible `ne` while absorbing floating-point noise (~1e-15)
/// between coordinate charts.
const HASH_SCALE: f64 = 1.0e8;

fn hash_key(p: crate::geom::Vec3) -> (i64, i64, i64) {
    (
        (p.x * HASH_SCALE).round() as i64,
        (p.y * HASH_SCALE).round() as i64,
        (p.z * HASH_SCALE).round() as i64,
    )
}

impl CubedSphere {
    /// Build the grid with `ne` elements per cube-face edge on the Earth.
    ///
    /// # Panics
    /// Panics if `ne == 0`.
    pub fn new(ne: usize) -> Self {
        Self::new_planet(ne, crate::consts::EARTH_RADIUS, crate::consts::OMEGA)
    }

    /// Build the grid on a general planet (see
    /// [`PointMetric::at_planet`] for the small-planet convention).
    ///
    /// # Panics
    /// Panics if `ne == 0` or `radius <= 0`.
    pub fn new_planet(ne: usize, radius: f64, omega: f64) -> Self {
        assert!(ne > 0, "ne must be positive");
        assert!(radius > 0.0, "radius must be positive");
        let basis = GllBasis::cam_se();
        let dab = 2.0 * QUARTER_PI / ne as f64;
        let nelem = NUM_FACES * ne * ne;

        let mut elements = Vec::with_capacity(nelem);
        let mut gid_map: HashMap<(i64, i64, i64), usize> = HashMap::new();
        let mut mass: Vec<f64> = Vec::new();
        let mut multiplicity: Vec<u8> = Vec::new();
        // Elements sharing each global id (for adjacency).
        let mut owners: Vec<Vec<usize>> = Vec::new();

        for face_idx in 0..NUM_FACES {
            let face = Face::new(face_idx);
            for ei in 0..ne {
                for ej in 0..ne {
                    let alpha0 = -QUARTER_PI + ei as f64 * dab;
                    let beta0 = -QUARTER_PI + ej as f64 * dab;
                    let mut metric = Vec::with_capacity(NPTS);
                    let mut spheremp = Vec::with_capacity(NPTS);
                    let mut gids = Vec::with_capacity(NPTS);
                    let eidx = elements.len();
                    for i in 0..NP {
                        let alpha = alpha0 + 0.5 * dab * (basis.points[i] + 1.0);
                        for j in 0..NP {
                            let beta = beta0 + 0.5 * dab * (basis.points[j] + 1.0);
                            let m = PointMetric::at_planet(&face, alpha, beta, radius, omega);
                            let w = basis.weights[i]
                                * basis.weights[j]
                                * (0.5 * dab) * (0.5 * dab)
                                * m.metdet;
                            let gid = *gid_map.entry(hash_key(m.dir)).or_insert_with(|| {
                                mass.push(0.0);
                                multiplicity.push(0);
                                owners.push(Vec::new());
                                mass.len() - 1
                            });
                            mass[gid] += w;
                            if owners[gid].last() != Some(&eidx) {
                                multiplicity[gid] += 1;
                                owners[gid].push(eidx);
                            }
                            metric.push(m);
                            spheremp.push(w);
                            gids.push(gid);
                        }
                    }
                    elements.push(Element {
                        face: face_idx,
                        ei,
                        ej,
                        alpha0,
                        beta0,
                        dab,
                        metric,
                        spheremp,
                        gids,
                    });
                }
            }
        }

        // Adjacency: count shared global points per element pair.
        let mut edge_neighbors = Vec::with_capacity(nelem);
        let mut all_neighbors = Vec::with_capacity(nelem);
        let mut shared: HashMap<usize, usize> = HashMap::new();
        for (eidx, el) in elements.iter().enumerate() {
            shared.clear();
            for &gid in &el.gids {
                for &other in &owners[gid] {
                    if other != eidx {
                        *shared.entry(other).or_insert(0) += 1;
                    }
                }
            }
            let mut edges: Vec<usize> =
                shared.iter().filter(|&(_, &n)| n >= 2).map(|(&e, _)| e).collect();
            edges.sort_unstable();
            assert_eq!(
                edges.len(),
                4,
                "element {eidx} has {} edge neighbours (expected 4)",
                edges.len()
            );
            edge_neighbors.push([edges[0], edges[1], edges[2], edges[3]]);
            let mut all: Vec<usize> = shared.keys().copied().collect();
            all.sort_unstable();
            all_neighbors.push(all);
        }

        let inv_mass = mass.iter().map(|&m| 1.0 / m).collect();
        CubedSphere {
            ne,
            basis,
            elements,
            nglobal: mass.len(),
            inv_mass,
            multiplicity,
            edge_neighbors,
            all_neighbors,
        }
    }

    /// Total number of elements (`6 ne^2`).
    #[inline]
    pub fn nelem(&self) -> usize {
        self.elements.len()
    }

    /// Global surface integral of a per-element nodal field.
    ///
    /// `field[e]` holds the NPTS nodal values of element `e`. Shared points
    /// are intentionally counted once per element with their element-local
    /// weights — that is exactly the spectral-element quadrature rule
    /// (weights of shared points sum across elements).
    pub fn global_integral(&self, field: &[Vec<f64>]) -> f64 {
        assert_eq!(field.len(), self.nelem());
        let mut acc = 0.0;
        for (el, f) in self.elements.iter().zip(field) {
            debug_assert_eq!(f.len(), NPTS);
            for p in 0..NPTS {
                acc += el.spheremp[p] * f[p];
            }
        }
        acc
    }

    /// Surface area of the sphere as represented by the grid.
    pub fn total_area(&self) -> f64 {
        self.elements.iter().map(|el| el.spheremp.iter().sum::<f64>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::EARTH_RADIUS;

    #[test]
    fn element_count_matches_table2() {
        // The paper's Table 2: #elements = horizontal mesh x 6 faces.
        for &(ne, nelem) in &[(2usize, 24usize), (4, 96), (8, 384)] {
            let g = CubedSphere::new(ne);
            assert_eq!(g.nelem(), nelem);
        }
        // The Table 2 formula itself at paper scales (not instantiated).
        assert_eq!(6 * 64 * 64, 24_576);
        assert_eq!(6 * 256 * 256, 393_216);
        assert_eq!(6 * 1024 * 1024, 6_291_456);
        assert_eq!(6 * 4096 * 4096, 100_663_296);
    }

    #[test]
    fn unique_gll_points_match_euler_formula() {
        // A cube-surface grid with n = 3 ne quads per face edge has
        // 6 n^2 + 2 vertices.
        for ne in [1usize, 2, 3, 5] {
            let g = CubedSphere::new(ne);
            let n = 3 * ne;
            assert_eq!(g.nglobal, 6 * n * n + 2, "ne = {ne}");
        }
    }

    #[test]
    fn multiplicities_are_cube_topology() {
        let g = CubedSphere::new(3);
        let mut counts = [0usize; 5];
        for &m in &g.multiplicity {
            counts[m as usize] += 1;
        }
        assert_eq!(counts[3], 8, "exactly the 8 cube corners have 3 owners");
        assert_eq!(counts[0], 0);
        // Interior points: each element contributes 4 (the 2x2 interior GLL
        // block), so 6 ne^2 * 4.
        assert_eq!(counts[1], g.nelem() * 4);
        // Sanity: elements x NPTS point-slots distribute over the classes.
        let slots: usize =
            g.multiplicity.iter().map(|&m| m as usize).sum();
        assert_eq!(slots, g.nelem() * NPTS);
    }

    #[test]
    fn every_element_has_four_edge_neighbors_and_some_corners() {
        let g = CubedSphere::new(4);
        for e in 0..g.nelem() {
            assert_eq!(g.edge_neighbors[e].len(), 4);
            assert!(g.all_neighbors[e].len() >= 7, "elem {e}: {:?}", g.all_neighbors[e]);
            assert!(g.all_neighbors[e].len() <= 8);
            for &n in &g.edge_neighbors[e] {
                assert!(g.edge_neighbors[n].contains(&e), "adjacency not symmetric");
            }
        }
    }

    #[test]
    fn area_converges_to_sphere_area() {
        let exact = 4.0 * std::f64::consts::PI * EARTH_RADIUS * EARTH_RADIUS;
        let coarse = (CubedSphere::new(2).total_area() - exact).abs() / exact;
        let fine = (CubedSphere::new(4).total_area() - exact).abs() / exact;
        assert!(coarse < 1e-4, "coarse err {coarse}");
        assert!(fine < coarse / 4.0, "no convergence: {coarse} -> {fine}");
    }

    #[test]
    fn global_integral_of_one_is_total_area() {
        let g = CubedSphere::new(3);
        let ones = vec![vec![1.0; NPTS]; g.nelem()];
        assert!((g.global_integral(&ones) - g.total_area()).abs() < 1.0);
    }

    #[test]
    fn mass_is_positive_everywhere() {
        let g = CubedSphere::new(2);
        assert!(g.inv_mass.iter().all(|&m| m.is_finite() && m > 0.0));
    }

    #[test]
    fn dscale_and_pidx() {
        let g = CubedSphere::new(2);
        let el = &g.elements[0];
        assert!((el.dscale() - 2.0 / el.dab).abs() < 1e-15);
        assert_eq!(pidx(0, 0), 0);
        assert_eq!(pidx(3, 3), NPTS - 1);
        assert_eq!(pidx(1, 2), 6);
    }
}
