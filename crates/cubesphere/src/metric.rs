//! Metric terms of the equiangular cubed-sphere mapping.
//!
//! At every GLL point the dynamical core needs the Jacobian determinant
//! (`metdet`, for quadrature and DSS weights) and the 2x2 matrices `D` /
//! `Dinv` converting between contravariant cube-coordinate velocities and
//! physical (eastward, northward) velocities. Everything is derived from the
//! analytic tangent vectors of [`Face`](crate::face::Face), scaled by the
//! Earth radius.

use crate::consts::{EARTH_RADIUS, OMEGA};
use crate::face::Face;
use crate::geom::{east_unit, north_unit, Vec3};

/// Metric data at one GLL point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetric {
    /// Unit sphere direction of the point.
    pub dir: Vec3,
    /// Latitude, radians.
    pub lat: f64,
    /// Longitude, radians.
    pub lon: f64,
    /// Coriolis parameter `2 Omega sin(lat)`, 1/s.
    pub coriolis: f64,
    /// `sqrt(det g)`: area element per unit `dalpha dbeta`, m^2.
    pub metdet: f64,
    /// `d[r][c]`: maps contravariant `(d alpha/dt, d beta/dt)` to physical
    /// `(u, v)` in m/s.
    pub d: [[f64; 2]; 2],
    /// Inverse of `d`: physical `(u, v)` to contravariant rates.
    pub dinv: [[f64; 2]; 2],
}

impl PointMetric {
    /// Compute the metric at face point `(alpha, beta)` on the Earth-radius
    /// sphere with the Earth's rotation rate.
    pub fn at(face: &Face, alpha: f64, beta: f64) -> Self {
        Self::at_planet(face, alpha, beta, EARTH_RADIUS, OMEGA)
    }

    /// Compute the metric on a general planet. Reduced-radius ("small
    /// planet") configurations — the standard DCMIP device for reaching
    /// fine effective resolution with few elements — pass
    /// `radius = a_earth / X` and usually `omega_planet = X * omega`.
    pub fn at_planet(face: &Face, alpha: f64, beta: f64, radius: f64, omega: f64) -> Self {
        let dir = face.to_sphere(alpha, beta);
        let (ta_unit, tb_unit) = face.tangents(alpha, beta);
        // Scale tangents to the physical sphere.
        let ta = ta_unit * radius;
        let tb = tb_unit * radius;

        let g11 = ta.dot(ta);
        let g12 = ta.dot(tb);
        let g22 = tb.dot(tb);
        let metdet = (g11 * g22 - g12 * g12).sqrt();

        let lat = dir.latitude();
        let lon = dir.longitude();
        let e = east_unit(lon);
        let n = north_unit(lat, lon);

        // Columns of d are the physical components of the tangent vectors:
        // a contravariant velocity (adot, bdot) moves the point with
        // physical velocity adot * ta + bdot * tb.
        let d = [[ta.dot(e), tb.dot(e)], [ta.dot(n), tb.dot(n)]];
        let det = d[0][0] * d[1][1] - d[0][1] * d[1][0];
        debug_assert!(det.abs() > 0.0, "singular metric at ({alpha}, {beta})");
        let inv_det = 1.0 / det;
        let dinv = [
            [d[1][1] * inv_det, -d[0][1] * inv_det],
            [-d[1][0] * inv_det, d[0][0] * inv_det],
        ];

        PointMetric { dir, lat, lon, coriolis: 2.0 * omega * lat.sin(), metdet, d, dinv }
    }

    /// Convert physical `(u, v)` to contravariant components.
    #[inline]
    pub fn to_contra(&self, u: f64, v: f64) -> (f64, f64) {
        (
            self.dinv[0][0] * u + self.dinv[0][1] * v,
            self.dinv[1][0] * u + self.dinv[1][1] * v,
        )
    }

    /// Convert contravariant components to physical `(u, v)`.
    #[inline]
    pub fn to_physical(&self, c1: f64, c2: f64) -> (f64, f64) {
        (
            self.d[0][0] * c1 + self.d[0][1] * c2,
            self.d[1][0] * c1 + self.d[1][1] * c2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::QUARTER_PI;

    #[test]
    fn metdet_matches_determinant_of_d() {
        // |det d| equals sqrt(det g) because d expresses the same tangent
        // vectors in an orthonormal basis.
        for f in Face::all() {
            let m = PointMetric::at(&f, 0.37, -0.21);
            let det = m.d[0][0] * m.d[1][1] - m.d[0][1] * m.d[1][0];
            assert!(
                (det.abs() - m.metdet).abs() < m.metdet * 1e-12,
                "face {}: {det} vs {}",
                f.index,
                m.metdet
            );
        }
    }

    #[test]
    fn velocity_roundtrip() {
        for f in Face::all() {
            let m = PointMetric::at(&f, -0.5, 0.62);
            let (u, v) = (13.5, -4.2);
            let (c1, c2) = m.to_contra(u, v);
            let (u2, v2) = m.to_physical(c1, c2);
            assert!((u - u2).abs() < 1e-9 && (v - v2).abs() < 1e-9);
        }
    }

    #[test]
    fn face_center_metric_is_diagonal_radius() {
        // At an equatorial face center alpha/beta align with east/north and
        // |t| = a, so d ~ diag(a, a).
        let f = Face::new(0);
        let m = PointMetric::at(&f, 0.0, 0.0);
        assert!((m.d[0][0] - EARTH_RADIUS).abs() < 1.0);
        assert!((m.d[1][1] - EARTH_RADIUS).abs() < 1.0);
        assert!(m.d[0][1].abs() < 1e-6 && m.d[1][0].abs() < 1e-6);
        assert!((m.metdet - EARTH_RADIUS * EARTH_RADIUS).abs() < 1.0);
        assert!(m.coriolis.abs() < 1e-12);
    }

    #[test]
    fn coriolis_sign_by_hemisphere() {
        let north = PointMetric::at(&Face::new(4), 0.1, 0.1);
        let south = PointMetric::at(&Face::new(5), 0.1, 0.1);
        assert!(north.coriolis > 0.0);
        assert!(south.coriolis < 0.0);
    }

    #[test]
    fn sphere_area_from_quadrature() {
        // Midpoint-rule integral of metdet over all six faces must give
        // 4 pi a^2 (coarse grid, so ~1e-3 relative accuracy).
        let n = 24;
        let h = 2.0 * QUARTER_PI / n as f64;
        let mut area = 0.0;
        for f in Face::all() {
            for i in 0..n {
                for j in 0..n {
                    let a = -QUARTER_PI + (i as f64 + 0.5) * h;
                    let b = -QUARTER_PI + (j as f64 + 0.5) * h;
                    area += PointMetric::at(&f, a, b).metdet * h * h;
                }
            }
        }
        let exact = 4.0 * std::f64::consts::PI * EARTH_RADIUS * EARTH_RADIUS;
        assert!(
            ((area - exact) / exact).abs() < 1e-3,
            "area {area} vs {exact}"
        );
    }
}
