//! Space-filling-curve domain decomposition.
//!
//! CAM-SE assigns elements to MPI ranks by cutting a space-filling curve
//! through the cubed sphere into contiguous, equally sized chunks, which
//! keeps each rank's patch compact (small halo perimeter). We use a Hilbert
//! curve within each face when `ne` is a power of two and a boustrophedon
//! ("snake") ordering otherwise, chaining the six faces.
//!
//! The partition statistics computed here — elements per rank and halo edge
//! counts — feed the `perfmodel` crate's communication model for the
//! strong/weak scaling figures.

use crate::grid::CubedSphere;

/// Map Hilbert-curve position `d` to `(x, y)` on a `n x n` grid
/// (`n` a power of two). Classic bit-twiddling construction.
fn hilbert_d2xy(n: usize, d: usize) -> (usize, usize) {
    let (mut x, mut y) = (0usize, 0usize);
    let mut t = d;
    let mut s = 1usize;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Ordering of a face's `ne x ne` elements along a space-filling curve.
/// Returns (ei, ej) pairs in curve order.
pub fn face_curve(ne: usize) -> Vec<(usize, usize)> {
    if ne.is_power_of_two() && ne > 1 {
        (0..ne * ne).map(|d| hilbert_d2xy(ne, d)).collect()
    } else {
        // Snake ordering: even rows left-to-right, odd rows right-to-left.
        let mut out = Vec::with_capacity(ne * ne);
        for ei in 0..ne {
            if ei % 2 == 0 {
                for ej in 0..ne {
                    out.push((ei, ej));
                }
            } else {
                for ej in (0..ne).rev() {
                    out.push((ei, ej));
                }
            }
        }
        out
    }
}

/// A domain decomposition of the grid over `nranks` ranks.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Owning rank of each element (element-indexed).
    pub owner: Vec<usize>,
    /// Elements of each rank, in curve order (rank-indexed).
    pub elems_of: Vec<Vec<usize>>,
}

impl Partition {
    /// Cut the space-filling curve into `nranks` contiguous chunks whose
    /// sizes differ by at most one element.
    ///
    /// # Panics
    /// Panics if `nranks == 0` or `nranks > nelem`.
    pub fn new(grid: &CubedSphere, nranks: usize) -> Self {
        let ne = grid.ne;
        let nelem = grid.nelem();
        assert!(nranks > 0 && nranks <= nelem, "bad rank count {nranks} for {nelem} elements");

        // Global curve: face-major chaining of per-face curves. Element
        // storage order in the grid is face-major, ei-major, so the index is
        // face * ne^2 + ei * ne + ej.
        let face_order = face_curve(ne);
        let mut curve = Vec::with_capacity(nelem);
        for face in 0..6 {
            for &(ei, ej) in &face_order {
                curve.push(face * ne * ne + ei * ne + ej);
            }
        }

        let mut owner = vec![0usize; nelem];
        let mut elems_of = vec![Vec::new(); nranks];
        let base = nelem / nranks;
        let extra = nelem % nranks;
        let mut pos = 0;
        for (rank, bucket) in elems_of.iter_mut().enumerate() {
            let count = base + usize::from(rank < extra);
            for _ in 0..count {
                let e = curve[pos];
                owner[e] = rank;
                bucket.push(e);
                pos += 1;
            }
        }
        Partition { owner, elems_of }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.elems_of.len()
    }

    /// Per-rank halo statistics under this partition.
    pub fn halo_stats(&self, grid: &CubedSphere) -> Vec<HaloStats> {
        let mut stats: Vec<HaloStats> = (0..self.nranks())
            .map(|_| HaloStats::default())
            .collect();
        for rank in 0..self.nranks() {
            let mut peer_ranks = std::collections::HashSet::new();
            for &e in &self.elems_of[rank] {
                stats[rank].elements += 1;
                let mut is_boundary = false;
                for &n in &grid.all_neighbors[e] {
                    let o = self.owner[n];
                    if o != rank {
                        is_boundary = true;
                        peer_ranks.insert(o);
                        // Count cut *edges* (the 4-point element faces that
                        // dominate message volume) separately from corners.
                        if grid.edge_neighbors[e].contains(&n) {
                            stats[rank].cut_edges += 1;
                        }
                    }
                }
                if is_boundary {
                    stats[rank].boundary_elements += 1;
                }
            }
            stats[rank].peers = peer_ranks.len();
        }
        stats
    }
}

/// Communication-relevant statistics of one rank's patch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HaloStats {
    /// Elements owned by the rank.
    pub elements: usize,
    /// Owned elements with at least one off-rank neighbour — the "boundary
    /// part" of the paper's redesigned `bndry_exchangev` (Section 7.6).
    pub boundary_elements: usize,
    /// Element edges cut by the partition (each needs a 4-GLL-point halo
    /// message per field per direction).
    pub cut_edges: usize,
    /// Distinct neighbouring ranks.
    pub peers: usize,
}

impl HaloStats {
    /// Interior (fully local) elements.
    pub fn interior_elements(&self) -> usize {
        self.elements - self.boundary_elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_visits_every_cell_once() {
        for n in [2usize, 4, 8] {
            let mut seen = vec![false; n * n];
            for d in 0..n * n {
                let (x, y) = hilbert_d2xy(n, d);
                assert!(x < n && y < n);
                assert!(!seen[y * n + x], "revisited ({x},{y})");
                seen[y * n + x] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        let n = 8;
        for d in 1..n * n {
            let (x0, y0) = hilbert_d2xy(n, d - 1);
            let (x1, y1) = hilbert_d2xy(n, d);
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "jump between d={} and d={}", d - 1, d);
        }
    }

    #[test]
    fn snake_visits_every_cell_once() {
        let ne = 5;
        let order = face_curve(ne);
        let mut seen = vec![false; ne * ne];
        for &(i, j) in &order {
            assert!(!seen[i * ne + j]);
            seen[i * ne + j] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_is_balanced() {
        let grid = CubedSphere::new(4);
        for nranks in [1usize, 2, 5, 24, 96] {
            let p = Partition::new(&grid, nranks);
            let sizes: Vec<usize> = p.elems_of.iter().map(Vec::len).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "nranks={nranks}: {min}..{max}");
            assert_eq!(sizes.iter().sum::<usize>(), grid.nelem());
        }
    }

    #[test]
    fn every_element_owned_consistently() {
        let grid = CubedSphere::new(2);
        let p = Partition::new(&grid, 6);
        for (rank, elems) in p.elems_of.iter().enumerate() {
            for &e in elems {
                assert_eq!(p.owner[e], rank);
            }
        }
    }

    #[test]
    fn halo_stats_sane() {
        let grid = CubedSphere::new(4);
        let p = Partition::new(&grid, 6);
        let stats = p.halo_stats(&grid);
        for s in &stats {
            assert_eq!(s.elements, 16);
            assert!(s.boundary_elements > 0 && s.boundary_elements <= s.elements);
            assert!(s.peers >= 1);
            assert!(s.cut_edges >= 4, "a compact patch still has a perimeter");
            assert_eq!(s.interior_elements(), s.elements - s.boundary_elements);
        }
        // Cut edges are symmetric: total must be even.
        let total_cut: usize = stats.iter().map(|s| s.cut_edges).sum();
        assert_eq!(total_cut % 2, 0);
    }

    #[test]
    fn single_rank_has_no_halo() {
        let grid = CubedSphere::new(2);
        let p = Partition::new(&grid, 1);
        let stats = p.halo_stats(&grid);
        assert_eq!(stats[0].boundary_elements, 0);
        assert_eq!(stats[0].cut_edges, 0);
        assert_eq!(stats[0].peers, 0);
    }

    #[test]
    fn compact_patches_beat_round_robin_perimeter() {
        // The point of the SFC: fewer cut edges than a scattered assignment.
        let grid = CubedSphere::new(8);
        let p = Partition::new(&grid, 16);
        let sfc_cut: usize = p.halo_stats(&grid).iter().map(|s| s.cut_edges).sum();
        // Round-robin strawman.
        let mut rr = p.clone();
        for (e, o) in rr.owner.iter_mut().enumerate() {
            *o = e % 16;
        }
        rr.elems_of = vec![Vec::new(); 16];
        for e in 0..grid.nelem() {
            rr.elems_of[rr.owner[e]].push(e);
        }
        let rr_cut: usize = rr.halo_stats(&grid).iter().map(|s| s.cut_edges).sum();
        assert!(
            sfc_cut * 2 < rr_cut,
            "SFC cut {sfc_cut} not clearly better than round-robin {rr_cut}"
        );
    }

    #[test]
    #[should_panic(expected = "bad rank count")]
    fn rejects_more_ranks_than_elements() {
        let grid = CubedSphere::new(1);
        let _ = Partition::new(&grid, 7);
    }
}
