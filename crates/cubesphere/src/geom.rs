//! Minimal 3-vector math for sphere geometry.

use std::ops::{Add, Mul, Neg, Sub};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Vec3::new(0.0, 0.0, 0.0)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Panics (debug) on the zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self * (1.0 / n)
    }

    /// Latitude (radians) of this point interpreted as a direction.
    #[inline]
    pub fn latitude(self) -> f64 {
        (self.z / self.norm()).asin()
    }

    /// Longitude (radians, in (-pi, pi]) of this direction.
    #[inline]
    pub fn longitude(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        self * -1.0
    }
}

/// Unit vector pointing east at the given (lat, lon).
#[inline]
pub fn east_unit(lon: f64) -> Vec3 {
    Vec3::new(-lon.sin(), lon.cos(), 0.0)
}

/// Unit vector pointing north at the given (lat, lon).
#[inline]
pub fn north_unit(lat: f64, lon: f64) -> Vec3 {
    Vec3::new(-lat.sin() * lon.cos(), -lat.sin() * lon.sin(), lat.cos())
}

/// Great-circle distance between two unit directions, radians.
pub fn great_circle(a: Vec3, b: Vec3) -> f64 {
    let an = a.normalized();
    let bn = b.normalized();
    an.cross(bn).norm().atan2(an.dot(bn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn dot_cross_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-14);
        assert!(c.dot(b).abs() < 1e-14);
        // |a x b|^2 + (a.b)^2 = |a|^2 |b|^2
        let lhs = c.dot(c) + a.dot(b) * a.dot(b);
        let rhs = a.dot(a) * b.dot(b);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn lat_lon_of_axes() {
        assert!((Vec3::new(1.0, 0.0, 0.0).latitude()).abs() < 1e-15);
        assert!((Vec3::new(1.0, 0.0, 0.0).longitude()).abs() < 1e-15);
        assert!((Vec3::new(0.0, 1.0, 0.0).longitude() - FRAC_PI_2).abs() < 1e-15);
        assert!((Vec3::new(0.0, 0.0, 2.0).latitude() - FRAC_PI_2).abs() < 1e-15);
    }

    #[test]
    fn local_basis_is_orthonormal() {
        let (lat, lon) = (0.7, -2.1);
        let e = east_unit(lon);
        let n = north_unit(lat, lon);
        let r = Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin());
        assert!((e.norm() - 1.0).abs() < 1e-14);
        assert!((n.norm() - 1.0).abs() < 1e-14);
        assert!(e.dot(n).abs() < 1e-14);
        assert!(e.dot(r).abs() < 1e-14);
        assert!(n.dot(r).abs() < 1e-14);
        // Right-handed: east x north = up.
        assert!((e.cross(n) - r).norm() < 1e-14);
    }

    #[test]
    fn great_circle_quarter_turn() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert!((great_circle(a, b) - FRAC_PI_2).abs() < 1e-14);
        let c = Vec3::new(-1.0, 0.0, 0.0);
        assert!((great_circle(a, c) - PI).abs() < 1e-7);
    }
}
