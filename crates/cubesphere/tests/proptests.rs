//! Property-based tests of the mesh substrate.

use cubesphere::{CubedSphere, Face, GllBasis, Partition, PointMetric};
use proptest::prelude::*;

proptest! {
    /// GLL quadrature integrates random polynomials of exactness degree
    /// (2 np - 3) exactly.
    #[test]
    fn gll_quadrature_exact_on_random_polynomials(
        np in 3usize..8,
        coeffs in proptest::collection::vec(-10.0f64..10.0, 12),
    ) {
        let b = GllBasis::new(np);
        let deg = 2 * np - 3;
        let poly = |x: f64| -> f64 {
            coeffs.iter().take(deg + 1).enumerate().map(|(k, c)| c * x.powi(k as i32)).sum()
        };
        let exact: f64 = coeffs
            .iter()
            .take(deg + 1)
            .enumerate()
            .map(|(k, c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
            .sum();
        let nodal: Vec<f64> = b.points.iter().map(|&x| poly(x)).collect();
        let got = b.integrate(&nodal);
        prop_assert!((got - exact).abs() < 1e-9 * exact.abs().max(1.0), "{got} vs {exact}");
    }

    /// Face mapping round-trips for arbitrary interior coordinates.
    #[test]
    fn face_roundtrip(
        face in 0usize..6,
        a in -0.78f64..0.78,
        b in -0.78f64..0.78,
    ) {
        let f = Face::new(face);
        let p = f.to_sphere(a, b);
        prop_assert!((p.norm() - 1.0).abs() < 1e-14);
        let (a2, b2) = f.from_sphere(p);
        prop_assert!((a - a2).abs() < 1e-11 && (b - b2).abs() < 1e-11);
    }

    /// The metric velocity transform round-trips arbitrary vectors at
    /// arbitrary points.
    #[test]
    fn metric_velocity_roundtrip(
        face in 0usize..6,
        a in -0.7f64..0.7,
        b in -0.7f64..0.7,
        u in -300.0f64..300.0,
        v in -300.0f64..300.0,
    ) {
        let m = PointMetric::at(&Face::new(face), a, b);
        let (c1, c2) = m.to_contra(u, v);
        let (u2, v2) = m.to_physical(c1, c2);
        prop_assert!((u - u2).abs() < 1e-8 && (v - v2).abs() < 1e-8);
    }

    /// Every partition of every small grid is balanced and covers every
    /// element exactly once.
    #[test]
    fn partitions_are_balanced_covers(ne in 1usize..5, denom in 1usize..12) {
        let grid = CubedSphere::new(ne);
        let nranks = (grid.nelem() / denom).max(1);
        let p = Partition::new(&grid, nranks);
        let mut seen = vec![false; grid.nelem()];
        let mut min = usize::MAX;
        let mut max = 0;
        for (rank, elems) in p.elems_of.iter().enumerate() {
            min = min.min(elems.len());
            max = max.max(elems.len());
            for &e in elems {
                prop_assert!(!seen[e], "element {e} assigned twice");
                seen[e] = true;
                prop_assert_eq!(p.owner[e], rank);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert!(max - min <= 1, "imbalance {min}..{max}");
    }

    /// Grid invariants hold for every ne: Euler point count, positive
    /// masses, four edge neighbours.
    #[test]
    fn grid_invariants(ne in 1usize..6) {
        let g = CubedSphere::new(ne);
        prop_assert_eq!(g.nelem(), 6 * ne * ne);
        prop_assert_eq!(g.nglobal, 6 * (3 * ne) * (3 * ne) + 2);
        prop_assert!(g.inv_mass.iter().all(|&m| m > 0.0 && m.is_finite()));
        for e in 0..g.nelem() {
            prop_assert_eq!(g.edge_neighbors[e].len(), 4);
        }
    }
}
