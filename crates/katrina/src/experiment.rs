//! The Katrina lifecycle experiment (paper Section 9 / Figure 9).
//!
//! Design, and the substitutions it makes explicit (see DESIGN.md):
//!
//! * The paper runs global CAM at ne30 (100 km) vs ne120 (25 km) from real
//!   initial conditions. The reproduction runs the same *effective*
//!   resolutions on a reduced-radius planet (DCMIP small-planet practice):
//!   `ne x reduction` gives the effective `ne`, so `ne4 x 7.5 = ne30-class`
//!   and `ne16 x 7.5 = ne120-class` run on one host core.
//! * The storm seed is the Reed–Jablonowski analytic vortex with Katrina's
//!   observed genesis position and simple physics over a 302.15 K ocean.
//! * The synoptic steering that the paper gets from real analyses is
//!   prescribed from the observed storm motion; the model supplies
//!   intensity evolution and mesoscale drift about that steering. The
//!   simulated Earth track is `observed_start + integral(steering) +
//!   model-internal drift`.

use crate::besttrack::{observed_steering, KT_PER_MS, OBSERVED};
use crate::scenario::model_config;
use crate::tracker::{find_storm, TrackPoint};
use crate::vortex::VortexParams;
use swcam_core::Swcam;

/// Configuration of one Katrina run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KatrinaConfig {
    /// Elements per cube edge of the actual mesh.
    pub ne: usize,
    /// Small-planet reduction factor.
    pub reduction: f64,
    /// Vertical layers.
    pub nlev: usize,
    /// Earth-equivalent hours to simulate (model hours = this / reduction).
    pub earth_hours: f64,
    /// Tracker output interval in Earth-equivalent hours.
    pub output_every: f64,
}

impl KatrinaConfig {
    /// The ne30-class (100 km) run that fails to capture the storm.
    pub fn ne30_class() -> Self {
        KatrinaConfig { ne: 4, reduction: 7.5, nlev: 12, earth_hours: 120.0, output_every: 6.0 }
    }

    /// The ne120-class (25 km) run that captures it (the storm spins up
    /// over the first ~2 simulated days, as real tropical cyclones do).
    pub fn ne120_class() -> Self {
        KatrinaConfig { ne: 16, reduction: 7.5, nlev: 12, earth_hours: 120.0, output_every: 6.0 }
    }

    /// Effective resolution in km (the paper's `ne` convention).
    pub fn effective_resolution_km(&self) -> f64 {
        cubesphere::resolution_km(self.ne) / self.reduction
    }
}

/// One fix of the synthesized Earth track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarthFix {
    /// Earth-equivalent hours since genesis.
    pub hours: f64,
    /// Latitude, degrees.
    pub lat_deg: f64,
    /// Longitude, degrees.
    pub lon_deg: f64,
    /// Maximum sustained wind, knots.
    pub msw_kt: f64,
    /// Minimum surface pressure, hPa.
    pub min_ps_hpa: f64,
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct KatrinaResult {
    /// The configuration that produced it.
    pub config: KatrinaConfig,
    /// Raw model-sphere track.
    pub model_track: Vec<TrackPoint>,
    /// Synthesized Earth track (steering + model drift).
    pub earth_track: Vec<EarthFix>,
    /// Peak simulated maximum sustained wind, knots.
    pub peak_msw_kt: f64,
    /// Minimum simulated central pressure, hPa.
    pub min_ps_hpa: f64,
    /// ASCII wind-speed snapshot of the storm at the end of the run
    /// (the Figure 9 (a)/(b) analog).
    pub final_map: String,
}

/// Run the experiment.
pub fn run(config: KatrinaConfig) -> KatrinaResult {
    let mut model = Swcam::new(model_config(&config));

    // Seed the vortex at Katrina's genesis position.
    let planet = model.config.planet;
    let (lat0, lon0) = (OBSERVED[0].lat.to_radians(), OBSERVED[0].lon.to_radians());
    let vp = VortexParams::reed_jablonowski(lat0, lon0, planet.radius, planet.omega);
    let radius = planet.radius;
    model.init_with(
        |lat, lon| vp.ps(vp.distance(lat, lon, radius)),
        |lat, lon, _k, pm| vp.state_at(lat, lon, pm, radius),
    );

    // Time compression: one model hour = `reduction` Earth hours.
    let x = config.reduction;
    let model_seconds_total = config.earth_hours * 3600.0 / x;
    let steps_total = (model_seconds_total / model.dycore.cfg.dt).ceil() as usize;
    let out_every_steps = ((config.output_every * 3600.0 / x) / model.dycore.cfg.dt)
        .round()
        .max(1.0) as usize;

    let search = 0.25; // tracker search radius, radians
    let mut model_track = vec![find_storm(&model, search)];
    for s in 1..=steps_total {
        model.step();
        if s % out_every_steps == 0 || s == steps_total {
            let prev = model_track.last().map(|f| (f.lat, f.lon));
            model_track.push(crate::tracker::find_storm_near(&model, prev, search));
        }
    }
    let final_map = storm_snapshot(&model, model_track.last().expect("track non-empty"));

    // Synthesize the Earth track: start at the observed genesis point,
    // advance with the observed steering, and add the model's own drift
    // about its initial position (converted 1:1 in angle — the small
    // planet preserves angular displacements per Earth-hour).
    let mut earth_track = Vec::with_capacity(model_track.len());
    let (mut lat_deg, mut lon_deg) = (OBSERVED[0].lat, OBSERVED[0].lon);
    let mut prev_hours = 0.0;
    let mut prev_model = (model_track[0].lat, model_track[0].lon);
    for fix in &model_track {
        let earth_hours = fix.hours * x;
        // Steering advance over [prev, now].
        let mut t = prev_hours;
        while t < earth_hours - 1e-9 {
            let dt = (earth_hours - t).min(1.0);
            let (dlat, dlon) = observed_steering(t);
            lat_deg += dlat * dt;
            lon_deg += dlon * dt;
            t += dt;
        }
        prev_hours = earth_hours;
        // Model-internal drift since the last fix (degrees).
        let dlat_m = (fix.lat - prev_model.0).to_degrees();
        let dlon_m = (fix.lon - prev_model.1).to_degrees();
        prev_model = (fix.lat, fix.lon);
        lat_deg += dlat_m;
        lon_deg += dlon_m;
        earth_track.push(EarthFix {
            hours: earth_hours,
            lat_deg,
            lon_deg,
            msw_kt: fix.msw * KT_PER_MS,
            min_ps_hpa: fix.min_ps / 100.0,
        });
    }

    let peak_msw_kt =
        earth_track.iter().map(|f| f.msw_kt).fold(0.0, f64::max);
    let min_ps_hpa =
        earth_track.iter().map(|f| f.min_ps_hpa).fold(f64::MAX, f64::min);
    KatrinaResult { config, model_track, earth_track, peak_msw_kt, min_ps_hpa, final_map }
}

/// Render an ASCII wind-speed map of the storm's neighbourhood (the
/// reproduction's stand-in for the paper's Figure 9 (a)/(b) upwelling-flux
/// and wind-field panels). Rows south to north around the tracked center.
fn storm_snapshot(model: &swcam_core::Swcam, center: &TrackPoint) -> String {
    use cubesphere::{ascii_map, Regridder};
    let nlev = model.config.nlev;
    // Surface wind speed as an element field.
    let speed: Vec<Vec<f64>> = model
        .state
        .elems()
        .map(|es| {
            (0..cubesphere::NPTS)
                .map(|p| {
                    let i = (nlev - 1) * cubesphere::NPTS + p;
                    (es.u[i] * es.u[i] + es.v[i] * es.v[i]).sqrt()
                })
                .collect()
        })
        .collect();
    let rg = Regridder::new(&model.dycore.grid);
    // A window of +-0.35 rad around the center.
    let (nlat, nlon) = (17usize, 33usize);
    let mut vals = Vec::with_capacity(nlat * nlon);
    for i in 0..nlat {
        let lat = center.lat - 0.35 + 0.7 * i as f64 / (nlat - 1) as f64;
        for j in 0..nlon {
            let lon = center.lon - 0.35 + 0.7 * j as f64 / (nlon - 1) as f64;
            vals.push(rg.sample(&speed, lat, lon));
        }
    }
    ascii_map(&vals, nlat, nlon, " .:-=+*#%@")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_resolutions_match_paper_classes() {
        assert!((KatrinaConfig::ne30_class().effective_resolution_km() - 100.0).abs() < 1.0);
        assert!((KatrinaConfig::ne120_class().effective_resolution_km() - 25.0).abs() < 1.0);
    }

    #[test]
    fn short_coarse_run_completes_and_tracks() {
        // A very short ne30-class run: the machinery must work end to end.
        let cfg = KatrinaConfig {
            ne: 4,
            reduction: 7.5,
            nlev: 8,
            earth_hours: 3.0,
            output_every: 1.5,
        };
        let result = run(cfg);
        assert!(result.model_track.len() >= 2);
        assert_eq!(result.earth_track.len(), result.model_track.len());
        // The storm exists: a pressure deficit and some wind.
        assert!(result.min_ps_hpa < 1008.0);
        assert!(result.peak_msw_kt > 10.0);
        // Track starts at the observed genesis point.
        let first = &result.earth_track[0];
        assert!((first.lat_deg - OBSERVED[0].lat).abs() < 0.5);
        assert!((first.lon_deg - OBSERVED[0].lon).abs() < 0.5);
        // Winds stay physical.
        assert!(result.peak_msw_kt < 250.0);
    }
}
