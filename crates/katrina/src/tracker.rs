//! Vortex tracker: find the storm center (minimum surface pressure) and
//! the maximum sustained wind near it — the quantities plotted in the
//! paper's Figure 9 (c) and (d).

use swcam_core::Swcam;

/// One tracked fix of the simulated storm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    /// Simulated hours since initialization (model time).
    pub hours: f64,
    /// Storm-center latitude, radians (model sphere).
    pub lat: f64,
    /// Storm-center longitude, radians.
    pub lon: f64,
    /// Minimum surface pressure, Pa.
    pub min_ps: f64,
    /// Maximum surface wind within the search radius, m/s.
    pub msw: f64,
}

/// Locate the storm in the current model state.
///
/// `search_angle` is the angular radius (radians) around the pressure
/// minimum inside which the maximum wind is taken (the tracker standard is
/// a few degrees; on a reduced planet the same angle covers the same
/// *relative* storm area).
pub fn find_storm(model: &Swcam, search_angle: f64) -> TrackPoint {
    find_storm_near(model, None, search_angle)
}

/// Locate the storm with a persistence constraint: when `prev` is given,
/// only pressure minima within `2 x search_angle` of the previous fix are
/// considered (operational trackers do the same to avoid jumping to an
/// unrelated low).
pub fn find_storm_near(
    model: &Swcam,
    prev: Option<(f64, f64)>,
    search_angle: f64,
) -> TrackPoint {
    let ps = model.surface_pressure();
    let coords = model.column_coords();
    let near = |lat: f64, lon: f64| -> bool {
        match prev {
            None => true,
            Some((plat, plon)) => {
                let dlat = lat - plat;
                let mut dlon = lon - plon;
                if dlon > std::f64::consts::PI {
                    dlon -= 2.0 * std::f64::consts::PI;
                }
                if dlon < -std::f64::consts::PI {
                    dlon += 2.0 * std::f64::consts::PI;
                }
                dlat * dlat + (dlon * plat.cos()).powi(2)
                    <= (0.3 * search_angle) * (0.3 * search_angle)
            }
        }
    };
    let (imin, &min_ps) = ps
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let (lat, lon) = coords[*i];
            near(lat, lon)
        })
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite pressure"))
        .expect("non-empty search region");
    let (clat, clon) = coords[imin];

    // Max wind near the center.
    let nlev = model.config.nlev;
    let mut msw = 0.0f64;
    let mut idx = 0usize;
    for es in model.state.elems() {
        for p in 0..cubesphere::NPTS {
            let (lat, lon) = coords[idx];
            idx += 1;
            let dlat = lat - clat;
            let mut dlon = lon - clon;
            if dlon > std::f64::consts::PI {
                dlon -= 2.0 * std::f64::consts::PI;
            }
            if dlon < -std::f64::consts::PI {
                dlon += 2.0 * std::f64::consts::PI;
            }
            let ang2 = dlat * dlat + (dlon * clat.cos()).powi(2);
            if ang2 <= search_angle * search_angle {
                let i = (nlev - 1) * cubesphere::NPTS + p;
                let w = (es.u[i] * es.u[i] + es.v[i] * es.v[i]).sqrt();
                msw = msw.max(w);
            }
        }
    }
    TrackPoint { hours: model.time / 3600.0, lat: clat, lon: clon, min_ps, msw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vortex::VortexParams;
    use swcam_core::{ModelConfig, Planet, SuiteChoice, Swcam};

    #[test]
    fn tracker_finds_a_planted_vortex() {
        let mut cfg = ModelConfig::for_ne(4);
        cfg.nlev = 8;
        cfg.suite = SuiteChoice::None;
        cfg.qsize = 0;
        cfg.planet = Planet::small(20.0);
        let mut model = Swcam::new(cfg);
        let planet = model.config.planet;
        let vp = VortexParams::reed_jablonowski(
            20f64.to_radians(),
            30f64.to_radians(),
            planet.radius,
            planet.omega,
        );
        let radius = planet.radius;
        model.init_with(
            |lat, lon| vp.ps(vp.distance(lat, lon, radius)),
            |lat, lon, _k, pm| {
                let (u, v, t, _q) = vp.state_at(lat, lon, pm, radius);
                (u, v, t, 0.0)
            },
        );
        let fix = find_storm(&model, 0.2);
        assert!(
            (fix.lat - 20f64.to_radians()).abs() < 0.08,
            "center lat {} vs 0.349",
            fix.lat
        );
        assert!((fix.lon - 30f64.to_radians()).abs() < 0.08, "center lon {}", fix.lon);
        assert!(fix.min_ps < cubesphere::P0 - 500.0, "deficit found: {}", fix.min_ps);
        assert!(fix.msw > 10.0, "wind found: {}", fix.msw);
        assert_eq!(fix.hours, 0.0);
    }
}
