//! # katrina — the hurricane-Katrina lifecycle experiment
//!
//! Reproduction of the paper's Section 9 / Figure 9: simulate the storm at
//! 100 km-class ("ne30") and 25 km-class ("ne120") effective resolution and
//! compare track and intensity against the NOAA/NHC observed best track.
//! The coarse run fails to maintain/intensify the cyclone; the fine run
//! captures a trackable, intensifying storm — the paper's central
//! scientific claim for ultra-high resolution.
//!
//! Substitutions relative to the paper (documented in DESIGN.md): analytic
//! Reed–Jablonowski vortex seed instead of analysis data, reduced-radius
//! planet instead of a full ne120 Earth mesh, observed-motion steering
//! instead of a real synoptic environment.

pub mod besttrack;
pub mod experiment;
pub mod scenario;
pub mod tracker;
pub mod vortex;

pub use besttrack::{observed_position, observed_steering, BestTrackPoint, KT_PER_MS, OBSERVED};
pub use experiment::{run, EarthFix, KatrinaConfig, KatrinaResult};
pub use scenario::{model_config, register_scenario, scenario};
pub use tracker::{find_storm, TrackPoint};
pub use vortex::VortexParams;
