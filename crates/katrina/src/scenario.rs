//! The Katrina hindcast as a [`ScenarioSpec`]: the experiment's namelist +
//! vortex seeding packaged as registry data, so the ensemble engine can
//! batch Katrina members exactly like the built-in workloads.

use crate::besttrack::OBSERVED;
use crate::experiment::KatrinaConfig;
use crate::vortex::VortexParams;
use std::sync::Arc;
use swcam_core::{
    init_columns, ModelConfig, Planet, ScenarioRegistry, ScenarioSpec, SuiteChoice,
};

/// The model namelist a [`KatrinaConfig`] implies (shared by the
/// standalone experiment and the registry entry).
pub fn model_config(config: &KatrinaConfig) -> ModelConfig {
    let mut mc = ModelConfig::for_ne(config.ne);
    mc.nlev = config.nlev;
    mc.qsize = 3;
    mc.suite = SuiteChoice::Simple;
    mc.planet = Planet::small(config.reduction);
    mc.sst = 302.15;
    mc
}

/// Package a [`KatrinaConfig`] as a registry scenario: Reed–Jablonowski
/// vortex at Katrina's observed genesis position over a 302.15 K ocean on
/// the reduced-radius planet. `perturb_t` seeds ensemble spread around the
/// deterministic hindcast (0.1 K — small against the storm's warm core).
pub fn scenario(config: &KatrinaConfig) -> ScenarioSpec {
    let mc = model_config(config);
    let (lat0, lon0) = (OBSERVED[0].lat.to_radians(), OBSERVED[0].lon.to_radians());
    let vp = VortexParams::reed_jablonowski(lat0, lon0, mc.planet.radius, mc.planet.omega);
    ScenarioSpec {
        name: "katrina",
        summary: "hurricane-Katrina hindcast: balanced RJ vortex, warm ocean, small planet",
        config: mc,
        perturb_t: 0.1,
        init: Arc::new(move |dy, cfg, st| {
            let radius = cfg.planet.radius;
            init_columns(
                dy,
                cfg.nlev,
                cfg.qsize,
                st,
                &|lat, lon| vp.ps(vp.distance(lat, lon, radius)),
                &|lat, lon, _k, pm| vp.state_at(lat, lon, pm, radius),
            );
        }),
    }
}

/// Register the ne30-class hindcast under the name `katrina`.
pub fn register_scenario(reg: &mut ScenarioRegistry) {
    reg.register(scenario(&KatrinaConfig::ne30_class()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use swcam_core::{Ensemble, EnsembleConfig, MemberStatus};

    #[test]
    fn katrina_scenario_registers_and_builds() {
        let mut reg = ScenarioRegistry::builtin();
        register_scenario(&mut reg);
        let spec = reg.get("katrina").expect("registered");
        spec.config.validate().expect("valid namelist");
        assert_eq!(spec.config.suite, SuiteChoice::Simple);
        assert!(spec.config.planet.reduction() > 1.0);
        // The seeded vortex is present: a central pressure deficit.
        let model = spec.build_model(1);
        let ps = model.surface_pressure();
        let min = ps.iter().cloned().fold(f64::MAX, f64::min);
        let max = ps.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < cubesphere::P0 - 500.0, "no pressure deficit: min {min}");
        assert!(max > min + 500.0);
    }

    #[test]
    fn katrina_ensemble_member_matches_standalone_bitwise() {
        // Shrunk hindcast through the batch driver, pinned against the
        // standalone model.
        let small =
            KatrinaConfig { ne: 2, reduction: 7.5, nlev: 6, earth_hours: 1.0, output_every: 1.0 };
        let spec = scenario(&small);
        let mut ens = Ensemble::new(
            spec.clone(),
            EnsembleConfig { lanes: 2, max_rollbacks: 2, ..EnsembleConfig::default() },
        );
        ens.submit(3, 2);
        ens.submit(4, 2);
        let reports = ens.run_all().expect("batch runs");
        assert_eq!(reports.len(), 2);
        for (r, seed) in reports.iter().zip([3u64, 4]) {
            assert_eq!(r.status, MemberStatus::Finished);
            let mut oracle = spec.build_model(seed);
            oracle.run_steps(2);
            assert_eq!(
                r.state.max_abs_diff(&oracle.state),
                0.0,
                "katrina member seed {seed} diverged from standalone"
            );
        }
    }
}
