//! Analytic initial tropical-cyclone vortex (after Reed & Jablonowski
//! 2011), placed on the model sphere in gradient-wind balance.
//!
//! The real Katrina run initialized CAM from analysis data; the
//! reproduction substitutes the standard analytic TC seed the community
//! uses for exactly this purpose: a warm-core low with a prescribed surface
//! pressure deficit, a moist tropical sounding, and a balanced tangential
//! wind that decays with height.

use cubesphere::consts::{GRAV, P0, RD};
use cubesphere::Vec3;

/// Vortex parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VortexParams {
    /// Center latitude, radians.
    pub lat0: f64,
    /// Center longitude, radians.
    pub lon0: f64,
    /// Surface pressure deficit at the center, Pa.
    pub dp: f64,
    /// Radial size parameter, m (on the *physical* planet in use).
    pub rp: f64,
    /// Vertical decay scale of the wind/pressure anomaly, m.
    pub zp: f64,
    /// Surface temperature of the background sounding, K.
    pub ts: f64,
    /// Tropospheric lapse rate, K/m.
    pub gamma: f64,
    /// Surface specific humidity, kg/kg.
    pub q0: f64,
    /// Humidity decay scales, m.
    pub zq1: f64,
    /// Second (quadratic) humidity decay scale, m.
    pub zq2: f64,
    /// Coriolis parameter at the vortex center, 1/s.
    pub fc: f64,
}

impl VortexParams {
    /// Reed–Jablonowski defaults, with the radial scale expressed relative
    /// to the planet in use (`radius`): on Earth `rp ~ 282 km`.
    pub fn reed_jablonowski(lat0: f64, lon0: f64, radius: f64, omega: f64) -> Self {
        let earth_rp = 282_000.0;
        VortexParams {
            lat0,
            lon0,
            dp: 1115.0,
            rp: earth_rp * radius / cubesphere::EARTH_RADIUS,
            zp: 7000.0,
            ts: 302.15,
            gamma: 0.007,
            q0: 0.021,
            zq1: 3000.0,
            zq2: 8000.0,
            fc: 2.0 * omega * lat0.sin(),
        }
    }

    /// Great-circle distance (m) from the vortex center to `(lat, lon)` on
    /// a sphere of radius `radius`.
    pub fn distance(&self, lat: f64, lon: f64, radius: f64) -> f64 {
        let a = Vec3::new(
            self.lat0.cos() * self.lon0.cos(),
            self.lat0.cos() * self.lon0.sin(),
            self.lat0.sin(),
        );
        let b = Vec3::new(lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin());
        cubesphere::geom::great_circle(a, b) * radius
    }

    /// Surface pressure at radius `r` from the center.
    pub fn ps(&self, r: f64) -> f64 {
        P0 - self.dp * (-(r / self.rp).powf(1.5)).exp()
    }

    /// Background temperature at height `z` (capped tropopause).
    pub fn t_background(&self, z: f64) -> f64 {
        (self.ts - self.gamma * z).max(200.0)
    }

    /// Background specific humidity at height `z`.
    pub fn q_background(&self, z: f64) -> f64 {
        if z > 15_000.0 {
            1.0e-8
        } else {
            self.q0 * (-z / self.zq1).exp() * (-(z / self.zq2).powi(2)).exp()
        }
    }

    /// Approximate height of pressure level `p` in the background sounding
    /// (isothermal-layer inversion of the hypsometric equation).
    pub fn z_of_p(&self, p: f64) -> f64 {
        // Constant-lapse-rate atmosphere: z = Ts/Gamma (1 - (p/p0)^(R Gamma/g)).
        let ex = RD * self.gamma / GRAV;
        self.ts / self.gamma * (1.0 - (p / P0).powf(ex))
    }

    /// Gradient-wind-balanced tangential speed at radius `r`, height `z`
    /// (positive = cyclonic).
    pub fn tangential_wind(&self, r: f64, z: f64) -> f64 {
        if r < 1.0 {
            return 0.0;
        }
        let decay = (-(z / self.zp).powi(2)).exp();
        // Radial pressure-gradient force per unit mass from the ps profile:
        // (1/rho) dp/dr with the anomaly decaying in height.
        let x = (r / self.rp).powf(1.5);
        let dpdr = self.dp * 1.5 * x / r * (-x).exp() * decay;
        let rho = P0 / (RD * self.t_background(z));
        let f = self.fc.abs();
        let v = -f * r / 2.0 + ((f * r / 2.0).powi(2) + r * dpdr / rho).sqrt();
        if self.fc >= 0.0 {
            v
        } else {
            -v
        }
    }

    /// The full initial condition at `(lat, lon, p)`: returns
    /// `(u, v, T, qv)`. The wind is tangential around the center.
    pub fn state_at(&self, lat: f64, lon: f64, p: f64, radius: f64) -> (f64, f64, f64, f64) {
        let z = self.z_of_p(p);
        let r = self.distance(lat, lon, radius);
        let vt = self.tangential_wind(r, z);
        // Unit vector tangential (counter-clockwise around the center for
        // northern-hemisphere cyclones): rotate the radial direction by 90
        // degrees in the local tangent plane.
        let (du, dv) = self.tangential_direction(lat, lon);
        // Warm core in hydrostatic balance with the height-decaying
        // pressure anomaly: with ln p = ln pbar + ln(1 - A) and
        // A = (dp/p0) exp(-(r/rp)^1.5) exp(-(z/zp)^2),
        // T = Tbar / (1 - (Rd Tbar / g) * 2 z A / (zp^2 (1 - A))).
        let tbar = self.t_background(z);
        let a = self.dp / P0
            * (-(r / self.rp).powf(1.5)).exp()
            * (-(z / self.zp).powi(2)).exp();
        let denom = 1.0
            - RD * tbar / GRAV * 2.0 * z * a / (self.zp * self.zp * (1.0 - a));
        let t = tbar / denom.max(0.5);
        let qv = self.q_background(z);
        (vt * du, vt * dv, t, qv)
    }

    /// Local east/north components of the cyclonic tangential unit vector.
    fn tangential_direction(&self, lat: f64, lon: f64) -> (f64, f64) {
        // Bearing from the point toward the center; tangential direction is
        // 90 degrees to the left of it in the NH (cyclonic).
        let dlon = self.lon0 - lon;
        let y = dlon.sin() * self.lat0.cos();
        let x = lat.cos() * self.lat0.sin() - lat.sin() * self.lat0.cos() * dlon.cos();
        let norm = (x * x + y * y).sqrt();
        if norm < 1e-12 {
            return (0.0, 0.0);
        }
        // Unit vector toward the center: (east, north) = (y, x)/norm.
        // The cyclonic (counter-clockwise) tangential direction is the
        // inward vector rotated 90 degrees clockwise: (e, n) -> (n, -e).
        (x / norm, -y / norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesphere::consts::{EARTH_RADIUS, OMEGA};

    fn params() -> VortexParams {
        VortexParams::reed_jablonowski(25f64.to_radians(), -80f64.to_radians(), EARTH_RADIUS, OMEGA)
    }

    #[test]
    fn pressure_deficit_structure() {
        let v = params();
        assert!((v.ps(0.0) - (P0 - 1115.0)).abs() < 1e-9);
        assert!(v.ps(5.0e6) > P0 - 1.0, "far field at ambient pressure");
        assert!(v.ps(v.rp) > v.ps(0.0) && v.ps(v.rp) < P0);
    }

    #[test]
    fn wind_profile_has_a_radius_of_maximum_wind() {
        let v = params();
        let winds: Vec<(f64, f64)> =
            (1..200).map(|i| { let r = i as f64 * 5_000.0; (r, v.tangential_wind(r, 100.0)) }).collect();
        let (rmax, vmax) =
            winds.iter().cloned().reduce(|a, b| if b.1 > a.1 { b } else { a }).unwrap();
        assert!(vmax > 15.0 && vmax < 80.0, "vmax = {vmax}");
        assert!(rmax > 20_000.0 && rmax < 400_000.0, "rmax = {rmax}");
        // Decays both inward and outward of the maximum.
        assert!(v.tangential_wind(1_000.0, 100.0) < vmax / 2.0);
        assert!(v.tangential_wind(3.0e6, 100.0) < vmax / 3.0);
        // Cyclonic in the NH.
        assert!(winds.iter().all(|&(_, w)| w >= 0.0));
    }

    #[test]
    fn wind_decays_with_height() {
        let v = params();
        let r = 100_000.0;
        assert!(v.tangential_wind(r, 0.0) > v.tangential_wind(r, 5_000.0));
        assert!(v.tangential_wind(r, 12_000.0) < 0.2 * v.tangential_wind(r, 0.0));
    }

    #[test]
    fn sounding_is_tropical() {
        let v = params();
        assert!((v.t_background(0.0) - 302.15).abs() < 1e-12);
        assert!(v.t_background(20_000.0) >= 200.0);
        assert!(v.q_background(0.0) > 0.02);
        assert!(v.q_background(10_000.0) < 1e-3);
        // z(p) inverts reasonably: 500 hPa near 5-6 km.
        let z500 = v.z_of_p(50_000.0);
        assert!(z500 > 4_500.0 && z500 < 7_000.0, "z500 = {z500}");
    }

    #[test]
    fn circulation_is_counterclockwise_around_center() {
        let v = params();
        // Directly east of the center the cyclonic wind blows northward.
        let (u, vv, _, _) =
            v.state_at(v.lat0, v.lon0 + 0.05, 95_000.0, EARTH_RADIUS);
        assert!(vv > 0.0, "east of center: northward, got v = {vv}");
        assert!(u.abs() < vv.abs() * 0.5, "mostly meridional there, u = {u}");
        // Directly north of the center: westward.
        let (u2, v2, _, _) =
            v.state_at(v.lat0 + 0.05, v.lon0, 95_000.0, EARTH_RADIUS);
        assert!(u2 < 0.0, "north of center: westward, got u = {u2}");
        let _ = v2;
    }

    #[test]
    fn warm_core_is_warm_and_decays_with_radius_and_height() {
        let v = params();
        // Mid-troposphere, at the center vs far away.
        let p_mid = 50_000.0;
        let (_, _, t_core, _) = v.state_at(v.lat0, v.lon0, p_mid, EARTH_RADIUS);
        let (_, _, t_far, _) =
            v.state_at(v.lat0 + 0.5, v.lon0 + 0.5, p_mid, EARTH_RADIUS);
        assert!(t_core > t_far + 0.5, "warm core: {t_core} vs {t_far}");
        assert!(t_core - t_far < 20.0, "anomaly physically sized");
        // Near the surface (z ~ 0) the hydrostatic anomaly vanishes.
        let (_, _, t_sfc_core, _) = v.state_at(v.lat0, v.lon0, 99_000.0, EARTH_RADIUS);
        let (_, _, t_sfc_far, _) =
            v.state_at(v.lat0 + 0.5, v.lon0 + 0.5, 99_000.0, EARTH_RADIUS);
        assert!((t_sfc_core - t_sfc_far).abs() < 1.0);
    }

    #[test]
    fn small_planet_scaling_shrinks_the_core() {
        let x = 20.0;
        let small = VortexParams::reed_jablonowski(
            25f64.to_radians(),
            -80f64.to_radians(),
            EARTH_RADIUS / x,
            OMEGA * x,
        );
        let big = params();
        assert!((small.rp - big.rp / x).abs() < 1.0);
        // Same angular size -> same ps at the same angular distance.
        let ang = 0.05;
        let ps_small = small.ps(small.distance(25f64.to_radians() + ang, -80f64.to_radians(), EARTH_RADIUS / x));
        let ps_big = big.ps(big.distance(25f64.to_radians() + ang, -80f64.to_radians(), EARTH_RADIUS));
        assert!((ps_small - ps_big).abs() < 1.0, "{ps_small} vs {ps_big}");
    }
}
