//! Observed best track of Hurricane Katrina (NOAA/NHC public record,
//! 6-hourly, 2005-08-23 18 UTC through 2005-08-31 06 UTC).
//!
//! This is the same observational reference the paper plots in Figure 9
//! (c) and (d): positions from the National Hurricane Center best track,
//! maximum sustained winds in knots.

/// One best-track fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestTrackPoint {
    /// Hours since the first fix (2005-08-23 18 UTC).
    pub hours: f64,
    /// Latitude, degrees north.
    pub lat: f64,
    /// Longitude, degrees east (negative = west).
    pub lon: f64,
    /// Maximum sustained wind, knots.
    pub msw_kt: f64,
    /// Minimum central pressure, hPa.
    pub min_p_hpa: f64,
}

/// The observed record (abridged 6–12-hourly fixes covering genesis,
/// Florida landfall, Gulf intensification to Category 5, Louisiana
/// landfall, and decay).
pub const OBSERVED: &[BestTrackPoint] = &[
    BestTrackPoint { hours: 0.0, lat: 23.1, lon: -75.1, msw_kt: 30.0, min_p_hpa: 1008.0 },
    BestTrackPoint { hours: 12.0, lat: 23.4, lon: -75.7, msw_kt: 35.0, min_p_hpa: 1007.0 },
    BestTrackPoint { hours: 24.0, lat: 24.5, lon: -76.5, msw_kt: 45.0, min_p_hpa: 1003.0 },
    BestTrackPoint { hours: 36.0, lat: 26.0, lon: -77.7, msw_kt: 55.0, min_p_hpa: 994.0 },
    BestTrackPoint { hours: 48.0, lat: 26.2, lon: -79.6, msw_kt: 70.0, min_p_hpa: 984.0 },
    BestTrackPoint { hours: 60.0, lat: 25.4, lon: -81.3, msw_kt: 65.0, min_p_hpa: 987.0 },
    BestTrackPoint { hours: 72.0, lat: 24.9, lon: -83.3, msw_kt: 85.0, min_p_hpa: 959.0 },
    BestTrackPoint { hours: 84.0, lat: 24.4, lon: -84.6, msw_kt: 95.0, min_p_hpa: 942.0 },
    BestTrackPoint { hours: 96.0, lat: 24.8, lon: -86.2, msw_kt: 100.0, min_p_hpa: 948.0 },
    BestTrackPoint { hours: 108.0, lat: 25.2, lon: -87.7, msw_kt: 125.0, min_p_hpa: 930.0 },
    BestTrackPoint { hours: 120.0, lat: 26.3, lon: -88.6, msw_kt: 145.0, min_p_hpa: 902.0 },
    BestTrackPoint { hours: 132.0, lat: 28.2, lon: -89.6, msw_kt: 125.0, min_p_hpa: 905.0 },
    BestTrackPoint { hours: 138.0, lat: 29.5, lon: -89.6, msw_kt: 110.0, min_p_hpa: 920.0 },
    BestTrackPoint { hours: 144.0, lat: 31.1, lon: -89.6, msw_kt: 80.0, min_p_hpa: 948.0 },
    BestTrackPoint { hours: 156.0, lat: 34.1, lon: -88.6, msw_kt: 40.0, min_p_hpa: 985.0 },
    BestTrackPoint { hours: 168.0, lat: 37.0, lon: -87.0, msw_kt: 30.0, min_p_hpa: 995.0 },
    BestTrackPoint { hours: 180.0, lat: 40.1, lon: -82.9, msw_kt: 25.0, min_p_hpa: 1006.0 },
];

/// Knots per m/s.
pub const KT_PER_MS: f64 = 1.943_844;

/// Linear interpolation of the observed position at `hours`.
pub fn observed_position(hours: f64) -> (f64, f64) {
    let t = hours.clamp(0.0, OBSERVED.last().expect("non-empty").hours);
    let i = OBSERVED
        .windows(2)
        .position(|w| t >= w[0].hours && t <= w[1].hours)
        .unwrap_or(OBSERVED.len() - 2);
    let (a, b) = (&OBSERVED[i], &OBSERVED[i + 1]);
    let f = (t - a.hours) / (b.hours - a.hours);
    (a.lat + f * (b.lat - a.lat), a.lon + f * (b.lon - a.lon))
}

/// Observed storm-motion ("steering") velocity at `hours`, in degrees of
/// latitude/longitude per hour.
pub fn observed_steering(hours: f64) -> (f64, f64) {
    let t = hours.clamp(0.0, OBSERVED.last().expect("non-empty").hours - 1e-9);
    let i = OBSERVED
        .windows(2)
        .position(|w| t >= w[0].hours && t < w[1].hours)
        .unwrap_or(OBSERVED.len() - 2);
    let (a, b) = (&OBSERVED[i], &OBSERVED[i + 1]);
    let dt = b.hours - a.hours;
    ((b.lat - a.lat) / dt, (b.lon - a.lon) / dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_chronological_and_plausible() {
        for w in OBSERVED.windows(2) {
            assert!(w[1].hours > w[0].hours);
        }
        for p in OBSERVED {
            assert!((20.0..45.0).contains(&p.lat));
            assert!((-95.0..-70.0).contains(&p.lon));
            assert!((20.0..160.0).contains(&p.msw_kt));
            assert!((890.0..1015.0).contains(&p.min_p_hpa));
        }
    }

    #[test]
    fn peak_is_category_five_in_the_gulf() {
        let peak = OBSERVED.iter().cloned().reduce(|a, b| if b.msw_kt > a.msw_kt { b } else { a }).unwrap();
        assert!(peak.msw_kt >= 140.0);
        assert!(peak.min_p_hpa <= 905.0);
        assert!(peak.hours > 96.0 && peak.hours < 132.0, "peak in the central Gulf");
    }

    #[test]
    fn interpolation_hits_fixes_exactly() {
        let (lat, lon) = observed_position(120.0);
        assert!((lat - 26.3).abs() < 1e-12 && (lon + 88.6).abs() < 1e-12);
        let (lat2, _) = observed_position(126.0);
        assert!(lat2 > 26.3 && lat2 < 28.2, "midpoint interpolates");
    }

    #[test]
    fn steering_points_northwest_then_north() {
        // Early: moving west/southwest-ish; at the end: accelerating
        // north-northeast.
        let (dlat_early, dlon_early) = observed_steering(30.0);
        assert!(dlon_early < 0.0, "westward early");
        let (dlat_late, dlon_late) = observed_steering(150.0);
        assert!(dlat_late > 0.0, "northward late");
        assert!(dlat_late > dlat_early.abs());
        let _ = dlon_late;
    }

    #[test]
    fn unit_conversion() {
        assert!((KT_PER_MS * 51.4 - 100.0).abs() < 0.5, "100 kt ~ 51.4 m/s");
    }
}
