//! Gray-gas longwave radiation (Frierson-style two-stream).
//!
//! A stand-in for the CAM long/short-wave packages with the same structure:
//! a downward and an upward flux sweep over the column and a heating rate
//! from the flux divergence. Optical depth follows
//! `tau(p) = tau0 (p/p0)^4` (water-vapour-like concentration near the
//! surface) plus a linear stratospheric term.

use crate::column::Column;
use cubesphere::consts::{CP, GRAV, P0};

/// Stefan–Boltzmann constant, W/(m^2 K^4).
pub const SIGMA: f64 = 5.670_374e-8;

/// Gray radiation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayRadiation {
    /// Surface optical depth at the equator.
    pub tau0: f64,
    /// Linear (stratospheric) optical-depth fraction.
    pub f_lin: f64,
}

impl Default for GrayRadiation {
    fn default() -> Self {
        GrayRadiation { tau0: 4.0, f_lin: 0.1 }
    }
}

impl GrayRadiation {
    /// Optical depth at pressure `p`.
    pub fn tau(&self, p: f64) -> f64 {
        let x = p / P0;
        self.tau0 * (self.f_lin * x + (1.0 - self.f_lin) * x.powi(4))
    }

    /// One radiation step: computes LW fluxes, applies heating over `dt`.
    /// Returns the outgoing longwave radiation (OLR) at the top, W/m^2.
    pub fn step(&self, col: &mut Column, dt: f64) -> f64 {
        let nlev = col.nlev();
        // Interface optical depths (top -> surface).
        let tau: Vec<f64> = col.p_int.iter().map(|&p| self.tau(p)).collect();

        // Downward sweep: D(0) = 0; dD = (B - D) dtau.
        let mut dflux = vec![0.0; nlev + 1];
        for k in 0..nlev {
            let b = SIGMA * col.t[k].powi(4);
            let dtau = tau[k + 1] - tau[k];
            let e = (-dtau).exp();
            dflux[k + 1] = dflux[k] * e + b * (1.0 - e);
        }
        // Upward sweep: U(surface) = sigma Ts^4.
        let mut uflux = vec![0.0; nlev + 1];
        uflux[nlev] = SIGMA * col.ts.powi(4);
        for k in (0..nlev).rev() {
            let b = SIGMA * col.t[k].powi(4);
            let dtau = tau[k + 1] - tau[k];
            let e = (-dtau).exp();
            uflux[k] = uflux[k + 1] * e + b * (1.0 - e);
        }

        // Heating: dT/dt = -g/cp d(U - D)/dp.
        for k in 0..nlev {
            let net_top = uflux[k] - dflux[k];
            let net_bot = uflux[k + 1] - dflux[k + 1];
            let heat = GRAV / CP * (net_bot - net_top) / col.dp[k];
            col.t[k] += dt * heat;
        }
        uflux[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optical_depth_monotone() {
        let g = GrayRadiation::default();
        assert_eq!(g.tau(0.0), 0.0);
        assert!(g.tau(50_000.0) < g.tau(100_000.0));
        assert!((g.tau(P0) - g.tau0).abs() < 1e-12);
    }

    #[test]
    fn olr_close_to_surface_emission_for_thin_atmosphere() {
        let g = GrayRadiation { tau0: 0.01, f_lin: 0.1 };
        let mut col = Column::isothermal(20, 1000.0, 101_000.0, 280.0);
        col.ts = 300.0;
        let olr = g.step(&mut col, 1.0);
        let surf = SIGMA * 300.0f64.powi(4);
        assert!((olr - surf).abs() < 0.05 * surf, "olr {olr} vs {surf}");
    }

    #[test]
    fn opaque_atmosphere_olr_comes_from_upper_levels() {
        let g = GrayRadiation { tau0: 50.0, f_lin: 0.1 };
        let mut col = Column::isothermal(20, 1000.0, 101_000.0, 250.0);
        col.ts = 320.0; // hot surface hidden by the optically thick column
        let olr = g.step(&mut col, 1.0);
        let atm = SIGMA * 250.0f64.powi(4);
        assert!((olr - atm).abs() < 0.15 * atm, "olr {olr} vs {atm}");
    }

    #[test]
    fn isolated_warm_layer_cools() {
        let g = GrayRadiation::default();
        let mut col = Column::isothermal(20, 1000.0, 101_000.0, 260.0);
        col.ts = 260.0;
        col.t[10] = 290.0;
        let t0 = col.t[10];
        g.step(&mut col, 3600.0);
        assert!(col.t[10] < t0, "anomalously warm layer must radiate away heat");
    }

    #[test]
    fn hot_surface_warms_the_lowest_layer() {
        let g = GrayRadiation::default();
        let mut col = Column::isothermal(20, 1000.0, 101_000.0, 260.0);
        col.ts = 320.0;
        let t0 = col.t[19];
        g.step(&mut col, 3600.0);
        assert!(col.t[19] > t0, "surface emission must heat the air above");
    }
}
