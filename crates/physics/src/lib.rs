//! # swphysics — simplified CAM physics suite
//!
//! The paper ports all of CAM5's physics via tool-driven OpenACC
//! refactoring; a from-scratch reproduction substitutes the community's
//! standard reduced suites, which preserve the two behaviours the paper's
//! evaluation depends on:
//!
//! * **Held–Suarez forcing** ([`held_suarez`]) — the dry climatology
//!   benchmark behind the Figure-4 control/test surface-temperature
//!   comparison.
//! * **Reed–Jablonowski simple physics** ([`simple`]) with optional
//!   **Kessler microphysics** ([`kessler`]) and **gray radiation**
//!   ([`radiation`]) — the DCMIP tropical-cyclone configuration that powers
//!   the hurricane-Katrina experiment (surface latent-heat fluxes over a
//!   warm ocean, condensational heating, boundary-layer drag).
//!
//! All schemes are column-local ([`column::Column`]), mirroring CAM's
//! physics data layout (and the reason its OpenACC port parallelizes over
//! columns).

pub mod column;
pub mod convection;
pub mod driver;
pub mod held_suarez;
pub mod kessler;
pub mod pbl;
pub mod radiation;
pub mod simple;

pub use column::{sat_mixing_ratio, sat_vapor_pressure, saturation_adjust, Column};
pub use convection::BettsMiller;
pub use driver::{validate_column, PhysicsDiag, PhysicsError, PhysicsSuite, MOISTURE_FLOOR};
pub use held_suarez::HeldSuarez;
pub use kessler::Kessler;
pub use radiation::GrayRadiation;
pub use simple::{SimpleDiag, SimplePhysics};
