//! Kessler warm-rain microphysics (autoconversion, accretion, rain
//! evaporation, sedimentation) — the classic scheme whose GPU ports the
//! paper's related-work section surveys (e.g. the WRF Kessler CUDA port).

use crate::column::{sat_mixing_ratio, saturation_adjust, Column};
use cubesphere::consts::{GRAV, RD};

/// Kessler scheme parameters (Klemp–Wilhelmson values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kessler {
    /// Autoconversion rate, 1/s.
    pub k1: f64,
    /// Autoconversion threshold, kg/kg.
    pub qc0: f64,
    /// Accretion rate, 1/s.
    pub k2: f64,
    /// Rain evaporation ventilation coefficient.
    pub c_evap: f64,
}

impl Default for Kessler {
    fn default() -> Self {
        Kessler { k1: 1.0e-3, qc0: 5.0e-4, k2: 2.2, c_evap: 1.0e-3 }
    }
}

impl Kessler {
    /// Terminal fall speed of rain, m/s (Kessler's power law).
    pub fn fall_speed(&self, qr: f64, rho: f64) -> f64 {
        if qr <= 0.0 {
            0.0
        } else {
            36.34 * (qr * rho).powf(0.1364) * (1.225 / rho).sqrt()
        }
    }

    /// One microphysics step; returns surface rain, kg/m^2.
    pub fn step(&self, col: &mut Column, dt: f64) -> f64 {
        let nlev = col.nlev();

        // 1. Saturation adjustment (condensation/evaporation of cloud).
        for k in 0..nlev {
            saturation_adjust(&mut col.t[k], &mut col.qv[k], &mut col.qc[k], col.p_mid[k]);
            col.qc[k] = col.qc[k].max(0.0);
        }

        // 2. Autoconversion + accretion: cloud -> rain.
        for k in 0..nlev {
            let auto = self.k1 * (col.qc[k] - self.qc0).max(0.0);
            let accr = if col.qr[k] > 0.0 && col.qc[k] > 0.0 {
                self.k2 * col.qc[k] * col.qr[k].powf(0.875)
            } else {
                0.0
            };
            let transfer = ((auto + accr) * dt).min(col.qc[k]);
            col.qc[k] -= transfer;
            col.qr[k] += transfer;
        }

        // 3. Rain evaporation in sub-saturated air.
        for k in 0..nlev {
            if col.qr[k] > 0.0 {
                let qsat = sat_mixing_ratio(col.t[k], col.p_mid[k]);
                let deficit = (qsat - col.qv[k]).max(0.0);
                let evap = (self.c_evap * deficit * col.qr[k].sqrt() * dt).min(col.qr[k]);
                col.qr[k] -= evap;
                col.qv[k] += evap;
                col.t[k] -= cubesphere::consts::LATVAP / cubesphere::consts::CP * evap;
            }
        }

        // 4. Sedimentation: upwind fall of rain through interfaces, with the
        // flux through the surface leaving as precipitation.
        let mut flux_in = 0.0; // rain falling in from above, kg/(m^2 s)
        let mut precip = 0.0;
        for k in 0..nlev {
            let rho = col.p_mid[k] / (RD * col.t[k]);
            let vt = self.fall_speed(col.qr[k], rho);
            // Mass of rain leaving this layer per second.
            let flux_out = (rho * vt * col.qr[k]).min(col.qr[k] * col.dp[k] / (GRAV * dt));
            let dqr = (flux_in - flux_out) * GRAV * dt / col.dp[k];
            col.qr[k] = (col.qr[k] + dqr).max(0.0);
            flux_in = flux_out;
        }
        precip += flux_in * dt;
        precip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloudy_column() -> Column {
        let mut c = Column::isothermal(12, 5000.0, 100_000.0, 285.0);
        for k in 6..12 {
            c.qv[k] = 0.012;
            c.qc[k] = 0.002;
        }
        c
    }

    #[test]
    fn water_is_conserved_up_to_precip() {
        let kes = Kessler::default();
        let mut col = cloudy_column();
        let w0 = col.total_water();
        let mut precip = 0.0;
        for _ in 0..20 {
            precip += kes.step(&mut col, 60.0);
        }
        let w1 = col.total_water();
        assert!(precip > 0.0, "cloudy column must rain");
        assert!(
            ((w0 - w1) - precip).abs() < 1e-9 * w0,
            "water budget: lost {} vs precip {precip}",
            w0 - w1
        );
    }

    #[test]
    fn autoconversion_respects_threshold() {
        let kes = Kessler::default();
        let mut col = Column::isothermal(4, 5000.0, 100_000.0, 250.0);
        // Exactly saturated air so the adjustment neither condenses nor
        // evaporates; sub-threshold cloud must not convert.
        for k in 0..4 {
            col.qv[k] = sat_mixing_ratio(col.t[k], col.p_mid[k]);
        }
        col.qc = vec![1.0e-4; 4];
        let qc_before = col.qc.clone();
        kes.step(&mut col, 60.0);
        for k in 0..4 {
            assert!((col.qc[k] - qc_before[k]).abs() < 1e-6, "level {k}");
            assert!(col.qr[k] < 1e-7);
        }
    }

    #[test]
    fn rain_falls_downward() {
        let kes = Kessler::default();
        let mut col = Column::isothermal(10, 5000.0, 100_000.0, 290.0);
        // Saturate everything so evaporation cannot eat the rain in flight.
        for k in 0..10 {
            col.qv[k] = sat_mixing_ratio(col.t[k], col.p_mid[k]);
        }
        col.qr[2] = 0.003; // rain aloft
        let mut reached_surface = 0.0;
        for _ in 0..300 {
            reached_surface += kes.step(&mut col, 30.0);
        }
        assert!(reached_surface > 0.0, "rain must reach the ground");
        assert!(col.qr[2] < 0.003, "source layer must drain");
    }

    #[test]
    fn evaporation_cools_and_moistens_dry_air() {
        let kes = Kessler::default();
        let mut col = Column::isothermal(4, 5000.0, 100_000.0, 300.0);
        col.qr[1] = 0.002;
        col.qv[1] = 0.0; // bone dry
        let t0 = col.t[1];
        kes.step(&mut col, 120.0);
        assert!(col.qv[1] > 0.0, "rain must evaporate into dry air");
        assert!(col.t[1] < t0, "evaporative cooling");
    }

    #[test]
    fn fall_speed_monotone_in_rain_content() {
        let kes = Kessler::default();
        assert_eq!(kes.fall_speed(0.0, 1.0), 0.0);
        assert!(kes.fall_speed(0.002, 1.0) > kes.fall_speed(0.001, 1.0));
        assert!(kes.fall_speed(0.001, 0.5) > kes.fall_speed(0.001, 1.2), "thin air: faster fall");
    }
}
