//! Reed–Jablonowski "simple physics" (DCMIP): bulk-aerodynamic surface
//! fluxes, boundary-layer diffusion and large-scale condensation.
//!
//! This is the community-standard reduced physics suite for idealized
//! tropical-cyclone experiments — exactly the capability the paper's
//! Katrina simulation needs from CAM5 physics. Over a warm ocean it
//! supplies the latent-heat flux that powers intensification.

use crate::column::{saturation_adjust, Column};
use crate::pbl::diffuse_column;
use cubesphere::consts::{CP, GRAV, LATVAP, RD};

/// Simple-physics parameters (Reed & Jablonowski 2012 values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplePhysics {
    /// Sea-surface temperature, K (RJ uses 302.15 K for TC tests).
    pub sst: f64,
    /// Sensible/latent exchange coefficient.
    pub c_e: f64,
    /// Pressure above which boundary-layer mixing decays, Pa.
    pub p_pbl: f64,
    /// Decay scale of the mixing above `p_pbl`, Pa.
    pub p_strato: f64,
}

impl Default for SimplePhysics {
    fn default() -> Self {
        SimplePhysics { sst: 302.15, c_e: 0.0011, p_pbl: 85_000.0, p_strato: 10_000.0 }
    }
}

/// Diagnostics of one physics step on one column.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimpleDiag {
    /// Large-scale precipitation produced, kg/m^2.
    pub precip: f64,
    /// Surface latent heat flux, W/m^2 (positive upward).
    pub lhf: f64,
    /// Surface sensible heat flux, W/m^2.
    pub shf: f64,
}

impl SimplePhysics {
    /// Drag coefficient for momentum (wind-speed dependent, capped).
    pub fn c_d(&self, wind: f64) -> f64 {
        if wind < 20.0 {
            7.0e-4 + 6.5e-5 * wind
        } else {
            2.0e-3
        }
    }

    /// Apply one physics step of length `dt` to `col`.
    pub fn step(&self, col: &mut Column, dt: f64) -> SimpleDiag {
        let nlev = col.nlev();
        let ks = nlev - 1; // lowest layer
        let mut diag = SimpleDiag::default();

        // ---- surface fluxes (implicit in the lowest layer) ---------------
        let wind = (col.u[ks] * col.u[ks] + col.v[ks] * col.v[ks]).sqrt();
        let cd = self.c_d(wind);
        let za = col.za().max(1.0);
        // Momentum: u^{n+1} = u^n / (1 + Cd |v| dt / za).
        let mom = 1.0 / (1.0 + cd * wind * dt / za);
        col.u[ks] *= mom;
        col.v[ks] *= mom;
        // Sensible heat toward SST.
        let rho_a = col.p_mid[ks] / (RD * col.t[ks]);
        let t_new = (col.t[ks] + self.c_e * wind * dt / za * self.sst)
            / (1.0 + self.c_e * wind * dt / za);
        diag.shf = rho_a * CP * self.c_e * wind * (self.sst - col.t[ks]);
        col.t[ks] = t_new;
        // Latent heat: evaporation toward saturation at the SST.
        let qsat_s = crate::column::sat_mixing_ratio(self.sst, col.ps());
        let q_new = (col.qv[ks] + self.c_e * wind * dt / za * qsat_s)
            / (1.0 + self.c_e * wind * dt / za);
        diag.lhf = rho_a * LATVAP * self.c_e * wind * (qsat_s - col.qv[ks]);
        col.qv[ks] = q_new;

        // ---- boundary-layer diffusion ------------------------------------
        // Eddy diffusivity: constant in the PBL, exponential decay above.
        let ke: Vec<f64> = (0..=nlev)
            .map(|k| {
                let p = col.p_int[k];
                let k0 = self.c_e * 20.0 * za; // ~ C_E |v| za scale
                if p > self.p_pbl {
                    k0
                } else {
                    k0 * (-((self.p_pbl - p) / self.p_strato).powi(2)).exp()
                }
            })
            .collect();
        diffuse_column(col, &ke, dt);

        // ---- large-scale condensation ------------------------------------
        for k in 0..nlev {
            let before_qc = col.qc[k];
            let dq = saturation_adjust(&mut col.t[k], &mut col.qv[k], &mut col.qc[k], col.p_mid[k]);
            let _ = dq;
            // Simple physics rains all condensate out immediately.
            let condensed = col.qc[k] - before_qc;
            if condensed > 0.0 {
                diag.precip += condensed * col.dp[k] / GRAV;
                col.qc[k] = before_qc;
            }
        }
        diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tropical_column() -> Column {
        let mut c = Column::isothermal(20, 2000.0, 101_500.0, 280.0);
        // A rough tropical profile: warm below, cold aloft.
        let nlev = c.nlev();
        for k in 0..nlev {
            let frac = c.p_mid[k] / c.ps();
            c.t[k] = 200.0 + 100.0 * frac.powf(0.6);
            c.qv[k] = 0.016 * frac.powi(3);
        }
        c.ts = 302.15;
        c
    }

    #[test]
    fn drag_coefficient_profile() {
        let sp = SimplePhysics::default();
        assert!((sp.c_d(0.0) - 7.0e-4).abs() < 1e-12);
        assert!(sp.c_d(10.0) > sp.c_d(1.0));
        assert!((sp.c_d(25.0) - 2.0e-3).abs() < 1e-12);
    }

    #[test]
    fn warm_ocean_moistens_and_heats_surface_layer() {
        let sp = SimplePhysics::default();
        let mut col = tropical_column();
        col.u[19] = 15.0; // wind drives the fluxes
        let (t0, q0) = (col.t[19], col.qv[19]);
        let diag = sp.step(&mut col, 600.0);
        assert!(col.qv[19] > q0, "evaporation must moisten");
        assert!(col.t[19] > t0, "SST warmer than air must heat");
        assert!(diag.lhf > 0.0 && diag.shf > 0.0);
    }

    #[test]
    fn surface_drag_slows_the_wind() {
        let sp = SimplePhysics::default();
        let mut col = tropical_column();
        col.u[19] = 30.0;
        col.v[19] = -10.0;
        sp.step(&mut col, 600.0);
        assert!(col.u[19] < 30.0 && col.u[19] > 0.0);
        assert!(col.v[19] > -10.0 && col.v[19] < 0.0);
    }

    #[test]
    fn supersaturated_layer_precipitates() {
        let sp = SimplePhysics::default();
        let mut col = tropical_column();
        col.qv[15] = 0.05; // strongly super-saturated
        let t_before = col.t[15];
        let diag = sp.step(&mut col, 600.0);
        assert!(diag.precip > 0.0, "must rain");
        assert!(col.t[15] > t_before, "latent heating");
        assert!(col.qc.iter().all(|&x| x.abs() < 1e-12), "no cloud retained");
    }

    #[test]
    fn calm_dry_column_is_nearly_inert() {
        let sp = SimplePhysics::default();
        let mut col = Column::isothermal(10, 2000.0, 101_000.0, 302.15);
        let before = col.clone();
        let diag = sp.step(&mut col, 600.0);
        // No wind -> no fluxes; no moisture -> no rain.
        assert_eq!(diag.precip, 0.0);
        for k in 0..10 {
            assert!((col.u[k] - before.u[k]).abs() < 1e-12);
            assert!((col.t[k] - before.t[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_steps_approach_moist_equilibrium_not_blowup() {
        let sp = SimplePhysics::default();
        let mut col = tropical_column();
        col.u[19] = 10.0;
        for _ in 0..200 {
            sp.step(&mut col, 600.0);
        }
        assert!(col.t.iter().all(|&t| t > 150.0 && t < 350.0), "{:?}", col.t);
        assert!(col.qv.iter().all(|&q| (0.0..0.05).contains(&q)));
    }
}
