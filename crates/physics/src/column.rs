//! Column state and moist-thermodynamics helpers.
//!
//! CAM physics is column-independent ("embarrassingly parallel over
//! columns", which is why the paper's physics port was tool-driven rather
//! than hand-rewritten). Every parameterization in this crate operates on a
//! [`Column`]: one vertical profile of the model state plus its pressure
//! geometry.

use cubesphere::consts::{CP, GRAV, LATVAP, RD, RV};

/// One atmospheric column (level 0 = model top).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Layer midpoint pressures, Pa.
    pub p_mid: Vec<f64>,
    /// Interface pressures, Pa (`nlev + 1`).
    pub p_int: Vec<f64>,
    /// Layer thickness, Pa.
    pub dp: Vec<f64>,
    /// Temperature, K.
    pub t: Vec<f64>,
    /// Eastward wind, m/s.
    pub u: Vec<f64>,
    /// Northward wind, m/s.
    pub v: Vec<f64>,
    /// Water-vapour mixing ratio, kg/kg.
    pub qv: Vec<f64>,
    /// Cloud-water mixing ratio, kg/kg.
    pub qc: Vec<f64>,
    /// Rain-water mixing ratio, kg/kg.
    pub qr: Vec<f64>,
    /// Latitude, radians (for Coriolis-dependent schemes).
    pub lat: f64,
    /// Surface (skin / sea-surface) temperature, K.
    pub ts: f64,
}

impl Column {
    /// Number of layers.
    #[inline]
    pub fn nlev(&self) -> usize {
        self.t.len()
    }

    /// Construct an isothermal, resting, dry test column over `nlev` layers
    /// between `ptop` and `ps`.
    pub fn isothermal(nlev: usize, ptop: f64, ps: f64, t0: f64) -> Self {
        let dp_val = (ps - ptop) / nlev as f64;
        let p_int: Vec<f64> = (0..=nlev).map(|k| ptop + k as f64 * dp_val).collect();
        let p_mid: Vec<f64> = (0..nlev).map(|k| 0.5 * (p_int[k] + p_int[k + 1])).collect();
        Column {
            p_mid,
            p_int,
            dp: vec![dp_val; nlev],
            t: vec![t0; nlev],
            u: vec![0.0; nlev],
            v: vec![0.0; nlev],
            qv: vec![0.0; nlev],
            qc: vec![0.0; nlev],
            qr: vec![0.0; nlev],
            lat: 0.0,
            ts: t0,
        }
    }

    /// Surface pressure.
    #[inline]
    pub fn ps(&self) -> f64 {
        *self.p_int.last().expect("column has interfaces")
    }

    /// Geometric thickness of layer `k`, m (hydrostatic, dry).
    #[inline]
    pub fn dz(&self, k: usize) -> f64 {
        RD * self.t[k] * self.dp[k] / (self.p_mid[k] * GRAV)
    }

    /// Height of the lowest model level above the surface, m.
    pub fn za(&self) -> f64 {
        let k = self.nlev() - 1;
        RD * self.t[k] / GRAV * (self.p_int[k + 1] / self.p_mid[k]).ln()
    }

    /// Column-integrated water (vapour + cloud + rain), kg/m^2.
    pub fn total_water(&self) -> f64 {
        (0..self.nlev())
            .map(|k| (self.qv[k] + self.qc[k] + self.qr[k]) * self.dp[k] / GRAV)
            .sum()
    }

    /// Column moist static enthalpy proxy `cp T + L qv`, J/kg weighted by
    /// mass (conserved by condensation/evaporation).
    pub fn moist_enthalpy(&self) -> f64 {
        (0..self.nlev())
            .map(|k| (CP * self.t[k] + LATVAP * self.qv[k]) * self.dp[k] / GRAV)
            .sum()
    }
}

/// Saturation vapour pressure over liquid water, Pa
/// (Bolton/Clausius–Clapeyron form used by the DCMIP simple physics).
#[inline]
pub fn sat_vapor_pressure(t: f64) -> f64 {
    610.78 * (LATVAP / RV * (1.0 / 273.16 - 1.0 / t)).exp()
}

/// Saturation mixing ratio at `(t, p)`, kg/kg.
#[inline]
pub fn sat_mixing_ratio(t: f64, p: f64) -> f64 {
    let es = sat_vapor_pressure(t).min(0.9 * p);
    let eps = RD / RV;
    eps * es / (p - es)
}

/// Saturation adjustment: condense super-saturation (or evaporate cloud
/// into sub-saturation) with the latent-heat feedback linearized — the
/// large-scale condensation core shared by simple-physics and Kessler.
/// Returns the condensed amount (negative = evaporation), kg/kg.
pub fn saturation_adjust(t: &mut f64, qv: &mut f64, qc: &mut f64, p: f64) -> f64 {
    let qsat = sat_mixing_ratio(*t, p);
    let gamma = LATVAP * LATVAP * qsat / (CP * RV * *t * *t);
    let mut dq = (*qv - qsat) / (1.0 + gamma);
    if dq < 0.0 {
        // Evaporate at most the available cloud water.
        dq = dq.max(-*qc);
    }
    *qv -= dq;
    *qc += dq;
    *t += LATVAP / CP * dq;
    dq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isothermal_column_geometry() {
        let c = Column::isothermal(10, 1000.0, 101_000.0, 280.0);
        assert_eq!(c.nlev(), 10);
        assert!((c.ps() - 101_000.0).abs() < 1e-9);
        assert!(c.za() > 0.0 && c.za() < 2000.0);
        for k in 0..10 {
            assert!(c.dz(k) > 0.0);
            assert!(c.p_mid[k] > c.p_int[k] && c.p_mid[k] < c.p_int[k + 1]);
        }
    }

    #[test]
    fn esat_reference_points() {
        // ~611 Pa at freezing, ~2.3-2.4 kPa at 20 C, ~4.2-4.3 kPa at 30 C.
        assert!((sat_vapor_pressure(273.16) - 610.78).abs() < 1.0);
        let e20 = sat_vapor_pressure(293.15);
        assert!(e20 > 2100.0 && e20 < 2500.0, "{e20}");
        let e30 = sat_vapor_pressure(303.15);
        assert!(e30 > 3900.0 && e30 < 4600.0, "{e30}");
    }

    #[test]
    fn qsat_increases_with_temperature_decreases_with_pressure() {
        let q1 = sat_mixing_ratio(290.0, 90_000.0);
        let q2 = sat_mixing_ratio(300.0, 90_000.0);
        let q3 = sat_mixing_ratio(300.0, 70_000.0);
        assert!(q2 > q1);
        assert!(q3 > q2);
    }

    #[test]
    fn saturation_adjust_conserves_enthalpy_and_water() {
        let p = 85_000.0;
        let (mut t, mut qv, mut qc) = (290.0, 0.02, 0.0);
        let h0 = CP * t + LATVAP * qv;
        let w0 = qv + qc;
        let dq = saturation_adjust(&mut t, &mut qv, &mut qc, p);
        assert!(dq > 0.0, "super-saturated column must condense");
        assert!(t > 290.0, "condensation heats");
        assert!((CP * t + LATVAP * qv - h0).abs() < 1e-6 * h0);
        assert!((qv + qc - w0).abs() < 1e-15);
        // After adjustment the state is (nearly) exactly saturated.
        let rel = qv / sat_mixing_ratio(t, p);
        assert!((rel - 1.0).abs() < 0.05, "rel hum {rel}");
    }

    #[test]
    fn saturation_adjust_evaporates_no_more_than_cloud() {
        let p = 85_000.0;
        let (mut t, mut qv, mut qc) = (300.0, 0.001, 0.0005);
        let dq = saturation_adjust(&mut t, &mut qv, &mut qc, p);
        assert!(dq < 0.0, "sub-saturated with cloud must evaporate");
        assert!(qc >= 0.0, "cannot evaporate more cloud than exists");
        assert!(t < 300.0, "evaporation cools");
    }

    #[test]
    fn water_and_enthalpy_diagnostics() {
        let mut c = Column::isothermal(4, 1000.0, 101_000.0, 280.0);
        c.qv = vec![0.01; 4];
        c.qc = vec![0.001; 4];
        let tw = c.total_water();
        let expect = 0.011 * (101_000.0 - 1000.0) / GRAV;
        assert!((tw - expect).abs() < 1e-9 * expect);
        assert!(c.moist_enthalpy() > 0.0);
    }
}
