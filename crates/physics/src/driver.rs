//! The physics driver: the per-column package sequence CAM runs between
//! dynamics steps.

use crate::column::Column;
use crate::convection::BettsMiller;
use crate::held_suarez::HeldSuarez;
use crate::kessler::Kessler;
use crate::radiation::GrayRadiation;
use crate::simple::{SimpleDiag, SimplePhysics};

/// Which physics suite to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicsSuite {
    /// No physics (pure dynamical core).
    None,
    /// Held–Suarez dry forcing (climatology validation runs).
    HeldSuarez(HeldSuarez),
    /// Reed–Jablonowski simple physics (tropical-cyclone runs).
    Simple(SimplePhysics),
    /// Simple physics + Betts–Miller convection + Kessler microphysics +
    /// gray radiation (the "full CAM-like" configuration).
    Full {
        simple: SimplePhysics,
        convection: BettsMiller,
        kessler: Kessler,
        radiation: GrayRadiation,
    },
}

/// Per-step physics diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhysicsDiag {
    /// Total precipitation this step, kg/m^2.
    pub precip: f64,
    /// Surface fluxes (when the suite computes them).
    pub surface: SimpleDiag,
    /// Outgoing longwave radiation, W/m^2.
    pub olr: f64,
}

/// Why a physics column was rejected by [`PhysicsSuite::step_checked`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicsError {
    /// NaN or infinity in a column field, named by `field`.
    NonFinite {
        /// Which column field held the non-finite value.
        field: &'static str,
        /// Layer index of the first offending value.
        level: usize,
    },
    /// A moisture field below [`MOISTURE_FLOOR`] — past numerical noise,
    /// into corruption.
    NegativeMoisture {
        /// Which moisture field went negative.
        field: &'static str,
        /// Layer index of the first offending value.
        level: usize,
        /// The offending mixing ratio, kg/kg.
        value: f64,
    },
}

impl std::fmt::Display for PhysicsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysicsError::NonFinite { field, level } => {
                write!(f, "non-finite {field} at level {level}")
            }
            PhysicsError::NegativeMoisture { field, level, value } => {
                write!(f, "negative moisture {field} = {value:.3e} kg/kg at level {level}")
            }
        }
    }
}

impl std::error::Error for PhysicsError {}

/// Most-negative mixing ratio (kg/kg) a column may carry before it counts
/// as corrupt rather than numerical noise. Healthy advection without the
/// limiter produces undershoots many orders of magnitude smaller; a value
/// past this floor means something upstream wrote garbage.
pub const MOISTURE_FLOOR: f64 = -1.0e-6;

/// Validate every field of `col`: finite everywhere, moisture no lower
/// than [`MOISTURE_FLOOR`].
///
/// # Errors
/// The first offending field/level as a [`PhysicsError`].
pub fn validate_column(col: &Column) -> Result<(), PhysicsError> {
    let finite = |field: &'static str, vals: &[f64]| -> Result<(), PhysicsError> {
        match vals.iter().position(|v| !v.is_finite()) {
            Some(level) => Err(PhysicsError::NonFinite { field, level }),
            None => Ok(()),
        }
    };
    finite("p_mid", &col.p_mid)?;
    finite("p_int", &col.p_int)?;
    finite("dp", &col.dp)?;
    finite("t", &col.t)?;
    finite("u", &col.u)?;
    finite("v", &col.v)?;
    finite("qv", &col.qv)?;
    finite("qc", &col.qc)?;
    finite("qr", &col.qr)?;
    if !col.ts.is_finite() {
        return Err(PhysicsError::NonFinite { field: "ts", level: 0 });
    }
    let moist = |field: &'static str, vals: &[f64]| -> Result<(), PhysicsError> {
        match vals.iter().position(|&v| v < MOISTURE_FLOOR) {
            Some(level) => {
                Err(PhysicsError::NegativeMoisture { field, level, value: vals[level] })
            }
            None => Ok(()),
        }
    };
    moist("qv", &col.qv)?;
    moist("qc", &col.qc)?;
    moist("qr", &col.qr)?;
    Ok(())
}

impl PhysicsSuite {
    /// Apply one physics step of length `dt` to a column.
    pub fn step(&self, col: &mut Column, dt: f64) -> PhysicsDiag {
        let mut diag = PhysicsDiag::default();
        match self {
            PhysicsSuite::None => {}
            PhysicsSuite::HeldSuarez(hs) => hs.step(col, dt),
            PhysicsSuite::Simple(sp) => {
                diag.surface = sp.step(col, dt);
                diag.precip = diag.surface.precip;
            }
            PhysicsSuite::Full { simple, convection, kessler, radiation } => {
                diag.olr = radiation.step(col, dt);
                diag.surface = simple.step(col, dt);
                diag.precip = diag.surface.precip
                    + convection.step(col, dt)
                    + kessler.step(col, dt);
            }
        }
        diag
    }

    /// [`PhysicsSuite::step`] with the column vetted before **and** after
    /// the schemes run.
    ///
    /// The unchecked `step` silently propagates NaN or corrupt-moisture
    /// columns — the input check catches garbage handed in by the caller
    /// (so a poisoned column is rejected before any scheme reads it), and
    /// the output check catches a scheme blowing up on an extreme-but-
    /// finite input. On `Err` the column may hold partially stepped
    /// values; the caller is expected to discard it and roll back, which
    /// is exactly what the coupling layer's checked path does.
    ///
    /// # Errors
    /// The first [`PhysicsError`] found on the way in or out.
    pub fn step_checked(&self, col: &mut Column, dt: f64) -> Result<PhysicsDiag, PhysicsError> {
        validate_column(col)?;
        let diag = self.step(col, dt);
        validate_column(col)?;
        Ok(diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_suite_is_identity() {
        let mut col = Column::isothermal(8, 1000.0, 101_000.0, 280.0);
        let before = col.clone();
        let diag = PhysicsSuite::None.step(&mut col, 600.0);
        assert_eq!(col, before);
        assert_eq!(diag.precip, 0.0);
    }

    #[test]
    fn full_suite_runs_stably() {
        let suite = PhysicsSuite::Full {
            simple: SimplePhysics::default(),
            convection: BettsMiller::default(),
            kessler: Kessler::default(),
            radiation: GrayRadiation::default(),
        };
        let mut col = Column::isothermal(20, 2000.0, 101_000.0, 285.0);
        col.ts = 302.15;
        col.u[19] = 12.0;
        let mut total_precip = 0.0;
        for _ in 0..100 {
            let d = suite.step(&mut col, 900.0);
            total_precip += d.precip;
            assert!(d.olr > 0.0);
        }
        assert!(col.t.iter().all(|&t| (150.0..360.0).contains(&t)));
        assert!(col.qv.iter().all(|&q| (0.0..0.1).contains(&q)));
        assert!(total_precip >= 0.0);
    }

    #[test]
    fn step_checked_accepts_healthy_and_matches_unchecked() {
        let suite = PhysicsSuite::Simple(SimplePhysics::default());
        let mut a = Column::isothermal(12, 1500.0, 101_000.0, 290.0);
        a.ts = 302.15;
        let mut b = a.clone();
        let da = suite.step(&mut a, 900.0);
        let db = suite.step_checked(&mut b, 900.0).expect("healthy column must pass");
        assert_eq!(a, b, "checked path must not perturb the column");
        assert_eq!(da, db);
    }

    #[test]
    fn step_checked_rejects_nan_input_before_schemes_run() {
        let suite = PhysicsSuite::Simple(SimplePhysics::default());
        let mut col = Column::isothermal(8, 1000.0, 101_000.0, 280.0);
        col.t[3] = f64::NAN;
        let err = suite.step_checked(&mut col, 600.0).unwrap_err();
        assert_eq!(err, PhysicsError::NonFinite { field: "t", level: 3 });
    }

    #[test]
    fn step_checked_rejects_corrupt_moisture_but_tolerates_noise() {
        let suite = PhysicsSuite::None;
        let mut col = Column::isothermal(8, 1000.0, 101_000.0, 280.0);
        // Numerical undershoot well inside the floor: accepted.
        col.qv[2] = 0.5 * MOISTURE_FLOOR;
        suite.step_checked(&mut col, 600.0).expect("noise-level undershoot must pass");
        // Corruption-scale negative moisture: rejected.
        col.qv[2] = -0.5;
        let err = suite.step_checked(&mut col, 600.0).unwrap_err();
        assert!(
            matches!(err, PhysicsError::NegativeMoisture { field: "qv", level: 2, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn held_suarez_suite_dispatches() {
        let suite = PhysicsSuite::HeldSuarez(HeldSuarez::default());
        let mut col = Column::isothermal(8, 1000.0, 101_000.0, 240.0);
        let t0 = col.t[7];
        suite.step(&mut col, 3600.0);
        assert!(col.t[7] != t0, "relaxation must act");
    }
}
