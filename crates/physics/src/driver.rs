//! The physics driver: the per-column package sequence CAM runs between
//! dynamics steps.

use crate::column::Column;
use crate::convection::BettsMiller;
use crate::held_suarez::HeldSuarez;
use crate::kessler::Kessler;
use crate::radiation::GrayRadiation;
use crate::simple::{SimpleDiag, SimplePhysics};

/// Which physics suite to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhysicsSuite {
    /// No physics (pure dynamical core).
    None,
    /// Held–Suarez dry forcing (climatology validation runs).
    HeldSuarez(HeldSuarez),
    /// Reed–Jablonowski simple physics (tropical-cyclone runs).
    Simple(SimplePhysics),
    /// Simple physics + Betts–Miller convection + Kessler microphysics +
    /// gray radiation (the "full CAM-like" configuration).
    Full {
        simple: SimplePhysics,
        convection: BettsMiller,
        kessler: Kessler,
        radiation: GrayRadiation,
    },
}

/// Per-step physics diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhysicsDiag {
    /// Total precipitation this step, kg/m^2.
    pub precip: f64,
    /// Surface fluxes (when the suite computes them).
    pub surface: SimpleDiag,
    /// Outgoing longwave radiation, W/m^2.
    pub olr: f64,
}

impl PhysicsSuite {
    /// Apply one physics step of length `dt` to a column.
    pub fn step(&self, col: &mut Column, dt: f64) -> PhysicsDiag {
        let mut diag = PhysicsDiag::default();
        match self {
            PhysicsSuite::None => {}
            PhysicsSuite::HeldSuarez(hs) => hs.step(col, dt),
            PhysicsSuite::Simple(sp) => {
                diag.surface = sp.step(col, dt);
                diag.precip = diag.surface.precip;
            }
            PhysicsSuite::Full { simple, convection, kessler, radiation } => {
                diag.olr = radiation.step(col, dt);
                diag.surface = simple.step(col, dt);
                diag.precip = diag.surface.precip
                    + convection.step(col, dt)
                    + kessler.step(col, dt);
            }
        }
        diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_suite_is_identity() {
        let mut col = Column::isothermal(8, 1000.0, 101_000.0, 280.0);
        let before = col.clone();
        let diag = PhysicsSuite::None.step(&mut col, 600.0);
        assert_eq!(col, before);
        assert_eq!(diag.precip, 0.0);
    }

    #[test]
    fn full_suite_runs_stably() {
        let suite = PhysicsSuite::Full {
            simple: SimplePhysics::default(),
            convection: BettsMiller::default(),
            kessler: Kessler::default(),
            radiation: GrayRadiation::default(),
        };
        let mut col = Column::isothermal(20, 2000.0, 101_000.0, 285.0);
        col.ts = 302.15;
        col.u[19] = 12.0;
        let mut total_precip = 0.0;
        for _ in 0..100 {
            let d = suite.step(&mut col, 900.0);
            total_precip += d.precip;
            assert!(d.olr > 0.0);
        }
        assert!(col.t.iter().all(|&t| (150.0..360.0).contains(&t)));
        assert!(col.qv.iter().all(|&q| (0.0..0.1).contains(&q)));
        assert!(total_precip >= 0.0);
    }

    #[test]
    fn held_suarez_suite_dispatches() {
        let suite = PhysicsSuite::HeldSuarez(HeldSuarez::default());
        let mut col = Column::isothermal(8, 1000.0, 101_000.0, 240.0);
        let t0 = col.t[7];
        suite.step(&mut col, 3600.0);
        assert!(col.t[7] != t0, "relaxation must act");
    }
}
