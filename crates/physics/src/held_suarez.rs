//! Held–Suarez (1994) forcing: Newtonian temperature relaxation toward an
//! analytic radiative-equilibrium profile plus Rayleigh friction in the
//! lower troposphere. The standard dry-dynamical-core climate benchmark —
//! used here for the Figure-4 climatology validation (control vs test run).

use crate::column::Column;
use cubesphere::consts::{KAPPA, P0};

/// HS94 parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeldSuarez {
    /// Max equator-pole equilibrium temperature difference, K.
    pub delta_t_y: f64,
    /// Static-stability parameter, K.
    pub delta_theta_z: f64,
    /// Fastest thermal relaxation rate (boundary layer, equator), 1/s.
    pub k_a: f64,
    /// Free-atmosphere relaxation rate, 1/s.
    pub k_f_t: f64,
    /// Rayleigh friction rate at the surface, 1/s.
    pub k_f: f64,
    /// Sigma level above which friction/fast relaxation vanish.
    pub sigma_b: f64,
}

impl Default for HeldSuarez {
    fn default() -> Self {
        HeldSuarez {
            delta_t_y: 60.0,
            delta_theta_z: 10.0,
            k_a: 1.0 / (40.0 * 86400.0) * 10.0, // k_s = 1/4 day at surface
            k_f_t: 1.0 / (40.0 * 86400.0),
            k_f: 1.0 / 86400.0,
            sigma_b: 0.7,
        }
    }
}

impl HeldSuarez {
    /// HS94 radiative-equilibrium temperature at `(lat, p)`.
    pub fn t_eq(&self, lat: f64, p: f64) -> f64 {
        let sin2 = lat.sin() * lat.sin();
        let cos2 = 1.0 - sin2;
        let t = (315.0
            - self.delta_t_y * sin2
            - self.delta_theta_z * (p / P0).ln() * cos2)
            * (p / P0).powf(KAPPA);
        t.max(200.0)
    }

    /// Thermal relaxation rate at `(lat, sigma)`.
    pub fn k_t(&self, lat: f64, sigma: f64) -> f64 {
        let cos4 = lat.cos().powi(4);
        let vert = ((sigma - self.sigma_b) / (1.0 - self.sigma_b)).max(0.0);
        self.k_f_t + (self.k_a - self.k_f_t) * vert * cos4
    }

    /// Friction rate at `sigma`.
    pub fn k_v(&self, sigma: f64) -> f64 {
        self.k_f * ((sigma - self.sigma_b) / (1.0 - self.sigma_b)).max(0.0)
    }

    /// Apply the forcing over `dt` (implicit relaxation, unconditionally
    /// stable).
    pub fn step(&self, col: &mut Column, dt: f64) {
        let ps = col.ps();
        for k in 0..col.nlev() {
            let sigma = col.p_mid[k] / ps;
            let kt = self.k_t(col.lat, sigma);
            let teq = self.t_eq(col.lat, col.p_mid[k]);
            col.t[k] = (col.t[k] + dt * kt * teq) / (1.0 + dt * kt);
            let kv = self.k_v(sigma);
            let damp = 1.0 / (1.0 + dt * kv);
            col.u[k] *= damp;
            col.v[k] *= damp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_profile_structure() {
        let hs = HeldSuarez::default();
        // Warmer at the equator than at the pole (at the surface).
        let te = hs.t_eq(0.0, P0);
        let tp = hs.t_eq(std::f64::consts::FRAC_PI_2, P0);
        assert!(te > tp, "{te} vs {tp}");
        assert!((te - 315.0).abs() < 1e-9);
        // Statically capped at 200 K aloft.
        assert_eq!(hs.t_eq(0.0, 100.0), 200.0);
        // Temperature decreases upward in the troposphere.
        assert!(hs.t_eq(0.3, 50_000.0) < hs.t_eq(0.3, 90_000.0));
    }

    #[test]
    fn friction_only_near_the_surface() {
        let hs = HeldSuarez::default();
        assert_eq!(hs.k_v(0.5), 0.0);
        assert!(hs.k_v(0.9) > 0.0);
        assert!((hs.k_v(1.0) - hs.k_f).abs() < 1e-15);
    }

    #[test]
    fn relaxation_pulls_temperature_toward_teq() {
        let hs = HeldSuarez::default();
        let mut col = Column::isothermal(10, 1000.0, 101_000.0, 240.0);
        col.lat = 0.0;
        let teq_bottom = hs.t_eq(0.0, col.p_mid[9]);
        let t0 = col.t[9];
        // Long integration converges to the equilibrium.
        for _ in 0..5000 {
            hs.step(&mut col, 3600.0);
        }
        assert!(
            (col.t[9] - teq_bottom).abs() < 0.5,
            "t {} should reach teq {teq_bottom} (started {t0})",
            col.t[9]
        );
    }

    #[test]
    fn friction_decays_surface_wind_only() {
        let hs = HeldSuarez::default();
        let mut col = Column::isothermal(10, 1000.0, 101_000.0, 280.0);
        col.u = vec![20.0; 10];
        for _ in 0..48 {
            hs.step(&mut col, 3600.0);
        }
        assert!(col.u[9] < 5.0, "surface jet must decay: {}", col.u[9]);
        assert!((col.u[0] - 20.0).abs() < 1e-9, "free atmosphere untouched");
    }
}
