//! Boundary-layer vertical diffusion: an implicit (backward-Euler)
//! tridiagonal solve for `u`, `v`, `T`, `qv` with a prescribed
//! interface-level eddy diffusivity.

use crate::column::Column;
use cubesphere::consts::{GRAV, RD};

/// Solve a tridiagonal system `a[i] x[i-1] + b[i] x[i] + c[i] x[i+1] = d[i]`
/// in place (Thomas algorithm). `a[0]` and `c[n-1]` are ignored.
pub fn tridiag_solve(a: &[f64], b: &[f64], c: &[f64], d: &mut [f64]) {
    let n = d.len();
    debug_assert!(a.len() == n && b.len() == n && c.len() == n);
    let mut cp = vec![0.0; n];
    cp[0] = c[0] / b[0];
    d[0] /= b[0];
    for i in 1..n {
        let m = b[i] - a[i] * cp[i - 1];
        cp[i] = c[i] / m;
        d[i] = (d[i] - a[i] * d[i - 1]) / m;
    }
    for i in (0..n - 1).rev() {
        d[i] -= cp[i] * d[i + 1];
    }
}

/// Implicit vertical diffusion of `u, v, t, qv` with interface
/// diffusivities `ke` (m^2/s, length `nlev + 1`; `ke[0]` and `ke[nlev]`
/// are the boundary values and are treated as zero-flux boundaries).
pub fn diffuse_column(col: &mut Column, ke: &[f64], dt: f64) {
    let nlev = col.nlev();
    debug_assert_eq!(ke.len(), nlev + 1);
    // Convert to pressure coordinates: d/dt X = g d/dp (rho^2 g K dX/dp).
    // Coefficient at interface k (between layers k-1 and k):
    //   D_k = g^2 rho_int^2 K_k / (p_mid[k] - p_mid[k-1])
    let mut coeff = vec![0.0; nlev + 1];
    for k in 1..nlev {
        let t_int = 0.5 * (col.t[k - 1] + col.t[k]);
        let rho = col.p_int[k] / (RD * t_int);
        coeff[k] = GRAV * GRAV * rho * rho * ke[k] / (col.p_mid[k] - col.p_mid[k - 1]);
    }
    let mut a = vec![0.0; nlev];
    let mut b = vec![0.0; nlev];
    let mut c = vec![0.0; nlev];
    for k in 0..nlev {
        let up = coeff[k] * dt / col.dp[k];
        let dn = coeff[k + 1] * dt / col.dp[k];
        a[k] = -up;
        c[k] = -dn;
        b[k] = 1.0 + up + dn;
    }
    for field in [&mut col.u, &mut col.v, &mut col.t, &mut col.qv] {
        let mut d = field.clone();
        tridiag_solve(&a, &b, &c, &mut d);
        field.copy_from_slice(&d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiag_solves_known_system() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
        let a = [0.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        let c = [1.0, 1.0, 0.0];
        let mut d = [4.0, 8.0, 8.0];
        tridiag_solve(&a, &b, &c, &mut d);
        for (x, e) in d.iter().zip([1.0, 2.0, 3.0]) {
            assert!((x - e).abs() < 1e-12, "{x} vs {e}");
        }
    }

    #[test]
    fn diffusion_smooths_and_conserves() {
        let mut col = Column::isothermal(16, 2000.0, 101_000.0, 280.0);
        // A sharp jet in the middle of the column.
        col.u[8] = 30.0;
        let mass_mom_before: f64 = (0..16).map(|k| col.u[k] * col.dp[k]).sum();
        let ke = vec![50.0; 17];
        diffuse_column(&mut col, &ke, 1800.0);
        // Smoothed: the spike spreads to neighbours.
        assert!(col.u[8] < 30.0);
        assert!(col.u[7] > 0.0 && col.u[9] > 0.0);
        // Zero-flux boundaries conserve column momentum.
        let mass_mom_after: f64 = (0..16).map(|k| col.u[k] * col.dp[k]).sum();
        assert!(
            (mass_mom_before - mass_mom_after).abs() < 1e-8 * mass_mom_before.abs(),
            "{mass_mom_before} vs {mass_mom_after}"
        );
    }

    #[test]
    fn zero_diffusivity_is_identity() {
        let mut col = Column::isothermal(8, 2000.0, 101_000.0, 280.0);
        col.u[3] = 10.0;
        let before = col.clone();
        diffuse_column(&mut col, &[0.0; 9], 600.0);
        assert_eq!(col.u, before.u);
        assert_eq!(col.t, before.t);
    }

    #[test]
    fn large_diffusivity_homogenizes() {
        let mut col = Column::isothermal(8, 2000.0, 101_000.0, 280.0);
        for k in 0..8 {
            col.u[k] = k as f64;
        }
        for _ in 0..500 {
            diffuse_column(&mut col, &[500.0; 9], 3600.0);
        }
        let mean: f64 =
            (0..8).map(|k| col.u[k] * col.dp[k]).sum::<f64>() / col.dp.iter().sum::<f64>();
        for k in 0..8 {
            assert!((col.u[k] - mean).abs() < 0.2, "level {k}: {} vs {mean}", col.u[k]);
        }
    }
}
