//! Betts–Miller-style convective adjustment.
//!
//! A reduced stand-in for CAM5's deep-convection scheme: where a column is
//! conditionally unstable and moist enough, temperature and moisture relax
//! toward a moist-adiabatic reference profile over a fixed timescale, and
//! the moisture removed falls as convective rain. This is the classic
//! Betts–Miller (1986) structure with the Frierson (2007) simplifications.

use crate::column::{sat_mixing_ratio, Column};
use cubesphere::consts::{CP, GRAV, LATVAP, RD};

/// Scheme parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BettsMiller {
    /// Relaxation timescale, s.
    pub tau: f64,
    /// Reference relative humidity of the post-convective profile.
    pub rh_ref: f64,
}

impl Default for BettsMiller {
    fn default() -> Self {
        BettsMiller { tau: 2.0 * 3600.0, rh_ref: 0.8 }
    }
}

impl BettsMiller {
    /// Moist-adiabat reference temperature profile lifted from the lowest
    /// layer: conserves the parcel's moist static energy `cp T + g z + L q`
    /// with saturation at each level (a first-order pseudo-adiabat).
    fn reference_profile(&self, col: &Column) -> Vec<f64> {
        let nlev = col.nlev();
        let ks = nlev - 1;
        // Parcel properties from the sub-cloud layer.
        let h_parcel = CP * col.t[ks] + LATVAP * col.qv[ks];
        let mut t_ref = vec![0.0; nlev];
        for k in 0..nlev {
            // Height of level k above the surface (hydrostatic, isothermal
            // approximation per layer).
            let z = RD * col.t[k] / GRAV * (col.ps() / col.p_mid[k]).ln();
            // Solve cp T + g z + L qsat(T, p) = h_parcel by a few Newton
            // steps (the saturation term is the only nonlinearity).
            let mut t = col.t[k];
            for _ in 0..8 {
                let qs = sat_mixing_ratio(t, col.p_mid[k]);
                let f = CP * t + GRAV * z + LATVAP * qs - h_parcel;
                // dqs/dT ~ L qs / (Rv T^2); Rv = 461.5.
                let dqs = LATVAP * qs / (461.5 * t * t);
                let df = CP + LATVAP * dqs;
                t -= f / df;
            }
            t_ref[k] = t;
        }
        t_ref
    }

    /// Convective available instability proxy: mass-weighted excess of the
    /// reference (parcel) profile over the environment, K.
    pub fn instability(&self, col: &Column) -> f64 {
        let t_ref = self.reference_profile(col);
        let mut acc = 0.0;
        let mut mass = 0.0;
        for k in 0..col.nlev() {
            acc += (t_ref[k] - col.t[k]) * col.dp[k];
            mass += col.dp[k];
        }
        acc / mass
    }

    /// Apply one adjustment step; returns convective rain, kg/m^2.
    ///
    /// Columns with no positive instability are untouched (the scheme is
    /// trigger-based, like its CAM counterpart).
    pub fn step(&self, col: &mut Column, dt: f64) -> f64 {
        let t_ref = self.reference_profile(col);
        // Trigger: the lifted parcel must be warmer than the environment
        // somewhere above the boundary layer.
        let unstable = (0..col.nlev().saturating_sub(1)).any(|k| t_ref[k] > col.t[k] + 0.1);
        if !unstable {
            return 0.0;
        }
        let w = (dt / self.tau).min(1.0);
        let mut dq_total = 0.0; // column moisture removed, Pa kg/kg
        let mut dh_total = 0.0; // column enthalpy added by T adjustment
        for k in 0..col.nlev() {
            let q_ref = self.rh_ref * sat_mixing_ratio(t_ref[k], col.p_mid[k]);
            let dt_k = w * (t_ref[k] - col.t[k]);
            let dq_k = w * (q_ref - col.qv[k]);
            col.t[k] += dt_k;
            col.qv[k] = (col.qv[k] + dq_k).max(0.0);
            dq_total += -dq_k * col.dp[k];
            dh_total += CP * dt_k * col.dp[k];
        }
        // Energy closure (Betts-Miller): the latent heat of the net rained
        // moisture must pay for the enthalpy change; rescale the rain to
        // balance and never allow negative precipitation.
        (dq_total / GRAV).max(dh_total / (LATVAP * GRAV)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unstable_column() -> Column {
        let mut c = Column::isothermal(12, 5_000.0, 100_000.0, 260.0);
        // Hot, very moist boundary layer under a cold free troposphere.
        let ks = c.nlev() - 1;
        c.t[ks] = 303.0;
        c.t[ks - 1] = 295.0;
        c.qv[ks] = 0.02;
        c.qv[ks - 1] = 0.015;
        c
    }

    #[test]
    fn stable_column_is_untouched() {
        let bm = BettsMiller::default();
        // Strongly stable: warm aloft, cold below, dry.
        let mut c = Column::isothermal(8, 5_000.0, 100_000.0, 280.0);
        for k in 0..8 {
            c.t[k] = 320.0 - 4.0 * k as f64; // inversion everywhere
        }
        let before = c.clone();
        let rain = bm.step(&mut c, 1800.0);
        assert_eq!(rain, 0.0);
        assert_eq!(c, before);
    }

    #[test]
    fn unstable_column_rains_and_stabilizes() {
        let bm = BettsMiller::default();
        let mut c = unstable_column();
        let inst0 = bm.instability(&c);
        let mut rain = 0.0;
        for _ in 0..20 {
            rain += bm.step(&mut c, 1800.0);
        }
        let inst1 = bm.instability(&c);
        assert!(rain > 0.0, "convection must rain");
        assert!(inst1 < inst0, "instability must be consumed: {inst0} -> {inst1}");
        assert!(c.t.iter().all(|&t| (180.0..330.0).contains(&t)));
        assert!(c.qv.iter().all(|&q| q >= 0.0));
    }

    #[test]
    fn adjustment_heats_the_free_troposphere() {
        let bm = BettsMiller::default();
        let mut c = unstable_column();
        let t_mid_before = c.t[6];
        bm.step(&mut c, 3600.0);
        assert!(c.t[6] > t_mid_before, "latent heating aloft");
    }

    #[test]
    fn relaxation_rate_scales_with_dt() {
        let bm = BettsMiller::default();
        let mut fast = unstable_column();
        let mut slow = unstable_column();
        bm.step(&mut fast, 3600.0);
        bm.step(&mut slow, 360.0);
        // Larger dt moves the column further toward the reference.
        let ks = fast.nlev() - 1;
        assert!((fast.t[ks] - 303.0).abs() > (slow.t[ks] - 303.0).abs() * 0.99);
    }

    #[test]
    fn reference_profile_is_a_cooling_adiabat() {
        let bm = BettsMiller::default();
        let c = unstable_column();
        let t_ref = bm.reference_profile(&c);
        // Monotone decrease with height (pressure decreasing index order is
        // top-first, so t_ref increases with k).
        for k in 1..c.nlev() {
            assert!(t_ref[k] >= t_ref[k - 1] - 1.0, "level {k}: {:?}", &t_ref[k - 1..=k]);
        }
    }
}
