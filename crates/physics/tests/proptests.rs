//! Property-based tests of the physics suite's budgets.

use cubesphere::consts::{CP, LATVAP};
use proptest::prelude::*;
use swphysics::pbl::tridiag_solve;
use swphysics::{saturation_adjust, Column, Kessler, SimplePhysics};

proptest! {
    /// Saturation adjustment conserves moist enthalpy and total water for
    /// any (t, qv, qc, p) state.
    #[test]
    fn saturation_adjust_budgets(
        t0 in 230.0f64..320.0,
        qv0 in 0.0f64..0.05,
        qc0 in 0.0f64..0.01,
        p in 20_000.0f64..103_000.0,
    ) {
        let (mut t, mut qv, mut qc) = (t0, qv0, qc0);
        let h0 = CP * t + LATVAP * qv;
        let w0 = qv + qc;
        saturation_adjust(&mut t, &mut qv, &mut qc, p);
        prop_assert!(qv >= 0.0 && qc >= -1e-15);
        prop_assert!((CP * t + LATVAP * qv - h0).abs() < 1e-6 * h0.abs());
        prop_assert!((qv + qc - w0).abs() < 1e-12);
    }

    /// The tridiagonal solver inverts diagonally-dominant random systems
    /// (checked by residual).
    #[test]
    fn tridiag_residual_small(
        n in 2usize..20,
        seed in proptest::collection::vec(-1.0f64..1.0, 64),
    ) {
        let a: Vec<f64> = (0..n).map(|i| seed[i % seed.len()]).collect();
        let c: Vec<f64> = (0..n).map(|i| seed[(i + 17) % seed.len()]).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| 2.5 + a[i].abs() + c[i].abs() + seed[(i + 31) % seed.len()].abs())
            .collect();
        let rhs: Vec<f64> = (0..n).map(|i| 10.0 * seed[(i + 7) % seed.len()]).collect();
        let mut x = rhs.clone();
        tridiag_solve(&a, &b, &c, &mut x);
        for i in 0..n {
            let mut r = b[i] * x[i] - rhs[i];
            if i > 0 {
                r += a[i] * x[i - 1];
            }
            if i + 1 < n {
                r += c[i] * x[i + 1];
            }
            prop_assert!(r.abs() < 1e-8, "residual {r} at row {i}");
        }
    }

    /// Kessler microphysics never produces negative water species and the
    /// column water budget closes against surface rain, for random humid
    /// columns.
    #[test]
    fn kessler_water_budget(
        t0 in 260.0f64..305.0,
        qv in 0.0f64..0.025,
        qc in 0.0f64..0.005,
        qr in 0.0f64..0.005,
        steps in 1usize..10,
    ) {
        let kes = Kessler::default();
        let mut col = Column::isothermal(10, 5_000.0, 100_000.0, t0);
        for k in 5..10 {
            col.qv[k] = qv;
            col.qc[k] = qc;
            col.qr[k] = qr;
        }
        let w0 = col.total_water();
        let mut rain = 0.0;
        for _ in 0..steps {
            rain += kes.step(&mut col, 120.0);
        }
        prop_assert!(col.qv.iter().all(|&x| x >= 0.0));
        prop_assert!(col.qc.iter().all(|&x| x >= 0.0));
        prop_assert!(col.qr.iter().all(|&x| x >= 0.0));
        prop_assert!(rain >= 0.0);
        let w1 = col.total_water();
        prop_assert!(
            ((w0 - w1) - rain).abs() < 1e-8 * w0.max(1e-6),
            "budget: delta {} vs rain {rain}",
            w0 - w1
        );
    }

    /// Simple physics keeps any reasonable column in physical bounds over
    /// repeated steps.
    #[test]
    fn simple_physics_stays_physical(
        sst in 290.0f64..305.0,
        wind in 0.0f64..40.0,
        steps in 1usize..30,
    ) {
        let sp = SimplePhysics { sst, ..Default::default() };
        let mut col = Column::isothermal(12, 2_000.0, 101_000.0, 290.0);
        col.u[11] = wind;
        for _ in 0..steps {
            sp.step(&mut col, 900.0);
        }
        prop_assert!(col.t.iter().all(|&t| (150.0..360.0).contains(&t)));
        prop_assert!(col.qv.iter().all(|&q| (0.0..0.1).contains(&q)));
        prop_assert!(col.u.iter().all(|&u| u.abs() <= wind + 1e-9));
    }
}
