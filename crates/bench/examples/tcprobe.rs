use katrina::{run, KatrinaConfig};
fn main() {
    let nlev: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let hours: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(24.0);
    let mut cfg = KatrinaConfig::ne120_class();
    cfg.nlev = nlev;
    cfg.earth_hours = hours;
    cfg.output_every = 3.0;
    let r = run(cfg);
    for f in &r.earth_track {
        println!("h={:5.1} msw={:5.1}kt ps={:7.1} lat={:.1} lon={:.1}", f.hours, f.msw_kt, f.min_ps_hpa, f.lat_deg, f.lon_deg);
    }
}
