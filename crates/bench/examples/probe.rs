//! Held-Suarez stability probe: day-by-day maximum wind and surface
//! pressure range over a 40-day ne4 integration. Useful when retuning
//! dissipation settings.

use swcam_core::{ModelConfig, SuiteChoice, Swcam};

fn main() {
    let mut cfg = ModelConfig::for_ne(4);
    cfg.nlev = 8;
    cfg.qsize = 0;
    cfg.suite = SuiteChoice::HeldSuarez;
    cfg.dt = 600.0;
    let mut model = Swcam::new(cfg);
    model.init_with(
        |_, _| cubesphere::P0,
        |lat, _lon, _k, pm| {
            let t = 290.0 - 40.0 * lat.sin().powi(2) * (pm / cubesphere::P0).powf(0.3);
            (0.0, 0.0, t.max(210.0), 0.0)
        },
    );
    for day in 0..40 {
        for _ in 0..144 {
            model.step();
        }
        let ps = model.surface_pressure();
        let psmin = ps.iter().cloned().fold(f64::MAX, f64::min);
        let psmax = ps.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "day {day}: maxwind={:.1} ps=[{:.0},{:.0}]",
            model.dycore.max_wind(&model.state),
            psmin,
            psmax
        );
    }
}
