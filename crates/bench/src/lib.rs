//! # swcam-bench — benchmark harness for the paper's evaluation
//!
//! One binary per table/figure (`cargo run -p swcam-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — kernel timings across Intel/MPE/OpenACC/Athread |
//! | `table2` | Table 2 — mesh configurations |
//! | `table3` | Table 3 — NGGPS dycore comparison |
//! | `fig4` | Figure 4 — climatological surface temperature, control vs test |
//! | `fig5` | Figure 5 — kernel speedups over one Intel core |
//! | `fig6` | Figure 6 — whole-CAM SYPD (ne30 and ne120) |
//! | `fig7` | Figure 7 — HOMME strong scaling (ne256, ne1024) |
//! | `fig8` | Figure 8 — weak scaling to 10,075,000 cores |
//! | `fig9` | Figure 9 — hurricane Katrina track + intensity |
//! | `ablation_transfer` | §7.3 — Algorithm 1 vs 2 data-transfer volume |
//! | `ablation_overlap` | §7.6 — original vs redesigned bndry_exchangev |
//!
//! Criterion benches live under `benches/`.

use homme::kernels::{verify, KernelData, KernelId, Variant};

/// The Table-1 measurement configuration: a 6,144-process ne256 run puts
/// 64 elements on each rank; the paper's runs use 128 levels and the CAM5
/// tracer count.
pub struct Table1Config {
    pub nelem: usize,
    pub nlev: usize,
    pub qsize: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        // 393,216 elements / 6,144 ranks = 64; nlev must satisfy the
        // Athread remap constraint (% 32).
        Table1Config { nelem: 64, nlev: 128, qsize: 25 }
    }
}

/// Modeled per-rank seconds of every kernel under every variant
/// (order: Intel, MPE, OpenACC, Athread).
pub fn table1_times(cfg: &Table1Config) -> Vec<(KernelId, [f64; 4])> {
    let env = verify::KernelEnv::default();
    KernelId::ALL
        .iter()
        .map(|&kernel| {
            let mut row = [0.0; 4];
            for (i, variant) in
                [Variant::Reference, Variant::Mpe, Variant::OpenAcc, Variant::Athread]
                    .into_iter()
                    .enumerate()
            {
                let mut data = KernelData::synth(cfg.nelem, cfg.nlev, cfg.qsize, 4242);
                row[i] = verify::run(kernel, variant, &mut data, &env).seconds;
            }
            (kernel, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_have_paper_ordering() {
        // A reduced configuration keeps the test quick; the binary runs the
        // full Table-1 sizes.
        let cfg = Table1Config { nelem: 16, nlev: 32, qsize: 4 };
        let rows = table1_times(&cfg);
        assert_eq!(rows.len(), 6);
        for (kernel, [t_intel, t_mpe, _t_acc, t_ath]) in rows {
            assert!(t_mpe > t_intel, "{}", kernel.name());
            assert!(t_ath < t_intel, "{}", kernel.name());
        }
    }
}
