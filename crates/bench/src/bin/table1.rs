//! Table 1: key dycore kernel timings at the 6,144-process working set
//! (64 elements/rank, 128 levels, 25 tracers) across the four variants.

use perfmodel::report::{secs, table};
use swcam_bench::{table1_times, Table1Config};

fn main() {
    let cfg = Table1Config::default();
    println!(
        "Workload: {} elements/rank (ne256 over 6,144 processes), nlev = {}, qsize = {}\n",
        cfg.nelem, cfg.nlev, cfg.qsize
    );
    let rows: Vec<Vec<String>> = table1_times(&cfg)
        .into_iter()
        .map(|(k, [intel, mpe, acc, ath])| {
            vec![
                k.name().to_string(),
                secs(intel),
                secs(mpe),
                secs(acc),
                secs(ath),
                format!("{:.1}x", mpe / intel),
                format!("{:.1}x", mpe / acc),
                format!("{:.1}x", acc / ath),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Table 1: kernel timings (modeled per-rank seconds)",
            &["kernel", "Intel", "MPE", "OpenACC", "Athread", "MPE/Intel", "MPE/Acc", "Acc/Ath"],
            &rows
        )
    );
    println!("Paper reference ratios (Table 1 + Fig. 5): MPE 2.4-11x slower than");
    println!("Intel; OpenACC 3-22x over MPE; Athread up to 50x over OpenACC.");
}
