//! Figure 5: per-kernel speedups relative to one Intel core.

use perfmodel::report::table;
use swcam_bench::{table1_times, Table1Config};

fn main() {
    let cfg = Table1Config::default();
    let rows: Vec<Vec<String>> = table1_times(&cfg)
        .into_iter()
        .map(|(k, [intel, mpe, acc, ath])| {
            vec![
                k.name().to_string(),
                format!("{:.2}x", intel / mpe),
                format!("{:.2}x", intel / acc),
                format!("{:.2}x", intel / ath),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 5: speedup over one Intel core (values > 1 are faster)",
            &["kernel", "MPE", "OpenACC (64 CPEs)", "Athread (64 CPEs)"],
            &rows
        )
    );
    println!("Paper: MPE 0.1-0.5x; OpenACC near 1x; Athread 7-46x.");
}
