//! Full-step wall-clock benchmark for the flat-arena pipeline refactor.
//!
//! Times one complete `prim_run` step (RK dynamics + DSS + hypervis +
//! tracer advection + remap) at ne8 / 26 levels / 4 tracers in three
//! configurations:
//!
//! 1. the seed per-element-`Vec` driver (`SeedStepper`, serial),
//! 2. the flat-arena pipeline pinned to one worker,
//! 3. the flat-arena pipeline on the available cores (>= 4).
//!
//! Emits `BENCH_fullstep.json` in the working directory. The refactor's
//! target is >= 2x speedup of (3) over (1); the JSON records whether this
//! run met it, plus per-phase breakdowns of the flat step (RK dynamics /
//! hyperviscosity / tracer advection / vertical remap) for BOTH the
//! serial and the parallel bulk run, the message-driven task-graph step's
//! time on the same worker pool, and which step path won (the
//! `step_path_chosen` field), and a comparison against the committed
//! pre-plan serial baseline. Run with
//! `cargo run --release -p swcam-bench --bin fullstep`.

use std::time::Instant;

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::{Dims, Dycore, DycoreConfig, SeedStepper, State, StepPath};

const NE: usize = 8;
const NLEV: usize = 26;
const QSIZE: usize = 4;
const WARMUP_STEPS: usize = 1;
const MEASURE_STEPS: usize = 3;
const TARGET_SPEEDUP: f64 = 2.0;
/// `flat_serial_ms_per_step` recorded on the development host before the
/// remap plan landed (blocked kernel layer, transposition-based remap) —
/// the bar the geometry-reuse remap has to beat.
const BASELINE_FLAT_SERIAL_MS: f64 = 469.361;

fn build() -> Dycore {
    let dims = Dims { nlev: NLEV, qsize: QSIZE };
    Dycore::new(NE, dims, 200.0, DycoreConfig::for_ne(NE))
}

fn initial_state(dy: &Dycore) -> State {
    let dims = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems: Vec<_> = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            for k in 0..dims.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, P0);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                }
            }
        }
    }
    st
}

/// Per-step wall time (ms) of `step` after warm-up.
fn time_per_step(mut step: impl FnMut()) -> f64 {
    for _ in 0..WARMUP_STEPS {
        step();
    }
    let t0 = Instant::now();
    for _ in 0..MEASURE_STEPS {
        step();
    }
    t0.elapsed().as_secs_f64() * 1e3 / MEASURE_STEPS as f64
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // One worker per real core: `cores.max(4)` used to force 4 workers on
    // smaller hosts, which oversubscribes the cores and times scheduler
    // contention instead of the kernels. `SWCAM_BENCH_THREADS` overrides
    // (e.g. to reproduce the old oversubscribed numbers deliberately).
    let threads = std::env::var("SWCAM_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(cores);
    let oversubscribed = threads > cores;
    println!(
        "fullstep: ne{NE}, nlev {NLEV}, qsize {QSIZE}; {cores} cores, parallel run uses {threads} threads"
    );
    if oversubscribed {
        println!(
            "  note: {threads} threads on {cores} cores is oversubscribed; \
             parallel-speedup numbers measure contention, not kernels"
        );
    }

    let mut dy = build();
    let init = initial_state(&dy);

    let mut seed_state = init.clone();
    let mut oracle = SeedStepper::new();
    let seed_ms = time_per_step(|| oracle.step(&mut dy, &mut seed_state));
    println!("  seed serial      : {seed_ms:9.2} ms/step");

    dy.set_threads(1);
    let mut flat1_state = init.clone();
    let flat1_ms = time_per_step(|| dy.step(&mut flat1_state));
    println!("  flat, 1 thread   : {flat1_ms:9.2} ms/step  ({:.2}x vs seed)", seed_ms / flat1_ms);

    // Per-phase breakdown of the serial flat step: run each pipeline phase
    // by hand on a fresh trajectory and time it separately. The phases are
    // the exact calls `Dycore::step` makes (remap every step — this
    // config's rsplit is 1), so the shares sum to ~the full step time.
    let mut phase_state = init.clone();
    let (mut rk_ms, mut hv_ms, mut tr_ms, mut rm_ms) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for step in 0..WARMUP_STEPS + MEASURE_STEPS {
        let measured = step >= WARMUP_STEPS;
        let lap = |acc: &mut f64, t0: Instant| {
            if measured {
                *acc += t0.elapsed().as_secs_f64() * 1e3 / MEASURE_STEPS as f64;
            }
        };
        let t0 = Instant::now();
        dy.dynamics_step(&mut phase_state);
        lap(&mut rk_ms, t0);
        let t0 = Instant::now();
        dy.apply_hypervis(&mut phase_state).expect("hyperviscosity plan");
        lap(&mut hv_ms, t0);
        let t0 = Instant::now();
        dy.euler_step_tracers(&mut phase_state);
        lap(&mut tr_ms, t0);
        let t0 = Instant::now();
        dy.vertical_remap(&mut phase_state).expect("vertical remap");
        lap(&mut rm_ms, t0);
    }
    let phase_total = rk_ms + hv_ms + tr_ms + rm_ms;
    // Per-subcycle view of the hypervis wall: the subcycle count is fixed
    // by the stability bound, so ms/subcycle is the unit the fused-sweep
    // optimisation actually moves.
    let hv_subcycles = dy.hypervis_subcycles();
    let hv_ms_sub = hv_ms / hv_subcycles as f64;
    println!("  phases (serial)  : rk {rk_ms:.2}  hypervis {hv_ms:.2}  tracer {tr_ms:.2}  remap {rm_ms:.2} ms/step");
    println!(
        "    hypervis     : {hv_subcycles} subcycles, {hv_ms_sub:.2} ms/subcycle (incl. sponge share)"
    );
    for (name, ms) in
        [("rk_dynamics", rk_ms), ("hypervis", hv_ms), ("tracer", tr_ms), ("remap", rm_ms)]
    {
        println!("    {name:<12}: {:5.1}% of step", 100.0 * ms / phase_total);
    }

    dy.set_threads(threads);
    let mut flatn_state = init.clone();
    let flatn_ms = time_per_step(|| dy.step(&mut flatn_state));
    let speedup = seed_ms / flatn_ms;
    println!("  flat, {threads} threads  : {flatn_ms:9.2} ms/step  ({speedup:.2}x vs seed)");

    // Per-phase breakdown of the PARALLEL bulk step (same worker pool as
    // the timed run above): where the barrier path spends its wall-clock,
    // phase by phase, is the baseline the task graph pipelines against.
    let mut pphase_state = init.clone();
    let (mut prk_ms, mut phv_ms, mut ptr_ms, mut prm_ms) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for step in 0..WARMUP_STEPS + MEASURE_STEPS {
        let measured = step >= WARMUP_STEPS;
        let lap = |acc: &mut f64, t0: Instant| {
            if measured {
                *acc += t0.elapsed().as_secs_f64() * 1e3 / MEASURE_STEPS as f64;
            }
        };
        let t0 = Instant::now();
        dy.dynamics_step(&mut pphase_state);
        lap(&mut prk_ms, t0);
        let t0 = Instant::now();
        dy.apply_hypervis(&mut pphase_state).expect("hyperviscosity plan");
        lap(&mut phv_ms, t0);
        let t0 = Instant::now();
        dy.euler_step_tracers(&mut pphase_state);
        lap(&mut ptr_ms, t0);
        let t0 = Instant::now();
        dy.vertical_remap(&mut pphase_state).expect("vertical remap");
        lap(&mut prm_ms, t0);
    }
    let phv_ms_sub = phv_ms / hv_subcycles as f64;
    println!(
        "  phases ({threads} threads): rk {prk_ms:.2}  hypervis {phv_ms:.2}  \
         tracer {ptr_ms:.2}  remap {prm_ms:.2} ms/step"
    );
    println!(
        "    hypervis     : {hv_subcycles} subcycles, {phv_ms_sub:.2} ms/subcycle (incl. sponge share)"
    );

    // The message-driven task-graph step on the same worker pool: DSS as
    // per-element accumulation instead of a sync point, hypervis subcycles
    // pipelined across elements.
    dy.step_path = StepPath::TaskGraph;
    let mut graph_state = init.clone();
    let graph_ms = time_per_step(|| dy.step(&mut graph_state));
    let graph_vs_bulk = flatn_ms / graph_ms;
    println!(
        "  taskgraph, {threads} threads: {graph_ms:9.2} ms/step  ({graph_vs_bulk:.2}x vs bulk parallel)"
    );
    let chosen_path = if graph_ms < flatn_ms { "taskgraph" } else { "bulk" };
    println!("  chosen step path : {chosen_path}");
    dy.step_path = StepPath::Bulk;

    // Sanity: every driver walked the same trajectory, to the bit.
    let d1 = flat1_state.max_abs_diff(&seed_state);
    let dn = flatn_state.max_abs_diff(&seed_state);
    let dg = graph_state.max_abs_diff(&seed_state);
    assert_eq!(d1, 0.0, "flat serial diverged from seed by {d1:e}");
    assert_eq!(dn, 0.0, "flat parallel diverged from seed by {dn:e}");
    assert_eq!(dg, 0.0, "task-graph diverged from seed by {dg:e}");

    let meets = speedup >= TARGET_SPEEDUP;
    println!(
        "  target {TARGET_SPEEDUP:.1}x vs seed serial: {}",
        if meets { "met" } else { "NOT met" }
    );
    let beats_baseline = flat1_ms < BASELINE_FLAT_SERIAL_MS;
    println!(
        "  vs committed pre-plan serial baseline {BASELINE_FLAT_SERIAL_MS:.1} ms/step: \
         {flat1_ms:.1} ms/step ({})",
        if beats_baseline { "improved" } else { "NOT improved" }
    );

    let json = format!(
        "{{\n  \"bench\": \"fullstep\",\n  \"ne\": {NE},\n  \"nlev\": {NLEV},\n  \"qsize\": {QSIZE},\n  \
         \"steps_measured\": {MEASURE_STEPS},\n  \"cores\": {cores},\n  \"threads\": {threads},\n  \
         \"oversubscribed\": {oversubscribed},\n  \
         \"seed_serial_ms_per_step\": {seed_ms:.3},\n  \
         \"flat_serial_ms_per_step\": {flat1_ms:.3},\n  \
         \"flat_parallel_ms_per_step\": {flatn_ms:.3},\n  \
         \"phases_serial_ms_per_step\": {{\n    \"rk_dynamics\": {rk_ms:.3},\n    \
         \"hypervis\": {hv_ms:.3},\n    \"tracer\": {tr_ms:.3},\n    \"remap\": {rm_ms:.3}\n  }},\n  \
         \"phase_share_pct\": {{\n    \"rk_dynamics\": {:.1},\n    \"hypervis\": {:.1},\n    \
         \"tracer\": {:.1},\n    \"remap\": {:.1}\n  }},\n  \
         \"phases_parallel_ms_per_step\": {{\n    \"rk_dynamics\": {prk_ms:.3},\n    \
         \"hypervis\": {phv_ms:.3},\n    \"tracer\": {ptr_ms:.3},\n    \"remap\": {prm_ms:.3}\n  }},\n  \
         \"hypervis_subcycles\": {hv_subcycles},\n  \
         \"hypervis_serial_ms_per_subcycle\": {hv_ms_sub:.3},\n  \
         \"hypervis_parallel_ms_per_subcycle\": {phv_ms_sub:.3},\n  \
         \"taskgraph_parallel_ms_per_step\": {graph_ms:.3},\n  \
         \"taskgraph_speedup_vs_bulk_parallel\": {graph_vs_bulk:.3},\n  \
         \"step_path_chosen\": \"{chosen_path}\",\n  \
         \"baseline_flat_serial_ms_per_step\": {BASELINE_FLAT_SERIAL_MS},\n  \
         \"beats_baseline\": {beats_baseline},\n  \
         \"speedup_flat_serial_vs_seed\": {:.3},\n  \
         \"speedup_parallel_vs_seed\": {speedup:.3},\n  \
         \"target_speedup\": {TARGET_SPEEDUP},\n  \"meets_target\": {meets}\n}}\n",
        100.0 * rk_ms / phase_total,
        100.0 * hv_ms / phase_total,
        100.0 * tr_ms / phase_total,
        100.0 * rm_ms / phase_total,
        seed_ms / flat1_ms,
    );
    std::fs::write("BENCH_fullstep.json", &json).expect("write BENCH_fullstep.json");
    println!("wrote BENCH_fullstep.json");
}
