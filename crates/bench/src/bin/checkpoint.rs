//! Checkpoint + health-guard overhead benchmark.
//!
//! Measures, at the exchange benchmark's resolution (ne8, nlev 26,
//! qsize 4):
//!
//! * snapshot (encode) and restore (decode) time for the in-memory
//!   checkpoint codec, plus the checkpoint size in bytes;
//! * serial steps/sec with the per-stage health guards off vs on — the
//!   guard scan is a single extra pass over the RK state, so the gap is
//!   the whole cost of running "checked".
//!
//! Emits `BENCH_checkpoint.json`. Run with
//! `cargo run --release -p swcam-bench --bin checkpoint`.

use std::time::Instant;

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::hypervis::HypervisConfig;
use homme::{Dims, Dycore, DycoreConfig, HealthConfig, State};
use swcam_core::checkpoint::{self, CheckpointMeta};

const NE: usize = 8;
const NLEV: usize = 26;
const QSIZE: usize = 4;
const CODEC_REPS: usize = 20;
const WARMUP_STEPS: usize = 1;
const MEASURE_STEPS: usize = 4;

fn config() -> DycoreConfig {
    let nu = HypervisConfig::for_ne(NE).nu;
    DycoreConfig {
        dt: 300.0 * 30.0 / NE as f64,
        hypervis: HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 2.5e5, sponge_layers: 3 },
        limiter: true,
        rsplit: 1,
    }
}

fn initial_state(dy: &Dycore) -> State {
    let dims = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems: Vec<_> = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..dims.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.v[i] = 2.0 * lon.sin();
                es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, ps);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                }
            }
        }
    }
    st
}

/// Steps/sec of the serial dycore, guards off (`step`) or on
/// (`step_checked` with [`HealthConfig::on`]).
fn steps_per_sec(init: &State, guarded: bool) -> f64 {
    let dims = Dims { nlev: NLEV, qsize: QSIZE };
    let mut dy = Dycore::new(NE, dims, 200.0, config());
    if guarded {
        dy.health = HealthConfig::on();
    }
    let mut st = init.clone();
    for _ in 0..WARMUP_STEPS {
        if guarded {
            dy.step_checked(&mut st).expect("warm-up step");
        } else {
            dy.step(&mut st);
        }
    }
    let t0 = Instant::now();
    for _ in 0..MEASURE_STEPS {
        if guarded {
            dy.step_checked(&mut st).expect("step");
        } else {
            dy.step(&mut st);
        }
    }
    MEASURE_STEPS as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    println!("checkpoint: ne{NE}, nlev {NLEV}, qsize {QSIZE}");
    let dims = Dims { nlev: NLEV, qsize: QSIZE };
    let dy = Dycore::new(NE, dims, 200.0, config());
    let init = initial_state(&dy);

    let meta = CheckpointMeta { step: 42, remap_phase: 0, rank: 0, epoch: 0, time: 42.0 * 300.0 };
    let mut buf = Vec::new();
    checkpoint::encode_into(&init, &meta, &mut buf); // size + warm the buffer
    let bytes = buf.len();

    let t0 = Instant::now();
    for _ in 0..CODEC_REPS {
        checkpoint::encode_into(&init, &meta, &mut buf);
    }
    let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3 / CODEC_REPS as f64;

    let mut restored = State::zeros(dims, dy.grid.nelem());
    let t0 = Instant::now();
    for _ in 0..CODEC_REPS {
        checkpoint::decode(&buf, &mut restored).expect("decode");
    }
    let restore_ms = t0.elapsed().as_secs_f64() * 1e3 / CODEC_REPS as f64;
    assert_eq!(restored.u, init.u, "restore must be bitwise");

    let plain = steps_per_sec(&init, false);
    let guarded = steps_per_sec(&init, true);
    let overhead_pct = (plain / guarded - 1.0) * 100.0;

    println!("  checkpoint size : {bytes} B");
    println!("  snapshot        : {snapshot_ms:.3} ms");
    println!("  restore         : {restore_ms:.3} ms");
    println!("  steps/sec plain : {plain:.3}");
    println!("  steps/sec guard : {guarded:.3}  (overhead {overhead_pct:+.1}%)");

    let json = format!(
        "{{\n  \"bench\": \"checkpoint\",\n  \"ne\": {NE},\n  \"nlev\": {NLEV},\n  \"qsize\": {QSIZE},\n  \
         \"checkpoint_bytes\": {bytes},\n  \"snapshot_ms\": {snapshot_ms:.4},\n  \
         \"restore_ms\": {restore_ms:.4},\n  \"steps_per_sec_unguarded\": {plain:.4},\n  \
         \"steps_per_sec_guarded\": {guarded:.4},\n  \"guard_overhead_pct\": {overhead_pct:.2}\n}}\n"
    );
    std::fs::write("BENCH_checkpoint.json", &json).expect("write BENCH_checkpoint.json");
    println!("wrote BENCH_checkpoint.json");
}
