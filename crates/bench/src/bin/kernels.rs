//! Kernel-level scalar-vs-blocked microbenchmarks for the vectorized
//! kernel layer.
//!
//! Times one full sweep over every element of an ne8 / 26-level / 4-tracer
//! grid for each hot kernel, in both implementations:
//!
//! * the column scans (pressure forward scan, geopotential reverse scan),
//! * the fused RK RHS tendency + apply (`element_rhs_apply_blocked` vs
//!   `element_rhs_raw` + the driver's apply loop),
//! * one fused SSP Euler tracer stage (flux divergence + update + stage
//!   combination, mass fluxes hoisted across the tracer loop),
//! * the hyperviscosity Laplacians (scalar and vector),
//! * the planned biharmonic pass (`biharmonic_planned`: the fused 4-wide
//!   (u, v, T, dp3d) del^4 element sweep — both Laplacian passes sharing
//!   one coefficient walk per pass — against the per-field scalar walks),
//! * the full planned hyperviscosity application (`hypervis_fullpass`:
//!   `Dycore::apply_hypervis` end to end — plan build, sponge, subcycled
//!   del^4, DSS-fused applies — Blocked vs Scalar kernel path),
//! * the member-lane biharmonic batch (`hypervis_member_lanes`: four
//!   ensemble member states transposed into `V4F64` lanes and pushed
//!   through the fused del^4 passes in one sweep — gather and scatter
//!   included in the timing — against the same blocked element sweep run
//!   member-serially four times),
//! * the planned vertical remap (`vertical_remap` times the production
//!   path — plan build + coefficient apply — while `vertical_remap_planned`
//!   times the apply pass alone over prebuilt plans, isolating the
//!   coefficient-apply share from the per-element geometry cost).
//!
//! Every pair is asserted bitwise identical before it is timed — the
//! blocked path is a reordering-free re-expression of the scalar math.
//! Emits `BENCH_kernels.json`. The PR's target is >= 1.5x on the RHS
//! tendency, the Euler tracer stage and the planned vertical remap. Run
//! with `cargo run --release -p swcam-bench --bin kernels` (`--smoke` runs
//! a single iteration of everything, for CI).

use std::time::Instant;

use cubesphere::consts::P0;
use cubesphere::{CubedSphere, NPTS};
use homme::euler::tracer_flux_divergence;
use homme::kernels::blocked::{
    build_blocked_ops, element_rhs_apply_blocked, euler_stage_element_blocked,
    hypervis_pass_element_blocked, hypervis_pass_levels_blocked, laplace_levels_blocked,
    remap_element_planned, vlaplace_levels_blocked,
};
use homme::kernels::member_lanes::{
    gather_member_tile, hypervis_pass_levels_member_lanes, hypervis_pass_member_lanes,
    scatter_member_tile,
};
use homme::remap::{remap_element_scalar, ElemRemapPlan, RemapApplyScratch, RemapScratch};
use homme::rhs::{
    element_rhs_raw, geopotential_scan, geopotential_scan_blocked, pressure_scan,
    pressure_scan_blocked, RhsScratch,
};
use homme::{build_ops, Dims, Dycore, DycoreConfig, KernelPath, StageCombine, VertCoord};
use sw26010::V4F64;

const NE: usize = 8;
const NLEV: usize = 26;
const QSIZE: usize = 4;
const PTOP: f64 = 200.0;
const C_DT: f64 = 100.0;
const TARGET_SPEEDUP: f64 = 1.5;

struct Arenas {
    u: Vec<f64>,
    v: Vec<f64>,
    t: Vec<f64>,
    dp3d: Vec<f64>,
    phis: Vec<f64>,
    qdp: Vec<f64>,
}

fn build_arenas(grid: &CubedSphere) -> Arenas {
    let nelem = grid.nelem();
    let fl = NLEV * NPTS;
    let tl = QSIZE * NLEV * NPTS;
    let vert = VertCoord::standard(NLEV, PTOP);
    let mut a = Arenas {
        u: vec![0.0; nelem * fl],
        v: vec![0.0; nelem * fl],
        t: vec![0.0; nelem * fl],
        dp3d: vec![0.0; nelem * fl],
        phis: vec![0.0; nelem * NPTS],
        qdp: vec![0.0; nelem * tl],
    };
    for (e, el) in grid.elements.iter().enumerate() {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            a.phis[e * NPTS + p] = 200.0 * (2.0 * lon).cos() * lat.cos();
            for k in 0..NLEV {
                let i = e * fl + k * NPTS + p;
                a.u[i] = 20.0 * lat.cos();
                a.v[i] = 2.0 * lon.sin();
                a.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                a.dp3d[i] = vert.dp_ref(k, ps);
                for q in 0..QSIZE {
                    a.qdp[e * tl + (q * NLEV + k) * NPTS + p] =
                        (0.01 + 0.002 * q as f64) * a.dp3d[i];
                }
            }
        }
    }
    a
}

/// Wall time (ms) of one sweep of `run`, averaged over the measured
/// iterations after warm-up.
fn time_sweeps(warmup: usize, measure: usize, mut run: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        run();
    }
    let t0 = Instant::now();
    for _ in 0..measure {
        run();
    }
    t0.elapsed().as_secs_f64() * 1e3 / measure as f64
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: blocked diverged from scalar at [{i}]: {x:e} vs {y:e}"
        );
    }
}

/// The five prognostic arenas (u, v, t, dp3d, qdp) as one remap workset.
type Fields5 = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

struct Row {
    name: &'static str,
    scalar_ms: f64,
    blocked_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_ms / self.blocked_ms
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, measure) = if smoke { (0, 1) } else { (2, 10) };
    // The sub-millisecond column scans need far more sweeps than the heavy
    // kernels before the timing rises above scheduler noise.
    let (warmup_scan, measure_scan) = if smoke { (0, 1) } else { (10, 200) };
    let grid = CubedSphere::new(NE);
    let ops = build_ops(&grid);
    let bops = build_blocked_ops(&ops);
    let vert = VertCoord::standard(NLEV, PTOP);
    let arenas = build_arenas(&grid);
    let nelem = grid.nelem();
    let fl = NLEV * NPTS;
    let tl = QSIZE * NLEV * NPTS;
    println!(
        "kernels: ne{NE} ({nelem} elements), nlev {NLEV}, qsize {QSIZE}, \
         {measure} sweeps per timing{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    let push = |rows: &mut Vec<Row>, name: &'static str, scalar_ms: f64, blocked_ms: f64| {
        let speedup = scalar_ms / blocked_ms;
        println!("  {name:<18}: scalar {scalar_ms:8.3} ms  blocked {blocked_ms:8.3} ms  ({speedup:.2}x)");
        rows.push(Row { name, scalar_ms, blocked_ms });
    };

    // --- column scans --------------------------------------------------
    {
        let il = (NLEV + 1) * NPTS;
        let mut pint_s = vec![0.0; nelem * il];
        let mut pmid_s = vec![0.0; nelem * fl];
        let mut pint_b = vec![0.0; nelem * il];
        let mut pmid_b = vec![0.0; nelem * fl];
        let scalar = |pint: &mut [f64], pmid: &mut [f64]| {
            for e in 0..nelem {
                pressure_scan(
                    NLEV,
                    PTOP,
                    &arenas.dp3d[e * fl..(e + 1) * fl],
                    &mut pint[e * il..(e + 1) * il],
                    &mut pmid[e * fl..(e + 1) * fl],
                );
            }
        };
        let blocked = |pint: &mut [f64], pmid: &mut [f64]| {
            for e in 0..nelem {
                pressure_scan_blocked(
                    NLEV,
                    PTOP,
                    &arenas.dp3d[e * fl..(e + 1) * fl],
                    &mut pint[e * il..(e + 1) * il],
                    &mut pmid[e * fl..(e + 1) * fl],
                );
            }
        };
        scalar(&mut pint_s, &mut pmid_s);
        blocked(&mut pint_b, &mut pmid_b);
        assert_bitwise(&pint_s, &pint_b, "pressure_scan p_int");
        assert_bitwise(&pmid_s, &pmid_b, "pressure_scan p_mid");
        let s = time_sweeps(warmup_scan, measure_scan, || scalar(&mut pint_s, &mut pmid_s));
        let b = time_sweeps(warmup_scan, measure_scan, || blocked(&mut pint_b, &mut pmid_b));
        push(&mut rows, "pressure_scan", s, b);

        let mut phi_s = vec![0.0; nelem * fl];
        let mut phi_b = vec![0.0; nelem * fl];
        let scalar = |phi: &mut [f64]| {
            for e in 0..nelem {
                geopotential_scan(
                    NLEV,
                    &arenas.phis[e * NPTS..(e + 1) * NPTS],
                    &arenas.t[e * fl..(e + 1) * fl],
                    &pint_s[e * il..(e + 1) * il],
                    &pmid_s[e * fl..(e + 1) * fl],
                    &mut phi[e * fl..(e + 1) * fl],
                );
            }
        };
        let blocked = |phi: &mut [f64]| {
            for e in 0..nelem {
                geopotential_scan_blocked(
                    NLEV,
                    &arenas.phis[e * NPTS..(e + 1) * NPTS],
                    &arenas.t[e * fl..(e + 1) * fl],
                    &pint_s[e * il..(e + 1) * il],
                    &pmid_s[e * fl..(e + 1) * fl],
                    &mut phi[e * fl..(e + 1) * fl],
                );
            }
        };
        scalar(&mut phi_s);
        blocked(&mut phi_b);
        assert_bitwise(&phi_s, &phi_b, "geopotential_scan");
        let s = time_sweeps(warmup_scan, measure_scan, || scalar(&mut phi_s));
        let b = time_sweeps(warmup_scan, measure_scan, || blocked(&mut phi_b));
        push(&mut rows, "geopotential_scan", s, b);
    }

    // --- RK RHS tendency + apply --------------------------------------
    {
        let mut scratch = RhsScratch::new(NLEV);
        let mut tend_u = vec![0.0; fl];
        let mut tend_v = vec![0.0; fl];
        let mut tend_t = vec![0.0; fl];
        let mut tend_dp = vec![0.0; fl];
        let mut out_s = [
            vec![0.0; nelem * fl],
            vec![0.0; nelem * fl],
            vec![0.0; nelem * fl],
            vec![0.0; nelem * fl],
        ];
        let mut out_b = out_s.clone();
        let a = &arenas;
        let scalar = |out: &mut [Vec<f64>; 4],
                          scratch: &mut RhsScratch,
                          tu: &mut [f64],
                          tv: &mut [f64],
                          tt: &mut [f64],
                          tdp: &mut [f64]| {
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                element_rhs_raw(
                    &ops[e],
                    NLEV,
                    PTOP,
                    &a.u[r.clone()],
                    &a.v[r.clone()],
                    &a.t[r.clone()],
                    &a.dp3d[r.clone()],
                    &a.phis[e * NPTS..(e + 1) * NPTS],
                    tu,
                    tv,
                    tt,
                    tdp,
                    scratch,
                );
                // The driver's apply loop: out = base + c*dt * tend.
                let [ou, ov, ot, odp] = out;
                for (i, g) in r.enumerate() {
                    ou[g] = a.u[g] + C_DT * tu[i];
                    ov[g] = a.v[g] + C_DT * tv[i];
                    ot[g] = a.t[g] + C_DT * tt[i];
                    odp[g] = a.dp3d[g] + C_DT * tdp[i];
                }
            }
        };
        let blocked = |out: &mut [Vec<f64>; 4], scratch: &mut RhsScratch| {
            let [ou, ov, ot, odp] = out;
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                element_rhs_apply_blocked(
                    &bops[e],
                    NLEV,
                    PTOP,
                    &a.u[r.clone()],
                    &a.v[r.clone()],
                    &a.t[r.clone()],
                    &a.dp3d[r.clone()],
                    &a.phis[e * NPTS..(e + 1) * NPTS],
                    &a.u[r.clone()],
                    &a.v[r.clone()],
                    &a.t[r.clone()],
                    &a.dp3d[r.clone()],
                    C_DT,
                    &mut ou[r.clone()],
                    &mut ov[r.clone()],
                    &mut ot[r.clone()],
                    &mut odp[r.clone()],
                    scratch,
                );
            }
        };
        scalar(&mut out_s, &mut scratch, &mut tend_u, &mut tend_v, &mut tend_t, &mut tend_dp);
        blocked(&mut out_b, &mut scratch);
        for (i, name) in ["u", "v", "t", "dp3d"].iter().enumerate() {
            assert_bitwise(&out_s[i], &out_b[i], &format!("rhs tendency {name}"));
        }
        let s = time_sweeps(warmup, measure, || {
            scalar(&mut out_s, &mut scratch, &mut tend_u, &mut tend_v, &mut tend_t, &mut tend_dp)
        });
        let b = time_sweeps(warmup, measure, || blocked(&mut out_b, &mut scratch));
        push(&mut rows, "rhs_tendency", s, b);
    }

    // --- Euler tracer stage (SSP stage 2: 3/4 q0 + 1/4 (q + dt L q)) ---
    {
        let a = &arenas;
        let mut qtmp = vec![0.0; nelem * tl];
        let mut qout_s = vec![0.0; nelem * tl];
        let mut qout_b = vec![0.0; nelem * tl];
        let scalar = |qtmp: &mut [f64], qout: &mut [f64]| {
            // The scalar driver's shape: a flux-divergence substep into a
            // temporary, then a separate arena-wide combination pass.
            for e in 0..nelem {
                let r0 = e * fl;
                let q0 = e * tl;
                for q in 0..QSIZE {
                    for k in 0..NLEV {
                        let r = r0 + k * NPTS..r0 + (k + 1) * NPTS;
                        let rq = q0 + (q * NLEV + k) * NPTS..q0 + (q * NLEV + k + 1) * NPTS;
                        let mut tend = [0.0; NPTS];
                        tracer_flux_divergence(
                            &ops[e],
                            &a.u[r.clone()],
                            &a.v[r.clone()],
                            &a.dp3d[r.clone()],
                            &a.qdp[rq.clone()],
                            &mut tend,
                        );
                        for (p, g) in rq.enumerate() {
                            qtmp[g] = a.qdp[g] + C_DT * tend[p];
                        }
                    }
                }
            }
            for (o, (q0, t)) in qout.iter_mut().zip(a.qdp.iter().zip(qtmp.iter())) {
                *o = 0.75 * q0 + 0.25 * t;
            }
        };
        let blocked = |qout: &mut [f64]| {
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                let rq = e * tl..(e + 1) * tl;
                euler_stage_element_blocked(
                    &bops[e],
                    NLEV,
                    QSIZE,
                    &a.u[r.clone()],
                    &a.v[r.clone()],
                    &a.dp3d[r],
                    &a.qdp[rq.clone()],
                    &a.qdp[rq.clone()],
                    C_DT,
                    StageCombine::Ssp2,
                    &mut qout[rq],
                );
            }
        };
        scalar(&mut qtmp, &mut qout_s);
        blocked(&mut qout_b);
        assert_bitwise(&qout_s, &qout_b, "euler stage");
        let s = time_sweeps(warmup, measure, || scalar(&mut qtmp, &mut qout_s));
        let b = time_sweeps(warmup, measure, || blocked(&mut qout_b));
        push(&mut rows, "euler_stage", s, b);
    }

    // --- hyperviscosity Laplacians ------------------------------------
    {
        let a = &arenas;
        let mut work_s = a.t.clone();
        let mut work_b = a.t.clone();
        let scalar = |work: &mut Vec<f64>| {
            work.copy_from_slice(&a.t);
            for e in 0..nelem {
                let f = &mut work[e * fl..(e + 1) * fl];
                for k in 0..NLEV {
                    let r = k * NPTS..(k + 1) * NPTS;
                    let mut lap = [0.0; NPTS];
                    ops[e].laplace_sphere_wk(&f[r.clone()], &mut lap);
                    f[r].copy_from_slice(&lap);
                }
            }
        };
        let blocked = |work: &mut Vec<f64>| {
            work.copy_from_slice(&a.t);
            for e in 0..nelem {
                laplace_levels_blocked(&bops[e], NLEV, &mut work[e * fl..(e + 1) * fl]);
            }
        };
        scalar(&mut work_s);
        blocked(&mut work_b);
        assert_bitwise(&work_s, &work_b, "laplace");
        let s = time_sweeps(warmup, measure, || scalar(&mut work_s));
        let b = time_sweeps(warmup, measure, || blocked(&mut work_b));
        push(&mut rows, "laplace", s, b);

        let mut us = a.u.clone();
        let mut vs = a.v.clone();
        let mut ub = a.u.clone();
        let mut vb = a.v.clone();
        let scalar = |u: &mut Vec<f64>, v: &mut Vec<f64>| {
            u.copy_from_slice(&a.u);
            v.copy_from_slice(&a.v);
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                let (ue, ve) = (&mut u[r.clone()], &mut v[r]);
                for k in 0..NLEV {
                    let r = k * NPTS..(k + 1) * NPTS;
                    let mut lu = [0.0; NPTS];
                    let mut lv = [0.0; NPTS];
                    ops[e].vlaplace_sphere(&ue[r.clone()], &ve[r.clone()], &mut lu, &mut lv);
                    ue[r.clone()].copy_from_slice(&lu);
                    ve[r].copy_from_slice(&lv);
                }
            }
        };
        let blocked = |u: &mut Vec<f64>, v: &mut Vec<f64>| {
            u.copy_from_slice(&a.u);
            v.copy_from_slice(&a.v);
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                vlaplace_levels_blocked(&bops[e], NLEV, &mut u[r.clone()], &mut v[r]);
            }
        };
        scalar(&mut us, &mut vs);
        blocked(&mut ub, &mut vb);
        assert_bitwise(&us, &ub, "vlaplace u");
        assert_bitwise(&vs, &vb, "vlaplace v");
        let s = time_sweeps(warmup, measure, || scalar(&mut us, &mut vs));
        let b = time_sweeps(warmup, measure, || blocked(&mut ub, &mut vb));
        push(&mut rows, "vlaplace", s, b);
    }

    // --- planned biharmonic element sweep (4-wide fused walks) --------
    //
    // The hypervis plan's per-element compute: del^4 of the full
    // (u, v, T, dp3d) batch as two passes, each a single coefficient walk
    // shared by the vector Laplacian and both scalar Laplacians. The
    // scalar side is the per-field shape the old driver ran: three
    // independent walks per pass per level.
    {
        let a = &arenas;
        let mut out_s = [
            vec![0.0; nelem * fl],
            vec![0.0; nelem * fl],
            vec![0.0; nelem * fl],
            vec![0.0; nelem * fl],
        ];
        let mut out_b = out_s.clone();
        let scalar = |out: &mut [Vec<f64>; 4]| {
            let [ou, ov, ot, odp] = out;
            for e in 0..nelem {
                let r0 = e * fl;
                let mut lu = [0.0; NPTS];
                let mut lv = [0.0; NPTS];
                let mut lt = [0.0; NPTS];
                let mut ldp = [0.0; NPTS];
                // Pass 1: state -> Laplacian, out of place.
                for k in 0..NLEV {
                    let r = r0 + k * NPTS..r0 + (k + 1) * NPTS;
                    ops[e].vlaplace_sphere(&a.u[r.clone()], &a.v[r.clone()], &mut lu, &mut lv);
                    ops[e].laplace_sphere_wk(&a.t[r.clone()], &mut lt);
                    ops[e].laplace_sphere_wk(&a.dp3d[r.clone()], &mut ldp);
                    ou[r.clone()].copy_from_slice(&lu);
                    ov[r.clone()].copy_from_slice(&lv);
                    ot[r.clone()].copy_from_slice(&lt);
                    odp[r].copy_from_slice(&ldp);
                }
                // Pass 2: Laplacian of the Laplacian, in place.
                for k in 0..NLEV {
                    let r = r0 + k * NPTS..r0 + (k + 1) * NPTS;
                    ops[e].vlaplace_sphere(&ou[r.clone()], &ov[r.clone()], &mut lu, &mut lv);
                    ops[e].laplace_sphere_wk(&ot[r.clone()], &mut lt);
                    ops[e].laplace_sphere_wk(&odp[r.clone()], &mut ldp);
                    ou[r.clone()].copy_from_slice(&lu);
                    ov[r.clone()].copy_from_slice(&lv);
                    ot[r.clone()].copy_from_slice(&lt);
                    odp[r].copy_from_slice(&ldp);
                }
            }
        };
        let blocked = |out: &mut [Vec<f64>; 4]| {
            let [ou, ov, ot, odp] = out;
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                hypervis_pass_element_blocked(
                    &bops[e],
                    NLEV,
                    &a.u[r.clone()],
                    &a.v[r.clone()],
                    &a.t[r.clone()],
                    &a.dp3d[r.clone()],
                    &mut ou[r.clone()],
                    &mut ov[r.clone()],
                    &mut ot[r.clone()],
                    &mut odp[r.clone()],
                );
                hypervis_pass_levels_blocked(
                    &bops[e],
                    NLEV,
                    &mut ou[r.clone()],
                    &mut ov[r.clone()],
                    &mut ot[r.clone()],
                    &mut odp[r],
                );
            }
        };
        scalar(&mut out_s);
        blocked(&mut out_b);
        for (i, name) in ["u", "v", "t", "dp3d"].iter().enumerate() {
            assert_bitwise(&out_s[i], &out_b[i], &format!("biharmonic planned {name}"));
        }
        let s = time_sweeps(warmup, measure, || scalar(&mut out_s));
        let b = time_sweeps(warmup, measure, || blocked(&mut out_b));
        push(&mut rows, "biharmonic_planned", s, b);
    }

    // --- full planned hyperviscosity application ----------------------
    //
    // `Dycore::apply_hypervis` end to end on one worker: plan build,
    // top-of-model sponge, subcycled del^4 with DSS between and after the
    // Laplacian passes, and the DSS-fused forward-Euler applies. Scalar
    // vs Blocked kernel path; both trajectories advance in lockstep from
    // the same start, so every sweep stays bitwise comparable.
    {
        let dims = Dims { nlev: NLEV, qsize: QSIZE };
        let mut dy = Dycore::new(NE, dims, PTOP, DycoreConfig::for_ne(NE));
        dy.set_threads(1);
        let mut st_s = dy.zero_state();
        st_s.u.copy_from_slice(&arenas.u);
        st_s.v.copy_from_slice(&arenas.v);
        st_s.t.copy_from_slice(&arenas.t);
        st_s.dp3d.copy_from_slice(&arenas.dp3d);
        let mut st_b = st_s.clone();
        dy.kernels = KernelPath::Scalar;
        dy.apply_hypervis(&mut st_s).expect("hypervis plan (scalar)");
        dy.kernels = KernelPath::Blocked;
        dy.apply_hypervis(&mut st_b).expect("hypervis plan (blocked)");
        assert_bitwise(&st_s.u, &st_b.u, "hypervis fullpass u");
        assert_bitwise(&st_s.v, &st_b.v, "hypervis fullpass v");
        assert_bitwise(&st_s.t, &st_b.t, "hypervis fullpass t");
        assert_bitwise(&st_s.dp3d, &st_b.dp3d, "hypervis fullpass dp3d");
        dy.kernels = KernelPath::Scalar;
        let s = time_sweeps(warmup, measure, || {
            dy.apply_hypervis(&mut st_s).expect("hypervis plan (scalar)");
        });
        dy.kernels = KernelPath::Blocked;
        let b = time_sweeps(warmup, measure, || {
            dy.apply_hypervis(&mut st_b).expect("hypervis plan (blocked)");
        });
        // Same sweep count on both sides — the trajectories are still
        // twins, so the parity assert holds after the timed runs too.
        assert_bitwise(&st_s.u, &st_b.u, "hypervis fullpass u (post-timing)");
        assert_bitwise(&st_s.dp3d, &st_b.dp3d, "hypervis fullpass dp3d (post-timing)");
        push(&mut rows, "hypervis_fullpass", s, b);
    }

    // --- member-lane biharmonic batch (V4F64 lanes are members) -------
    //
    // The lane-transposed ensemble kernel family: four member states ride
    // one V4F64 per (elem, k, p) value, so the planned del^4 batch runs
    // its coefficient walk once for all four members. Baseline
    // ("scalar_ms") is the identical blocked element sweep run
    // member-serially four times; the lane side ("blocked_ms") is timed
    // end to end — gather from the four per-member arenas into lane
    // tiles, both fused passes, scatter back — so the reported speedup
    // already pays the transpose cost the ensemble engine pays.
    {
        const MEMBERS: usize = 4;
        let a = &arenas;
        // Four member trajectories: the shared base state plus a small
        // deterministic per-member perturbation, as an ensemble batch
        // sees them.
        let perturb = |base: &[f64], m: usize| -> Vec<f64> {
            base.iter()
                .enumerate()
                .map(|(i, &x)| x + 1e-3 * (m as f64 + 1.0) * ((i % 7) as f64 - 3.0))
                .collect()
        };
        let mu: Vec<Vec<f64>> = (0..MEMBERS).map(|m| perturb(&a.u, m)).collect();
        let mv: Vec<Vec<f64>> = (0..MEMBERS).map(|m| perturb(&a.v, m)).collect();
        let mt: Vec<Vec<f64>> = (0..MEMBERS).map(|m| perturb(&a.t, m)).collect();
        let mdp: Vec<Vec<f64>> = (0..MEMBERS).map(|m| perturb(&a.dp3d, m)).collect();
        let zero4 = || vec![vec![0.0; nelem * fl]; MEMBERS];
        let (mut su, mut sv, mut st, mut sdp) = (zero4(), zero4(), zero4(), zero4());
        let serial = |ou: &mut Vec<Vec<f64>>,
                          ov: &mut Vec<Vec<f64>>,
                          ot: &mut Vec<Vec<f64>>,
                          odp: &mut Vec<Vec<f64>>| {
            for m in 0..MEMBERS {
                for e in 0..nelem {
                    let r = e * fl..(e + 1) * fl;
                    hypervis_pass_element_blocked(
                        &bops[e],
                        NLEV,
                        &mu[m][r.clone()],
                        &mv[m][r.clone()],
                        &mt[m][r.clone()],
                        &mdp[m][r.clone()],
                        &mut ou[m][r.clone()],
                        &mut ov[m][r.clone()],
                        &mut ot[m][r.clone()],
                        &mut odp[m][r.clone()],
                    );
                    hypervis_pass_levels_blocked(
                        &bops[e],
                        NLEV,
                        &mut ou[m][r.clone()],
                        &mut ov[m][r.clone()],
                        &mut ot[m][r.clone()],
                        &mut odp[m][r],
                    );
                }
            }
        };
        let (mut lu, mut lv, mut lt, mut ldp) = (zero4(), zero4(), zero4(), zero4());
        let mut tiles_src = [(); 4].map(|_| vec![V4F64::zero(); nelem * fl]);
        let mut tiles_out = [(); 4].map(|_| vec![V4F64::zero(); nelem * fl]);
        let gather = |src: &mut [Vec<V4F64>; 4]| {
            for (tile, field) in src.iter_mut().zip([&mu, &mv, &mt, &mdp]) {
                let srcs: [&[f64]; MEMBERS] = core::array::from_fn(|m| &field[m][..]);
                gather_member_tile(&srcs, tile);
            }
        };
        let passes = |src: &[Vec<V4F64>; 4], out: &mut [Vec<V4F64>; 4]| {
            let [tsu, tsv, tst, tsdp] = src;
            let [tou, tov, tot, todp] = out;
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                hypervis_pass_member_lanes(
                    &bops[e],
                    NLEV,
                    &tsu[r.clone()],
                    &tsv[r.clone()],
                    &tst[r.clone()],
                    &tsdp[r.clone()],
                    &mut tou[r.clone()],
                    &mut tov[r.clone()],
                    &mut tot[r.clone()],
                    &mut todp[r.clone()],
                );
                hypervis_pass_levels_member_lanes(
                    &bops[e],
                    NLEV,
                    &mut tou[r.clone()],
                    &mut tov[r.clone()],
                    &mut tot[r.clone()],
                    &mut todp[r],
                );
            }
        };
        let scatter = |out: &[Vec<V4F64>; 4],
                           ou: &mut Vec<Vec<f64>>,
                           ov: &mut Vec<Vec<f64>>,
                           ot: &mut Vec<Vec<f64>>,
                           odp: &mut Vec<Vec<f64>>| {
            let [tou, tov, tot, todp] = out;
            for (tile, field) in [tou, tov, tot, todp].into_iter().zip([ou, ov, ot, odp]) {
                let mut it = field.iter_mut();
                let mut dsts: [&mut [f64]; MEMBERS] =
                    core::array::from_fn(|_| it.next().unwrap().as_mut_slice());
                scatter_member_tile(tile, &mut dsts);
            }
        };
        serial(&mut su, &mut sv, &mut st, &mut sdp);
        gather(&mut tiles_src);
        passes(&tiles_src, &mut tiles_out);
        scatter(&tiles_out, &mut lu, &mut lv, &mut lt, &mut ldp);
        for m in 0..MEMBERS {
            assert_bitwise(&su[m], &lu[m], &format!("member_lanes u (member {m})"));
            assert_bitwise(&sv[m], &lv[m], &format!("member_lanes v (member {m})"));
            assert_bitwise(&st[m], &lt[m], &format!("member_lanes t (member {m})"));
            assert_bitwise(&sdp[m], &ldp[m], &format!("member_lanes dp3d (member {m})"));
        }
        let s = time_sweeps(warmup, measure, || serial(&mut su, &mut sv, &mut st, &mut sdp));
        let b = time_sweeps(warmup, measure, || {
            gather(&mut tiles_src);
            passes(&tiles_src, &mut tiles_out);
            scatter(&tiles_out, &mut lu, &mut lv, &mut lt, &mut ldp);
        });
        push(&mut rows, "hypervis_member_lanes", s, b);
        // Tiles-resident variant: the del^4 sweeps alone, with the member
        // tiles already gathered — what every subcycle after the first
        // costs inside the engine, where one transpose pays for the whole
        // subcycled application. The gap to the row above is the
        // gather/scatter budget (see DESIGN.md section 5.10).
        let bp = time_sweeps(warmup, measure, || passes(&tiles_src, &mut tiles_out));
        push(&mut rows, "hypervis_member_lanes_resident", s, bp);
    }

    // --- vertical remap (geometry-reuse plan) -------------------------
    {
        let a = &arenas;
        let mut scratch = RemapScratch::new(NLEV);
        let mut plan = ElemRemapPlan::new(NLEV);
        let mut apply = RemapApplyScratch::new(NLEV);
        let mut col_src = vec![0.0; NLEV];
        let mut col_dst = vec![0.0; NLEV];
        let mut col_val = vec![0.0; NLEV];
        let mut col_out = vec![0.0; NLEV];
        let mut fields_s =
            (a.u.clone(), a.v.clone(), a.t.clone(), a.dp3d.clone(), a.qdp.clone());
        let mut fields_b = fields_s.clone();
        let vert_ref = &vert;
        let scalar = |f: &mut Fields5,
                          scratch: &mut RemapScratch,
                          cs: &mut [f64],
                          cd: &mut [f64],
                          cv: &mut [f64],
                          co: &mut [f64]| {
            f.0.copy_from_slice(&a.u);
            f.1.copy_from_slice(&a.v);
            f.2.copy_from_slice(&a.t);
            f.3.copy_from_slice(&a.dp3d);
            f.4.copy_from_slice(&a.qdp);
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                let rq = e * tl..(e + 1) * tl;
                remap_element_scalar(
                    vert_ref,
                    NLEV,
                    QSIZE,
                    &mut f.0[r.clone()],
                    &mut f.1[r.clone()],
                    &mut f.2[r.clone()],
                    &mut f.3[r],
                    &mut f.4[rq],
                    cs,
                    cd,
                    cv,
                    co,
                    scratch,
                )
                .expect("remap");
            }
        };
        // The production Blocked path: build the dp3d-only plan for each
        // element, then stream all seven fields through its apply pass.
        let planned = |f: &mut Fields5,
                           plan: &mut ElemRemapPlan,
                           apply: &mut RemapApplyScratch| {
            f.0.copy_from_slice(&a.u);
            f.1.copy_from_slice(&a.v);
            f.2.copy_from_slice(&a.t);
            f.3.copy_from_slice(&a.dp3d);
            f.4.copy_from_slice(&a.qdp);
            for e in 0..nelem {
                let r = e * fl..(e + 1) * fl;
                let rq = e * tl..(e + 1) * tl;
                plan.build(vert_ref, NLEV, &f.3[r.clone()]).expect("plan");
                remap_element_planned(
                    plan,
                    NLEV,
                    QSIZE,
                    &mut f.0[r.clone()],
                    &mut f.1[r.clone()],
                    &mut f.2[r.clone()],
                    &mut f.3[r],
                    &mut f.4[rq],
                    apply,
                );
            }
        };
        scalar(&mut fields_s, &mut scratch, &mut col_src, &mut col_dst, &mut col_val, &mut col_out);
        planned(&mut fields_b, &mut plan, &mut apply);
        assert_bitwise(&fields_s.0, &fields_b.0, "remap u");
        assert_bitwise(&fields_s.1, &fields_b.1, "remap v");
        assert_bitwise(&fields_s.2, &fields_b.2, "remap t");
        assert_bitwise(&fields_s.3, &fields_b.3, "remap dp3d");
        assert_bitwise(&fields_s.4, &fields_b.4, "remap qdp");
        let s = time_sweeps(warmup, measure, || {
            scalar(
                &mut fields_s,
                &mut scratch,
                &mut col_src,
                &mut col_dst,
                &mut col_val,
                &mut col_out,
            )
        });
        let b = time_sweeps(warmup, measure, || planned(&mut fields_b, &mut plan, &mut apply));
        push(&mut rows, "vertical_remap", s, b);

        // Apply pass alone over prebuilt per-element plans: the reuse
        // ceiling — what every field after the first costs once the
        // geometry is paid (the plan build share is the row above minus
        // this one).
        let mut plans: Vec<ElemRemapPlan> = (0..nelem).map(|_| ElemRemapPlan::new(NLEV)).collect();
        for (e, pl) in plans.iter_mut().enumerate() {
            pl.build(vert_ref, NLEV, &a.dp3d[e * fl..(e + 1) * fl]).expect("plan");
        }
        let apply_only = |f: &mut Fields5, apply: &mut RemapApplyScratch| {
            f.0.copy_from_slice(&a.u);
            f.1.copy_from_slice(&a.v);
            f.2.copy_from_slice(&a.t);
            f.3.copy_from_slice(&a.dp3d);
            f.4.copy_from_slice(&a.qdp);
            for (e, pl) in plans.iter().enumerate() {
                let r = e * fl..(e + 1) * fl;
                let rq = e * tl..(e + 1) * tl;
                remap_element_planned(
                    pl,
                    NLEV,
                    QSIZE,
                    &mut f.0[r.clone()],
                    &mut f.1[r.clone()],
                    &mut f.2[r.clone()],
                    &mut f.3[r],
                    &mut f.4[rq],
                    apply,
                );
            }
        };
        apply_only(&mut fields_b, &mut apply);
        assert_bitwise(&fields_s.3, &fields_b.3, "remap planned dp3d");
        assert_bitwise(&fields_s.4, &fields_b.4, "remap planned qdp");
        let bp = time_sweeps(warmup, measure, || apply_only(&mut fields_b, &mut apply));
        push(&mut rows, "vertical_remap_planned", s, bp);
    }

    // --- report --------------------------------------------------------
    let get = |name: &str| rows.iter().find(|r| r.name == name).expect("row");
    let rhs_speedup = get("rhs_tendency").speedup();
    let euler_speedup = get("euler_stage").speedup();
    let remap_speedup = get("vertical_remap").speedup();
    let hypervis_speedup = get("hypervis_fullpass").speedup();
    let meets = rhs_speedup >= TARGET_SPEEDUP
        && euler_speedup >= TARGET_SPEEDUP
        && remap_speedup >= TARGET_SPEEDUP
        && hypervis_speedup >= TARGET_SPEEDUP;
    println!(
        "  target {TARGET_SPEEDUP:.1}x on rhs_tendency ({rhs_speedup:.2}x), euler_stage \
         ({euler_speedup:.2}x), vertical_remap ({remap_speedup:.2}x) and hypervis_fullpass \
         ({hypervis_speedup:.2}x): {}",
        if meets { "met" } else { "NOT met" }
    );

    let mut kernels_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        kernels_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ms\": {:.4}, \"blocked_ms\": {:.4}, \
             \"speedup\": {:.3}}}{}\n",
            r.name,
            r.scalar_ms,
            r.blocked_ms,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"ne\": {NE},\n  \"nlev\": {NLEV},\n  \
         \"qsize\": {QSIZE},\n  \"nelem\": {nelem},\n  \"sweeps_measured\": {measure},\n  \
         \"smoke\": {smoke},\n  \"kernels\": [\n{kernels_json}  ],\n  \
         \"target_speedup\": {TARGET_SPEEDUP},\n  \
         \"rhs_tendency_speedup\": {rhs_speedup:.3},\n  \
         \"euler_stage_speedup\": {euler_speedup:.3},\n  \
         \"vertical_remap_speedup\": {remap_speedup:.3},\n  \
         \"hypervis_fullpass_speedup\": {hypervis_speedup:.3},\n  \"meets_target\": {meets}\n}}\n"
    );
    // A smoke run exists to exercise the kernels and their in-bench parity
    // asserts, not to time them — don't clobber the real artifact with
    // single-sweep noise.
    if smoke {
        println!("smoke mode: skipping BENCH_kernels.json");
    } else {
        std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
        println!("wrote BENCH_kernels.json");
    }
}
