//! Figure 9: the hurricane-Katrina lifecycle — track and intensity at
//! 100 km-class ("ne30") vs 25 km-class ("ne120") effective resolution,
//! against the NOAA/NHC observed best track.

use katrina::{run, KatrinaConfig, OBSERVED};
use perfmodel::report::table;

fn main() {
    let hours = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24.0);
    let mut coarse_cfg = KatrinaConfig::ne30_class();
    coarse_cfg.earth_hours = hours;
    let mut fine_cfg = KatrinaConfig::ne120_class();
    fine_cfg.earth_hours = hours;
    println!(
        "Simulating {hours} Earth-equivalent hours at {:.0} km and {:.0} km effective resolution...",
        coarse_cfg.effective_resolution_km(),
        fine_cfg.effective_resolution_km()
    );
    let coarse = run(coarse_cfg);
    let fine = run(fine_cfg);

    let mut rows = Vec::new();
    for fix in &fine.earth_track {
        let (olat, olon) = katrina::observed_position(fix.hours);
        let obs_msw = OBSERVED
            .windows(2)
            .find(|w| fix.hours >= w[0].hours && fix.hours <= w[1].hours)
            .map(|w| w[0].msw_kt)
            .unwrap_or(OBSERVED[0].msw_kt);
        let coarse_fix = coarse
            .earth_track
            .iter()
            .min_by(|a, b| {
                (a.hours - fix.hours).abs().partial_cmp(&(b.hours - fix.hours).abs()).unwrap()
            })
            .expect("coarse track non-empty");
        rows.push(vec![
            format!("{:.0}", fix.hours),
            format!("{olat:.1}N {:.1}W", -olon),
            format!("{:.1}N {:.1}W", fix.lat_deg, -fix.lon_deg),
            format!("{obs_msw:.0}"),
            format!("{:.0}", fix.msw_kt),
            format!("{:.0}", coarse_fix.msw_kt),
        ]);
    }
    println!(
        "{}",
        table(
            "Figure 9: Katrina track and maximum sustained wind (kt)",
            &["hour", "obs position", "ne120 position", "obs MSW", "ne120 MSW", "ne30 MSW"],
            &rows
        )
    );
    println!(
        "peak MSW: ne120-class {:.0} kt, ne30-class {:.0} kt (obs peak 145 kt)",
        fine.peak_msw_kt, coarse.peak_msw_kt
    );
    println!("\nfinal surface-wind snapshots (Fig. 9 a/b analog; darker = stronger):");
    println!("--- ne120-class ({:.0} km): a coherent cyclone ---", fine.config.effective_resolution_km());
    println!("{}", fine.final_map);
    println!("--- ne30-class ({:.0} km): the storm is gone ---", coarse.config.effective_resolution_km());
    println!("{}", coarse.final_map);
    println!(
        "min ps:   ne120-class {:.0} hPa, ne30-class {:.0} hPa (obs min 902 hPa)",
        fine.min_ps_hpa, coarse.min_ps_hpa
    );
    println!("Paper: the ne30 run fails to capture Katrina; ne120 tracks it closely.");
}
