//! Figure 7: HOMME strong scaling, ne256 and ne1024.

use perfmodel::report::table;
use perfmodel::scaling::{figure_model, strong_scaling, HommeWorkload};
use perfmodel::Machine;

fn main() {
    let m = Machine::taihulight();
    let model = figure_model(&m);
    for (ne, ranks) in [
        (256usize, vec![4096usize, 8192, 16384, 32768, 65536, 131072]),
        (1024, vec![8192, 16384, 32768, 65536, 131072]),
    ] {
        let points = strong_scaling(
            &model,
            HommeWorkload { ne, nlev: 128, qsize: perfmodel::NGGPS_QSIZE },
            &ranks,
        );
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.nranks),
                    format!("{}", p.cores),
                    format!("{:.1}", p.elems_per_rank),
                    format!("{:.4}", p.step_seconds),
                    format!("{:.3}", p.pflops),
                    format!("{:.1}%", p.efficiency * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &format!("Figure 7: strong scaling, ne{ne}"),
                &["processes", "cores", "elem/proc", "s/step", "PFlops", "efficiency"],
                &rows
            )
        );
    }
    println!("Paper: ne256 0.07 -> 0.64 PFlops (21.7% at 131,072); ne1024 0.18 -> 1.76 (51.2%).");
}
