//! Table 3: NGGPS comparison — our modeled redesigned HOMME vs the
//! published FV3 and MPAS numbers (NGGPS AVEC report).

use perfmodel::report::table;
use perfmodel::{homme_runtime, Machine, CASES};

fn main() {
    let machine = Machine::taihulight();
    let mut rows = Vec::new();
    for case in &CASES {
        let ours = homme_runtime(&machine, case);
        rows.push(vec![
            case.label.to_string(),
            format!("{:.3} s @ {}", ours, case.our_ranks),
            format!("{:.2} s @ {}", case.fv3_seconds, case.fv3_ranks),
            format!("{:.2} s @ {}", case.mpas_seconds, case.mpas_ranks),
            format!("{:.1}x / {:.1}x", case.fv3_seconds / ours, case.mpas_seconds / ours),
        ]);
    }
    println!(
        "{}",
        table(
            "Table 3: NGGPS dynamical-core comparison",
            &["case", "our HOMME (modeled)", "FV3 (published)", "MPAS (published)", "speedup"],
            &rows
        )
    );
    println!("Paper: ours 2.712 s / 14.379 s; advantage grows at 3 km (2.1x FV3, 4.5x MPAS).");
}
