//! Figure 8: weak scaling at 48/192/650/768 elements per process, up to
//! the 10,075,000-core full machine.

use perfmodel::report::table;
use perfmodel::scaling::{figure_model, weak_scaling};
use perfmodel::Machine;

fn main() {
    let m = Machine::taihulight();
    let model = figure_model(&m);
    for &elems in &[48usize, 192, 768] {
        let ranks = [512usize, 2048, 8192, 32768, 131072];
        print_sweep(elems, &weak_scaling(&model, elems, 128, perfmodel::NGGPS_QSIZE, &ranks));
    }
    // The 650-element case extends to 155,000 processes = 10,075,000 cores.
    let ranks = [512usize, 2048, 8192, 32768, 131072, 155000];
    print_sweep(650, &weak_scaling(&model, 650, 128, perfmodel::NGGPS_QSIZE, &ranks));
    println!("Paper: efficiencies 88.3% (48), 92.3% (192), 92.2% (768); 98.5% and");
    println!("3.3 PFlops for 650 elements/process on 155,000 processes (10,075,000 cores).");
}

fn print_sweep(elems: usize, points: &[perfmodel::ScalePoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.nranks),
                format!("{}", p.cores),
                format!("{:.4}", p.step_seconds),
                format!("{:.3}", p.pflops),
                format!("{:.1}%", p.efficiency * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &format!("Figure 8: weak scaling, {elems} elements/process"),
            &["processes", "cores", "s/step", "PFlops", "efficiency"],
            &rows
        )
    );
}
