//! Figure 4: climatological surface temperature, control run vs test run.
//!
//! The paper compares a 30-year CESM climatology on Intel against the same
//! on Sunway: bitwise-different arithmetic, statistically identical
//! climate. The reproduction runs the Held-Suarez configuration twice —
//! the control and a test run whose initial temperature differs by a
//! round-off-scale perturbation (standing in for the cross-platform
//! arithmetic differences) — and compares the time-averaged zonal-mean
//! surface temperature.

use perfmodel::report::table;
use swcam_core::{ModelConfig, SuiteChoice, Swcam};

const BANDS: usize = 9;

fn run_climatology(perturb: f64, days: f64) -> Vec<f64> {
    let mut cfg = ModelConfig::for_ne(4);
    cfg.nlev = 8;
    cfg.qsize = 0;
    cfg.suite = SuiteChoice::HeldSuarez;
    cfg.dt = 600.0;
    let mut model = Swcam::new(cfg);
    model.init_with(
        |_, _| cubesphere::P0,
        |lat, lon, _k, pm| {
            let t = 290.0 - 40.0 * lat.sin().powi(2) * (pm / cubesphere::P0).powf(0.3)
                + perturb * (5.0 * lon).sin();
            (0.0, 0.0, t.max(210.0), 0.0)
        },
    );
    let steps_per_day = (86_400.0 / model.dycore.cfg.dt) as usize;
    let total = (days * steps_per_day as f64) as usize;
    let spinup = total / 2;
    let coords = model.column_coords();
    let mut sums = [0.0; BANDS];
    let mut counts = [0usize; BANDS];
    let mut samples = 0usize;
    for s in 0..total {
        model.step();
        if s >= spinup && s % steps_per_day == 0 {
            samples += 1;
            let ts = model.surface_temperature();
            for (&t, &(lat, _)) in ts.iter().zip(&coords) {
                let band = (((lat.to_degrees() + 90.0) / 180.0 * BANDS as f64) as usize)
                    .min(BANDS - 1);
                sums[band] += t;
                counts[band] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| s / (c.max(1) as f64))
        .map(|t| t / samples.max(1) as f64 * samples.max(1) as f64)
        .collect()
}

fn main() {
    let days = 30.0;
    println!("Running Held-Suarez climatology twice ({days} days, ne4)...");
    let control = run_climatology(0.0, days);
    let test = run_climatology(1.0e-10, days);
    let rows: Vec<Vec<String>> = (0..BANDS)
        .map(|b| {
            let lat = -90.0 + (b as f64 + 0.5) * 180.0 / BANDS as f64;
            vec![
                format!("{lat:+.0}"),
                format!("{:.2} K", control[b]),
                format!("{:.2} K", test[b]),
                format!("{:+.3} K", test[b] - control[b]),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Figure 4: zonal-mean climatological surface temperature",
            &["lat band", "control", "test (perturbed)", "difference"],
            &rows
        )
    );
    let max_diff = control
        .iter()
        .zip(&test)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let range = control.iter().cloned().fold(f64::MIN, f64::max)
        - control.iter().cloned().fold(f64::MAX, f64::min);
    println!("max band difference: {max_diff:.3} K over a {range:.1} K equator-pole range");
    println!("Paper: 'almost identical patterns' between Intel and Sunway 30-year runs.");
}
