//! Ensemble-engine throughput benchmark (ROADMAP item 4).
//!
//! Models the operational pattern the batch driver exists for: a stream of
//! member requests for one scenario. The baseline serves each request the
//! way separate serial runs do — build the model (grid, DSS assembly map,
//! blocked operators), initialize, integrate, tear down. The engine serves
//! the same requests from one warm [`Ensemble`]: geometry and scratch are
//! shared, members step in lockstep with the hyperviscosity plan built once
//! per step and its coefficient walks batched across members.
//!
//! Measures, per batch width N in {1, 2, 4}:
//!
//! * end-to-end members/sec, serial-cold vs warm-engine (the headline:
//!   target >= 3x at N = 4 on one core — *work reduction*, not
//!   parallelism), and
//! * the steady-state per-member-step ratio (the pure batched-kernel win,
//!   reported separately; construction amortization excluded).
//!
//! Every batch member is asserted bitwise equal to its standalone run
//! before any number is reported. Emits `BENCH_ensemble.json` (also in
//! `--smoke` mode, tagged `"mode": "smoke"` with one untimed-quality sweep
//! on a shrunken scenario — the guard only applies floors to full
//! artifacts).

use std::time::Instant;

use swcam_core::{Ensemble, EnsembleConfig, MemberStatus, ScenarioRegistry, ScenarioSpec};

const TARGET_SPEEDUP: f64 = 3.0;
const BATCHES: [usize; 3] = [1, 2, 4];

fn seed_for(n: usize, m: usize) -> u64 {
    (100 * n + m) as u64
}

struct BatchRow {
    members: usize,
    serial_s: f64,
    engine_s: f64,
    members_per_sec_serial: f64,
    members_per_sec_engine: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec: ScenarioSpec =
        ScenarioRegistry::builtin().get("aquaplanet").expect("builtin scenario").clone();
    let steps = if smoke {
        spec.config.ne = 2;
        spec.config.nlev = 6;
        2
    } else {
        4
    };
    let lanes = *BATCHES.iter().max().unwrap();
    println!(
        "ensemble: scenario {}, ne{}, nlev {}, qsize {}, {steps} steps/member{}",
        spec.name,
        spec.config.ne,
        spec.config.nlev,
        spec.config.qsize,
        if smoke { " (smoke)" } else { "" }
    );

    // The warm engine: built once, serves every batch below. One throwaway
    // member faults in lazy allocations before anything is timed.
    let mut engine = Ensemble::new(spec.clone(), EnsembleConfig { lanes, max_rollbacks: 2 });
    engine.submit(0, 1);
    engine.run_all().expect("warm-up member");

    // Each side is timed `reps` times and the fastest rep kept: on a shared
    // 1-core host the run-to-run spread otherwise swamps the few-percent
    // effect being measured.
    let reps = if smoke { 1 } else { 3 };
    let mut rows: Vec<BatchRow> = Vec::new();
    let mut bitwise_ok = true;
    for &n in &BATCHES {
        // Serial-cold baseline: each request pays full model construction.
        let mut serial_s = f64::MAX;
        let mut serial_states = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut states = Vec::with_capacity(n);
            for m in 0..n {
                let mut model = spec.build_model(seed_for(n, m));
                model.run_steps(steps);
                states.push(model.state);
            }
            serial_s = serial_s.min(t0.elapsed().as_secs_f64());
            serial_states = states;
        }

        // Warm engine serving the same batch.
        let mut engine_s = f64::MAX;
        let mut reports = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            for m in 0..n {
                engine.submit(seed_for(n, m), steps);
            }
            reports = engine.run_all().expect("batch");
            engine_s = engine_s.min(t0.elapsed().as_secs_f64());
        }

        assert_eq!(reports.len(), n);
        for (r, oracle) in reports.iter().zip(&serial_states) {
            assert_eq!(r.status, MemberStatus::Finished);
            let diff = r.state.max_abs_diff(oracle);
            if diff != 0.0 {
                println!("  BITWISE MISMATCH: member seed {} diff {diff:e}", r.seed);
                bitwise_ok = false;
            }
        }
        assert!(bitwise_ok, "batched members must match standalone runs bitwise");

        let row = BatchRow {
            members: n,
            serial_s,
            engine_s,
            members_per_sec_serial: n as f64 / serial_s,
            members_per_sec_engine: n as f64 / engine_s,
            speedup: serial_s / engine_s,
        };
        println!(
            "  N = {n}: serial {:8.3} s ({:6.2} members/s)   engine {:8.3} s ({:6.2} members/s)   {:5.2}x",
            row.serial_s,
            row.members_per_sec_serial,
            row.engine_s,
            row.members_per_sec_engine,
            row.speedup
        );
        rows.push(row);
    }

    // Steady-state per-member-step cost: construction excluded on both
    // sides, so the ratio isolates the batched-kernel win (shared per-step
    // hyperviscosity plan + member-vectorized coefficient walks).
    let steady_steps = if smoke { 1 } else { 4 };
    let mut model = spec.build_model(1);
    model.run_steps(1); // warm
    let mut serial_step_ms = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        model.run_steps(steady_steps);
        serial_step_ms =
            serial_step_ms.min(t0.elapsed().as_secs_f64() * 1e3 / steady_steps as f64);
    }

    let mut steady = Ensemble::new(spec.clone(), EnsembleConfig { lanes, max_rollbacks: 2 });
    for m in 0..lanes {
        steady.submit(m as u64, usize::MAX);
    }
    steady.step().expect("warm step"); // admits + warms
    let mut engine_member_step_ms = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..steady_steps {
            steady.step().expect("steady step");
        }
        engine_member_step_ms = engine_member_step_ms
            .min(t0.elapsed().as_secs_f64() * 1e3 / (steady_steps * lanes) as f64);
    }
    let speedup_steady = serial_step_ms / engine_member_step_ms;
    println!(
        "  steady state: serial {serial_step_ms:.2} ms/member-step, \
         engine {engine_member_step_ms:.2} ms/member-step at {lanes} members ({speedup_steady:.2}x)"
    );

    let headline = rows.last().expect("batches non-empty");
    let speedup_end_to_end = headline.speedup;
    let target_met = speedup_end_to_end >= TARGET_SPEEDUP && bitwise_ok;
    println!(
        "  target {TARGET_SPEEDUP:.1}x members/sec at {} members: {} ({speedup_end_to_end:.2}x, bitwise {})",
        headline.members,
        if target_met { "met" } else { "NOT met" },
        if bitwise_ok { "ok" } else { "FAILED" }
    );

    let batches_json: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"members\": {}, \"serial_s\": {:.4}, \"engine_s\": {:.4}, \
                 \"members_per_sec_serial\": {:.3}, \"members_per_sec_engine\": {:.3}, \
                 \"speedup\": {:.3}}}",
                r.members,
                r.serial_s,
                r.engine_s,
                r.members_per_sec_serial,
                r.members_per_sec_engine,
                r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"ensemble\",\n  \"mode\": \"{mode}\",\n  \
         \"scenario\": \"{scenario}\",\n  \"ne\": {ne},\n  \"nlev\": {nlev},\n  \
         \"qsize\": {qsize},\n  \"steps_per_member\": {steps},\n  \
         \"batches\": [\n{batches_json}\n  ],\n  \
         \"steady_serial_ms_per_member_step\": {serial_step_ms:.3},\n  \
         \"steady_engine_ms_per_member_step\": {engine_member_step_ms:.3},\n  \
         \"speedup_steady_state\": {speedup_steady:.3},\n  \
         \"speedup_end_to_end\": {speedup_end_to_end:.3},\n  \
         \"bitwise_ok\": {bitwise_ok},\n  \
         \"target_speedup\": {TARGET_SPEEDUP},\n  \"target_met\": {target_met}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        scenario = spec.name,
        ne = spec.config.ne,
        nlev = spec.config.nlev,
        qsize = spec.config.qsize,
    );
    std::fs::write("BENCH_ensemble.json", &json).expect("write BENCH_ensemble.json");
    println!("wrote BENCH_ensemble.json");
}
