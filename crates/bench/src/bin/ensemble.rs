//! Ensemble-engine throughput benchmark (ROADMAP item 4).
//!
//! Models the operational pattern the batch driver exists for: a stream of
//! member requests for one scenario. The baseline serves each request the
//! way separate serial runs do — build the model (grid, DSS assembly map,
//! blocked operators), initialize, integrate, tear down. The engine serves
//! the same requests from one warm [`Ensemble`]: geometry and scratch are
//! shared, members step in lockstep with the hyperviscosity plan built once
//! per step and the RK + hypervis kernels batched across member lanes
//! (`member_kernel_path = "lanes"`: one `V4F64` per grid value, lanes are
//! members; `"chunked"` keeps the pair-wise row kernels as the A/B
//! baseline — select with `SWCAM_BENCH_MEMBER_KERNELS=chunked`).
//!
//! Measures, per batch width N up to the lane count (default 4, override
//! with `SWCAM_BENCH_MEMBERS`):
//!
//! * end-to-end members/sec, serial-cold vs warm-engine (the headline:
//!   target >= 3x at N = 4 on one core — *work reduction*, not
//!   parallelism), and
//! * the steady-state per-member-step ratio (the pure batched-kernel win,
//!   reported separately; construction amortization excluded and the
//!   engine's one-time construction cost split out as `construction_ms`).
//!
//! Every batch member is asserted bitwise equal to its standalone run
//! before any number is reported. Emits `BENCH_ensemble.json` (also in
//! `--smoke` mode, tagged `"mode": "smoke"` with one untimed-quality sweep
//! on a shrunken scenario — the guard only applies floors to full
//! artifacts).

use std::time::Instant;

use swcam_core::{
    Ensemble, EnsembleConfig, MemberKernelPath, MemberStatus, ScenarioRegistry, ScenarioSpec,
};

const TARGET_SPEEDUP: f64 = 3.0;
/// Floor the guard enforces on the steady-state per-member-step ratio at
/// the full lane count when the lane kernel path is armed.
const STEADY_TARGET_SPEEDUP: f64 = 1.8;

fn seed_for(n: usize, m: usize) -> u64 {
    (100 * n + m) as u64
}

struct BatchRow {
    members: usize,
    serial_s: f64,
    engine_s: f64,
    members_per_sec_serial: f64,
    members_per_sec_engine: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut spec: ScenarioSpec =
        ScenarioRegistry::builtin().get("aquaplanet").expect("builtin scenario").clone();
    let steps = if smoke {
        spec.config.ne = 2;
        spec.config.nlev = 6;
        2
    } else {
        4
    };
    let lanes = std::env::var("SWCAM_BENCH_MEMBERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| (1..=32).contains(&n))
        .unwrap_or(4);
    let path = match std::env::var("SWCAM_BENCH_MEMBER_KERNELS").ok().as_deref() {
        Some("chunked") => MemberKernelPath::Chunked,
        _ => MemberKernelPath::Lanes,
    };
    let path_name = match path {
        MemberKernelPath::Lanes => "lanes",
        MemberKernelPath::Chunked => "chunked",
    };
    // Widest member batch one kernel sweep serves on this path.
    let chunk_width = match path {
        MemberKernelPath::Lanes => 4.min(lanes),
        MemberKernelPath::Chunked => 2.min(lanes),
    };
    let mut batches: Vec<usize> = [1, 2, lanes].into_iter().filter(|&b| b <= lanes).collect();
    batches.sort_unstable();
    batches.dedup();
    let ecfg = EnsembleConfig { lanes, max_rollbacks: 2, member_kernel_path: path };
    println!(
        "ensemble: scenario {}, ne{}, nlev {}, qsize {}, {steps} steps/member, \
         {lanes} lanes, {path_name} kernels{}",
        spec.name,
        spec.config.ne,
        spec.config.nlev,
        spec.config.qsize,
        if smoke { " (smoke)" } else { "" }
    );

    // The warm engine: built once, serves every batch below. Construction
    // is timed once and split out; one throwaway member faults in lazy
    // allocations before anything else is timed.
    let t0 = Instant::now();
    let mut engine = Ensemble::new(spec.clone(), ecfg);
    let construction_ms = t0.elapsed().as_secs_f64() * 1e3;
    engine.submit(0, 1);
    engine.run_all().expect("warm-up member");
    println!("  engine construction: {construction_ms:.1} ms (one-time, shared by every batch)");

    // Each side is timed `reps` times and the fastest rep kept: on a shared
    // 1-core host the run-to-run spread otherwise swamps the few-percent
    // effect being measured.
    let reps = if smoke { 1 } else { 3 };
    let mut rows: Vec<BatchRow> = Vec::new();
    let mut bitwise_ok = true;
    for &n in &batches {
        // Serial-cold baseline: each request pays full model construction.
        let mut serial_s = f64::MAX;
        let mut serial_states = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut states = Vec::with_capacity(n);
            for m in 0..n {
                let mut model = spec.build_model(seed_for(n, m));
                model.run_steps(steps);
                states.push(model.state);
            }
            serial_s = serial_s.min(t0.elapsed().as_secs_f64());
            serial_states = states;
        }

        // Warm engine serving the same batch.
        let mut engine_s = f64::MAX;
        let mut reports = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            for m in 0..n {
                engine.submit(seed_for(n, m), steps);
            }
            reports = engine.run_all().expect("batch");
            engine_s = engine_s.min(t0.elapsed().as_secs_f64());
        }

        assert_eq!(reports.len(), n);
        for (r, oracle) in reports.iter().zip(&serial_states) {
            assert_eq!(r.status, MemberStatus::Finished);
            let diff = r.state.max_abs_diff(oracle);
            if diff != 0.0 {
                println!("  BITWISE MISMATCH: member seed {} diff {diff:e}", r.seed);
                bitwise_ok = false;
            }
        }
        assert!(bitwise_ok, "batched members must match standalone runs bitwise");

        let row = BatchRow {
            members: n,
            serial_s,
            engine_s,
            members_per_sec_serial: n as f64 / serial_s,
            members_per_sec_engine: n as f64 / engine_s,
            speedup: serial_s / engine_s,
        };
        println!(
            "  N = {n}: serial {:8.3} s ({:6.2} members/s)   engine {:8.3} s ({:6.2} members/s)   {:5.2}x",
            row.serial_s,
            row.members_per_sec_serial,
            row.engine_s,
            row.members_per_sec_engine,
            row.speedup
        );
        rows.push(row);
    }

    // Steady-state per-member-step cost: construction excluded on both
    // sides, so the ratio isolates the batched-kernel win (shared per-step
    // hyperviscosity plan + member-lane coefficient walks).
    let steady_steps = if smoke { 1 } else { 4 };
    let mut model = spec.build_model(1);
    model.run_steps(1); // warm
    let mut serial_step_ms = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        model.run_steps(steady_steps);
        serial_step_ms =
            serial_step_ms.min(t0.elapsed().as_secs_f64() * 1e3 / steady_steps as f64);
    }

    let mut steady = Ensemble::new(spec.clone(), ecfg);
    for m in 0..lanes {
        steady.submit(m as u64, usize::MAX);
    }
    steady.step().expect("warm step"); // admits + warms
    let mut engine_member_step_ms = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..steady_steps {
            steady.step().expect("steady step");
        }
        engine_member_step_ms = engine_member_step_ms
            .min(t0.elapsed().as_secs_f64() * 1e3 / (steady_steps * lanes) as f64);
    }
    let speedup_steady = serial_step_ms / engine_member_step_ms;
    let steady_target_met = speedup_steady >= STEADY_TARGET_SPEEDUP && bitwise_ok;
    println!(
        "  steady state: serial {serial_step_ms:.2} ms/member-step, \
         engine {engine_member_step_ms:.2} ms/member-step at {lanes} members ({speedup_steady:.2}x, \
         floor {STEADY_TARGET_SPEEDUP:.1}x {})",
        if steady_target_met { "met" } else { "NOT met" }
    );

    let headline = rows.last().expect("batches non-empty");
    let speedup_end_to_end = headline.speedup;
    let target_met = speedup_end_to_end >= TARGET_SPEEDUP && bitwise_ok;
    println!(
        "  target {TARGET_SPEEDUP:.1}x members/sec at {} members: {} ({speedup_end_to_end:.2}x, bitwise {})",
        headline.members,
        if target_met { "met" } else { "NOT met" },
        if bitwise_ok { "ok" } else { "FAILED" }
    );

    let batches_json: String = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"members\": {}, \"serial_s\": {:.4}, \"engine_s\": {:.4}, \
                 \"members_per_sec_serial\": {:.3}, \"members_per_sec_engine\": {:.3}, \
                 \"speedup\": {:.3}}}",
                r.members,
                r.serial_s,
                r.engine_s,
                r.members_per_sec_serial,
                r.members_per_sec_engine,
                r.speedup
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"ensemble\",\n  \"mode\": \"{mode}\",\n  \
         \"scenario\": \"{scenario}\",\n  \"ne\": {ne},\n  \"nlev\": {nlev},\n  \
         \"qsize\": {qsize},\n  \"steps_per_member\": {steps},\n  \
         \"members\": {lanes},\n  \
         \"member_kernel_path\": \"{path_name}\",\n  \
         \"member_chunk_width\": {chunk_width},\n  \
         \"construction_ms\": {construction_ms:.3},\n  \
         \"batches\": [\n{batches_json}\n  ],\n  \
         \"steady_serial_ms_per_member_step\": {serial_step_ms:.3},\n  \
         \"steady_engine_ms_per_member_step\": {engine_member_step_ms:.3},\n  \
         \"speedup_steady_state\": {speedup_steady:.3},\n  \
         \"steady_target_speedup\": {STEADY_TARGET_SPEEDUP},\n  \
         \"steady_target_met\": {steady_target_met},\n  \
         \"speedup_end_to_end\": {speedup_end_to_end:.3},\n  \
         \"bitwise_ok\": {bitwise_ok},\n  \
         \"target_speedup\": {TARGET_SPEEDUP},\n  \"target_met\": {target_met}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        scenario = spec.name,
        ne = spec.config.ne,
        nlev = spec.config.nlev,
        qsize = spec.config.qsize,
    );
    std::fs::write("BENCH_ensemble.json", &json).expect("write BENCH_ensemble.json");
    println!("wrote BENCH_ensemble.json");
}
