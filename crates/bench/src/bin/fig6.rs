//! Figure 6: whole-CAM simulation speed (SYPD), ne30 and ne120.

use homme::kernels::Variant;
use perfmodel::report::table;
use perfmodel::{sypd, CamRun, Machine};

fn main() {
    let m = Machine::taihulight();
    let ne30 = CamRun::ne30();
    let mut rows = Vec::new();
    for &nranks in &[216usize, 600, 900, 1350, 5400] {
        rows.push(vec![
            format!("{nranks}"),
            format!("{:.2}", sypd(&m, ne30, Variant::Mpe, nranks)),
            format!("{:.2}", sypd(&m, ne30, Variant::OpenAcc, nranks)),
            format!("{:.2}", sypd(&m, ne30, Variant::Athread, nranks)),
        ]);
    }
    println!(
        "{}",
        table(
            "Figure 6 (left): ne30 SYPD",
            &["processes", "ori (MPE)", "openacc", "athread"],
            &rows
        )
    );
    println!("Paper: 21.5 SYPD at 5,400 processes (athread); openacc 1.4-1.5x over ori.\n");

    let ne120 = CamRun::ne120();
    let mut rows = Vec::new();
    for &nranks in &[2400usize, 9600, 14400, 21600, 24000, 28800] {
        rows.push(vec![
            format!("{nranks}"),
            format!("{:.2}", sypd(&m, ne120, Variant::OpenAcc, nranks)),
            format!("{:.2}", sypd(&m, ne120, Variant::Athread, nranks)),
        ]);
    }
    println!(
        "{}",
        table("Figure 6 (right): ne120 SYPD", &["processes", "openacc", "athread"], &rows)
    );
    println!("Paper: 3.4 SYPD at 28,800 processes (openacc version).");
}
