//! Boundary-exchange traffic benchmark: Original vs Redesigned schedule
//! over one full distributed model step.
//!
//! Runs `DistDycore::step` (RK dynamics + hyperviscosity with sponge +
//! limited tracer advection + remap) under both exchange schedules and
//! reports, per step and summed over ranks:
//!
//! * messages sent — the redesign aggregates all fields and levels of an
//!   exchange into ONE message per peer, vs one per (field, level);
//! * payload bytes — identical in both modes (same partial sums move);
//! * staged bytes — pack/unpack staging copies, zero after the redesign;
//! * wall time per step.
//!
//! A third row runs the redesigned schedule over the loopback **TCP
//! backend** (every message framed, CRC'd and crossing a real socket) to
//! price the byte-oriented wire against the pooled in-process mailbox.
//!
//! Emits `BENCH_exchange.json`. Run with
//! `cargo run --release -p swcam-bench --bin exchange`.

use std::time::Instant;

use cubesphere::consts::P0;
use cubesphere::{CubedSphere, Partition, NPTS};
use homme::hypervis::HypervisConfig;
use homme::{Dims, DistDycore, Dycore, DycoreConfig, ExchangeMode, State};
use swmpi::{run_ranks, run_ranks_tcp, WorldOptions};

const NE: usize = 8;
const NLEV: usize = 26;
const QSIZE: usize = 4;
const NRANKS: usize = 6;
const MEASURE_STEPS: usize = 2;

fn config() -> DycoreConfig {
    let nu = HypervisConfig::for_ne(NE).nu;
    DycoreConfig {
        dt: 300.0 * 30.0 / NE as f64,
        hypervis: HypervisConfig { nu, nu_p: nu, subcycles: 3, nu_top: 2.5e5, sponge_layers: 3 },
        limiter: true,
        rsplit: 1,
    }
}

fn initial_state(dy: &Dycore) -> State {
    let dims = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems: Vec<_> = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..dims.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.v[i] = 2.0 * lon.sin();
                es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, ps);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                }
            }
        }
    }
    st
}

struct ModeResult {
    msgs_per_step: f64,
    payload_bytes_per_step: f64,
    staged_bytes_per_step: f64,
    ms_per_step: f64,
}

/// Which transport carries the exchange's messages.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Mailbox,
    Tcp,
}

fn run_mode(grid: &CubedSphere, part: &Partition, init: &State, mode: ExchangeMode) -> ModeResult {
    run_mode_on(grid, part, init, mode, Backend::Mailbox)
}

fn run_mode_on(
    grid: &CubedSphere,
    part: &Partition,
    init: &State,
    mode: ExchangeMode,
    backend: Backend,
) -> ModeResult {
    let dims = Dims { nlev: NLEV, qsize: QSIZE };
    let cfg = config();
    let body = |ctx: &mut swmpi::RankCtx| {
        let mut dist = DistDycore::new(grid, part, ctx.rank(), dims, 200.0, cfg, mode);
        let mut local = dist.local_state(init);
        // Warm-up grows workspace and communicator buffer pools.
        dist.step(ctx, &mut local).expect("warm-up step");
        let base = dist.stats;
        ctx.coll.barrier();
        let t0 = Instant::now();
        for _ in 0..MEASURE_STEPS {
            dist.step(ctx, &mut local).expect("step");
        }
        ctx.coll.barrier();
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
        (
            dist.stats.msgs_sent - base.msgs_sent,
            dist.stats.sent_bytes - base.sent_bytes,
            dist.stats.staged_bytes - base.staged_bytes,
            elapsed,
        )
    };
    let results = match backend {
        Backend::Mailbox => run_ranks(NRANKS, body),
        Backend::Tcp => run_ranks_tcp(NRANKS, WorldOptions::default(), body),
    };
    let steps = MEASURE_STEPS as f64;
    let mut msgs = 0u64;
    let mut payload = 0u64;
    let mut staged = 0u64;
    let mut wall: f64 = 0.0;
    for (m, p, s, t) in results {
        msgs += m;
        payload += p;
        staged += s;
        wall = wall.max(t);
    }
    ModeResult {
        msgs_per_step: msgs as f64 / steps,
        payload_bytes_per_step: payload as f64 / steps,
        staged_bytes_per_step: staged as f64 / steps,
        ms_per_step: wall * 1e3 / steps,
    }
}

fn main() {
    println!("exchange: ne{NE}, nlev {NLEV}, qsize {QSIZE}, {NRANKS} ranks");
    let grid = CubedSphere::new(NE);
    let part = Partition::new(&grid, NRANKS);
    let dims = Dims { nlev: NLEV, qsize: QSIZE };
    let serial = Dycore::new(NE, dims, 200.0, config());
    let init = initial_state(&serial);

    let orig = run_mode(&grid, &part, &init, ExchangeMode::Original);
    println!(
        "  original  : {:8.0} msgs/step, {:11.0} payload B/step, {:11.0} staged B/step, {:8.2} ms/step",
        orig.msgs_per_step, orig.payload_bytes_per_step, orig.staged_bytes_per_step, orig.ms_per_step
    );
    let redesigned = run_mode(&grid, &part, &init, ExchangeMode::Redesigned);
    println!(
        "  redesigned: {:8.0} msgs/step, {:11.0} payload B/step, {:11.0} staged B/step, {:8.2} ms/step",
        redesigned.msgs_per_step,
        redesigned.payload_bytes_per_step,
        redesigned.staged_bytes_per_step,
        redesigned.ms_per_step
    );

    let tcp = run_mode_on(&grid, &part, &init, ExchangeMode::Redesigned, Backend::Tcp);
    println!(
        "  tcp (redesigned): {:8.0} msgs/step, {:11.0} payload B/step, {:11.0} staged B/step, {:8.2} ms/step",
        tcp.msgs_per_step, tcp.payload_bytes_per_step, tcp.staged_bytes_per_step, tcp.ms_per_step
    );

    let msg_reduction = orig.msgs_per_step / redesigned.msgs_per_step;
    let tcp_overhead = tcp.ms_per_step / redesigned.ms_per_step;
    println!("  message reduction: {msg_reduction:.1}x; redesigned staging: {} B", redesigned.staged_bytes_per_step);
    println!("  tcp wire overhead: {tcp_overhead:.2}x vs in-process mailbox");
    assert_eq!(redesigned.staged_bytes_per_step, 0.0, "redesign must not stage");

    let json = format!(
        "{{\n  \"bench\": \"exchange\",\n  \"ne\": {NE},\n  \"nlev\": {NLEV},\n  \"qsize\": {QSIZE},\n  \
         \"nranks\": {NRANKS},\n  \"steps_measured\": {MEASURE_STEPS},\n  \
         \"original\": {{\n    \"msgs_per_step\": {:.1},\n    \"payload_bytes_per_step\": {:.0},\n    \
         \"staged_bytes_per_step\": {:.0},\n    \"ms_per_step\": {:.3}\n  }},\n  \
         \"redesigned\": {{\n    \"msgs_per_step\": {:.1},\n    \"payload_bytes_per_step\": {:.0},\n    \
         \"staged_bytes_per_step\": {:.0},\n    \"ms_per_step\": {:.3}\n  }},\n  \
         \"redesigned_tcp\": {{\n    \"msgs_per_step\": {:.1},\n    \"payload_bytes_per_step\": {:.0},\n    \
         \"staged_bytes_per_step\": {:.0},\n    \"ms_per_step\": {:.3}\n  }},\n  \
         \"message_reduction\": {msg_reduction:.2},\n  \"tcp_overhead\": {tcp_overhead:.2}\n}}\n",
        orig.msgs_per_step,
        orig.payload_bytes_per_step,
        orig.staged_bytes_per_step,
        orig.ms_per_step,
        redesigned.msgs_per_step,
        redesigned.payload_bytes_per_step,
        redesigned.staged_bytes_per_step,
        redesigned.ms_per_step,
        tcp.msgs_per_step,
        tcp.payload_bytes_per_step,
        tcp.staged_bytes_per_step,
        tcp.ms_per_step,
    );
    std::fs::write("BENCH_exchange.json", &json).expect("write BENCH_exchange.json");
    println!("wrote BENCH_exchange.json");
}
