//! Table 2: mesh configurations of the paper's experiments.

use cubesphere::resolution_km;
use perfmodel::report::table;

fn main() {
    let rows: Vec<Vec<String>> = [64usize, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .map(|ne| {
            vec![
                format!("ne{ne}"),
                format!("{ne} x {ne} x 6"),
                "128".to_string(),
                format!("{}", 6 * ne * ne),
                format!("{:.2} km", resolution_km(ne)),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            "Table 2: mesh configurations",
            &["problem size", "horizontal", "vertical", "# elements", "resolution"],
            &rows
        )
    );
}
