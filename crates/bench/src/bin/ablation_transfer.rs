//! Section 7.3 ablation: euler_step data-transfer volume, OpenACC
//! (Algorithm 1) vs Athread (Algorithm 2).

use homme::kernels::{verify, KernelData, KernelId, Variant};
use perfmodel::report::table;

fn main() {
    let env = verify::KernelEnv::default();
    let mut rows = Vec::new();
    for qsize in [5usize, 10, 25] {
        let mut acc = KernelData::synth(16, 32, qsize, 7);
        let mut ath = KernelData::synth(16, 32, qsize, 7);
        let r_acc = verify::run(KernelId::EulerStep, Variant::OpenAcc, &mut acc, &env);
        let r_ath = verify::run(KernelId::EulerStep, Variant::Athread, &mut ath, &env);
        let b_acc = r_acc.counters.mem_bytes();
        let b_ath = r_ath.counters.mem_bytes();
        rows.push(vec![
            format!("{qsize}"),
            format!("{:.2} MB", b_acc as f64 / 1e6),
            format!("{:.2} MB", b_ath as f64 / 1e6),
            format!("{:.1}%", 100.0 * b_ath as f64 / b_acc as f64),
        ]);
    }
    println!(
        "{}",
        table(
            "euler_step data transfer: Algorithm 1 (OpenACC) vs Algorithm 2 (Athread)",
            &["tracers", "OpenACC", "Athread", "Athread/OpenACC"],
            &rows
        )
    );
    println!("Paper: 'total data transfer size has been decreased to 10%'. The gap");
    println!("widens with the tracer count because the q-invariant arrays dominate.");
}
