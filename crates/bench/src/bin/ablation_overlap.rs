//! Section 7.6 ablation: original vs redesigned bndry_exchangev —
//! functional staging-copy counts on real ranks, plus the modeled
//! step-time effect at scale.

use cubesphere::{CubedSphere, Partition, NPTS};
use homme::bndry::{CopyStats, ExchangeMode, ExchangePlan};
use homme::kernels::Variant;
use perfmodel::report::table;
use perfmodel::stepmodel::{CommMode, RankWork, StepModel};
use perfmodel::Machine;
use swmpi::run_ranks;

fn functional(mode: ExchangeMode) -> CopyStats {
    let grid = CubedSphere::new(8);
    let nranks = 8;
    let part = Partition::new(&grid, nranks);
    let plans: Vec<ExchangePlan> =
        (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
    let stats = run_ranks(nranks, |ctx| {
        let plan = &plans[ctx.rank()];
        let mut fields: Vec<Vec<f64>> = plan
            .owned
            .iter()
            .map(|&e| (0..NPTS).map(|p| (e * 7 + p) as f64).collect())
            .collect();
        let mut s = CopyStats::default();
        for round in 0..10 {
            plan.dss_level(ctx, &mut fields, mode, round, || {}, &mut s).expect("dss level");
        }
        s
    });
    stats.into_iter().fold(CopyStats::default(), |mut a, s| {
        a.staged_bytes += s.staged_bytes;
        a.sent_bytes += s.sent_bytes;
        a
    })
}

fn main() {
    let orig = functional(ExchangeMode::Original);
    let redesigned = functional(ExchangeMode::Redesigned);
    println!(
        "{}",
        table(
            "Functional exchange (ne8, 8 ranks, 10 rounds)",
            &["mode", "MPI payload", "staging copies"],
            &[
                vec![
                    "original".into(),
                    format!("{} B", orig.sent_bytes),
                    format!("{} B", orig.staged_bytes),
                ],
                vec![
                    "redesigned".into(),
                    format!("{} B", redesigned.sent_bytes),
                    format!("{} B", redesigned.staged_bytes),
                ],
            ]
        )
    );

    let m = Machine::taihulight();
    let mut rows = Vec::new();
    for (label, elems, nranks) in
        [("large run", 4usize, 131_072usize), ("mid run", 48, 32_768), ("small run", 650, 8_192)]
    {
        let w = RankWork { elems, nlev: 128, qsize: 25 };
        let t_orig =
            StepModel::new(&m, Variant::Athread, CommMode::Original).step_seconds(w, nranks);
        let t_new =
            StepModel::new(&m, Variant::Athread, CommMode::Redesigned).step_seconds(w, nranks);
        rows.push(vec![
            format!("{label} ({elems} elem @ {nranks})"),
            format!("{:.4} s", t_orig),
            format!("{:.4} s", t_new),
            format!("-{:.1}%", 100.0 * (1.0 - t_new / t_orig)),
        ]);
    }
    println!(
        "{}",
        table(
            "Modeled step time: original vs redesigned exchange",
            &["configuration", "original", "redesigned", "change"],
            &rows
        )
    );
    println!("Paper: overlap cut HOMME runtime by up to 23%; the direct unpack");
    println!("removed another 30% of the remaining exchange cost.");
}
