//! Criterion bench of the boundary exchange: original (pack/unpack
//! staging) vs redesigned (direct, overlapped) on real concurrent ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubesphere::{CubedSphere, Partition, NPTS};
use homme::bndry::{CopyStats, ExchangeMode, ExchangePlan};
use swmpi::run_ranks;

fn bench_exchange(c: &mut Criterion) {
    let grid = CubedSphere::new(6);
    let nranks = 6;
    let part = Partition::new(&grid, nranks);
    let plans: Vec<ExchangePlan> =
        (0..nranks).map(|r| ExchangePlan::new(&grid, &part, r)).collect();
    let mut group = c.benchmark_group("bndry_exchangev");
    group.sample_size(10);
    for mode in [ExchangeMode::Original, ExchangeMode::Redesigned] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    run_ranks(nranks, |ctx| {
                        let plan = &plans[ctx.rank()];
                        let mut fields: Vec<Vec<f64>> =
                            plan.owned.iter().map(|&e| vec![e as f64; NPTS]).collect();
                        let mut s = CopyStats::default();
                        plan.dss_level(ctx, &mut fields, mode, 0, || {}, &mut s)
                            .expect("dss level");
                        s.sent_bytes
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
