//! Criterion bench over the Table-1 kernels: host wall time of the four
//! variants on a reduced workload (the table/figure binaries report the
//! *modeled* SW26010 times; this bench tracks the simulator itself).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homme::kernels::{verify, KernelData, KernelId, Variant};

fn bench_kernels(c: &mut Criterion) {
    let env = verify::KernelEnv::default();
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    for kernel in KernelId::ALL {
        for variant in [Variant::Reference, Variant::Athread] {
            group.bench_with_input(
                BenchmarkId::new(kernel.name(), format!("{variant:?}")),
                &(kernel, variant),
                |b, &(kernel, variant)| {
                    let mut data = KernelData::synth(8, 32, 4, 11);
                    b.iter(|| verify::run(kernel, variant, &mut data, &env).seconds)
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
