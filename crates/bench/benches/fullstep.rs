//! Criterion bench of one full dycore step (the per-step cost behind the
//! Figure 6 SYPD curves) at two resolutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homme::{Dims, Dycore, DycoreConfig};
use cubesphere::NPTS;

fn bench_fullstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_run_step");
    group.sample_size(10);
    for ne in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("ne{ne}")), &ne, |b, &ne| {
            let dims = Dims { nlev: 8, qsize: 2 };
            let mut dy = Dycore::new(ne, dims, 2000.0, DycoreConfig::for_ne(ne));
            let mut st = dy.zero_state();
            let vert = dy.rhs.vert.clone();
            for es in st.elems_mut() {
                for k in 0..8 {
                    for p in 0..NPTS {
                        es.t[k * NPTS + p] = 280.0 + k as f64;
                        es.dp3d[k * NPTS + p] = vert.dp_ref(k, cubesphere::P0);
                        es.qdp[k * NPTS + p] = 0.01 * es.dp3d[k * NPTS + p];
                    }
                }
            }
            b.iter(|| dy.step(&mut st));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fullstep);
criterion_main!(benches);
