//! Criterion bench of the Section 7.4/7.5 primitives: the register-
//! communication scan chain and the shuffle-based 4x4 transpose.

use criterion::{criterion_group, criterion_main, Criterion};
use sw26010::{transpose4x4, CpeCluster, SharedSliceMut, V4F64};

fn bench_scan(c: &mut Criterion) {
    let cluster = CpeCluster::with_defaults();
    let mut group = c.benchmark_group("scan");
    group.sample_size(10);
    group.bench_function("regcomm_chain_64cpe", |b| {
        b.iter(|| {
            let mut out = vec![0.0; 64];
            let view = SharedSliceMut::new(&mut out);
            cluster.run(|ctx| {
                let local = [(ctx.row() + 1) as f64; 16];
                let prefix = homme::kernels::athread::chain_exclusive_prefix(ctx, &local);
                ctx.gst(&view, ctx.id(), prefix[0]);
            });
            out[63]
        })
    });
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose");
    group.bench_function("shuffle_4x4", |b| {
        let rows = [
            V4F64([0.0, 1.0, 2.0, 3.0]),
            V4F64([4.0, 5.0, 6.0, 7.0]),
            V4F64([8.0, 9.0, 10.0, 11.0]),
            V4F64([12.0, 13.0, 14.0, 15.0]),
        ];
        b.iter(|| transpose4x4(std::hint::black_box(rows)))
    });
    group.bench_function("naive_4x4", |b| {
        let m: [[f64; 4]; 4] = [[0.0, 1.0, 2.0, 3.0]; 4];
        b.iter(|| {
            let m = std::hint::black_box(m);
            let mut t = [[0.0; 4]; 4];
            for i in 0..4 {
                for j in 0..4 {
                    t[j][i] = m[i][j];
                }
            }
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan, bench_transpose);
criterion_main!(benches);
