//! Allocation regression gate for the ensemble engine: after construction,
//! [`swcam_core::Ensemble::step`] must touch the heap exactly zero times —
//! **including** the step that admits queued members into freed lanes
//! (admission re-initializes a lane in place through `ScenarioSpec::apply`).
//! Only `submit` and `collect` may allocate.
//!
//! The counting `#[global_allocator]` is per-binary state, so this file
//! holds exactly one `#[test]` and shares its binary with nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use swcam_core::{Ensemble, EnsembleConfig, MemberStatus, ScenarioRegistry};

/// Counts every allocation (from any thread, scheduler workers included)
/// while armed; forwards everything to the system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn ensemble_step_allocates_nothing_after_warmup() {
    // Suite-None scenario: the physics fast path never extracts columns,
    // so the entire coupled step (admission, dynamics, batched hypervis,
    // remap, physics cadence, snapshotting) stays off the heap.
    let spec = ScenarioRegistry::builtin().get("resting").expect("builtin").clone();
    let mut ens = Ensemble::new(spec, EnsembleConfig { lanes: 2, ..EnsembleConfig::default() });
    let targets = [3usize, 20, 20];
    for (m, &steps) in targets.iter().enumerate() {
        ens.submit(m as u64, steps);
    }

    // Warm-up: the first step may lazily touch thread-local / libstd
    // caches (it also admits the first two members).
    ens.step().expect("warm-up step");

    // Armed window 1: plain lockstep stepping of a full batch.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    ens.step().expect("armed step");
    ens.step().expect("armed step");
    ARMED.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "Ensemble::step heap-allocated {n} times after warm-up");

    // Member 0 has now hit its 3-step target; collect it (allocation is
    // allowed here) so a lane frees up with member 2 still queued.
    let retired = ens.collect();
    assert_eq!(retired.len(), 1);
    assert_eq!(retired[0].status, MemberStatus::Finished);
    assert_eq!(ens.pending(), 1, "third member must still be queued");

    // Armed window 2: the very step that admits the queued member into the
    // freed lane (ScenarioSpec::apply re-initializes in place) must also
    // be allocation-free.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    ens.step().expect("armed admission step");
    ens.step().expect("armed step");
    ARMED.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "admission step heap-allocated {n} times");
    assert_eq!(ens.pending(), 0);
    assert_eq!(ens.active(), 2);
}
