//! Bitwise contract of the member-lane kernel path: with
//! `member_kernel_path = Lanes` armed, member m of an N-member batch is
//! bit-for-bit equal to a standalone run of the same scenario and seed —
//! across every lane occupancy the sweep dispatcher sees (full 4-wide
//! sweeps, ragged 1/2/3-lane tails, 4 + 1 splits), across column depths
//! from a single level to a 128-level stratosphere-resolving stack, dry
//! and moist, with members admitted and retired mid-run, and with a
//! poisoned member's NaNs riding through the shared lane tiles without
//! touching its neighbors.

use swcam_core::homme::HealthError;
use swcam_core::{
    Ensemble, EnsembleConfig, MemberKernelPath, MemberStatus, ScenarioRegistry, ScenarioSpec,
    Swcam,
};

/// Shrink a registry scenario to test scale at a chosen column depth.
fn shrunk(name: &str, nlev: usize) -> ScenarioSpec {
    let mut spec = ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone();
    spec.config.ne = 2;
    spec.config.nlev = nlev;
    spec.config.dt = 300.0;
    spec
}

/// Engine config with the lane path explicitly armed.
fn lane_cfg(lanes: usize) -> EnsembleConfig {
    EnsembleConfig { lanes, member_kernel_path: MemberKernelPath::Lanes, ..Default::default() }
}

/// Standalone oracle: the exact member trajectory a serial run produces.
fn standalone(spec: &ScenarioSpec, seed: u64, steps: usize) -> Swcam {
    let mut model = spec.build_model(seed);
    model.run_steps(steps);
    model
}

/// One batch of `n` members on the lane path against `n` standalone runs,
/// bit for bit.
fn pin_batch(spec: &ScenarioSpec, n: usize, steps: usize) {
    let mut ens = Ensemble::new(spec.clone(), lane_cfg(n));
    let seeds: Vec<u64> = (0..n as u64).map(|m| 1000 + 17 * m).collect();
    for &seed in &seeds {
        ens.submit(seed, steps);
    }
    let reports = ens.run_all().expect("batch must run");
    assert_eq!(reports.len(), n);
    for (r, &seed) in reports.iter().zip(&seeds) {
        assert_eq!(r.status, MemberStatus::Finished);
        assert_eq!(r.seed, seed);
        assert_eq!(r.steps, steps);
        let oracle = standalone(spec, seed, steps);
        assert_eq!(
            r.state.max_abs_diff(&oracle.state),
            0.0,
            "{} nlev {}: member seed {seed} diverged from standalone at N = {n}",
            spec.name,
            spec.config.nlev
        );
        for (a, b) in r.precip_accum.iter().zip(&oracle.precip_accum) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: precip drifted", spec.name);
        }
    }
}

#[test]
fn lane_members_match_standalone_bitwise_dry() {
    // Adiabatic dycore-only scenario: every batch width against every
    // short-to-operational column depth. N = 3 is the masked ragged tail,
    // N = 5 a full sweep plus a duplicated-lane single.
    for nlev in [1usize, 3, 26] {
        let spec = shrunk("resting", nlev);
        for n in [1usize, 2, 3, 4, 5] {
            pin_batch(&spec, n, 2);
        }
    }
}

#[test]
fn lane_members_match_standalone_bitwise_deep_column() {
    // 128-level stack: the column scans carry lane state through a long
    // sequential recurrence — kept to the ragged widths to bound runtime.
    let spec = shrunk("resting", 128);
    for n in [3usize, 5] {
        pin_batch(&spec, n, 1);
    }
}

#[test]
fn lane_members_match_standalone_bitwise_moist() {
    // Moist aquaplanet: tracers + physics exercise the full coupled tail
    // per member around the batched dynamics and hypervis.
    for nlev in [3usize, 26] {
        let spec = shrunk("aquaplanet", nlev);
        for n in [1usize, 2, 3, 4, 5] {
            pin_batch(&spec, n, 2);
        }
    }
}

#[test]
fn lane_admit_and_retire_mid_run_is_deterministic() {
    // 5 members through 3 lanes with different step targets: lane
    // occupancy shifts every few steps (3-wide ragged sweeps, then 2,
    // then 1) as members retire and queued members are admitted. Every
    // member must still match its standalone trajectory bitwise.
    let spec = shrunk("resting", 6);
    let jobs: [(u64, usize); 5] = [(11, 2), (22, 4), (33, 3), (44, 2), (55, 3)];
    let mut ens = Ensemble::new(spec.clone(), lane_cfg(3));
    for &(seed, steps) in &jobs {
        ens.submit(seed, steps);
    }
    let reports = ens.run_all().expect("staggered batch must run");
    assert_eq!(reports.len(), jobs.len());
    for (r, &(seed, steps)) in reports.iter().zip(&jobs) {
        assert_eq!(r.status, MemberStatus::Finished);
        assert_eq!((r.seed, r.steps), (seed, steps));
        let oracle = standalone(&spec, seed, steps);
        assert_eq!(
            r.state.max_abs_diff(&oracle.state),
            0.0,
            "mid-run admitted member seed {seed} diverged from standalone"
        );
    }
}

#[test]
fn poisoned_lane_never_contaminates_its_sweep_neighbors() {
    // Three members share one lane sweep; member 1's hook injects NaN into
    // both its wind field (so the NaN rides the shared V4F64 tiles through
    // the batched RK and hypervis kernels next to two healthy lanes) and
    // its vapour tracer (so the step's checks deterministically reject the
    // member — the NaN reaches dp3d through the RK tendencies and the
    // vertical remap refuses the column). The lane kernels have no
    // cross-lane operations, so the poison must stay in its lane: member 1
    // rolls back alone to its clean pre-step snapshot and every member
    // finishes bit-identical to a clean standalone run.
    let spec = shrunk("aquaplanet", 6);
    let steps = 3usize;
    let mut ens = Ensemble::new(spec.clone(), lane_cfg(3));
    let ids: Vec<u64> = (5..8).map(|seed| ens.submit(seed, steps)).collect();
    let poisoned_id = ids[1];
    let mut poisoned = false;
    let mut calls = 0usize;
    while !ens.is_idle() {
        calls += 1;
        assert!(calls < 20, "ensemble failed to converge after rollback");
        let inject = calls == 2 && !poisoned;
        ens.step_with(&mut |id, state| {
            if inject && id == poisoned_id {
                state.u[0] = f64::NAN;
                state.qdp[0] = f64::NAN;
                poisoned = true;
            }
        })
        .expect("step");
    }
    assert!(poisoned, "hook never fired");
    let reports = ens.collect();
    assert_eq!(reports.len(), 3);
    for (r, (i, &id)) in reports.iter().zip(ids.iter().enumerate()) {
        assert_eq!(r.id, id);
        assert_eq!(r.status, MemberStatus::Finished);
        if i == 1 {
            assert_eq!(r.rollbacks, 1, "poisoned member must roll back exactly once");
            assert!(
                matches!(
                    r.last_error,
                    Some(HealthError::Physics { .. } | HealthError::Remap(_))
                ),
                "rollback must be driven by a typed in-step verdict, got {:?}",
                r.last_error
            );
        } else {
            assert_eq!(r.rollbacks, 0, "healthy member {i} must never roll back");
        }
        let oracle = standalone(&spec, 5 + i as u64, steps);
        assert_eq!(
            r.state.max_abs_diff(&oracle.state),
            0.0,
            "seed {} must finish bitwise equal to a clean run",
            5 + i
        );
    }
}
