//! The ensemble engine's bitwise contract: member m of an N-member batch
//! is bit-for-bit equal to a standalone run of the same scenario and seed —
//! for every batch width the chunked kernels take (1, 2, 4), across
//! registry scenarios, with members admitted and retired mid-run, and
//! after a member-only rollback.

use swcam_core::homme::HealthError;
use swcam_core::swphysics::PhysicsSuite;
use swcam_core::{
    Ensemble, EnsembleConfig, MemberStatus, ScenarioRegistry, ScenarioSpec, Swcam,
};

/// Shrink a registry scenario to test scale: coarse mesh, short column.
/// The initial conditions are resolution-independent, so the spec stays
/// the same scenario — just cheap enough for a bitwise pin in CI.
fn shrunk(name: &str) -> ScenarioSpec {
    let mut spec = ScenarioRegistry::builtin().get(name).expect("builtin scenario").clone();
    spec.config.ne = 2;
    spec.config.nlev = 6;
    spec.config.dt = 300.0;
    spec
}

/// Standalone oracle: the exact member trajectory a serial run produces.
fn standalone(spec: &ScenarioSpec, seed: u64, steps: usize) -> Swcam {
    let mut model = spec.build_model(seed);
    model.run_steps(steps);
    model
}

/// One batch of `n` members against `n` standalone runs, bit for bit.
fn pin_batch(spec: &ScenarioSpec, n: usize, steps: usize) {
    let mut ens = Ensemble::new(spec.clone(), EnsembleConfig { lanes: n, ..EnsembleConfig::default() });
    let seeds: Vec<u64> = (0..n as u64).map(|m| 1000 + 17 * m).collect();
    for &seed in &seeds {
        ens.submit(seed, steps);
    }
    let reports = ens.run_all().expect("batch must run");
    assert_eq!(reports.len(), n);
    for (r, &seed) in reports.iter().zip(&seeds) {
        assert_eq!(r.status, MemberStatus::Finished);
        assert_eq!(r.seed, seed);
        assert_eq!(r.steps, steps);
        let oracle = standalone(spec, seed, steps);
        assert_eq!(
            r.state.max_abs_diff(&oracle.state),
            0.0,
            "{}: member seed {seed} diverged from standalone at N = {n}",
            spec.name
        );
        assert_eq!(r.time, oracle.time, "{}: simulated time drifted", spec.name);
        for (a, b) in r.precip_accum.iter().zip(&oracle.precip_accum) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: precip drifted", spec.name);
        }
    }
}

#[test]
fn ensemble_members_match_standalone_bitwise_dry() {
    // Adiabatic dycore-only scenario: every batch width the chunk
    // dispatcher uses (1 = remainder lane, 2, 4).
    let spec = shrunk("resting");
    for n in [1usize, 2, 4] {
        pin_batch(&spec, n, 3);
    }
}

#[test]
fn ensemble_members_match_standalone_bitwise_moist() {
    // Moist aquaplanet: tracers + simple physics exercise the full coupled
    // tail (tracer advection, remap, checked physics) per member.
    let spec = shrunk("aquaplanet");
    for n in [1usize, 2, 4] {
        pin_batch(&spec, n, 2);
    }
}

#[test]
fn ensemble_members_match_standalone_bitwise_held_suarez() {
    pin_batch(&shrunk("held-suarez"), 3, 2);
}

#[test]
fn admit_and_retire_mid_run_is_deterministic() {
    // 5 members through 2 lanes with different step targets: members
    // retire at different times and queued members are admitted into the
    // freed lanes mid-run. Every member must still match its standalone
    // trajectory bitwise — admission order must not leak into the math.
    let spec = shrunk("resting");
    let jobs: [(u64, usize); 5] = [(11, 2), (22, 4), (33, 3), (44, 2), (55, 3)];
    let mut ens = Ensemble::new(spec.clone(), EnsembleConfig { lanes: 2, ..EnsembleConfig::default() });
    for &(seed, steps) in &jobs {
        ens.submit(seed, steps);
    }
    let reports = ens.run_all().expect("staggered batch must run");
    assert_eq!(reports.len(), jobs.len());
    for (r, &(seed, steps)) in reports.iter().zip(&jobs) {
        assert_eq!(r.status, MemberStatus::Finished);
        assert_eq!((r.seed, r.steps), (seed, steps));
        let oracle = standalone(&spec, seed, steps);
        assert_eq!(
            r.state.max_abs_diff(&oracle.state),
            0.0,
            "mid-run admitted member seed {seed} diverged from standalone"
        );
    }
}

#[test]
fn poisoned_member_rolls_back_alone_and_recovers_bitwise() {
    // Inject a NaN into member 1's vapour tracer after its step-2 snapshot.
    // Dynamics, hyperviscosity and the remap plan never read tracer values,
    // so the poison rides silently to the physics call (the seed behavior
    // this PR fixes at the coupling layer); the checked physics call must
    // reject the column, roll member 1 back to its snapshot, and leave
    // member 0 untouched — after which both members must finish
    // bit-identical to clean standalone runs.
    let spec = shrunk("aquaplanet");
    let steps = 3usize;
    let mut ens = Ensemble::new(spec.clone(), EnsembleConfig { lanes: 2, ..EnsembleConfig::default() });
    let id0 = ens.submit(5, steps);
    let id1 = ens.submit(6, steps);
    let mut poisoned = false;
    let mut calls = 0usize;
    while !ens.is_idle() {
        calls += 1;
        assert!(calls < 20, "ensemble failed to converge after rollback");
        let inject = calls == 2 && !poisoned;
        ens.step_with(&mut |id, state| {
            if inject && id == id1 {
                state.qdp[0] = f64::NAN;
                poisoned = true;
            }
        })
        .expect("step");
    }
    assert!(poisoned, "hook never fired");
    let reports = ens.collect();
    assert_eq!(reports.len(), 2);
    let r0 = &reports[0];
    let r1 = &reports[1];
    assert_eq!((r0.id, r1.id), (id0, id1));
    assert_eq!(r0.status, MemberStatus::Finished);
    assert_eq!(r1.status, MemberStatus::Finished);
    assert_eq!(r0.rollbacks, 0, "healthy member must never roll back");
    assert_eq!(r1.rollbacks, 1, "poisoned member must roll back exactly once");
    assert!(
        matches!(r1.last_error, Some(HealthError::Physics { .. })),
        "rollback must be driven by the typed physics verdict, got {:?}",
        r1.last_error
    );
    // The poisoned step cost one extra engine step, not correctness.
    for (r, seed) in [(r0, 5u64), (r1, 6u64)] {
        let oracle = standalone(&spec, seed, steps);
        assert_eq!(
            r.state.max_abs_diff(&oracle.state),
            0.0,
            "seed {seed} must finish bitwise equal to a clean run"
        );
    }
}

#[test]
fn persistently_poisoned_member_fails_without_stopping_the_batch() {
    // A hook that re-poisons member 1 every step defeats rollback-and-retry;
    // after `max_rollbacks` consecutive rollbacks the member must be marked
    // Failed and retired while member 0 finishes normally.
    let spec = shrunk("aquaplanet");
    let mut ens = Ensemble::new(spec.clone(), EnsembleConfig { lanes: 2, max_rollbacks: 1, ..EnsembleConfig::default() });
    ens.submit(5, 3);
    let id1 = ens.submit(6, 3);
    let mut calls = 0usize;
    while !ens.is_idle() {
        calls += 1;
        assert!(calls < 20, "failed member must not wedge the batch");
        ens.step_with(&mut |id, state| {
            if id == id1 {
                state.qdp[0] = f64::NAN;
            }
        })
        .expect("step");
    }
    let reports = ens.collect();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].status, MemberStatus::Finished);
    assert_eq!(reports[1].status, MemberStatus::Failed);
    assert_eq!(reports[1].rollbacks, 2, "max_rollbacks + 1 attempts then Failed");
    assert_eq!(reports[1].steps, 0, "every poisoned step was rolled back");
    // The healthy member was never perturbed by its neighbor's failures.
    let oracle = standalone(&spec, 5, 3);
    assert_eq!(reports[0].state.max_abs_diff(&oracle.state), 0.0);
}

#[test]
fn suite_none_scenario_reports_zero_precip() {
    // The None-suite fast path must not fabricate diagnostics.
    let spec = shrunk("resting");
    assert!(matches!(swcam_core::build_suite(&spec.config), PhysicsSuite::None));
    let mut ens = Ensemble::new(spec, EnsembleConfig::default());
    ens.submit(1, 2);
    let reports = ens.run_all().expect("run");
    assert!(reports[0].precip_accum.iter().all(|&p| p == 0.0));
}
