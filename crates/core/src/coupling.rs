//! Physics–dynamics coupling: extract columns from the spectral-element
//! state, run the column physics, write the updated fields back.
//!
//! Tracer convention: tracer 0 = water vapour `qv`, 1 = cloud water `qc`,
//! 2 = rain water `qr` (all stored as mass `q * dp3d`).

use homme::{Dycore, State};
use swphysics::{Column, PhysicsDiag, PhysicsSuite};
use cubesphere::NPTS;

/// Extract the column at `(element, point)` from the state.
pub fn extract_column(dy: &Dycore, state: &State, e: usize, p: usize, sst: f64) -> Column {
    let nlev = dy.dims.nlev;
    let qsize = dy.dims.qsize;
    let es = state.elem(e);
    let ptop = dy.rhs.vert.ptop();
    let mut p_int = vec![0.0; nlev + 1];
    let mut p_mid = vec![0.0; nlev];
    let mut dp = vec![0.0; nlev];
    p_int[0] = ptop;
    for k in 0..nlev {
        dp[k] = es.dp3d[k * NPTS + p];
        p_int[k + 1] = p_int[k] + dp[k];
        p_mid[k] = p_int[k] + 0.5 * dp[k];
    }
    let get = |f: &[f64]| (0..nlev).map(|k| f[k * NPTS + p]).collect::<Vec<f64>>();
    let getq = |q: usize| -> Vec<f64> {
        if q < qsize {
            (0..nlev).map(|k| es.qdp[(q * nlev + k) * NPTS + p] / dp[k]).collect()
        } else {
            vec![0.0; nlev]
        }
    };
    let (qv, qc, qr) = (getq(0), getq(1), getq(2));
    Column {
        p_mid,
        p_int,
        dp,
        t: get(es.t),
        u: get(es.u),
        v: get(es.v),
        qv,
        qc,
        qr,
        lat: dy.grid.elements[e].metric[p].lat,
        ts: sst,
    }
}

/// Write a physics-updated column back into the state.
pub fn insert_column(dy: &Dycore, state: &mut State, e: usize, p: usize, col: &Column) {
    let nlev = dy.dims.nlev;
    let qsize = dy.dims.qsize;
    let es = state.elem_mut(e);
    for k in 0..nlev {
        es.t[k * NPTS + p] = col.t[k];
        es.u[k * NPTS + p] = col.u[k];
        es.v[k * NPTS + p] = col.v[k];
        let dp = es.dp3d[k * NPTS + p];
        for (q, field) in [&col.qv, &col.qc, &col.qr].into_iter().enumerate() {
            if q < qsize {
                es.qdp[(q * nlev + k) * NPTS + p] = field[k] * dp;
            }
        }
    }
}

/// Run the physics suite over every column; returns per-(element, point)
/// diagnostics.
pub fn apply_physics(
    dy: &Dycore,
    state: &mut State,
    suite: &PhysicsSuite,
    dt: f64,
    sst: f64,
) -> Vec<PhysicsDiag> {
    let nelem = state.nelem();
    let mut diags = Vec::with_capacity(nelem * NPTS);
    for e in 0..nelem {
        for p in 0..NPTS {
            let mut col = extract_column(dy, state, e, p, sst);
            diags.push(suite.step(&mut col, dt));
            insert_column(dy, state, e, p, &col);
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use homme::{Dims, DycoreConfig, HypervisConfig};
    use cubesphere::consts::P0;

    fn test_dycore() -> (Dycore, State) {
        let dims = Dims { nlev: 8, qsize: 3 };
        let cfg = DycoreConfig {
            dt: 300.0,
            hypervis: HypervisConfig::off(),
            limiter: true,
            rsplit: 1,
        };
        let dy = Dycore::new(2, dims, 2000.0, cfg);
        let mut st = dy.zero_state();
        let vert = dy.rhs.vert.clone();
        for es in st.elems_mut() {
            for k in 0..8 {
                for p in 0..NPTS {
                    es.t[k * NPTS + p] = 280.0 + k as f64;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, P0);
                    es.u[k * NPTS + p] = 5.0;
                    es.qdp[(k) * NPTS + p] = 0.005 * es.dp3d[k * NPTS + p]; // qv
                }
            }
        }
        (dy, st)
    }

    #[test]
    fn column_roundtrip_is_identity() {
        let (dy, mut st) = test_dycore();
        let before = st.clone();
        for e in 0..st.nelem() {
            for p in 0..NPTS {
                let col = extract_column(&dy, &st, e, p, 300.0);
                insert_column(&dy, &mut st, e, p, &col);
            }
        }
        assert!(st.max_abs_diff(&before) < 1e-14);
    }

    #[test]
    fn extracted_column_geometry_is_consistent() {
        let (dy, st) = test_dycore();
        let col = extract_column(&dy, &st, 3, 5, 300.0);
        assert_eq!(col.nlev(), 8);
        assert!((col.ps() - P0).abs() < 1e-6);
        assert!((col.p_int[0] - 2000.0).abs() < 1e-9);
        assert_eq!(col.qv[0], 0.005);
        assert_eq!(col.qc[0], 0.0);
        assert_eq!(col.u[2], 5.0);
    }

    #[test]
    fn physics_none_is_identity() {
        let (dy, mut st) = test_dycore();
        let before = st.clone();
        apply_physics(&dy, &mut st, &PhysicsSuite::None, 600.0, 300.0);
        assert!(st.max_abs_diff(&before) < 1e-14);
    }

    #[test]
    fn simple_physics_moistens_over_warm_ocean() {
        let (dy, mut st) = test_dycore();
        let suite = PhysicsSuite::Simple(swphysics::SimplePhysics::default());
        let qv_before = dy.total_tracer_mass(&st, 0);
        apply_physics(&dy, &mut st, &suite, 1800.0, 302.15);
        let qv_after = dy.total_tracer_mass(&st, 0);
        assert!(qv_after > qv_before, "evaporation must add vapour mass");
    }
}
