//! Physics–dynamics coupling: extract columns from the spectral-element
//! state, run the column physics, write the updated fields back.
//!
//! Tracer convention: tracer 0 = water vapour `qv`, 1 = cloud water `qc`,
//! 2 = rain water `qr` (all stored as mass `q * dp3d`).

use homme::{Dycore, HealthError, PhysicsFault, State};
use swphysics::{Column, PhysicsDiag, PhysicsError, PhysicsSuite};
use cubesphere::NPTS;

/// Extract the column at `(element, point)` from the state.
pub fn extract_column(dy: &Dycore, state: &State, e: usize, p: usize, sst: f64) -> Column {
    let nlev = dy.dims.nlev;
    let qsize = dy.dims.qsize;
    let es = state.elem(e);
    let ptop = dy.rhs.vert.ptop();
    let mut p_int = vec![0.0; nlev + 1];
    let mut p_mid = vec![0.0; nlev];
    let mut dp = vec![0.0; nlev];
    p_int[0] = ptop;
    for k in 0..nlev {
        dp[k] = es.dp3d[k * NPTS + p];
        p_int[k + 1] = p_int[k] + dp[k];
        p_mid[k] = p_int[k] + 0.5 * dp[k];
    }
    let get = |f: &[f64]| (0..nlev).map(|k| f[k * NPTS + p]).collect::<Vec<f64>>();
    let getq = |q: usize| -> Vec<f64> {
        if q < qsize {
            (0..nlev).map(|k| es.qdp[(q * nlev + k) * NPTS + p] / dp[k]).collect()
        } else {
            vec![0.0; nlev]
        }
    };
    let (qv, qc, qr) = (getq(0), getq(1), getq(2));
    Column {
        p_mid,
        p_int,
        dp,
        t: get(es.t),
        u: get(es.u),
        v: get(es.v),
        qv,
        qc,
        qr,
        lat: dy.grid.elements[e].metric[p].lat,
        ts: sst,
    }
}

/// Write a physics-updated column back into the state.
pub fn insert_column(dy: &Dycore, state: &mut State, e: usize, p: usize, col: &Column) {
    let nlev = dy.dims.nlev;
    let qsize = dy.dims.qsize;
    let es = state.elem_mut(e);
    for k in 0..nlev {
        es.t[k * NPTS + p] = col.t[k];
        es.u[k * NPTS + p] = col.u[k];
        es.v[k * NPTS + p] = col.v[k];
        let dp = es.dp3d[k * NPTS + p];
        for (q, field) in [&col.qv, &col.qc, &col.qr].into_iter().enumerate() {
            if q < qsize {
                es.qdp[(q * nlev + k) * NPTS + p] = field[k] * dp;
            }
        }
    }
}

/// Run the physics suite over every column; returns per-(element, point)
/// diagnostics. [`PhysicsSuite::None`] short-circuits: no columns are
/// extracted, so the state is untouched bitwise (the extract/insert
/// round-trip would otherwise re-quantize `qdp` through `(q/dp)*dp`).
pub fn apply_physics(
    dy: &Dycore,
    state: &mut State,
    suite: &PhysicsSuite,
    dt: f64,
    sst: f64,
) -> Vec<PhysicsDiag> {
    let nelem = state.nelem();
    if matches!(suite, PhysicsSuite::None) {
        return vec![PhysicsDiag::default(); nelem * NPTS];
    }
    let mut diags = Vec::with_capacity(nelem * NPTS);
    for e in 0..nelem {
        for p in 0..NPTS {
            let mut col = extract_column(dy, state, e, p, sst);
            diags.push(suite.step(&mut col, dt));
            insert_column(dy, state, e, p, &col);
        }
    }
    diags
}

/// Translate a physics column rejection into the dycore's rollback-capable
/// error type (the `RemapError` precedent: a typed error the health
/// machinery can snapshot-restore on).
pub fn physics_health_error(e: usize, p: usize, err: &PhysicsError) -> HealthError {
    let fault = match err {
        PhysicsError::NonFinite { .. } => PhysicsFault::NonFinite,
        PhysicsError::NegativeMoisture { .. } => PhysicsFault::NegativeMoisture,
    };
    HealthError::Physics { elem: e, point: p, fault }
}

/// Checked [`apply_physics`]: every column is vetted before and after its
/// physics step ([`PhysicsSuite::step_checked`]), and a rejected column is
/// **not** inserted — the bad values never reach the state, so neighboring
/// columns stay uncorrupted. Diagnostics are written into the caller's
/// `diags` slice (`nelem * NPTS` long) instead of a fresh `Vec`, so the
/// suite-`None` fast path performs no heap allocation (the ensemble step
/// gate rides on this).
///
/// On `Err` the columns processed *before* the rejected one have already
/// been updated; the caller must treat the state as partially stepped and
/// roll back (exactly what the ensemble driver and the resilient runner
/// do — the same contract as [`Dycore::vertical_remap`]).
///
/// # Errors
/// The first rejected column as [`HealthError::Physics`].
///
/// # Panics
/// Panics if `diags` is shorter than `nelem * NPTS`.
pub fn apply_physics_checked(
    dy: &Dycore,
    state: &mut State,
    suite: &PhysicsSuite,
    dt: f64,
    sst: f64,
    diags: &mut [PhysicsDiag],
) -> Result<(), HealthError> {
    let nelem = state.nelem();
    assert!(diags.len() >= nelem * NPTS, "diags slice too short");
    if matches!(suite, PhysicsSuite::None) {
        diags[..nelem * NPTS].fill(PhysicsDiag::default());
        return Ok(());
    }
    for e in 0..nelem {
        for p in 0..NPTS {
            let mut col = extract_column(dy, state, e, p, sst);
            match suite.step_checked(&mut col, dt) {
                Ok(d) => diags[e * NPTS + p] = d,
                Err(err) => return Err(physics_health_error(e, p, &err)),
            }
            insert_column(dy, state, e, p, &col);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use homme::{Dims, DycoreConfig, HypervisConfig};
    use cubesphere::consts::P0;

    fn test_dycore() -> (Dycore, State) {
        let dims = Dims { nlev: 8, qsize: 3 };
        let cfg = DycoreConfig {
            dt: 300.0,
            hypervis: HypervisConfig::off(),
            limiter: true,
            rsplit: 1,
        };
        let dy = Dycore::new(2, dims, 2000.0, cfg);
        let mut st = dy.zero_state();
        let vert = dy.rhs.vert.clone();
        for es in st.elems_mut() {
            for k in 0..8 {
                for p in 0..NPTS {
                    es.t[k * NPTS + p] = 280.0 + k as f64;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, P0);
                    es.u[k * NPTS + p] = 5.0;
                    es.qdp[(k) * NPTS + p] = 0.005 * es.dp3d[k * NPTS + p]; // qv
                }
            }
        }
        (dy, st)
    }

    #[test]
    fn column_roundtrip_is_identity() {
        let (dy, mut st) = test_dycore();
        let before = st.clone();
        for e in 0..st.nelem() {
            for p in 0..NPTS {
                let col = extract_column(&dy, &st, e, p, 300.0);
                insert_column(&dy, &mut st, e, p, &col);
            }
        }
        assert!(st.max_abs_diff(&before) < 1e-14);
    }

    #[test]
    fn extracted_column_geometry_is_consistent() {
        let (dy, st) = test_dycore();
        let col = extract_column(&dy, &st, 3, 5, 300.0);
        assert_eq!(col.nlev(), 8);
        assert!((col.ps() - P0).abs() < 1e-6);
        assert!((col.p_int[0] - 2000.0).abs() < 1e-9);
        assert_eq!(col.qv[0], 0.005);
        assert_eq!(col.qc[0], 0.0);
        assert_eq!(col.u[2], 5.0);
    }

    #[test]
    fn physics_none_is_identity() {
        let (dy, mut st) = test_dycore();
        let before = st.clone();
        apply_physics(&dy, &mut st, &PhysicsSuite::None, 600.0, 300.0);
        assert!(st.max_abs_diff(&before) < 1e-14);
    }

    #[test]
    fn physics_none_is_bitwise_identity_and_checked_agrees() {
        let (dy, mut st) = test_dycore();
        let before = st.clone();
        apply_physics(&dy, &mut st, &PhysicsSuite::None, 600.0, 300.0);
        assert_eq!(st.max_abs_diff(&before), 0.0, "None suite must not touch bits");
        let mut diags = vec![PhysicsDiag::default(); st.nelem() * NPTS];
        apply_physics_checked(&dy, &mut st, &PhysicsSuite::None, 600.0, 300.0, &mut diags)
            .expect("None suite never rejects");
        assert_eq!(st.max_abs_diff(&before), 0.0);
    }

    #[test]
    fn checked_physics_matches_unchecked_on_healthy_state() {
        let (dy, mut a) = test_dycore();
        let mut b = a.clone();
        let suite = PhysicsSuite::Simple(swphysics::SimplePhysics::default());
        let da = apply_physics(&dy, &mut a, &suite, 1800.0, 302.15);
        let mut db = vec![PhysicsDiag::default(); b.nelem() * NPTS];
        apply_physics_checked(&dy, &mut b, &suite, 1800.0, 302.15, &mut db)
            .expect("healthy state must pass");
        assert_eq!(a.max_abs_diff(&b), 0.0, "checked path must be bitwise identical");
        assert_eq!(da, db);
    }

    #[test]
    fn checked_physics_rejects_poisoned_column_without_inserting_it() {
        let (dy, mut st) = test_dycore();
        let (bad_e, bad_p) = (3, 5);
        st.elem_mut(bad_e).t[2 * NPTS + bad_p] = f64::NAN;
        let before = st.clone();
        let suite = PhysicsSuite::Simple(swphysics::SimplePhysics::default());
        let mut diags = vec![PhysicsDiag::default(); st.nelem() * NPTS];
        let err = apply_physics_checked(&dy, &mut st, &suite, 1800.0, 302.15, &mut diags)
            .expect_err("NaN column must be rejected");
        assert_eq!(
            err,
            HealthError::Physics { elem: bad_e, point: bad_p, fault: PhysicsFault::NonFinite }
        );
        // The rejected column itself was never written back.
        let es = st.elem(bad_e);
        let was = before.elem(bad_e);
        for k in 0..dy.dims.nlev {
            assert_eq!(es.u[k * NPTS + bad_p].to_bits(), was.u[k * NPTS + bad_p].to_bits());
        }
    }

    #[test]
    fn checked_physics_rejects_corrupt_moisture() {
        let (dy, mut st) = test_dycore();
        let dp = st.elem(1).dp3d[4 * NPTS + 7];
        st.elem_mut(1).qdp[4 * NPTS + 7] = -0.5 * dp; // qv = -0.5 kg/kg
        let suite = PhysicsSuite::Simple(swphysics::SimplePhysics::default());
        let mut diags = vec![PhysicsDiag::default(); st.nelem() * NPTS];
        let err = apply_physics_checked(&dy, &mut st, &suite, 1800.0, 302.15, &mut diags)
            .expect_err("corrupt moisture must be rejected");
        assert_eq!(
            err,
            HealthError::Physics { elem: 1, point: 7, fault: PhysicsFault::NegativeMoisture }
        );
    }

    #[test]
    fn simple_physics_moistens_over_warm_ocean() {
        let (dy, mut st) = test_dycore();
        let suite = PhysicsSuite::Simple(swphysics::SimplePhysics::default());
        let qv_before = dy.total_tracer_mass(&st, 0);
        apply_physics(&dy, &mut st, &suite, 1800.0, 302.15);
        let qv_after = dy.total_tracer_mass(&st, 0);
        assert!(qv_after > qv_before, "evaporation must add vapour mass");
    }
}
