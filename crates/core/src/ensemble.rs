//! The ensemble engine: a member-vectorized batch driver (ROADMAP item 4).
//!
//! Climate forecasting runs *ensembles* — the same scenario integrated from
//! N seeded perturbations of one initial condition. Run serially, N members
//! repeat every piece of member-independent work N times: grid generation,
//! DSS assembly-map construction, blocked-operator precompute, and (every
//! step) the hyperviscosity coefficient plan. The ensemble driver holds
//! **one** dycore and steps all members through it in lockstep:
//!
//! * geometry, DSS, blocked operators and scratch are built once and shared;
//! * the hyperviscosity step plan ([`homme::Dycore::apply_hypervis_members`])
//!   is built once per step and every coefficient walk is shared across up
//!   to four members at a time — the kernel's inner loop gains a member
//!   ("lane") dimension, which is where the batched-throughput win lives,
//!   since hyperviscosity dominates the step;
//! * members are admitted from a request queue into free lanes between
//!   steps and retired as they reach their step targets, like a batch
//!   inference server;
//! * a member whose step fails its health checks (vertical remap rejection,
//!   physics column rejection as [`HealthError::Physics`]) is rolled back
//!   to its pre-step snapshot **alone** — the other members never notice.
//!
//! Bitwise contract: member *m* of an N-member batch is bit-for-bit equal
//! to a standalone [`Swcam`]-equivalent run of the same
//! [`ScenarioSpec`] and seed. Each member keeps its own accumulation order
//! through the batched kernels, and the shared per-step plan depends only
//! on grid + configuration, never on member state.
//!
//! The steady-state step loop performs no heap allocation (admission
//! included); only [`Ensemble::submit`] and [`Ensemble::collect`] allocate.

use crate::config::ScenarioSpec;
use crate::coupling::apply_physics_checked;
use crate::model::{build_dycore, build_suite};
use cubesphere::NPTS;
use homme::{Dycore, EnsembleWorkspace, HealthError, MemberKernelPath, State};
use std::collections::VecDeque;
use swphysics::{PhysicsDiag, PhysicsSuite};

/// Batch-driver knobs.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleConfig {
    /// Concurrent member lanes (state + snapshot + hypervis scratch per
    /// lane). Submissions beyond this wait in the queue.
    pub lanes: usize,
    /// Consecutive failed steps a member may roll back before it is marked
    /// [`MemberStatus::Failed`] and retired.
    pub max_rollbacks: usize,
    /// Which member-batched kernel family the shared dycore runs when two
    /// or more members are resident: the lane-transposed tiles (default)
    /// or the pair-wise chunked row kernels kept as the A/B baseline.
    /// Bitwise-identical results either way.
    pub member_kernel_path: MemberKernelPath,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            lanes: 4,
            max_rollbacks: 2,
            member_kernel_path: MemberKernelPath::default(),
        }
    }
}

/// Lifecycle of a member lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberStatus {
    /// Lane is free for admission.
    Empty,
    /// Member is being stepped.
    Running,
    /// Member reached its step target; waiting for [`Ensemble::collect`].
    Finished,
    /// Member exceeded its rollback budget; waiting for collection.
    Failed,
}

/// What a retired member hands back.
#[derive(Debug, Clone)]
pub struct MemberReport {
    /// Submission id ([`Ensemble::submit`] return value).
    pub id: u64,
    /// The member's perturbation seed.
    pub seed: u64,
    /// Terminal status ([`MemberStatus::Finished`] or
    /// [`MemberStatus::Failed`]).
    pub status: MemberStatus,
    /// Coupled steps completed.
    pub steps: usize,
    /// Simulated time, s.
    pub time: f64,
    /// Total single-step rollbacks over the member's life.
    pub rollbacks: usize,
    /// The error behind the most recent rollback, if any.
    pub last_error: Option<HealthError>,
    /// Final prognostic state.
    pub state: State,
    /// Accumulated precipitation per (element, point), kg/m^2.
    pub precip_accum: Vec<f64>,
}

/// Per-step bookkeeping that must be restored on rollback, exactly the
/// values a standalone run would still hold had the step never happened.
#[derive(Debug, Clone, Copy, Default)]
struct SlotMeta {
    steps_done: usize,
    steps_since_remap: usize,
    time: f64,
}

#[derive(Debug)]
struct Slot {
    status: MemberStatus,
    id: u64,
    seed: u64,
    target: usize,
    meta: SlotMeta,
    rollbacks: usize,
    consecutive: usize,
    last_error: Option<HealthError>,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            status: MemberStatus::Empty,
            id: 0,
            seed: 0,
            target: 0,
            meta: SlotMeta::default(),
            rollbacks: 0,
            consecutive: 0,
            last_error: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Submission {
    id: u64,
    seed: u64,
    steps: usize,
}

/// The member-vectorized batch driver. See the module docs for the model.
pub struct Ensemble {
    spec: ScenarioSpec,
    cfg: EnsembleConfig,
    dycore: Dycore,
    suite: PhysicsSuite,
    states: Vec<State>,
    snaps: Vec<State>,
    ens_ws: EnsembleWorkspace,
    slots: Vec<Slot>,
    saved: Vec<SlotMeta>,
    precip: Vec<Vec<f64>>,
    diags: Vec<PhysicsDiag>,
    idx: Vec<usize>,
    queue: VecDeque<Submission>,
    next_id: u64,
}

impl Ensemble {
    /// Build the engine for one scenario: the dycore, the per-lane state /
    /// snapshot / hypervis arenas and all step scratch are allocated here,
    /// once — everything after this is reused.
    ///
    /// # Panics
    /// Panics on an invalid scenario configuration or `lanes == 0`.
    pub fn new(spec: ScenarioSpec, cfg: EnsembleConfig) -> Self {
        assert!(cfg.lanes > 0, "ensemble needs at least one lane");
        spec.config.validate().expect("invalid scenario configuration");
        let mut dycore = build_dycore(&spec.config);
        dycore.member_kernels = cfg.member_kernel_path;
        let suite = build_suite(&spec.config);
        let nelem = dycore.grid.elements.len();
        let npts = nelem * NPTS;
        let states: Vec<State> = (0..cfg.lanes).map(|_| dycore.zero_state()).collect();
        let snaps: Vec<State> = (0..cfg.lanes).map(|_| dycore.zero_state()).collect();
        let ens_ws = EnsembleWorkspace::new(dycore.dims, nelem, cfg.lanes);
        Ensemble {
            spec,
            cfg,
            dycore,
            suite,
            states,
            snaps,
            ens_ws,
            slots: (0..cfg.lanes).map(|_| Slot::empty()).collect(),
            saved: vec![SlotMeta::default(); cfg.lanes],
            precip: (0..cfg.lanes).map(|_| vec![0.0; npts]).collect(),
            diags: vec![PhysicsDiag::default(); npts],
            idx: Vec::with_capacity(cfg.lanes),
            queue: VecDeque::new(),
            next_id: 0,
        }
    }

    /// Queue a member: perturbation seed `seed`, run for `steps` coupled
    /// steps. Returns the submission id. The member starts at the next
    /// [`Ensemble::step`] with a free lane.
    pub fn submit(&mut self, seed: u64, steps: usize) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Submission { id, seed, steps });
        id
    }

    /// The scenario this engine runs.
    pub fn scenario(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The shared dycore (diagnostics such as
    /// [`homme::Dycore::total_mass`]).
    pub fn dycore(&self) -> &Dycore {
        &self.dycore
    }

    /// Members waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Members currently being stepped.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| s.status == MemberStatus::Running).count()
    }

    /// True when nothing is queued and nothing is running (retired members
    /// may still await collection).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active() == 0
    }

    /// Advance every running member by one coupled step; admits queued
    /// members into free lanes first. Allocation-free.
    ///
    /// # Errors
    /// Only batch-wide failures surface here (the shared hyperviscosity
    /// plan rejecting the grid/configuration — member-independent, so it
    /// would fail every member identically). Per-member failures roll back
    /// that member alone and are reported through [`MemberReport`].
    pub fn step(&mut self) -> Result<(), HealthError> {
        self.step_with(&mut |_, _| {})
    }

    /// [`Ensemble::step`] with a test hook run on each running member's
    /// state after its pre-step snapshot is taken (so whatever the hook
    /// writes is undone by a rollback) and before dynamics.
    ///
    /// # Errors
    /// As [`Ensemble::step`].
    pub fn step_with(
        &mut self,
        hook: &mut dyn FnMut(u64, &mut State),
    ) -> Result<(), HealthError> {
        let Ensemble {
            spec,
            cfg,
            dycore,
            suite,
            states,
            snaps,
            ens_ws,
            slots,
            saved,
            precip,
            diags,
            idx,
            queue,
            ..
        } = self;

        // Admission: fill free lanes from the queue. `ScenarioSpec::apply`
        // re-initializes the lane in place (no allocation).
        for (s, slot) in slots.iter_mut().enumerate() {
            if slot.status != MemberStatus::Empty {
                continue;
            }
            let Some(sub) = queue.pop_front() else { break };
            spec.apply(dycore, &mut states[s], sub.seed);
            precip[s].fill(0.0);
            *slot = Slot {
                status: MemberStatus::Running,
                id: sub.id,
                seed: sub.seed,
                target: sub.steps,
                meta: SlotMeta::default(),
                rollbacks: 0,
                consecutive: 0,
                last_error: None,
            };
        }

        idx.clear();
        for (s, slot) in slots.iter().enumerate() {
            if slot.status == MemberStatus::Running {
                idx.push(s);
            }
        }
        if idx.is_empty() {
            return Ok(());
        }

        // Snapshot and hook member by member, then batched dynamics: with
        // the lane path armed and at least two members resident, every RK
        // substep's coefficient walk and DSS assembly walk are shared
        // across up to four members at once (falls back to the per-member
        // step otherwise — bitwise identical either way).
        for &s in idx.iter() {
            snaps[s].copy_from(&states[s]);
            saved[s] = slots[s].meta;
            hook(slots[s].id, &mut states[s]);
        }
        dycore.dynamics_step_members(states, idx, ens_ws);

        // Batched hyperviscosity: one plan build, coefficient walks shared
        // across members. An error here is member-independent
        // (grid/configuration), hence batch-wide.
        let subcycles = dycore.hypervis_subcycles();
        dycore.apply_hypervis_members(states, idx, ens_ws, subcycles)?;

        // Per-member tail: tracers, remap cadence, physics cadence. Any
        // failure rolls this member back to its pre-step snapshot.
        let nsplit = spec.config.nsplit;
        let phys_dt = dycore.cfg.dt * nsplit as f64 * spec.config.planet.reduction();
        for &s in idx.iter() {
            dycore.euler_step_tracers(&mut states[s]);
            let slot = &mut slots[s];
            slot.meta.steps_since_remap += 1;
            let mut verdict = Ok(());
            if slot.meta.steps_since_remap >= dycore.cfg.rsplit {
                verdict = dycore.vertical_remap(&mut states[s]);
                if verdict.is_ok() {
                    slot.meta.steps_since_remap = 0;
                }
            }
            if verdict.is_ok() {
                slot.meta.steps_done += 1;
                slot.meta.time += dycore.cfg.dt;
                if slot.meta.steps_done.is_multiple_of(nsplit) {
                    verdict = apply_physics_checked(
                        dycore,
                        &mut states[s],
                        suite,
                        phys_dt,
                        spec.config.sst,
                        diags,
                    );
                    if verdict.is_ok() {
                        for (acc, d) in precip[s].iter_mut().zip(diags.iter()) {
                            *acc += d.precip;
                        }
                    }
                }
            }
            match verdict {
                Ok(()) => {
                    slot.consecutive = 0;
                    if slot.meta.steps_done >= slot.target {
                        slot.status = MemberStatus::Finished;
                    }
                }
                Err(e) => {
                    // Member-only rollback: restore the pre-step snapshot
                    // and bookkeeping; every other member keeps its step.
                    states[s].copy_from(&snaps[s]);
                    slot.meta = saved[s];
                    slot.rollbacks += 1;
                    slot.consecutive += 1;
                    slot.last_error = Some(e);
                    if slot.consecutive > cfg.max_rollbacks {
                        slot.status = MemberStatus::Failed;
                    }
                }
            }
        }
        Ok(())
    }

    /// Drain retired (finished or failed) members, freeing their lanes for
    /// queued submissions. Reports are sorted by submission id. Allocates
    /// (state clones) — call between armed step windows, not inside them.
    pub fn collect(&mut self) -> Vec<MemberReport> {
        let mut out = Vec::new();
        for (s, slot) in self.slots.iter_mut().enumerate() {
            if !matches!(slot.status, MemberStatus::Finished | MemberStatus::Failed) {
                continue;
            }
            out.push(MemberReport {
                id: slot.id,
                seed: slot.seed,
                status: slot.status,
                steps: slot.meta.steps_done,
                time: slot.meta.time,
                rollbacks: slot.rollbacks,
                last_error: slot.last_error,
                state: self.states[s].clone(),
                precip_accum: self.precip[s].clone(),
            });
            *slot = Slot::empty();
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Run the whole queue to completion — step, retire, admit — and return
    /// every member's report, sorted by submission id.
    ///
    /// # Errors
    /// As [`Ensemble::step`] (batch-wide configuration failures only).
    pub fn run_all(&mut self) -> Result<Vec<MemberReport>, HealthError> {
        let mut out = self.collect();
        while !self.is_idle() {
            self.step()?;
            out.append(&mut self.collect());
        }
        out.sort_by_key(|r| r.id);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioRegistry;

    fn resting_spec() -> ScenarioSpec {
        ScenarioRegistry::builtin().get("resting").expect("builtin").clone()
    }

    #[test]
    fn queue_admits_up_to_lanes_and_backfills() {
        let mut ens =
            Ensemble::new(
                resting_spec(),
                EnsembleConfig { lanes: 2, ..EnsembleConfig::default() },
            );
        let ids: Vec<u64> = (0..3).map(|m| ens.submit(100 + m, 2)).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(ens.pending(), 3);
        ens.step().unwrap();
        assert_eq!(ens.active(), 2, "two lanes admitted");
        assert_eq!(ens.pending(), 1, "third member waits");
        let reports = ens.run_all().unwrap();
        assert_eq!(reports.len(), 3);
        for (r, id) in reports.iter().zip(ids) {
            assert_eq!(r.id, id);
            assert_eq!(r.status, MemberStatus::Finished);
            assert_eq!(r.steps, 2);
        }
        assert!(ens.is_idle());
    }

    #[test]
    fn collect_is_empty_until_members_finish() {
        let mut ens = Ensemble::new(resting_spec(), EnsembleConfig::default());
        ens.submit(7, 3);
        ens.step().unwrap();
        assert!(ens.collect().is_empty(), "member still running");
        ens.step().unwrap();
        ens.step().unwrap();
        let reports = ens.collect();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].steps, 3);
        assert_eq!(reports[0].rollbacks, 0);
        assert!(ens.is_idle());
    }
}
