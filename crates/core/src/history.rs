//! History output: time series and lat–lon snapshots, CAM's `h0`/`h1`
//! streams reduced to dependency-free CSV and ASCII artifacts.

use crate::model::Swcam;
use cubesphere::{LatLonGrid, Regridder, NPTS};
use homme::budgets;
use std::fmt::Write as _;

/// A time-series recorder for scalar diagnostics.
#[derive(Debug, Clone, Default)]
pub struct History {
    rows: Vec<Row>,
}

#[derive(Debug, Clone, PartialEq)]
struct Row {
    days: f64,
    max_wind: f64,
    min_ps: f64,
    dry_mass: f64,
    total_energy: f64,
    kinetic_energy: f64,
    tracer_mass: f64,
    precip_total: f64,
}

impl History {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the model's current diagnostics.
    pub fn sample(&mut self, model: &Swcam) {
        let b = budgets(&model.dycore, &model.state);
        let ps = model.surface_pressure();
        self.rows.push(Row {
            days: model.sim_days(),
            max_wind: model.dycore.max_wind(&model.state),
            min_ps: ps.iter().cloned().fold(f64::MAX, f64::min),
            dry_mass: b.dry_mass,
            total_energy: b.total_energy,
            kinetic_energy: b.kinetic_energy,
            tracer_mass: b.tracer_mass,
            precip_total: model.precip_accum.iter().sum(),
        });
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialize as CSV (header + one row per sample).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "days,max_wind_ms,min_ps_pa,dry_mass_kg,total_energy_j,kinetic_energy_j,tracer_mass_kg,precip_sum_kgm2\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:.6},{:.4},{:.2},{:.6e},{:.6e},{:.6e},{:.6e},{:.4}",
                r.days,
                r.max_wind,
                r.min_ps,
                r.dry_mass,
                r.total_energy,
                r.kinetic_energy,
                r.tracer_mass,
                r.precip_total
            );
        }
        s
    }

    /// Relative drift of the dry-mass budget across the recorded window
    /// (a regression guard for long runs).
    pub fn mass_drift(&self) -> f64 {
        match (self.rows.first(), self.rows.last()) {
            (Some(a), Some(b)) if a.dry_mass != 0.0 => {
                ((b.dry_mass - a.dry_mass) / a.dry_mass).abs()
            }
            _ => 0.0,
        }
    }
}

/// Regrid the lowest-level temperature to a lat–lon raster (the Figure-4
/// map field), returned row-major with the raster.
pub fn surface_temperature_raster(model: &Swcam, nlat: usize, nlon: usize) -> (LatLonGrid, Vec<f64>) {
    let nlev = model.config.nlev;
    let field: Vec<Vec<f64>> = model
        .state
        .elems()
        .map(|es| (0..NPTS).map(|p| es.t[(nlev - 1) * NPTS + p]).collect())
        .collect();
    let raster = LatLonGrid::new(nlat, nlon);
    let rg = Regridder::new(&model.dycore.grid);
    let vals = rg.to_latlon(&field, &raster);
    (raster, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, SuiteChoice};

    fn small_model() -> Swcam {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.nlev = 6;
        cfg.qsize = 0;
        cfg.suite = SuiteChoice::None;
        let mut m = Swcam::new(cfg);
        m.init_with(
            |_, _| cubesphere::P0,
            |lat, _, _, _| (5.0 * lat.cos(), 0.0, 285.0, 0.0),
        );
        m
    }

    #[test]
    fn history_records_and_serializes() {
        let mut model = small_model();
        let mut h = History::new();
        h.sample(&model);
        model.run_steps(2);
        h.sample(&model);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("days,max_wind_ms"));
        assert!(h.mass_drift() < 1e-10, "drift {}", h.mass_drift());
    }

    #[test]
    fn surface_raster_has_physical_values() {
        let model = small_model();
        let (raster, vals) = surface_temperature_raster(&model, 9, 18);
        assert_eq!(vals.len(), 9 * 18);
        assert_eq!(raster.lats.len(), 9);
        assert!(vals.iter().all(|&t| (270.0..300.0).contains(&t)), "{vals:?}");
    }

    #[test]
    fn empty_history_is_benign() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.mass_drift(), 0.0);
        assert_eq!(h.to_csv().lines().count(), 1);
    }
}
