//! The assembled model: dynamical core + physics + diagnostics, behind one
//! builder-style API (the reproduction's equivalent of a configured CAM
//! executable).

use crate::checkpoint::{self, CheckpointError, CheckpointMeta};
use crate::config::{ModelConfig, SuiteChoice};
use crate::coupling::apply_physics_checked;
use cubesphere::{CubedSphere, NPTS};
use homme::{Dims, Dycore, State};
use std::path::{Path, PathBuf};
use swphysics::{GrayRadiation, HeldSuarez, Kessler, PhysicsSuite, SimplePhysics};

/// A running model instance.
pub struct Swcam {
    /// The configuration it was built with.
    pub config: ModelConfig,
    /// The dynamical core.
    pub dycore: Dycore,
    /// The physics suite.
    pub suite: PhysicsSuite,
    /// Prognostic state.
    pub state: State,
    /// Simulated time, s.
    pub time: f64,
    /// Accumulated precipitation per (element, point), kg/m^2.
    pub precip_accum: Vec<f64>,
    phys_diags: Vec<swphysics::PhysicsDiag>,
    steps: usize,
    checkpointing: Option<(usize, PathBuf)>,
}

impl Swcam {
    /// Build a model from a validated configuration; the state starts as a
    /// resting isothermal atmosphere (use the initializers to overwrite).
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: ModelConfig) -> Self {
        config.validate().expect("invalid model configuration");
        let dycore = build_dycore(&config);
        let suite = build_suite(&config);
        let mut state = dycore.zero_state();
        // Resting isothermal default initial condition.
        resting_init(&dycore, config.nlev, &mut state);
        let npts = state.nelem() * NPTS;
        let checkpointing = if config.checkpoint_interval > 0 {
            Some((config.checkpoint_interval, PathBuf::from(&config.checkpoint_dir)))
        } else {
            None
        };
        Swcam {
            config,
            dycore,
            suite,
            state,
            time: 0.0,
            precip_accum: vec![0.0; npts],
            phys_diags: vec![swphysics::PhysicsDiag::default(); npts],
            steps: 0,
            checkpointing,
        }
    }

    /// Initialize the state point-by-point: `f(lat, lon, k, p_mid) ->
    /// (u, v, t, qv)` with hydrostatic `dp3d` from `ps(lat, lon)`.
    pub fn init_with(
        &mut self,
        ps: impl Fn(f64, f64) -> f64,
        f: impl Fn(f64, f64, usize, f64) -> (f64, f64, f64, f64),
    ) {
        init_columns(&self.dycore, self.config.nlev, self.config.qsize, &mut self.state, &ps, &f);
    }

    /// Install surface topography: `phis(lat, lon)` in m^2/s^2 (geopotential
    /// = g * surface height), with the surface pressure re-balanced
    /// hydrostatically (`ps = p0 exp(-phis / (Rd T0))`, the isothermal
    /// balance) so a resting isothermal atmosphere over the terrain starts
    /// near equilibrium. Call after `init_with` (it rebuilds `dp3d`).
    pub fn set_topography(&mut self, phis: impl Fn(f64, f64) -> f64, t0: f64) {
        let nlev = self.config.nlev;
        let vert = self.dycore.rhs.vert.clone();
        let grid_elems = self.dycore.grid.elements.clone();
        for (es, el) in self.state.elems_mut().zip(&grid_elems) {
            for p in 0..NPTS {
                let (lat, lon) = (el.metric[p].lat, el.metric[p].lon);
                let phi = phis(lat, lon);
                es.phis[p] = phi;
                let ps = cubesphere::P0 * (-phi / (cubesphere::RD * t0)).exp();
                for k in 0..nlev {
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                }
            }
        }
    }

    /// Advance one coupled step (dynamics + physics). Physics runs every
    /// `nsplit` dynamics steps with the accumulated interval.
    ///
    /// On a reduced-radius planet the physics interval is multiplied by the
    /// reduction factor ("diabatic scaling", standard DCMIP small-planet
    /// practice): advective timescales contract by `X` while physical rate
    /// constants (evaporation, condensation relaxation) do not, so the
    /// diabatic forcing must be accelerated by `X` to preserve the
    /// dynamics-to-physics balance of the full-size planet.
    pub fn step(&mut self) {
        // Guarded step: free when `dycore.health` is disabled (the
        // default), fail-fast with a typed diagnostic when enabled.
        if let Err(e) = self.dycore.step_checked(&mut self.state) {
            panic!("step {} aborted by health guard: {e}", self.steps + 1);
        }
        self.steps += 1;
        self.time += self.dycore.cfg.dt;
        if self.steps.is_multiple_of(self.config.nsplit) {
            let phys_dt = self.dycore.cfg.dt
                * self.config.nsplit as f64
                * self.config.planet.reduction();
            if let Err(e) = apply_physics_checked(
                &self.dycore,
                &mut self.state,
                &self.suite,
                phys_dt,
                self.config.sst,
                &mut self.phys_diags,
            ) {
                panic!("step {} aborted by physics guard: {e}", self.steps);
            }
            for (acc, d) in self.precip_accum.iter_mut().zip(&self.phys_diags) {
                *acc += d.precip;
            }
        }
        if let Some((interval, dir)) = &self.checkpointing {
            if self.steps.is_multiple_of(*interval) {
                let path = dir.join(format!("ckpt_{:08}.swckpt", self.steps));
                std::fs::create_dir_all(dir).ok();
                if let Err(e) = self.write_checkpoint(&path) {
                    eprintln!("warning: checkpoint at step {} failed: {e}", self.steps);
                }
            }
        }
    }

    /// Run `n` steps.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Write checkpoints every `interval` coupled steps into `dir`
    /// (overrides the [`ModelConfig`] knobs; `interval = 0` disables).
    pub fn enable_checkpointing(&mut self, interval: usize, dir: impl Into<PathBuf>) {
        self.checkpointing =
            if interval > 0 { Some((interval, dir.into())) } else { None };
    }

    /// Snapshot the prognostic state + step/time/remap-phase metadata to
    /// `path` ([`checkpoint`] codec; restoring is bitwise-exact).
    pub fn write_checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        let meta = CheckpointMeta {
            step: self.steps as u64,
            remap_phase: self.dycore.remap_phase() as u32,
            rank: 0,
            epoch: 0,
            time: self.time,
        };
        checkpoint::write_file(path, &self.state, &meta)
    }

    /// Restore state, step count, simulated time and remap phase from a
    /// checkpoint written by [`Swcam::write_checkpoint`]. The model must
    /// have been built with the same configuration; continuing from here
    /// reproduces the original run bitwise (physics cadence included:
    /// `nsplit` divides into the restored step count exactly as it did in
    /// the writing run).
    pub fn restore_checkpoint(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let meta = checkpoint::read_file(path, &mut self.state)?;
        self.steps = meta.step as usize;
        self.time = meta.time;
        self.dycore.set_remap_phase(meta.remap_phase as usize);
        Ok(())
    }

    /// Coupled steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps
    }

    /// Simulated days so far.
    pub fn sim_days(&self) -> f64 {
        self.time / 86_400.0
    }

    /// Surface pressure field per (element, point).
    pub fn surface_pressure(&self) -> Vec<f64> {
        let nlev = self.config.nlev;
        let ptop = self.dycore.rhs.vert.ptop();
        self.state
            .elems()
            .flat_map(|es| {
                (0..NPTS).map(move |p| {
                    ptop + (0..nlev).map(|k| es.dp3d[k * NPTS + p]).sum::<f64>()
                })
            })
            .collect()
    }

    /// Lowest-level temperature per (element, point) — the "surface
    /// temperature" diagnostic of the Figure-4 climatology.
    pub fn surface_temperature(&self) -> Vec<f64> {
        let nlev = self.config.nlev;
        self.state
            .elems()
            .flat_map(|es| (0..NPTS).map(move |p| es.t[(nlev - 1) * NPTS + p]))
            .collect()
    }

    /// Maximum surface-level wind speed, m/s.
    pub fn max_surface_wind(&self) -> f64 {
        let nlev = self.config.nlev;
        let mut m: f64 = 0.0;
        for es in self.state.elems() {
            for p in 0..NPTS {
                let i = (nlev - 1) * NPTS + p;
                m = m.max((es.u[i] * es.u[i] + es.v[i] * es.v[i]).sqrt());
            }
        }
        m
    }

    /// Latitude/longitude (radians) of every (element, point) column.
    pub fn column_coords(&self) -> Vec<(f64, f64)> {
        self.dycore
            .grid
            .elements
            .iter()
            .flat_map(|el| el.metric.iter().map(|m| (m.lat, m.lon)))
            .collect()
    }
}

/// The dynamical core implied by a namelist (grid + dims + vertical grid +
/// kernel path). Shared by [`Swcam::new`] and the ensemble driver so both
/// paths run on an identically-constructed dycore.
pub fn build_dycore(config: &ModelConfig) -> Dycore {
    let dims = Dims { nlev: config.nlev, qsize: config.qsize };
    let grid = CubedSphere::new_planet(config.ne, config.planet.radius, config.planet.omega);
    Dycore::from_grid(grid, dims, config.ptop, config.dycore_config())
}

/// The physics suite implied by a namelist (shared by [`Swcam::new`] and
/// the ensemble driver).
pub fn build_suite(config: &ModelConfig) -> PhysicsSuite {
    match config.suite {
        SuiteChoice::None => PhysicsSuite::None,
        SuiteChoice::HeldSuarez => PhysicsSuite::HeldSuarez(HeldSuarez::default()),
        SuiteChoice::Simple => {
            let sp = SimplePhysics { sst: config.sst, ..Default::default() };
            PhysicsSuite::Simple(sp)
        }
        SuiteChoice::Full => {
            let sp = SimplePhysics { sst: config.sst, ..Default::default() };
            PhysicsSuite::Full {
                simple: sp,
                convection: swphysics::BettsMiller::default(),
                kessler: Kessler::default(),
                radiation: GrayRadiation::default(),
            }
        }
    }
}

/// Zero every prognostic arena of `state` in place (no reallocation — the
/// ensemble driver re-initializes retired member lanes through this).
pub fn reset_state(state: &mut State) {
    state.u.fill(0.0);
    state.v.fill(0.0);
    state.t.fill(0.0);
    state.dp3d.fill(0.0);
    state.qdp.fill(0.0);
    state.phis.fill(0.0);
}

/// The resting isothermal default initial condition ([`Swcam::new`]'s
/// baseline, shared with the scenario registry): T = 285 K everywhere,
/// hydrostatic reference thickness at `P0`, winds and tracers untouched.
pub fn resting_init(dycore: &Dycore, nlev: usize, state: &mut State) {
    let vert = &dycore.rhs.vert;
    for es in state.elems_mut() {
        for k in 0..nlev {
            for p in 0..NPTS {
                es.t[k * NPTS + p] = 285.0;
                es.dp3d[k * NPTS + p] = vert.dp_ref(k, cubesphere::P0);
            }
        }
    }
}

/// Column-wise analytic initialization on a bare dycore + state pair (the
/// free-function form of [`Swcam::init_with`], so scenario initializers can
/// run against an ensemble member lane without building a model): `f(lat,
/// lon, k, p_mid) -> (u, v, t, qv)` with hydrostatic `dp3d` from `ps(lat,
/// lon)`. Performs no heap allocation.
pub fn init_columns(
    dycore: &Dycore,
    nlev: usize,
    qsize: usize,
    state: &mut State,
    ps: &dyn Fn(f64, f64) -> f64,
    f: &dyn Fn(f64, f64, usize, f64) -> (f64, f64, f64, f64),
) {
    let vert = &dycore.rhs.vert;
    let grid_elems = &dycore.grid.elements;
    for (es, el) in state.elems_mut().zip(grid_elems.iter()) {
        for p in 0..NPTS {
            let (lat, lon) = (el.metric[p].lat, el.metric[p].lon);
            let psv = ps(lat, lon);
            for k in 0..nlev {
                let dp = vert.dp_ref(k, psv);
                es.dp3d[k * NPTS + p] = dp;
                let pm = vert.p_mid(k, psv);
                let (u, v, t, qv) = f(lat, lon, k, pm);
                es.u[k * NPTS + p] = u;
                es.v[k * NPTS + p] = v;
                es.t[k * NPTS + p] = t;
                if qsize > 0 {
                    es.qdp[k * NPTS + p] = qv * dp;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Planet;

    #[test]
    fn default_model_is_stable_dry() {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.suite = SuiteChoice::None;
        cfg.qsize = 0;
        cfg.nlev = 6;
        let mut model = Swcam::new(cfg);
        model.run_steps(3);
        assert!(model.sim_days() > 0.0);
        assert!(model.dycore.max_wind(&model.state) < 1.0);
    }

    #[test]
    fn moist_model_runs_and_accumulates_precip_fields() {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.nlev = 8;
        cfg.suite = SuiteChoice::Simple;
        let mut model = Swcam::new(cfg);
        // Moist, warm lower atmosphere over a warm ocean.
        model.init_with(
            |_, _| cubesphere::P0,
            |lat, _, _k, pm| {
                let t = 300.0 * (pm / cubesphere::P0).powf(0.19).max(0.6);
                let qv = 0.015 * (pm / cubesphere::P0).powi(3);
                (5.0 * lat.cos(), 0.0, t.max(200.0), qv)
            },
        );
        model.run_steps(3);
        assert!(model.max_surface_wind() < 100.0, "blow-up");
        let ps = model.surface_pressure();
        assert!(ps.iter().all(|&p| p > 9.0e4 && p < 1.1e5));
        assert_eq!(model.precip_accum.len(), ps.len());
        let ts = model.surface_temperature();
        assert!(ts.iter().all(|&t| t > 230.0 && t < 330.0));
    }

    #[test]
    fn small_planet_model_builds_and_steps() {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.planet = Planet::small(50.0);
        cfg.nlev = 6;
        cfg.suite = SuiteChoice::None;
        cfg.qsize = 0;
        let mut model = Swcam::new(cfg);
        // dt shrank by the reduction factor.
        assert!(model.dycore.cfg.dt < 100.0);
        model.run_steps(2);
        assert!(model.dycore.max_wind(&model.state).is_finite());
    }

    #[test]
    fn coords_cover_the_sphere() {
        let mut cfg = ModelConfig::for_ne(2);
        cfg.suite = SuiteChoice::None;
        cfg.qsize = 0;
        cfg.nlev = 4;
        let model = Swcam::new(cfg);
        let coords = model.column_coords();
        assert_eq!(coords.len(), 24 * NPTS);
        let (mut north, mut south) = (false, false);
        for (lat, _) in coords {
            if lat > 0.7 {
                north = true;
            }
            if lat < -0.7 {
                south = true;
            }
        }
        assert!(north && south);
    }
}
