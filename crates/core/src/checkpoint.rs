//! Compact binary checkpoint/restart for the flat SoA [`State`].
//!
//! At peta-scale the mean time between node failures is shorter than a
//! long climate integration, so the production answer is periodic
//! snapshots plus rollback. The format here is deliberately dumb and
//! exact: a fixed header (dims, step, remap phase, rank, rollback epoch,
//! simulated time), the six state arenas as raw little-endian `f64`, and
//! a trailing CRC32. Restoring a snapshot reproduces the run **bitwise**
//! (enforced by the `fault_injection` integration tests): no text
//! round-tripping, no compression, no float formatting.
//!
//! The same codec serves both drivers: the serial [`Swcam`](crate::Swcam)
//! writes files on a step interval, the distributed resilient driver
//! ([`crate::resilient`]) keeps one in-memory snapshot per rank and
//! restores it when a step attempt is aborted.

use homme::State;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::OnceLock;

/// Magic + version prefix of every checkpoint record.
pub const MAGIC: &[u8; 8] = b"SWCKPT01";

/// Everything a restart needs besides the prognostic arenas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointMeta {
    /// Model step the snapshot was taken after.
    pub step: u64,
    /// Dynamics steps since the last vertical remap
    /// ([`homme::Dycore::remap_phase`]) — restoring it keeps the remap
    /// cadence bitwise-identical across a restart.
    pub remap_phase: u32,
    /// Owning rank (0 for the serial driver).
    pub rank: u32,
    /// Rollback epoch the rank was in.
    pub epoch: u64,
    /// Simulated time, s.
    pub time: f64,
}

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Record does not start with [`MAGIC`].
    BadMagic,
    /// Record shorter than its header + payload claims.
    Truncated,
    /// Snapshot dimensions do not match the receiving state.
    DimsMismatch {
        /// What the record carries (nlev, qsize, nelem).
        found: (u32, u32, u64),
        /// What the receiving state requires.
        expected: (u32, u32, u64),
    },
    /// Trailing CRC32 does not match the record contents.
    CrcMismatch,
    /// Filesystem error (message only; `std::io::Error` is not `Clone`).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint record truncated"),
            CheckpointError::DimsMismatch { found, expected } => write!(
                f,
                "checkpoint dims (nlev, qsize, nelem) = {found:?} but state needs {expected:?}"
            ),
            CheckpointError::CrcMismatch => write!(f, "checkpoint CRC mismatch (corrupt record)"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn push_arena(out: &mut Vec<u8>, arena: &[f64]) {
    out.reserve(arena.len() * 8);
    for &x in arena {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Serialize `state` + `meta` into `out` (cleared first). Reuses `out`'s
/// capacity, so the resilient driver's periodic in-memory snapshots are
/// allocation-free at steady state.
pub fn encode_into(state: &State, meta: &CheckpointMeta, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(state.dims.nlev as u32).to_le_bytes());
    out.extend_from_slice(&(state.dims.qsize as u32).to_le_bytes());
    out.extend_from_slice(&(state.nelem() as u64).to_le_bytes());
    out.extend_from_slice(&meta.step.to_le_bytes());
    out.extend_from_slice(&meta.remap_phase.to_le_bytes());
    out.extend_from_slice(&meta.rank.to_le_bytes());
    out.extend_from_slice(&meta.epoch.to_le_bytes());
    out.extend_from_slice(&meta.time.to_le_bytes());
    push_arena(out, &state.u);
    push_arena(out, &state.v);
    push_arena(out, &state.t);
    push_arena(out, &state.dp3d);
    push_arena(out, &state.qdp);
    push_arena(out, &state.phis);
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Serialize `state` + `meta` into a fresh buffer.
pub fn encode(state: &State, meta: &CheckpointMeta) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(state, meta, &mut out);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn arena(&mut self, dst: &mut [f64]) -> Result<(), CheckpointError> {
        let raw = self.take(dst.len() * 8)?;
        for (x, chunk) in dst.iter_mut().zip(raw.chunks_exact(8)) {
            *x = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        Ok(())
    }
}

/// Restore `state` bitwise from `bytes`, returning the snapshot metadata.
/// `state` must already be sized for the snapshot's dimensions (the codec
/// never reallocates the arenas).
pub fn decode(bytes: &[u8], state: &mut State) -> Result<CheckpointMeta, CheckpointError> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(CheckpointError::CrcMismatch);
    }
    let mut r = Reader { bytes: payload, pos: MAGIC.len() };
    let nlev = r.u32()?;
    let qsize = r.u32()?;
    let nelem = r.u64()?;
    let expected = (state.dims.nlev as u32, state.dims.qsize as u32, state.nelem() as u64);
    if (nlev, qsize, nelem) != expected {
        return Err(CheckpointError::DimsMismatch { found: (nlev, qsize, nelem), expected });
    }
    let meta = CheckpointMeta {
        step: r.u64()?,
        remap_phase: r.u32()?,
        rank: r.u32()?,
        epoch: r.u64()?,
        time: r.f64()?,
    };
    r.arena(&mut state.u)?;
    r.arena(&mut state.v)?;
    r.arena(&mut state.t)?;
    r.arena(&mut state.dp3d)?;
    r.arena(&mut state.qdp)?;
    r.arena(&mut state.phis)?;
    if r.pos != payload.len() {
        return Err(CheckpointError::Truncated);
    }
    Ok(meta)
}

/// Write one snapshot to `path` (atomic enough for a reproduction: write
/// to `<path>.tmp`, then rename).
pub fn write_file(
    path: &Path,
    state: &State,
    meta: &CheckpointMeta,
) -> Result<(), CheckpointError> {
    let bytes = encode(state, meta);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Restore `state` from the snapshot at `path`.
pub fn read_file(path: &Path, state: &mut State) -> Result<CheckpointMeta, CheckpointError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homme::Dims;

    fn sample_state() -> State {
        let dims = Dims { nlev: 3, qsize: 2 };
        let mut st = State::zeros(dims, 4);
        for (i, x) in st.u.iter_mut().enumerate() {
            *x = (i as f64).sin() * 1.0e-3 + i as f64;
        }
        for (i, x) in st.v.iter_mut().enumerate() {
            *x = -(i as f64) * 0.5;
        }
        for (i, x) in st.t.iter_mut().enumerate() {
            *x = 250.0 + (i % 17) as f64;
        }
        for (i, x) in st.dp3d.iter_mut().enumerate() {
            *x = 100.0 + (i % 5) as f64;
        }
        for (i, x) in st.qdp.iter_mut().enumerate() {
            *x = 1.0e-3 * (i as f64 + 0.25);
        }
        for (i, x) in st.phis.iter_mut().enumerate() {
            *x = (i as f64) * 9.81;
        }
        st
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let st = sample_state();
        let meta =
            CheckpointMeta { step: 42, remap_phase: 2, rank: 3, epoch: 1, time: 12_600.5 };
        let bytes = encode(&st, &meta);
        let mut restored = State::zeros(st.dims, st.nelem());
        let got = decode(&bytes, &mut restored).expect("decode");
        assert_eq!(got, meta);
        assert_eq!(restored.max_abs_diff(&st), 0.0);
        assert_eq!(restored.u, st.u);
        assert_eq!(restored.phis, st.phis);
    }

    #[test]
    fn corruption_is_detected() {
        let st = sample_state();
        let meta = CheckpointMeta { step: 1, remap_phase: 0, rank: 0, epoch: 0, time: 0.0 };
        let mut bytes = encode(&st, &meta);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut restored = State::zeros(st.dims, st.nelem());
        assert_eq!(decode(&bytes, &mut restored), Err(CheckpointError::CrcMismatch));
    }

    #[test]
    fn wrong_dims_and_truncation_are_rejected() {
        let st = sample_state();
        let meta = CheckpointMeta { step: 1, remap_phase: 0, rank: 0, epoch: 0, time: 0.0 };
        let bytes = encode(&st, &meta);

        let mut small = State::zeros(st.dims, 2);
        assert!(matches!(
            decode(&bytes, &mut small),
            Err(CheckpointError::DimsMismatch { .. })
        ));

        let mut restored = State::zeros(st.dims, st.nelem());
        assert_eq!(decode(b"NOTACKPTxxxx", &mut restored), Err(CheckpointError::BadMagic));
        // Blunt truncation loses the trailing CRC, so it reads as corrupt.
        assert_eq!(
            decode(&bytes[..bytes.len() / 2], &mut restored),
            Err(CheckpointError::CrcMismatch)
        );
        // A record cut short but re-CRC'd (e.g. a partial write that was
        // then checksummed) is caught by the payload-length check.
        let mut cut = bytes[..bytes.len() - 4 - 64].to_vec();
        let crc = crc32(&cut);
        cut.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&cut, &mut restored), Err(CheckpointError::Truncated));
    }

    #[test]
    fn file_roundtrip() {
        let st = sample_state();
        let meta =
            CheckpointMeta { step: 7, remap_phase: 1, rank: 0, epoch: 2, time: 3600.0 };
        let dir = std::env::temp_dir().join("swckpt_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("roundtrip.swckpt");
        write_file(&path, &st, &meta).expect("write");
        let mut restored = State::zeros(st.dims, st.nelem());
        let got = read_file(&path, &mut restored).expect("read");
        assert_eq!(got, meta);
        assert_eq!(restored.max_abs_diff(&st), 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encode_into_reuses_capacity() {
        let st = sample_state();
        let meta = CheckpointMeta { step: 0, remap_phase: 0, rank: 0, epoch: 0, time: 0.0 };
        let mut buf = Vec::new();
        encode_into(&st, &meta, &mut buf);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        encode_into(&st, &meta, &mut buf);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr, "steady-state snapshot must not reallocate");
    }
}
