//! Model configuration ("namelist") and the scenario registry.
//!
//! The registry (ROADMAP item 4) turns the named workloads of this
//! reproduction — aquaplanet, Held–Suarez, the NGGPS-style baroclinic
//! benchmark, the Katrina hindcast (registered by the `katrina` crate) —
//! into **data**: a [`ScenarioSpec`] is a [`ModelConfig`] plus an
//! initial-condition builder plus a seeded-perturbation amplitude, so a new
//! workload is a registry entry, not code, and the ensemble driver can
//! admit members of any scenario through one interface.

use crate::model::{init_columns, reset_state, resting_init, Swcam};
use homme::{Dycore, DycoreConfig, HypervisConfig, State};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Planet geometry: Earth by default; small-planet runs divide the radius
/// by `reduction` and multiply the rotation rate by the same factor
/// (DCMIP convention), keeping the dynamical regime while shrinking the
/// horizontal scale so coarse meshes reach storm-resolving *effective*
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Planet {
    /// Radius, m.
    pub radius: f64,
    /// Rotation rate, 1/s.
    pub omega: f64,
}

impl Default for Planet {
    fn default() -> Self {
        Planet { radius: cubesphere::EARTH_RADIUS, omega: cubesphere::OMEGA }
    }
}

impl Planet {
    /// Reduced-radius planet with reduction factor `x`.
    pub fn small(x: f64) -> Self {
        assert!(x >= 1.0, "reduction factor must be >= 1");
        Planet { radius: cubesphere::EARTH_RADIUS / x, omega: cubesphere::OMEGA * x }
    }

    /// The reduction factor relative to Earth.
    pub fn reduction(&self) -> f64 {
        cubesphere::EARTH_RADIUS / self.radius
    }
}

/// Physics suite selector (serializable namelist mirror of
/// [`swphysics::PhysicsSuite`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteChoice {
    /// Adiabatic dynamical core only.
    None,
    /// Held–Suarez dry climate forcing.
    HeldSuarez,
    /// Reed–Jablonowski simple physics.
    Simple,
    /// Simple physics + Kessler + gray radiation.
    Full,
}

/// Complete model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Elements per cube edge.
    pub ne: usize,
    /// Vertical layers.
    pub nlev: usize,
    /// Advected tracers (>= 3 when moist physics is on: qv, qc, qr).
    pub qsize: usize,
    /// Model-top pressure, Pa.
    pub ptop: f64,
    /// Dynamics time step, s.
    pub dt: f64,
    /// Physics suite.
    pub suite: SuiteChoice,
    /// Planet geometry.
    pub planet: Planet,
    /// Apply the tracer limiter.
    pub limiter: bool,
    /// Hyperviscosity coefficient override (None = CAM scaling for `ne`).
    pub nu: Option<f64>,
    /// Physics calls every `nsplit` dynamics steps.
    pub nsplit: usize,
    /// Sea-surface temperature for moist suites, K.
    pub sst: f64,
    /// Write a checkpoint file every this many coupled steps (0 = off).
    pub checkpoint_interval: usize,
    /// Directory checkpoint files go to (created on first write).
    pub checkpoint_dir: String,
}

impl ModelConfig {
    /// Baseline configuration for resolution `ne`.
    pub fn for_ne(ne: usize) -> Self {
        ModelConfig {
            ne,
            nlev: 20,
            qsize: 3,
            ptop: 2000.0,
            dt: 300.0 * 30.0 / ne as f64,
            suite: SuiteChoice::Simple,
            planet: Planet::default(),
            limiter: true,
            nu: None,
            nsplit: 1,
            sst: 302.15,
            checkpoint_interval: 0,
            checkpoint_dir: "checkpoints".into(),
        }
    }

    /// The dycore configuration implied by this namelist. On a reduced
    /// planet both dt and the hyperviscosity shrink with the reduction
    /// factor (horizontal scales contract by `x`, so `nu ~ dx^3.2`).
    pub fn dycore_config(&self) -> DycoreConfig {
        let x = self.planet.reduction();
        let mut hv = HypervisConfig::for_ne(self.ne);
        hv.nu /= x.powf(3.2);
        hv.nu_p = hv.nu;
        if let Some(nu) = self.nu {
            hv.nu = nu;
            hv.nu_p = nu;
        }
        DycoreConfig { dt: self.dt / x, hypervis: hv, limiter: self.limiter, rsplit: 1 }
    }

    /// Moist suites require the three water tracers.
    pub fn validate(&self) -> Result<(), String> {
        if matches!(self.suite, SuiteChoice::Simple | SuiteChoice::Full) && self.qsize < 3 {
            return Err(format!(
                "suite {:?} needs qsize >= 3 (qv, qc, qr), got {}",
                self.suite, self.qsize
            ));
        }
        if self.nlev == 0 || self.ne == 0 {
            return Err("ne and nlev must be positive".into());
        }
        if self.ptop <= 0.0 || self.ptop >= cubesphere::P0 {
            return Err(format!("ptop {} out of range", self.ptop));
        }
        Ok(())
    }
}

/// An initial-condition builder: writes a scenario's analytic initial
/// state onto a bare `(dycore, state)` pair. Must not allocate — ensemble
/// member admission runs inside the zero-alloc step gate.
pub type InitFn = dyn Fn(&Dycore, &ModelConfig, &mut State) + Send + Sync;

/// A named workload as data: configuration + initial-condition builder +
/// the amplitude of the seeded per-member temperature perturbation that
/// distinguishes ensemble members.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Registry key (kebab-case).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The model configuration this scenario runs with. Callers may clone
    /// and shrink it (fewer levels, coarser `ne`) for tests and smoke
    /// benches; the initial condition is resolution-independent.
    pub config: ModelConfig,
    /// Seeded temperature-perturbation amplitude, K (0 = members are
    /// identical apart from what the initializer does with the seed).
    pub perturb_t: f64,
    /// Initial-condition builder, run after the resting baseline.
    pub init: Arc<InitFn>,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .field("config", &self.config)
            .field("perturb_t", &self.perturb_t)
            .finish_non_exhaustive()
    }
}

impl ScenarioSpec {
    /// Write this scenario's seeded initial condition onto `state` in
    /// place: zero, resting baseline, the scenario initializer, then the
    /// seeded temperature perturbation. Allocation-free, so ensemble
    /// admission can re-initialize a retired member lane mid-run.
    ///
    /// The standalone [`ScenarioSpec::build_model`] path runs this exact
    /// function, which is what makes member *m* of an ensemble bitwise
    /// equal to a standalone run with the same seed.
    pub fn apply(&self, dycore: &Dycore, state: &mut State, seed: u64) {
        reset_state(state);
        resting_init(dycore, self.config.nlev, state);
        (self.init)(dycore, &self.config, state);
        if self.perturb_t != 0.0 {
            perturb_temperature(state, seed, self.perturb_t);
        }
    }

    /// Build a standalone [`Swcam`] of this scenario with member seed
    /// `seed` — the serial baseline an ensemble member is pinned against.
    pub fn build_model(&self, seed: u64) -> Swcam {
        let mut model = Swcam::new(self.config.clone());
        let Swcam { dycore, state, .. } = &mut model;
        self.apply(dycore, state, seed);
        model
    }
}

/// SplitMix64: the standard 64-bit finalizer-based generator — one
/// multiply-xor-shift chain per index, no state, so perturbations are
/// random-access (member seed + arena index -> value) and identical
/// between the standalone and ensemble paths by construction.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform draw in `(-1, 1)` for `(seed, index)`.
pub fn seeded_unit(seed: u64, index: u64) -> f64 {
    let r = splitmix64(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    ((r >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// Add the seeded member perturbation to the temperature arena:
/// `t[i] += amp * seeded_unit(seed, i)`. Allocation-free.
pub fn perturb_temperature(state: &mut State, seed: u64, amp: f64) {
    for (i, t) in state.t.iter_mut().enumerate() {
        *t += amp * seeded_unit(seed, i as u64);
    }
}

/// The scenario registry: named [`ScenarioSpec`]s, preloaded with the
/// built-in workloads and extensible by downstream crates (the `katrina`
/// crate registers the hindcast scenario).
pub struct ScenarioRegistry {
    entries: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ScenarioRegistry { entries: Vec::new() }
    }

    /// Registry preloaded with the built-in scenarios: `resting`,
    /// `aquaplanet`, `held-suarez`, `nggps`.
    pub fn builtin() -> Self {
        let mut reg = ScenarioRegistry::new();

        // Adiabatic resting atmosphere: the dycore-only smoke workload.
        let mut resting = ModelConfig::for_ne(2);
        resting.nlev = 6;
        resting.qsize = 0;
        resting.suite = SuiteChoice::None;
        reg.register(ScenarioSpec {
            name: "resting",
            summary: "adiabatic resting isothermal atmosphere (dycore only)",
            config: resting,
            perturb_t: 0.5,
            init: Arc::new(|_, _, _| {}),
        });

        // Aquaplanet: moist lower atmosphere over a uniform warm ocean,
        // Reed–Jablonowski simple physics.
        let aqua = ModelConfig::for_ne(4);
        reg.register(ScenarioSpec {
            name: "aquaplanet",
            summary: "moist aquaplanet with simple physics over uniform SST",
            config: aqua,
            perturb_t: 0.1,
            init: Arc::new(|dy, cfg, st| {
                init_columns(
                    dy,
                    cfg.nlev,
                    cfg.qsize,
                    st,
                    &|_, _| cubesphere::P0,
                    &|lat, _, _k, pm| {
                        let t = (300.0 * (pm / cubesphere::P0).powf(0.19).max(0.6)).max(200.0);
                        let qv = 0.015 * (pm / cubesphere::P0).powi(3);
                        (5.0 * lat.cos(), 0.0, t, qv)
                    },
                );
            }),
        });

        // Held–Suarez: dry climatology forcing, spun up from a perturbed
        // resting state (the perturbation breaks the symmetry).
        let mut hs = ModelConfig::for_ne(4);
        hs.qsize = 0;
        hs.suite = SuiteChoice::HeldSuarez;
        reg.register(ScenarioSpec {
            name: "held-suarez",
            summary: "Held–Suarez dry climate forcing from a perturbed rest state",
            config: hs,
            perturb_t: 1.0,
            init: Arc::new(|_, _, _| {}),
        });

        // NGGPS-style baroclinic benchmark: deeper column, a mid-latitude
        // jet in thermal-wind-ish balance with a zonal temperature wave to
        // trigger baroclinic growth.
        let mut nggps = ModelConfig::for_ne(8);
        nggps.nlev = 26;
        nggps.qsize = 4;
        reg.register(ScenarioSpec {
            name: "nggps",
            summary: "NGGPS-style baroclinic wave benchmark (jet + thermal wave)",
            config: nggps,
            perturb_t: 0.01,
            init: Arc::new(|dy, cfg, st| {
                init_columns(
                    dy,
                    cfg.nlev,
                    cfg.qsize,
                    st,
                    &|_, _| cubesphere::P0,
                    &|lat, lon, _k, pm| {
                        let sigma = pm / cubesphere::P0;
                        let u = 20.0 * lat.cos() * (1.0 - sigma).max(0.0).sqrt();
                        let t = (300.0 * sigma.powf(0.19).max(0.6)).max(200.0)
                            + 2.0 * (3.0 * lon).sin() * lat.cos();
                        let qv = 0.01 * sigma.powi(3);
                        (u, 0.0, t, qv)
                    },
                );
            }),
        });

        reg
    }

    /// Add (or replace, by name) a scenario.
    pub fn register(&mut self, spec: ScenarioSpec) {
        if let Some(slot) = self.entries.iter_mut().find(|s| s.name == spec.name) {
            *slot = spec;
        } else {
            self.entries.push(spec);
        }
    }

    /// Look a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.entries.iter().find(|s| s.name == name)
    }

    /// All registered scenarios, registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.entries.iter()
    }

    /// Registered scenario names, registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name).collect()
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        ScenarioRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_planet_scales_radius_and_omega() {
        let p = Planet::small(10.0);
        assert!((p.radius - cubesphere::EARTH_RADIUS / 10.0).abs() < 1.0);
        assert!((p.omega - cubesphere::OMEGA * 10.0).abs() < 1e-12);
        assert!((p.reduction() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dycore_config_scales_with_reduction() {
        let mut cfg = ModelConfig::for_ne(8);
        let dt_earth = cfg.dycore_config().dt;
        let nu_earth = cfg.dycore_config().hypervis.nu;
        cfg.planet = Planet::small(20.0);
        let dc = cfg.dycore_config();
        assert!((dc.dt - dt_earth / 20.0).abs() < 1e-9);
        assert!(dc.hypervis.nu < nu_earth / 1e3);
    }

    #[test]
    fn validation_catches_missing_tracers() {
        let mut cfg = ModelConfig::for_ne(4);
        cfg.qsize = 1;
        assert!(cfg.validate().is_err());
        cfg.suite = SuiteChoice::HeldSuarez;
        assert!(cfg.validate().is_ok());
        cfg.ptop = -5.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_config_is_valid() {
        for ne in [4usize, 30, 120] {
            let cfg = ModelConfig::for_ne(ne);
            assert!(cfg.validate().is_ok(), "ne = {ne}");
            assert!(cfg.dycore_config().dt > 0.0);
        }
    }

    #[test]
    fn builtin_scenarios_are_valid_and_named() {
        let reg = ScenarioRegistry::builtin();
        let names = reg.names();
        for expect in ["resting", "aquaplanet", "held-suarez", "nggps"] {
            assert!(names.contains(&expect), "missing scenario {expect}");
        }
        for spec in reg.iter() {
            spec.config.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(spec.perturb_t >= 0.0);
        }
        assert!(reg.get("no-such-scenario").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut reg = ScenarioRegistry::builtin();
        let n = reg.names().len();
        let mut spec = reg.get("resting").unwrap().clone();
        spec.perturb_t = 9.0;
        reg.register(spec);
        assert_eq!(reg.names().len(), n, "replace must not grow the registry");
        assert_eq!(reg.get("resting").unwrap().perturb_t, 9.0);
    }

    #[test]
    fn seeded_perturbation_is_deterministic_and_seed_sensitive() {
        let a1 = seeded_unit(7, 42);
        let a2 = seeded_unit(7, 42);
        assert_eq!(a1.to_bits(), a2.to_bits());
        assert!(a1 > -1.0 && a1 < 1.0);
        assert_ne!(seeded_unit(7, 42).to_bits(), seeded_unit(8, 42).to_bits());
        assert_ne!(seeded_unit(7, 42).to_bits(), seeded_unit(7, 43).to_bits());
        // Roughly centered: the mean over many draws stays small.
        let mean: f64 =
            (0..10_000).map(|i| seeded_unit(3, i)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "biased perturbation: mean {mean}");
    }
}
