//! Model configuration ("namelist").

use homme::{DycoreConfig, HypervisConfig};
use serde::{Deserialize, Serialize};

/// Planet geometry: Earth by default; small-planet runs divide the radius
/// by `reduction` and multiply the rotation rate by the same factor
/// (DCMIP convention), keeping the dynamical regime while shrinking the
/// horizontal scale so coarse meshes reach storm-resolving *effective*
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Planet {
    /// Radius, m.
    pub radius: f64,
    /// Rotation rate, 1/s.
    pub omega: f64,
}

impl Default for Planet {
    fn default() -> Self {
        Planet { radius: cubesphere::EARTH_RADIUS, omega: cubesphere::OMEGA }
    }
}

impl Planet {
    /// Reduced-radius planet with reduction factor `x`.
    pub fn small(x: f64) -> Self {
        assert!(x >= 1.0, "reduction factor must be >= 1");
        Planet { radius: cubesphere::EARTH_RADIUS / x, omega: cubesphere::OMEGA * x }
    }

    /// The reduction factor relative to Earth.
    pub fn reduction(&self) -> f64 {
        cubesphere::EARTH_RADIUS / self.radius
    }
}

/// Physics suite selector (serializable namelist mirror of
/// [`swphysics::PhysicsSuite`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteChoice {
    /// Adiabatic dynamical core only.
    None,
    /// Held–Suarez dry climate forcing.
    HeldSuarez,
    /// Reed–Jablonowski simple physics.
    Simple,
    /// Simple physics + Kessler + gray radiation.
    Full,
}

/// Complete model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Elements per cube edge.
    pub ne: usize,
    /// Vertical layers.
    pub nlev: usize,
    /// Advected tracers (>= 3 when moist physics is on: qv, qc, qr).
    pub qsize: usize,
    /// Model-top pressure, Pa.
    pub ptop: f64,
    /// Dynamics time step, s.
    pub dt: f64,
    /// Physics suite.
    pub suite: SuiteChoice,
    /// Planet geometry.
    pub planet: Planet,
    /// Apply the tracer limiter.
    pub limiter: bool,
    /// Hyperviscosity coefficient override (None = CAM scaling for `ne`).
    pub nu: Option<f64>,
    /// Physics calls every `nsplit` dynamics steps.
    pub nsplit: usize,
    /// Sea-surface temperature for moist suites, K.
    pub sst: f64,
    /// Write a checkpoint file every this many coupled steps (0 = off).
    pub checkpoint_interval: usize,
    /// Directory checkpoint files go to (created on first write).
    pub checkpoint_dir: String,
}

impl ModelConfig {
    /// Baseline configuration for resolution `ne`.
    pub fn for_ne(ne: usize) -> Self {
        ModelConfig {
            ne,
            nlev: 20,
            qsize: 3,
            ptop: 2000.0,
            dt: 300.0 * 30.0 / ne as f64,
            suite: SuiteChoice::Simple,
            planet: Planet::default(),
            limiter: true,
            nu: None,
            nsplit: 1,
            sst: 302.15,
            checkpoint_interval: 0,
            checkpoint_dir: "checkpoints".into(),
        }
    }

    /// The dycore configuration implied by this namelist. On a reduced
    /// planet both dt and the hyperviscosity shrink with the reduction
    /// factor (horizontal scales contract by `x`, so `nu ~ dx^3.2`).
    pub fn dycore_config(&self) -> DycoreConfig {
        let x = self.planet.reduction();
        let mut hv = HypervisConfig::for_ne(self.ne);
        hv.nu /= x.powf(3.2);
        hv.nu_p = hv.nu;
        if let Some(nu) = self.nu {
            hv.nu = nu;
            hv.nu_p = nu;
        }
        DycoreConfig { dt: self.dt / x, hypervis: hv, limiter: self.limiter, rsplit: 1 }
    }

    /// Moist suites require the three water tracers.
    pub fn validate(&self) -> Result<(), String> {
        if matches!(self.suite, SuiteChoice::Simple | SuiteChoice::Full) && self.qsize < 3 {
            return Err(format!(
                "suite {:?} needs qsize >= 3 (qv, qc, qr), got {}",
                self.suite, self.qsize
            ));
        }
        if self.nlev == 0 || self.ne == 0 {
            return Err("ne and nlev must be positive".into());
        }
        if self.ptop <= 0.0 || self.ptop >= cubesphere::P0 {
            return Err(format!("ptop {} out of range", self.ptop));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_planet_scales_radius_and_omega() {
        let p = Planet::small(10.0);
        assert!((p.radius - cubesphere::EARTH_RADIUS / 10.0).abs() < 1.0);
        assert!((p.omega - cubesphere::OMEGA * 10.0).abs() < 1e-12);
        assert!((p.reduction() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dycore_config_scales_with_reduction() {
        let mut cfg = ModelConfig::for_ne(8);
        let dt_earth = cfg.dycore_config().dt;
        let nu_earth = cfg.dycore_config().hypervis.nu;
        cfg.planet = Planet::small(20.0);
        let dc = cfg.dycore_config();
        assert!((dc.dt - dt_earth / 20.0).abs() < 1e-9);
        assert!(dc.hypervis.nu < nu_earth / 1e3);
    }

    #[test]
    fn validation_catches_missing_tracers() {
        let mut cfg = ModelConfig::for_ne(4);
        cfg.qsize = 1;
        assert!(cfg.validate().is_err());
        cfg.suite = SuiteChoice::HeldSuarez;
        assert!(cfg.validate().is_ok());
        cfg.ptop = -5.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_config_is_valid() {
        for ne in [4usize, 30, 120] {
            let cfg = ModelConfig::for_ne(ne);
            assert!(cfg.validate().is_ok(), "ne = {ne}");
            assert!(cfg.dycore_config().dt > 0.0);
        }
    }
}
