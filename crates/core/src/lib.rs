//! # swcam-core — the redesigned CAM-SE on (simulated) Sunway, as a library
//!
//! The public facade of the reproduction of *Redesigning CAM-SE for
//! Peta-Scale Climate Modeling Performance and Ultra-High Resolution on
//! Sunway TaihuLight* (SC'17): build a configured model
//! ([`ModelConfig`] -> [`Swcam`]), initialize it analytically, step it, and
//! read diagnostics. The heavy machinery lives in the substrate crates:
//!
//! * [`sw26010`] — the simulated processor (CPE cluster, LDM, DMA,
//!   register communication).
//! * [`swacc`] — the OpenACC-analog refactoring tools and executor.
//! * [`swmpi`] — the in-process rank runtime + TaihuLight network model.
//! * [`cubesphere`] — the spectral-element cubed sphere.
//! * [`homme`] — the dynamical core with Reference/MPE/OpenACC/Athread
//!   kernel variants.
//! * [`swphysics`] — the reduced physics suites.
//!
//! ```
//! use swcam_core::{ModelConfig, SuiteChoice, Swcam};
//!
//! let mut cfg = ModelConfig::for_ne(2);
//! cfg.nlev = 6;
//! cfg.qsize = 0;
//! cfg.suite = SuiteChoice::None;
//! let mut model = Swcam::new(cfg);
//! model.run_steps(1);
//! assert!(model.sim_days() > 0.0);
//! ```

pub mod checkpoint;
pub mod config;
pub mod coupling;
pub mod ensemble;
pub mod history;
pub mod model;
pub mod resilient;

pub use checkpoint::{CheckpointError, CheckpointMeta};
pub use config::{
    seeded_unit, InitFn, ModelConfig, Planet, ScenarioRegistry, ScenarioSpec, SuiteChoice,
};
pub use coupling::{
    apply_physics, apply_physics_checked, extract_column, insert_column, physics_health_error,
};
pub use ensemble::{Ensemble, EnsembleConfig, MemberReport, MemberStatus};
pub use homme::MemberKernelPath;
pub use history::{surface_temperature_raster, History};
pub use model::{build_dycore, build_suite, init_columns, reset_state, resting_init, Swcam};
pub use resilient::{
    run_resilient, run_resilient_elastic, run_resilient_with, ResilienceConfig,
    ResilienceExhausted, ResilientReport,
};

// Re-export the substrate crates so downstream users need only one import.
pub use cubesphere;
pub use homme;
pub use swacc;
pub use swmpi;
pub use swphysics;
pub use sw26010;
