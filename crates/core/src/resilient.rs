//! Fault-tolerant distributed stepping: checkpoint, detect, roll back,
//! retry.
//!
//! [`run_resilient`] wraps [`DistDycore::step_checked`] in the protocol a
//! peta-scale run needs to survive a flaky interconnect or a dying node:
//!
//! 1. every rank keeps an **in-memory snapshot** of its local state
//!    (re-taken every [`ResilienceConfig::checkpoint_interval`] committed
//!    steps, [`checkpoint`](crate::checkpoint) codec, bitwise-exact);
//! 2. each step attempt ends in exactly ONE global verdict reduction,
//!    executed by **every** rank — including ranks whose step aborted on a
//!    [`CommError`](swmpi::CommError) timeout or a tripped health guard.
//!    The verdict merges the failure flag with the worst-case
//!    [`StepHealth`] so all ranks reach the same decision;
//! 3. on failure, ranks flush any withheld sends, meet at a barrier (after
//!    which no stale-epoch message can still be deposited), bump the
//!    rollback epoch ([`DistDycore::set_epoch`] — the epoch lives in the
//!    high tag bits), purge every sub-floor message
//!    ([`swmpi::Comm::purge_below`]), restore the snapshot, and re-run
//!    from the checkpointed step;
//! 4. on success, a CFL breach in the *global* verdict arms the
//!    degradation policy on every rank in lockstep
//!    ([`DistDycore::arm_degradation`]).
//!
//! Because the snapshot restore is bitwise and every rank takes identical
//! decisions, a run that survives injected faults (message drops,
//! duplicates, delays, a crashed rank) commits the **same bits** as an
//! undisturbed run — the property the `fault_injection` tests pin down.

use std::path::Path;
use std::sync::Arc;

use crate::checkpoint::{self, CheckpointMeta};
use homme::{DistDycore, State, StepHealth};
use swmpi::{RankCtx, ReduceOp};

/// Knobs for [`run_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Re-snapshot the local state every this many committed steps (the
    /// initial state is always snapshotted before step 0).
    pub checkpoint_interval: u64,
    /// How many consecutive rollbacks of the same step to tolerate before
    /// giving up (bounds the retry loop when a failure is deterministic,
    /// e.g. a NaN that reappears on every replay).
    pub max_rollbacks_per_step: u32,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig { checkpoint_interval: 5, max_rollbacks_per_step: 3 }
    }
}

/// What a resilient run went through.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilientReport {
    /// Step attempts committed. A rollback restores the last snapshot, so
    /// steps between the snapshot and the failure are committed *again* on
    /// replay and count twice; `steps` >= the requested step count.
    pub steps: u64,
    /// Rollbacks performed (checkpoint restores).
    pub rollbacks: u32,
    /// Committed steps that ran under the degradation policy.
    pub degraded_steps: u64,
    /// Rollback epoch the run finished in.
    pub final_epoch: u64,
    /// Worst CFL number seen in any committed step.
    pub worst_cfl: f64,
}

/// Terminal failure of a resilient run (retries exhausted).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceExhausted {
    /// Rank reporting (all ranks report identically).
    pub rank: usize,
    /// The step that kept failing.
    pub step: u64,
    /// Rollbacks spent on it.
    pub rollbacks: u32,
}

impl std::fmt::Display for ResilienceExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: step {} still failing after {} rollbacks",
            self.rank, self.step, self.rollbacks
        )
    }
}

impl std::error::Error for ResilienceExhausted {}

/// Width of the per-attempt verdict reduction: failure flag + the six
/// [`StepHealth`] fields.
const VERDICT_LEN: usize = 7;

fn verdict(
    ctx: &RankCtx,
    failed: bool,
    local: &StepHealth,
) -> (bool, StepHealth) {
    let contrib = [
        failed as u64 as f64,
        local.checked as u64 as f64,
        local.nonfinite as f64,
        -local.min_dp3d,
        local.max_wind,
        local.cfl,
        local.degraded as u64 as f64,
    ];
    let mut out = [0.0; VERDICT_LEN];
    ctx.coll.allreduce_into(&contrib, ReduceOp::Max, &mut out);
    let global = StepHealth {
        checked: out[1] > 0.0,
        nonfinite: out[2] as u64,
        min_dp3d: -out[3],
        max_wind: out[4],
        cfl: out[5],
        degraded: out[6] > 0.0,
    };
    (out[0] > 0.0, global)
}

/// Advance `state` by `nsteps` committed steps, surviving message faults,
/// rank crashes at step boundaries, and tripped health guards. See the
/// module docs for the protocol. Returns the rank-identical report, or
/// [`ResilienceExhausted`] once one step has been rolled back more than
/// [`ResilienceConfig::max_rollbacks_per_step`] times in a row.
pub fn run_resilient(
    ctx: &mut RankCtx,
    dist: &mut DistDycore,
    state: &mut State,
    nsteps: u64,
    cfg: &ResilienceConfig,
) -> Result<ResilientReport, ResilienceExhausted> {
    run_resilient_with(ctx, dist, state, nsteps, cfg, |_, _, _| {})
}

/// [`run_resilient`] with a hook run just before every step *attempt*
/// (crashed attempts excluded), receiving the driver, the local state and
/// the step about to run. Fault-injection tests use it to corrupt state
/// mid-run; keying the injection off [`DistDycore::epoch`] makes it
/// one-shot, so the post-rollback replay runs clean and the test can
/// assert recovery rather than retry exhaustion.
pub fn run_resilient_with(
    ctx: &mut RankCtx,
    dist: &mut DistDycore,
    state: &mut State,
    nsteps: u64,
    cfg: &ResilienceConfig,
    mut before_attempt: impl FnMut(&mut DistDycore, &mut State, u64),
) -> Result<ResilientReport, ResilienceExhausted> {
    assert!(cfg.checkpoint_interval > 0, "checkpoint interval must be positive");
    let rank = ctx.rank() as u32;
    let mut report = ResilientReport::default();
    let mut snapshot = Vec::new();
    let take_snapshot = |dist: &DistDycore, state: &State, step: u64, buf: &mut Vec<u8>| {
        let meta = CheckpointMeta {
            step,
            remap_phase: dist.remap_phase() as u32,
            rank,
            epoch: dist.epoch(),
            time: step as f64 * dist.cfg.dt,
        };
        checkpoint::encode_into(state, &meta, buf);
    };
    take_snapshot(dist, state, 0, &mut snapshot);

    let mut step = 0u64;
    let mut consecutive_rollbacks = 0u32;
    while step < nsteps {
        let crashed = ctx.begin_step(step);
        let mut failed = crashed;
        let mut local = StepHealth::unchecked();
        if !crashed {
            before_attempt(dist, state, step);
            match dist.step_checked(ctx, state) {
                Ok(h) => local = h,
                Err(_) => failed = true,
            }
        }
        // The one global decision point per attempt: every rank arrives
        // here no matter how its step went, so generations never mix.
        let (any_failed, global) = verdict(ctx, failed, &local);
        if any_failed {
            consecutive_rollbacks += 1;
            report.rollbacks += 1;
            if consecutive_rollbacks > cfg.max_rollbacks_per_step {
                return Err(ResilienceExhausted {
                    rank: rank as usize,
                    step,
                    rollbacks: consecutive_rollbacks,
                });
            }
            // Deposit any withheld (fault-delayed) sends, then make sure
            // every rank has done so before anyone purges: after this
            // barrier no stale-epoch message can still appear.
            ctx.comm.flush_delayed();
            ctx.coll.barrier();
            dist.set_epoch(dist.epoch() + 1);
            ctx.comm.purge_below(dist.tag_floor());
            let meta = checkpoint::decode(&snapshot, state)
                .expect("in-memory checkpoint cannot be corrupt");
            dist.set_remap_phase(meta.remap_phase as usize);
            step = meta.step;
            continue;
        }
        consecutive_rollbacks = 0;
        step += 1;
        report.steps += 1;
        if global.degraded {
            report.degraded_steps += 1;
        }
        if global.cfl > report.worst_cfl {
            report.worst_cfl = global.cfl;
        }
        // Degradation is armed from the GLOBAL verdict so every rank
        // halves dt for the same steps.
        if global.checked && global.cfl > dist.health.cfl_limit {
            dist.arm_degradation();
        }
        if step.is_multiple_of(cfg.checkpoint_interval) {
            take_snapshot(dist, state, step, &mut snapshot);
        }
    }
    report.final_epoch = dist.epoch();
    Ok(report)
}

fn verdict_elastic(ctx: &RankCtx, failed: bool, local: &StepHealth) -> (bool, StepHealth) {
    let contrib = [
        failed as u64 as f64,
        local.checked as u64 as f64,
        local.nonfinite as f64,
        -local.min_dp3d,
        local.max_wind,
        local.cfl,
        local.degraded as u64 as f64,
    ];
    let mut out = [0.0; VERDICT_LEN];
    // A hub failure is unrecoverable for a child process: panic and let
    // the supervisor account for this rank.
    let absent = ctx
        .coll
        .allreduce_checked(&contrib, ReduceOp::Max, &mut out)
        .expect("hub verdict reduction");
    let global = StepHealth {
        checked: out[1] > 0.0,
        nonfinite: out[2] as u64,
        min_dp3d: -out[3],
        max_wind: out[4],
        cfl: out[5],
        degraded: out[6] > 0.0,
    };
    // An absent rank means the round completed without a dead peer's
    // contribution — the step cannot commit, exactly like a local failure.
    (out[0] > 0.0 || absent > 0, global)
}

fn write_elastic_checkpoint(path: &Path, dist: &DistDycore, state: &State, step: u64, rank: u32) {
    let meta = CheckpointMeta {
        step,
        remap_phase: dist.remap_phase() as u32,
        rank,
        epoch: dist.epoch(),
        time: step as f64 * dist.cfg.dt,
    };
    checkpoint::write_file(path, state, &meta)
        .unwrap_or_else(|e| panic!("rank {rank}: checkpoint write failed: {e:?}"));
}

/// [`run_resilient`] for the **elastic multi-process world**
/// ([`swmpi::process_world`]): ranks are real child processes, checkpoints
/// live in `SWCKPT01` *files* (they must outlive the process), and rank
/// death is survivable — not just message faults.
///
/// Differences from the in-process protocol:
///
/// * **Checkpoints are files** under the supervisor's checkpoint directory
///   ([`swmpi::ElasticLink::checkpoint_path`]), written atomically
///   (tmp + rename) at the same committed steps on every rank, so any
///   incarnation of any rank restores a mutually consistent cut.
/// * **The verdict tolerates the dead**: the hub completes the reduction
///   among live admitted ranks and reports how many were absent
///   ([`swmpi::Collectives::allreduce_checked`]); `absent > 0` fails the
///   step like any local failure, so survivors roll back instead of
///   deadlocking on a rank that no longer exists.
/// * **The rollback barrier is the re-admission round**: instead of a
///   plain barrier + local epoch bump, every rank enters
///   [`swmpi::ElasticLink::readmit`], which completes only when ALL `n`
///   ranks are present — including a freshly respawned one — and returns
///   the world-agreed epoch to tag-purge against. The respawned rank
///   enters the same round from its bootstrap path, restores its own
///   checkpoint file, and replays alongside the survivors.
///
/// Because survivors and the respawned rank restore the same committed
/// cut and replay under one agreed epoch, a run that loses a whole
/// process to SIGKILL commits the same bits as an undisturbed run.
///
/// Per-rank [`ResilientReport`]s are **not** identical across ranks in a
/// killed run (a respawned rank never saw the rollbacks before its
/// death), so callers should compare state, not reports.
pub fn run_resilient_elastic(
    ctx: &mut RankCtx,
    dist: &mut DistDycore,
    state: &mut State,
    nsteps: u64,
    cfg: &ResilienceConfig,
) -> Result<ResilientReport, ResilienceExhausted> {
    assert!(cfg.checkpoint_interval > 0, "checkpoint interval must be positive");
    let link = Arc::clone(
        ctx.elastic()
            .expect("run_resilient_elastic requires a process_world rank (elastic link)"),
    );
    let path = link.checkpoint_path();
    let rank = ctx.rank() as u32;
    let mut report = ResilientReport::default();
    let mut step = 0u64;
    if link.is_respawned() {
        // This process replaces a dead incarnation: rejoin the world at
        // the agreed epoch, then resume from the checkpoint the previous
        // incarnation committed.
        let world_epoch = link.readmit().expect("respawn re-admission");
        dist.set_epoch(world_epoch);
        ctx.comm.purge_below(dist.tag_floor());
        let meta = checkpoint::read_file(&path, state)
            .unwrap_or_else(|e| panic!("rank {rank}: respawn restore failed: {e:?}"));
        dist.set_remap_phase(meta.remap_phase as usize);
        step = meta.step;
    } else {
        write_elastic_checkpoint(&path, dist, state, 0, rank);
    }

    let mut consecutive_rollbacks = 0u32;
    while step < nsteps {
        // In a first-incarnation child a scheduled kill_process fires
        // here and never returns (SIGKILL).
        let crashed = ctx.begin_step(step);
        let mut failed = crashed;
        let mut local = StepHealth::unchecked();
        if !crashed {
            match dist.step_checked(ctx, state) {
                Ok(h) => local = h,
                Err(_) => failed = true,
            }
        }
        let (any_failed, global) = verdict_elastic(ctx, failed, &local);
        if any_failed {
            consecutive_rollbacks += 1;
            report.rollbacks += 1;
            if consecutive_rollbacks > cfg.max_rollbacks_per_step {
                return Err(ResilienceExhausted {
                    rank: rank as usize,
                    step,
                    rollbacks: consecutive_rollbacks,
                });
            }
            ctx.comm.flush_delayed();
            // The admit round doubles as the rollback barrier AND the
            // respawn rendezvous: it completes only when all n ranks are
            // in, so a killed rank's replacement is already meshed and
            // admitted when this returns.
            let world_epoch = link.readmit().expect("rollback re-admission");
            dist.set_epoch(world_epoch);
            ctx.comm.purge_below(dist.tag_floor());
            let meta = checkpoint::read_file(&path, state)
                .unwrap_or_else(|e| panic!("rank {rank}: rollback restore failed: {e:?}"));
            dist.set_remap_phase(meta.remap_phase as usize);
            step = meta.step;
            continue;
        }
        consecutive_rollbacks = 0;
        step += 1;
        report.steps += 1;
        if global.degraded {
            report.degraded_steps += 1;
        }
        if global.cfl > report.worst_cfl {
            report.worst_cfl = global.cfl;
        }
        if global.checked && global.cfl > dist.health.cfl_limit {
            dist.arm_degradation();
        }
        if step.is_multiple_of(cfg.checkpoint_interval) {
            write_elastic_checkpoint(&path, dist, state, step, rank);
        }
    }
    report.final_epoch = dist.epoch();
    Ok(report)
}
