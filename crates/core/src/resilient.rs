//! Fault-tolerant distributed stepping: checkpoint, detect, roll back,
//! retry.
//!
//! [`run_resilient`] wraps [`DistDycore::step_checked`] in the protocol a
//! peta-scale run needs to survive a flaky interconnect or a dying node:
//!
//! 1. every rank keeps an **in-memory snapshot** of its local state
//!    (re-taken every [`ResilienceConfig::checkpoint_interval`] committed
//!    steps, [`checkpoint`](crate::checkpoint) codec, bitwise-exact);
//! 2. each step attempt ends in exactly ONE global verdict reduction,
//!    executed by **every** rank — including ranks whose step aborted on a
//!    [`CommError`](swmpi::CommError) timeout or a tripped health guard.
//!    The verdict merges the failure flag with the worst-case
//!    [`StepHealth`] so all ranks reach the same decision;
//! 3. on failure, ranks flush any withheld sends, meet at a barrier (after
//!    which no stale-epoch message can still be deposited), bump the
//!    rollback epoch ([`DistDycore::set_epoch`] — the epoch lives in the
//!    high tag bits), purge every sub-floor message
//!    ([`swmpi::Comm::purge_below`]), restore the snapshot, and re-run
//!    from the checkpointed step;
//! 4. on success, a CFL breach in the *global* verdict arms the
//!    degradation policy on every rank in lockstep
//!    ([`DistDycore::arm_degradation`]).
//!
//! Because the snapshot restore is bitwise and every rank takes identical
//! decisions, a run that survives injected faults (message drops,
//! duplicates, delays, a crashed rank) commits the **same bits** as an
//! undisturbed run — the property the `fault_injection` tests pin down.

use crate::checkpoint::{self, CheckpointMeta};
use homme::{DistDycore, State, StepHealth};
use swmpi::{RankCtx, ReduceOp};

/// Knobs for [`run_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Re-snapshot the local state every this many committed steps (the
    /// initial state is always snapshotted before step 0).
    pub checkpoint_interval: u64,
    /// How many consecutive rollbacks of the same step to tolerate before
    /// giving up (bounds the retry loop when a failure is deterministic,
    /// e.g. a NaN that reappears on every replay).
    pub max_rollbacks_per_step: u32,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig { checkpoint_interval: 5, max_rollbacks_per_step: 3 }
    }
}

/// What a resilient run went through.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilientReport {
    /// Step attempts committed. A rollback restores the last snapshot, so
    /// steps between the snapshot and the failure are committed *again* on
    /// replay and count twice; `steps` >= the requested step count.
    pub steps: u64,
    /// Rollbacks performed (checkpoint restores).
    pub rollbacks: u32,
    /// Committed steps that ran under the degradation policy.
    pub degraded_steps: u64,
    /// Rollback epoch the run finished in.
    pub final_epoch: u64,
    /// Worst CFL number seen in any committed step.
    pub worst_cfl: f64,
}

/// Terminal failure of a resilient run (retries exhausted).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceExhausted {
    /// Rank reporting (all ranks report identically).
    pub rank: usize,
    /// The step that kept failing.
    pub step: u64,
    /// Rollbacks spent on it.
    pub rollbacks: u32,
}

impl std::fmt::Display for ResilienceExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {}: step {} still failing after {} rollbacks",
            self.rank, self.step, self.rollbacks
        )
    }
}

impl std::error::Error for ResilienceExhausted {}

/// Width of the per-attempt verdict reduction: failure flag + the six
/// [`StepHealth`] fields.
const VERDICT_LEN: usize = 7;

fn verdict(
    ctx: &RankCtx,
    failed: bool,
    local: &StepHealth,
) -> (bool, StepHealth) {
    let contrib = [
        failed as u64 as f64,
        local.checked as u64 as f64,
        local.nonfinite as f64,
        -local.min_dp3d,
        local.max_wind,
        local.cfl,
        local.degraded as u64 as f64,
    ];
    let mut out = [0.0; VERDICT_LEN];
    ctx.coll.allreduce_into(&contrib, ReduceOp::Max, &mut out);
    let global = StepHealth {
        checked: out[1] > 0.0,
        nonfinite: out[2] as u64,
        min_dp3d: -out[3],
        max_wind: out[4],
        cfl: out[5],
        degraded: out[6] > 0.0,
    };
    (out[0] > 0.0, global)
}

/// Advance `state` by `nsteps` committed steps, surviving message faults,
/// rank crashes at step boundaries, and tripped health guards. See the
/// module docs for the protocol. Returns the rank-identical report, or
/// [`ResilienceExhausted`] once one step has been rolled back more than
/// [`ResilienceConfig::max_rollbacks_per_step`] times in a row.
pub fn run_resilient(
    ctx: &mut RankCtx,
    dist: &mut DistDycore,
    state: &mut State,
    nsteps: u64,
    cfg: &ResilienceConfig,
) -> Result<ResilientReport, ResilienceExhausted> {
    run_resilient_with(ctx, dist, state, nsteps, cfg, |_, _, _| {})
}

/// [`run_resilient`] with a hook run just before every step *attempt*
/// (crashed attempts excluded), receiving the driver, the local state and
/// the step about to run. Fault-injection tests use it to corrupt state
/// mid-run; keying the injection off [`DistDycore::epoch`] makes it
/// one-shot, so the post-rollback replay runs clean and the test can
/// assert recovery rather than retry exhaustion.
pub fn run_resilient_with(
    ctx: &mut RankCtx,
    dist: &mut DistDycore,
    state: &mut State,
    nsteps: u64,
    cfg: &ResilienceConfig,
    mut before_attempt: impl FnMut(&mut DistDycore, &mut State, u64),
) -> Result<ResilientReport, ResilienceExhausted> {
    assert!(cfg.checkpoint_interval > 0, "checkpoint interval must be positive");
    let rank = ctx.rank() as u32;
    let mut report = ResilientReport::default();
    let mut snapshot = Vec::new();
    let take_snapshot = |dist: &DistDycore, state: &State, step: u64, buf: &mut Vec<u8>| {
        let meta = CheckpointMeta {
            step,
            remap_phase: dist.remap_phase() as u32,
            rank,
            epoch: dist.epoch(),
            time: step as f64 * dist.cfg.dt,
        };
        checkpoint::encode_into(state, &meta, buf);
    };
    take_snapshot(dist, state, 0, &mut snapshot);

    let mut step = 0u64;
    let mut consecutive_rollbacks = 0u32;
    while step < nsteps {
        let crashed = ctx.begin_step(step);
        let mut failed = crashed;
        let mut local = StepHealth::unchecked();
        if !crashed {
            before_attempt(dist, state, step);
            match dist.step_checked(ctx, state) {
                Ok(h) => local = h,
                Err(_) => failed = true,
            }
        }
        // The one global decision point per attempt: every rank arrives
        // here no matter how its step went, so generations never mix.
        let (any_failed, global) = verdict(ctx, failed, &local);
        if any_failed {
            consecutive_rollbacks += 1;
            report.rollbacks += 1;
            if consecutive_rollbacks > cfg.max_rollbacks_per_step {
                return Err(ResilienceExhausted {
                    rank: rank as usize,
                    step,
                    rollbacks: consecutive_rollbacks,
                });
            }
            // Deposit any withheld (fault-delayed) sends, then make sure
            // every rank has done so before anyone purges: after this
            // barrier no stale-epoch message can still appear.
            ctx.comm.flush_delayed();
            ctx.coll.barrier();
            dist.set_epoch(dist.epoch() + 1);
            ctx.comm.purge_below(dist.tag_floor());
            let meta = checkpoint::decode(&snapshot, state)
                .expect("in-memory checkpoint cannot be corrupt");
            dist.set_remap_phase(meta.remap_phase as usize);
            step = meta.step;
            continue;
        }
        consecutive_rollbacks = 0;
        step += 1;
        report.steps += 1;
        if global.degraded {
            report.degraded_steps += 1;
        }
        if global.cfl > report.worst_cfl {
            report.worst_cfl = global.cfl;
        }
        // Degradation is armed from the GLOBAL verdict so every rank
        // halves dt for the same steps.
        if global.checked && global.cfl > dist.health.cfl_limit {
            dist.arm_degradation();
        }
        if step.is_multiple_of(cfg.checkpoint_interval) {
            take_snapshot(dist, state, step, &mut snapshot);
        }
    }
    report.final_epoch = dist.epoch();
    Ok(report)
}
