//! Execution context of one Computing Processing Element (CPE).
//!
//! A kernel body receives a `CpeCtx` and, through it, everything a real
//! Athread kernel has: its mesh coordinates, its 64 KB LDM, the DMA engine,
//! direct (slow) global memory access, register communication, vector
//! shuffles, and the array-wide barrier. Every operation is functionally
//! executed *and* charged to the CPE's cycle clock and PERF counters, so the
//! same kernel run yields both a numerical result and a performance
//! measurement.

use crate::config::{CostModel, CPE_COLS, CPE_ROWS};
use crate::ldm::{Ldm, LdmBuf, LdmOverflow};
use crate::perfctr::Counters;
use crate::regcomm::{Axis, RegFabric, RegMsg};
use crate::shared::{SharedSlice, SharedSliceMut};
use crate::trace::{Event, EventKind};
use crate::vector::{transpose4x4, V4F64, TRANSPOSE4X4_SHUFFLES};
use std::ops::Range;

/// Per-CPE kernel execution context.
pub struct CpeCtx<'a> {
    row: usize,
    col: usize,
    cost: &'a CostModel,
    fabric: &'a RegFabric,
    /// The CPE's scratchpad accountant.
    pub ldm: Ldm,
    cycles: f64,
    counters: Counters,
    events: Option<Vec<Event>>,
}

impl<'a> CpeCtx<'a> {
    pub(crate) fn new(row: usize, col: usize, cost: &'a CostModel, fabric: &'a RegFabric) -> Self {
        CpeCtx {
            row,
            col,
            cost,
            fabric,
            ldm: Ldm::default(),
            cycles: 0.0,
            counters: Counters::default(),
            events: None,
        }
    }

    /// Enable event tracing for this context (used by `run_traced`).
    pub(crate) fn enable_trace(&mut self) {
        self.events = Some(Vec::new());
    }

    /// Take the recorded events (if tracing was enabled).
    pub(crate) fn take_events(&mut self) -> Vec<Event> {
        self.events.take().unwrap_or_default()
    }

    #[inline]
    fn record(&mut self, kind: EventKind, start: f64, amount: u64) {
        if let Some(ev) = &mut self.events {
            ev.push(Event {
                cpe: self.row * CPE_COLS + self.col,
                kind,
                start_cycles: start,
                duration_cycles: self.cycles - start,
                amount,
            });
        }
    }

    /// Row index in the 8x8 mesh (0..8).
    #[inline]
    pub fn row(&self) -> usize {
        self.row
    }

    /// Column index in the 8x8 mesh (0..8).
    #[inline]
    pub fn col(&self) -> usize {
        self.col
    }

    /// Linear CPE id, `row * 8 + col` (0..64).
    #[inline]
    pub fn id(&self) -> usize {
        self.row * CPE_COLS + self.col
    }

    /// Cycle clock of this CPE.
    #[inline]
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Snapshot of the PERF counters.
    #[inline]
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Allocate an LDM buffer of `n` doubles, charging the 64 KB budget.
    pub fn ldm_alloc(&mut self, n: usize) -> Result<LdmBuf, LdmOverflow> {
        self.ldm.alloc_f64(n)
    }

    // ---- DMA -------------------------------------------------------------

    /// DMA get: copy `src[range]` from main memory into `dst[..range.len()]`.
    ///
    /// # Panics
    /// Panics if `dst` is shorter than the range.
    pub fn dma_get(&mut self, src: SharedSlice<'_>, range: Range<usize>, dst: &mut [f64]) {
        let n = range.len();
        assert!(dst.len() >= n, "DMA destination too small: {} < {n}", dst.len());
        dst[..n].copy_from_slice(src.range(range));
        let start = self.cycles;
        self.charge_dma(n * 8, true);
        self.record(EventKind::DmaGet, start, (n * 8) as u64);
    }

    /// DMA get from an array the kernel also writes (e.g. in-place update).
    pub fn dma_get_mut(&mut self, src: &SharedSliceMut<'_>, range: Range<usize>, dst: &mut [f64]) {
        let n = range.len();
        assert!(dst.len() >= n, "DMA destination too small: {} < {n}", dst.len());
        src.read_into(range, &mut dst[..n]);
        let start = self.cycles;
        self.charge_dma(n * 8, true);
        self.record(EventKind::DmaGet, start, (n * 8) as u64);
    }

    /// DMA put: copy `src` into main memory at `dst[offset..]`.
    pub fn dma_put(&mut self, dst: &SharedSliceMut<'_>, offset: usize, src: &[f64]) {
        dst.write(offset, src, self.id());
        let start = self.cycles;
        self.charge_dma(src.len() * 8, false);
        self.record(EventKind::DmaPut, start, (src.len() * 8) as u64);
    }

    /// Charge DMA traffic without performing a copy — used by executors
    /// (e.g. the OpenACC analog) that model a transfer schedule while the
    /// functional data movement happens at a different granularity.
    pub fn charge_dma_traffic(&mut self, bytes: usize, inbound: bool) {
        if bytes > 0 {
            self.charge_dma(bytes, inbound);
        }
    }

    /// Charge element-wise `gld` traffic for `bytes` of direct global reads
    /// (each 8-byte element pays the full gld latency — the slow path).
    pub fn charge_gld_traffic(&mut self, bytes: usize) {
        let elems = bytes / 8;
        self.cycles += elems as f64 * self.cost.gld_cycles(8);
        self.counters.gld_bytes += bytes as u64;
    }

    fn charge_dma(&mut self, bytes: usize, inbound: bool) {
        self.cycles += self.cost.dma_cycles(bytes);
        self.counters.dma_transfers += 1;
        if inbound {
            self.counters.dma_bytes_in += bytes as u64;
        } else {
            self.counters.dma_bytes_out += bytes as u64;
        }
    }

    // ---- Direct global access (gld/gst) -----------------------------------

    /// Direct global load of one element — the slow path the OpenACC
    /// fallback uses for data that was not staged into LDM.
    pub fn gld(&mut self, src: SharedSlice<'_>, i: usize) -> f64 {
        self.cycles += self.cost.gld_cycles(8);
        self.counters.gld_bytes += 8;
        src.get(i)
    }

    /// Direct global store of one element.
    pub fn gst(&mut self, dst: &SharedSliceMut<'_>, i: usize, v: f64) {
        self.cycles += self.cost.gld_cycles(8);
        self.counters.gst_bytes += 8;
        dst.set(i, v, self.id());
    }

    // ---- Register communication -------------------------------------------

    /// Send a vector register to `target_col` in this CPE's row.
    pub fn reg_send_row(&mut self, target_col: usize, v: V4F64) {
        let start = self.cycles;
        self.cycles += self.cost.regcomm_cycles;
        self.record(EventKind::RegSend, start, 32);
        self.counters.reg_sends += 1;
        self.fabric.send(
            Axis::Row,
            self.row,
            self.col,
            target_col,
            RegMsg { value: v, send_cycles: self.cycles },
        );
    }

    /// Send a vector register to `target_row` in this CPE's column.
    pub fn reg_send_col(&mut self, target_row: usize, v: V4F64) {
        let start = self.cycles;
        self.cycles += self.cost.regcomm_cycles;
        self.record(EventKind::RegSend, start, 32);
        self.counters.reg_sends += 1;
        self.fabric.send(
            Axis::Col,
            self.row,
            self.col,
            target_row,
            RegMsg { value: v, send_cycles: self.cycles },
        );
    }

    /// Blocking receive from `source_col` in this CPE's row. The local clock
    /// advances past the sender's send time: data cannot be observed before
    /// it exists.
    pub fn reg_recv_row(&mut self, source_col: usize) -> V4F64 {
        let start = self.cycles;
        let msg = self.fabric.recv(Axis::Row, self.row, self.col, source_col);
        self.cycles = self.cycles.max(msg.send_cycles) + self.cost.regcomm_cycles;
        self.counters.reg_recvs += 1;
        self.record(EventKind::RegRecv, start, 32);
        msg.value
    }

    /// Blocking receive from `source_row` in this CPE's column.
    pub fn reg_recv_col(&mut self, source_row: usize) -> V4F64 {
        let start = self.cycles;
        let msg = self.fabric.recv(Axis::Col, self.row, self.col, source_row);
        self.cycles = self.cycles.max(msg.send_cycles) + self.cost.regcomm_cycles;
        self.counters.reg_recvs += 1;
        self.record(EventKind::RegRecv, start, 32);
        msg.value
    }

    // ---- Compute accounting -----------------------------------------------

    /// Charge `n` retired vector flops (a 4-lane FMA is 8 flops).
    #[inline]
    pub fn charge_vflops(&mut self, n: u64) {
        let start = self.cycles;
        self.counters.vflops += n;
        self.cycles += n as f64 / self.cost.vflops_per_cycle;
        self.record(EventKind::Compute, start, n);
    }

    /// Charge `n` retired scalar flops.
    #[inline]
    pub fn charge_sflops(&mut self, n: u64) {
        let start = self.cycles;
        self.counters.sflops += n;
        self.cycles += n as f64 / self.cost.sflops_per_cycle;
        self.record(EventKind::Compute, start, n);
    }

    /// Charge non-FP overhead cycles (address arithmetic, branches, LDM
    /// access serialization) without touching the flop counters.
    #[inline]
    pub fn charge_cycles(&mut self, cycles: f64) {
        self.cycles += cycles;
    }

    /// Transpose a 4x4 register block, charging the 8 shuffles.
    pub fn transpose4x4(&mut self, rows: [V4F64; 4]) -> [V4F64; 4] {
        self.counters.shuffles += TRANSPOSE4X4_SHUFFLES as u64;
        self.cycles += TRANSPOSE4X4_SHUFFLES as f64 * self.cost.shuffle_cycles;
        transpose4x4(rows)
    }

    // ---- Synchronization ----------------------------------------------------

    /// Array-wide barrier (`athread_syn`). All 64 CPEs must call it the same
    /// number of times; every CPE resumes at the cluster-wide maximum clock.
    pub fn sync_array(&mut self) {
        let start = self.cycles;
        let resumed = self.fabric.sync_array(self.id(), self.cycles);
        // A modest fixed cost for the barrier instruction itself.
        self.cycles = resumed + 16.0;
        self.record(EventKind::Sync, start, 0);
    }

    /// Number of rows/cols in the mesh, for kernels that loop over peers.
    #[inline]
    pub fn mesh_dims(&self) -> (usize, usize) {
        (CPE_ROWS, CPE_COLS)
    }
}
