//! The 64 KB Local Data Memory (LDM / SPM) of a CPE.
//!
//! The LDM replaces a conventional L1 data cache with a user-managed
//! scratchpad. Every byte a kernel wants close to the core must be placed
//! there explicitly, and the 64 KB budget is the central constraint the
//! paper's memory-footprint analysis tool manages (Section 7.2). This module
//! provides an accounting allocator that enforces the budget: kernels that
//! exceed it fail loudly instead of silently spilling, exactly like real
//! Athread code would fail to link its `__thread_local` data.

use crate::config::LDM_BYTES;
use std::fmt;

/// Error returned when an allocation would exceed the LDM capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdmOverflow {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already in use.
    pub in_use: usize,
    /// Total capacity.
    pub capacity: usize,
}

impl fmt::Display for LdmOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LDM overflow: requested {} B with {} B of {} B in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for LdmOverflow {}

/// A buffer living in LDM. Functionally a `Vec<f64>`, but its size was
/// charged against the owning CPE's 64 KB budget at allocation time.
#[derive(Debug)]
pub struct LdmBuf {
    data: Vec<f64>,
    bytes: usize,
}

impl LdmBuf {
    /// Number of `f64` elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size charged against the LDM budget, in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl std::ops::Deref for LdmBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::DerefMut for LdmBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

/// Per-CPE LDM accountant.
///
/// Allocation and explicit free adjust a byte counter against the fixed
/// capacity; `reset` releases everything (the usual pattern at kernel
/// boundaries). The accountant also tracks the high-water mark so kernels
/// can report their true footprint.
#[derive(Debug)]
pub struct Ldm {
    capacity: usize,
    in_use: usize,
    high_water: usize,
}

impl Default for Ldm {
    fn default() -> Self {
        Self::new(LDM_BYTES)
    }
}

impl Ldm {
    /// Accountant with an explicit capacity (tests shrink it to force
    /// overflow paths; the hardware value is [`LDM_BYTES`]).
    pub fn new(capacity: usize) -> Self {
        Ldm { capacity, in_use: 0, high_water: 0 }
    }

    /// Allocate a zero-initialized buffer of `n` doubles.
    pub fn alloc_f64(&mut self, n: usize) -> Result<LdmBuf, LdmOverflow> {
        let bytes = n * std::mem::size_of::<f64>();
        if self.in_use + bytes > self.capacity {
            return Err(LdmOverflow {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.high_water = self.high_water.max(self.in_use);
        Ok(LdmBuf { data: vec![0.0; n], bytes })
    }

    /// Release a buffer, returning its bytes to the budget.
    pub fn free(&mut self, buf: LdmBuf) {
        debug_assert!(buf.bytes <= self.in_use, "freeing more than allocated");
        self.in_use -= buf.bytes;
    }

    /// Release everything allocated so far (kernel epilogue).
    pub fn reset(&mut self) {
        self.in_use = 0;
    }

    /// Bytes currently allocated.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Maximum bytes ever simultaneously allocated.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Remaining capacity in bytes.
    #[inline]
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_charges_budget() {
        let mut ldm = Ldm::default();
        let b = ldm.alloc_f64(1024).unwrap();
        assert_eq!(b.len(), 1024);
        assert_eq!(ldm.in_use(), 8192);
        assert_eq!(ldm.available(), LDM_BYTES - 8192);
        ldm.free(b);
        assert_eq!(ldm.in_use(), 0);
        assert_eq!(ldm.high_water(), 8192);
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let mut ldm = Ldm::default();
        // 64 KB holds exactly 8192 doubles.
        let _a = ldm.alloc_f64(8000).unwrap();
        let err = ldm.alloc_f64(500).unwrap_err();
        assert_eq!(err.capacity, LDM_BYTES);
        assert_eq!(err.in_use, 8000 * 8);
        assert_eq!(err.requested, 4000);
        assert!(err.to_string().contains("LDM overflow"));
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut ldm = Ldm::default();
        let b = ldm.alloc_f64(8192).unwrap();
        assert_eq!(ldm.available(), 0);
        ldm.free(b);
        assert!(ldm.alloc_f64(1).is_ok());
    }

    #[test]
    fn reset_releases_everything() {
        let mut ldm = Ldm::default();
        let _a = ldm.alloc_f64(4000).unwrap();
        let _b = ldm.alloc_f64(4000).unwrap();
        ldm.reset();
        assert_eq!(ldm.in_use(), 0);
        assert!(ldm.alloc_f64(8192).is_ok());
    }

    #[test]
    fn buffers_are_zeroed_and_writable() {
        let mut ldm = Ldm::default();
        let mut b = ldm.alloc_f64(16).unwrap();
        assert!(b.iter().all(|&x| x == 0.0));
        b[3] = 7.5;
        assert_eq!(b[3], 7.5);
        assert!(!b.is_empty());
    }
}
