//! Register communication fabric of the 8x8 CPE mesh.
//!
//! "The cluster of CPEs supports low-latency register communication among the
//! CPEs ... data can be directly exchanged between the LDMs of the two CPEs
//! that belong to the same row or the same column within tens of cycles"
//! (paper Sections 5.2, 7.4). Messages are one 256-bit vector register wide.
//!
//! The simulator gives every ordered same-row / same-column CPE pair a small
//! bounded channel (the hardware has a 4-entry receive buffer). Receives are
//! blocking, like the hardware's blocking register read; a generous timeout
//! converts a communication deadlock — the classic register-communication
//! programming bug — into a diagnosable panic instead of a hung test suite.
//!
//! Each message carries the sender's cycle timestamp. A receiver cannot
//! observe data before it was sent, so its local clock advances to
//! `max(own, sender) + latency`, which makes scan-style dependency chains
//! (Section 7.4) cost what they would on silicon.

use crate::config::{CPE_COLS, CPE_ROWS};
use crate::vector::V4F64;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::Barrier;
use std::time::Duration;

/// Hardware receive-buffer depth per link.
pub const LINK_CAPACITY: usize = 4;

/// How long a blocking register read waits before declaring deadlock.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// One register-communication message: a 256-bit payload plus the sender's
/// cycle count at the time of the send.
#[derive(Debug, Clone, Copy)]
pub struct RegMsg {
    pub value: V4F64,
    pub send_cycles: f64,
}

/// Direction of a register-communication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Between CPEs in the same row (differing columns).
    Row,
    /// Between CPEs in the same column (differing rows).
    Col,
}

struct Link {
    tx: Sender<RegMsg>,
    rx: Receiver<RegMsg>,
}

/// The full mesh fabric: a channel for every ordered same-row and
/// same-column pair, plus the array-wide synchronization barrier
/// (`athread_syn`-equivalent).
pub struct RegFabric {
    /// Indexed by `row * 64 + from_col * 8 + to_col`.
    row_links: Vec<Link>,
    /// Indexed by `col * 64 + from_row * 8 + to_row`.
    col_links: Vec<Link>,
    barrier: Barrier,
    sync_cycles: Mutex<Vec<f64>>,
}

impl Default for RegFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFabric {
    /// Build the fabric for one 8x8 cluster.
    pub fn new() -> Self {
        let mk = || {
            let (tx, rx) = bounded(LINK_CAPACITY);
            Link { tx, rx }
        };
        RegFabric {
            row_links: (0..CPE_ROWS * CPE_COLS * CPE_COLS).map(|_| mk()).collect(),
            col_links: (0..CPE_COLS * CPE_ROWS * CPE_ROWS).map(|_| mk()).collect(),
            barrier: Barrier::new(CPE_ROWS * CPE_COLS),
            sync_cycles: Mutex::new(vec![0.0; CPE_ROWS * CPE_COLS]),
        }
    }

    fn row_link(&self, row: usize, from: usize, to: usize) -> &Link {
        &self.row_links[row * CPE_COLS * CPE_COLS + from * CPE_COLS + to]
    }

    fn col_link(&self, col: usize, from: usize, to: usize) -> &Link {
        &self.col_links[col * CPE_ROWS * CPE_ROWS + from * CPE_ROWS + to]
    }

    /// Send along a row or column. Blocks if the receive buffer is full
    /// (back-pressure, as on hardware).
    ///
    /// # Panics
    /// Panics if `from == to` along the axis, if indices are out of range,
    /// or if the peer end has been dropped.
    pub fn send(&self, axis: Axis, row: usize, col: usize, target: usize, msg: RegMsg) {
        assert!(row < CPE_ROWS && col < CPE_COLS, "CPE ({row},{col}) out of range");
        let link = match axis {
            Axis::Row => {
                assert!(target < CPE_COLS && target != col, "bad row target {target} from col {col}");
                self.row_link(row, col, target)
            }
            Axis::Col => {
                assert!(target < CPE_ROWS && target != row, "bad col target {target} from row {row}");
                self.col_link(col, row, target)
            }
        };
        link.tx.send(msg).expect("register-communication link closed");
    }

    /// Blocking receive from a row/column peer.
    ///
    /// # Panics
    /// Panics after [`RECV_TIMEOUT`] with a deadlock diagnostic.
    pub fn recv(&self, axis: Axis, row: usize, col: usize, source: usize) -> RegMsg {
        assert!(row < CPE_ROWS && col < CPE_COLS, "CPE ({row},{col}) out of range");
        let link = match axis {
            Axis::Row => {
                assert!(source < CPE_COLS && source != col, "bad row source {source} for col {col}");
                self.row_link(row, source, col)
            }
            Axis::Col => {
                assert!(source < CPE_ROWS && source != row, "bad col source {source} for row {row}");
                self.col_link(col, source, row)
            }
        };
        match link.rx.recv_timeout(RECV_TIMEOUT) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => panic!(
                "register-communication deadlock: CPE ({row},{col}) waited {RECV_TIMEOUT:?} \
                 for a {axis:?} message from {source}"
            ),
            Err(RecvTimeoutError::Disconnected) => {
                panic!("register-communication link from {source} closed")
            }
        }
    }

    /// Array-wide synchronization (`athread_syn(ARRAY_SCOPE)`).
    ///
    /// Returns the cycle count every participant resumes at: the maximum of
    /// all participants' clocks at entry (a barrier cannot complete before
    /// its slowest member arrives).
    pub fn sync_array(&self, id: usize, cycles: f64) -> f64 {
        self.sync_cycles.lock()[id] = cycles;
        self.barrier.wait();
        let max = self.sync_cycles.lock().iter().cloned().fold(0.0, f64::max);
        // Second rendezvous so nobody races ahead and overwrites the slots
        // for a subsequent sync before everyone has read the maximum.
        self.barrier.wait();
        max
    }

    /// Count of messages still sitting in receive buffers. A well-formed
    /// kernel leaves zero; the cluster runtime asserts this after every
    /// launch.
    pub fn pending_messages(&self) -> usize {
        self.row_links.iter().chain(self.col_links.iter()).map(|l| l.rx.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_message_roundtrip() {
        let f = RegFabric::new();
        let msg = RegMsg { value: V4F64::splat(3.5), send_cycles: 100.0 };
        f.send(Axis::Row, 2, 1, 5, msg);
        assert_eq!(f.pending_messages(), 1);
        let got = f.recv(Axis::Row, 2, 5, 1);
        assert_eq!(got.value, V4F64::splat(3.5));
        assert_eq!(got.send_cycles, 100.0);
        assert_eq!(f.pending_messages(), 0);
    }

    #[test]
    fn col_links_are_distinct_from_row_links() {
        let f = RegFabric::new();
        f.send(Axis::Col, 0, 3, 7, RegMsg { value: V4F64::splat(1.0), send_cycles: 0.0 });
        // Receiving on the row axis from the same indices must not find it.
        f.send(Axis::Row, 7, 0, 3, RegMsg { value: V4F64::splat(2.0), send_cycles: 0.0 });
        let col_msg = f.recv(Axis::Col, 7, 3, 0);
        assert_eq!(col_msg.value, V4F64::splat(1.0));
        let row_msg = f.recv(Axis::Row, 7, 3, 0);
        assert_eq!(row_msg.value, V4F64::splat(2.0));
    }

    #[test]
    fn ordered_pairs_do_not_collide() {
        let f = RegFabric::new();
        // a->b and b->a are different links.
        f.send(Axis::Row, 0, 0, 1, RegMsg { value: V4F64::splat(1.0), send_cycles: 0.0 });
        f.send(Axis::Row, 0, 1, 0, RegMsg { value: V4F64::splat(2.0), send_cycles: 0.0 });
        assert_eq!(f.recv(Axis::Row, 0, 1, 0).value, V4F64::splat(1.0));
        assert_eq!(f.recv(Axis::Row, 0, 0, 1).value, V4F64::splat(2.0));
    }

    #[test]
    #[should_panic(expected = "bad row target")]
    fn self_send_rejected() {
        let f = RegFabric::new();
        f.send(Axis::Row, 0, 3, 3, RegMsg { value: V4F64::zero(), send_cycles: 0.0 });
    }

    #[test]
    fn fifo_order_per_link() {
        let f = RegFabric::new();
        for i in 0..LINK_CAPACITY {
            f.send(Axis::Col, 1, 2, 4, RegMsg { value: V4F64::splat(i as f64), send_cycles: 0.0 });
        }
        for i in 0..LINK_CAPACITY {
            assert_eq!(f.recv(Axis::Col, 4, 2, 1).value, V4F64::splat(i as f64));
        }
    }

    #[test]
    fn sync_array_returns_global_max() {
        use std::sync::Arc;
        let f = Arc::new(RegFabric::new());
        let handles: Vec<_> = (0..64)
            .map(|id| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || f.sync_array(id, id as f64))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 63.0);
        }
    }
}
