//! The Athread-style CPE cluster runtime.
//!
//! `CpeCluster::run` launches a kernel on all 64 CPEs of one core group —
//! the equivalent of `athread_spawn` + `athread_join`. Each CPE executes the
//! kernel body on its own OS thread with a fresh [`CpeCtx`]; the report
//! combines the numerical side effects (already written to shared memory by
//! the kernel) with the performance model: elapsed cycles are the spawn
//! overhead plus the slowest CPE's clock, and PERF counters are aggregated
//! across the cluster.

use crate::config::{ChipConfig, CPE_COLS, CPE_ROWS};
use crate::cpe::CpeCtx;
use crate::perfctr::Counters;
use crate::regcomm::RegFabric;
use crate::trace::Trace;

/// Result of one kernel launch on the CPE cluster.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Modeled elapsed cycles: spawn overhead + max over CPE clocks.
    pub elapsed_cycles: f64,
    /// PERF counters aggregated over all 64 CPEs.
    pub counters: Counters,
    /// Per-CPE final clocks (row-major), for load-balance analysis.
    pub per_cpe_cycles: Vec<f64>,
    /// Largest LDM high-water mark across CPEs, bytes.
    pub ldm_high_water: usize,
}

impl KernelReport {
    /// Modeled wall time of the launch under `cfg`'s clock.
    pub fn seconds(&self, cfg: &ChipConfig) -> f64 {
        cfg.cost.seconds(self.elapsed_cycles)
    }

    /// Load imbalance: max CPE cycles / mean CPE cycles (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.per_cpe_cycles.iter().cloned().fold(0.0, f64::max);
        let mean: f64 =
            self.per_cpe_cycles.iter().sum::<f64>() / self.per_cpe_cycles.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Achieved double-precision flop rate of the launch, flops/s.
    pub fn flops_per_second(&self, cfg: &ChipConfig) -> f64 {
        let secs = self.seconds(cfg);
        if secs == 0.0 {
            0.0
        } else {
            self.counters.flops() as f64 / secs
        }
    }

    /// Merge another launch into this one, serializing their timelines
    /// (used to accumulate multi-launch kernels).
    pub fn merge_sequential(&mut self, other: &KernelReport) {
        self.elapsed_cycles += other.elapsed_cycles;
        self.counters += &other.counters;
        for (a, b) in self.per_cpe_cycles.iter_mut().zip(&other.per_cpe_cycles) {
            *a += b;
        }
        self.ldm_high_water = self.ldm_high_water.max(other.ldm_high_water);
    }
}

/// One core group's CPE cluster.
pub struct CpeCluster {
    cfg: ChipConfig,
}

impl CpeCluster {
    /// Cluster with the given configuration.
    pub fn new(cfg: ChipConfig) -> Self {
        CpeCluster { cfg }
    }

    /// Cluster with default (production-chip) parameters.
    pub fn with_defaults() -> Self {
        Self::new(ChipConfig::default())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Launch `kernel` on all 64 CPEs and wait for completion
    /// (`athread_spawn` + `athread_join`).
    ///
    /// The kernel body is shared by every CPE; it distinguishes its role via
    /// `ctx.row()` / `ctx.col()`. Shared-memory arrays are captured by the
    /// closure as [`SharedSlice`](crate::shared::SharedSlice) /
    /// [`SharedSliceMut`](crate::shared::SharedSliceMut) views.
    ///
    /// # Panics
    /// Propagates kernel panics, and panics if a kernel leaves unconsumed
    /// register-communication messages (a protocol bug on real hardware).
    pub fn run<F>(&self, kernel: F) -> KernelReport
    where
        F: Fn(&mut CpeCtx<'_>) + Sync,
    {
        self.launch(kernel, false).0
    }

    /// Launch with event tracing enabled; returns the report and the
    /// recorded [`Trace`].
    pub fn run_traced<F>(&self, kernel: F) -> (KernelReport, Trace)
    where
        F: Fn(&mut CpeCtx<'_>) + Sync,
    {
        self.launch(kernel, true)
    }

    fn launch<F>(&self, kernel: F, traced: bool) -> (KernelReport, Trace)
    where
        F: Fn(&mut CpeCtx<'_>) + Sync,
    {
        let fabric = RegFabric::new();
        let cost = &self.cfg.cost;
        let n = CPE_ROWS * CPE_COLS;
        let mut per_cpe_cycles = vec![0.0; n];
        let mut counters = Counters::default();
        let mut ldm_high_water = 0;

        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for row in 0..CPE_ROWS {
                for col in 0..CPE_COLS {
                    let fabric = &fabric;
                    let kernel = &kernel;
                    handles.push(scope.spawn(move || {
                        let mut ctx = CpeCtx::new(row, col, cost, fabric);
                        if traced {
                            ctx.enable_trace();
                        }
                        kernel(&mut ctx);
                        let events = ctx.take_events();
                        (ctx.cycles(), ctx.counters(), ctx.ldm.high_water(), events)
                    }));
                }
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("CPE kernel panicked"))
                .collect::<Vec<_>>()
        });

        let mut trace = Trace::default();
        for (i, (cycles, ctrs, hw, events)) in results.into_iter().enumerate() {
            per_cpe_cycles[i] = cycles;
            counters += &ctrs;
            ldm_high_water = ldm_high_water.max(hw);
            trace.events.extend(events);
        }

        assert_eq!(
            fabric.pending_messages(),
            0,
            "kernel left unconsumed register-communication messages"
        );

        let max_cycles = per_cpe_cycles.iter().cloned().fold(0.0, f64::max);
        (
            KernelReport {
                elapsed_cycles: cost.spawn_overhead_cycles + max_cycles,
                counters,
                per_cpe_cycles,
                ldm_high_water,
            },
            trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::{SharedSlice, SharedSliceMut, WriteTracker};
    use crate::vector::V4F64;

    /// Each CPE scales its own 64-element strip of a 4096-element array.
    #[test]
    fn data_parallel_kernel_computes_and_accounts() {
        let cluster = CpeCluster::with_defaults();
        let src: Vec<f64> = (0..4096).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 4096];
        let report = {
            let s = SharedSlice::new(&src);
            let d = SharedSliceMut::new(&mut dst).with_tracker(WriteTracker::new());
            cluster.run(|ctx| {
                let chunk = 64;
                let start = ctx.id() * chunk;
                let mut buf = ctx.ldm_alloc(chunk).unwrap();
                ctx.dma_get(s, start..start + chunk, &mut buf);
                for x in buf.iter_mut() {
                    *x *= 2.0;
                }
                ctx.charge_vflops(chunk as u64);
                ctx.dma_put(&d, start, &buf);
            })
        };
        for (i, &x) in dst.iter().enumerate() {
            assert_eq!(x, 2.0 * i as f64);
        }
        assert_eq!(report.counters.dma_bytes_in, 4096 * 8);
        assert_eq!(report.counters.dma_bytes_out, 4096 * 8);
        assert_eq!(report.counters.dma_transfers, 128);
        assert_eq!(report.counters.vflops, 4096);
        assert!(report.elapsed_cycles > cluster.config().cost.spawn_overhead_cycles);
        assert!(report.seconds(cluster.config()) > 0.0);
        assert!(report.imbalance() > 0.999 && report.imbalance() < 1.2);
        assert_eq!(report.ldm_high_water, 64 * 8);
    }

    /// A column chain: CPE (r, c) receives from (r-1, c), adds, forwards.
    #[test]
    fn column_chain_over_register_communication() {
        let cluster = CpeCluster::with_defaults();
        let mut out = vec![0.0; 64];
        let report = {
            let d = SharedSliceMut::new(&mut out);
            cluster.run(|ctx| {
                let acc = if ctx.row() == 0 {
                    V4F64::splat(1.0)
                } else {
                    let prev = ctx.reg_recv_col(ctx.row() - 1);
                    prev + V4F64::splat(1.0)
                };
                if ctx.row() < 7 {
                    ctx.reg_send_col(ctx.row() + 1, acc);
                }
                ctx.gst(&d, ctx.id(), acc[0]);
            })
        };
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(out[row * 8 + col], (row + 1) as f64);
            }
        }
        assert_eq!(report.counters.reg_sends, 56);
        assert_eq!(report.counters.reg_recvs, 56);
        // The chain serializes: last row's clock must exceed first row's.
        let first = report.per_cpe_cycles[0];
        let last = report.per_cpe_cycles[63];
        assert!(last > first);
    }

    #[test]
    fn sync_array_aligns_clocks() {
        let cluster = CpeCluster::with_defaults();
        let report = cluster.run(|ctx| {
            // Uneven work before the barrier...
            ctx.charge_sflops((ctx.id() as u64 + 1) * 100);
            ctx.sync_array();
            // ...identical work after.
            ctx.charge_sflops(10);
        });
        let min = report.per_cpe_cycles.iter().cloned().fold(f64::MAX, f64::min);
        let max = report.per_cpe_cycles.iter().cloned().fold(0.0, f64::max);
        assert!((max - min).abs() < 1e-9, "clocks diverged: {min} vs {max}");
    }

    #[test]
    #[should_panic(expected = "unconsumed register-communication")]
    fn leftover_messages_are_rejected() {
        let cluster = CpeCluster::with_defaults();
        cluster.run(|ctx| {
            if ctx.id() == 0 {
                ctx.reg_send_row(1, V4F64::zero());
            }
        });
    }

    #[test]
    fn merge_sequential_accumulates() {
        let cluster = CpeCluster::with_defaults();
        let mut a = cluster.run(|ctx| ctx.charge_vflops(8));
        let b = cluster.run(|ctx| ctx.charge_vflops(8));
        let total = a.elapsed_cycles + b.elapsed_cycles;
        a.merge_sequential(&b);
        assert_eq!(a.elapsed_cycles, total);
        assert_eq!(a.counters.vflops, 2 * 64 * 8);
    }
}
