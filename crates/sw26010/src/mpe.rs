//! The Management Processing Element (MPE) cost model.
//!
//! The MPE is "a complete 64-bit RISC core" that is "generally used for
//! handling management and communication functions" but can compute. The
//! original port in the paper ran CAM entirely on MPEs — the `ori` curves of
//! Figure 6 and the `MPE` column of Table 1 — and came out 2–11x slower than
//! one Intel core. The MPE model here is the same roofline-style accountant
//! used for the Intel reference: the caller runs plain Rust code for the
//! numerics and charges flops and memory traffic; modeled time is the sum of
//! compute and memory terms (a scalar in-order core overlaps them poorly).

use crate::config::CostModel;
use crate::perfctr::Counters;

/// MPE execution accountant.
#[derive(Debug, Default, Clone)]
pub struct Mpe {
    counters: Counters,
}

impl Mpe {
    /// Fresh accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` retired double-precision flops (all scalar on the MPE).
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.counters.sflops += n;
    }

    /// Charge `bytes` of main-memory traffic.
    #[inline]
    pub fn charge_mem(&mut self, bytes: u64) {
        // Booked as gld traffic: the MPE has caches, but the climate kernels
        // stream far more data than the 256 KB L2 holds.
        self.counters.gld_bytes += bytes;
    }

    /// Counters accumulated so far.
    #[inline]
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Modeled elapsed seconds for the charged work under `cost`.
    pub fn seconds(&self, cost: &CostModel) -> f64 {
        let compute = self.counters.flops() as f64 / (cost.mpe_flops_per_cycle * cost.clock_hz);
        let memory = self.counters.mem_bytes() as f64 / cost.mpe_mem_bw;
        compute + memory
    }

    /// Reset the accumulated counters.
    pub fn reset(&mut self) {
        self.counters = Counters::default();
    }
}

/// Roofline accountant for a conventional CPU core (the "Intel" reference
/// column: one core of a Xeon E5-2680 v3 in the paper's Table 1).
///
/// A 2.5 GHz Haswell core with 256-bit FMA peaks at 40 Gflop/s but sustains
/// far less on spectral-element kernels; the defaults below are calibrated so
/// the Table 1 Intel-vs-MPE ratios come out in the paper's 2.4–11x band.
#[derive(Debug, Clone)]
pub struct CpuCoreModel {
    /// Sustained flops/s of one core on dycore kernels.
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth of one core, bytes/s.
    pub mem_bw: f64,
}

impl Default for CpuCoreModel {
    fn default() -> Self {
        // ~10% of FMA peak plus a per-core share of socket bandwidth: typical
        // measured numbers for HOMME-class kernels on Haswell.
        CpuCoreModel { flops_per_sec: 4.0e9, mem_bw: 5.0e9 }
    }
}

impl CpuCoreModel {
    /// Modeled seconds to retire `flops` while moving `bytes`, with perfect
    /// overlap (out-of-order core): `max(compute, memory)`.
    pub fn seconds(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / self.flops_per_sec;
        let memory = bytes as f64 / self.mem_bw;
        compute.max(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpe_time_adds_compute_and_memory() {
        let cost = CostModel::default();
        let mut mpe = Mpe::new();
        mpe.charge_flops(1_450_000_000); // 1 s of compute at 1 flop/cycle
        mpe.charge_mem(4_000_000_000); // 1 s of memory at 4 GB/s
        let t = mpe.seconds(&cost);
        assert!((t - 2.0).abs() < 1e-9, "t = {t}");
        assert_eq!(mpe.counters().flops(), 1_450_000_000);
        mpe.reset();
        assert_eq!(mpe.counters().flops(), 0);
    }

    #[test]
    fn cpu_core_overlaps_compute_and_memory() {
        let cpu = CpuCoreModel::default();
        let t = cpu.seconds(4_000_000_000, 5_000_000_000);
        assert!((t - 1.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn mpe_is_slower_than_intel_core_on_balanced_kernel() {
        // Same kernel: 1 Gflop, 2 GB of traffic. The paper's Table 1 puts the
        // MPE at 2.4-11x slower than one Intel core; check we're in band.
        let cost = CostModel::default();
        let cpu = CpuCoreModel::default();
        let mut mpe = Mpe::new();
        mpe.charge_flops(1_000_000_000);
        mpe.charge_mem(2_000_000_000);
        let ratio = mpe.seconds(&cost) / cpu.seconds(1_000_000_000, 2_000_000_000);
        assert!(ratio > 1.4 && ratio < 11.0, "MPE/Intel ratio = {ratio}");
    }
}
