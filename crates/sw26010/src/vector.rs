//! 256-bit vector type of the SW26010 CPE and its shuffle instruction.
//!
//! Each CPE has 256-bit wide vector registers holding four `f64` lanes. The
//! Athread redesign in the paper relies on two properties of these registers:
//! fused multiply-add throughput (8 flops/cycle) and the `Shuffle(a, b, mask)`
//! instruction used to transpose 4x4 blocks entirely in registers
//! (paper Section 7.5, Figure 3).

use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// Four-lane double-precision vector register.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct V4F64(pub [f64; 4]);

impl V4F64 {
    /// All lanes set to `x`.
    #[inline]
    pub fn splat(x: f64) -> Self {
        V4F64([x; 4])
    }

    /// Zero register.
    #[inline]
    pub fn zero() -> Self {
        Self::splat(0.0)
    }

    /// Load four consecutive values from a slice.
    ///
    /// # Panics
    /// Panics if `src.len() < 4`.
    #[inline]
    pub fn load(src: &[f64]) -> Self {
        V4F64([src[0], src[1], src[2], src[3]])
    }

    /// Store the four lanes into the first four slots of `dst`.
    ///
    /// # Panics
    /// Panics if `dst.len() < 4`.
    #[inline]
    pub fn store(self, dst: &mut [f64]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// Fused multiply-add: `self * b + c`, one instruction on the CPE.
    #[inline]
    pub fn fma(self, b: Self, c: Self) -> Self {
        V4F64([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// Horizontal sum of the four lanes.
    #[inline]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// Lane-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        V4F64([
            self.0[0].max(other.0[0]),
            self.0[1].max(other.0[1]),
            self.0[2].max(other.0[2]),
            self.0[3].max(other.0[3]),
        ])
    }

    /// Lane-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        V4F64([
            self.0[0].min(other.0[0]),
            self.0[1].min(other.0[1]),
            self.0[2].min(other.0[2]),
            self.0[3].min(other.0[3]),
        ])
    }

    /// Lane-wise natural logarithm. The CPE has no vector `ln`; the host
    /// blocked kernels use this for the geopotential scan, and because it
    /// applies scalar `f64::ln` per lane the result is bitwise identical
    /// to the scalar code path.
    #[inline]
    pub fn ln(self) -> Self {
        V4F64([self.0[0].ln(), self.0[1].ln(), self.0[2].ln(), self.0[3].ln()])
    }

    /// Broadcast lane `lane` to all four lanes — the register form of the
    /// duplicated-lane ragged tail in the member-lane kernels (a dead lane
    /// carries a copy of a live member so no lane ever holds garbage).
    ///
    /// # Panics
    /// Panics if `lane >= 4`.
    #[inline]
    pub fn splat_lane(self, lane: usize) -> Self {
        Self::splat(self.0[lane])
    }

    /// The SW26010 `Shuffle(a, b, mask)` instruction.
    ///
    /// The result takes two lanes from `a` and two lanes from `b`:
    /// lanes 0-1 of the result are `a[mask.a0]`, `a[mask.a1]`; lanes 2-3 are
    /// `b[mask.b0]`, `b[mask.b1]` (matching the instruction sketch in the
    /// paper's Figure 3, where the first two numbers come from `a` and the
    /// other two from `b`).
    #[inline]
    pub fn shuffle(a: Self, b: Self, mask: ShuffleMask) -> Self {
        V4F64([
            a.0[mask.a0 as usize],
            a.0[mask.a1 as usize],
            b.0[mask.b0 as usize],
            b.0[mask.b1 as usize],
        ])
    }
}

/// Lane-selection mask for [`V4F64::shuffle`]. Each field is a lane index
/// 0..4: `a0`/`a1` select from the first operand, `b0`/`b1` from the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleMask {
    pub a0: u8,
    pub a1: u8,
    pub b0: u8,
    pub b1: u8,
}

impl ShuffleMask {
    /// Build a mask, validating lane indices.
    ///
    /// # Panics
    /// Panics if any index is >= 4.
    pub fn new(a0: u8, a1: u8, b0: u8, b1: u8) -> Self {
        assert!(a0 < 4 && a1 < 4 && b0 < 4 && b1 < 4, "lane index out of range");
        ShuffleMask { a0, a1, b0, b1 }
    }
}

impl Add for V4F64 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        V4F64([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }
}

impl Sub for V4F64 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        V4F64([
            self.0[0] - o.0[0],
            self.0[1] - o.0[1],
            self.0[2] - o.0[2],
            self.0[3] - o.0[3],
        ])
    }
}

impl Mul for V4F64 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        V4F64([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }
}

impl Div for V4F64 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        V4F64([
            self.0[0] / o.0[0],
            self.0[1] / o.0[1],
            self.0[2] / o.0[2],
            self.0[3] / o.0[3],
        ])
    }
}

impl Neg for V4F64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        V4F64([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

impl Mul<f64> for V4F64 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        self * V4F64::splat(s)
    }
}

impl Index<usize> for V4F64 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for V4F64 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

/// Transpose a 4x4 block held in four vector registers using 8 shuffles,
/// exactly the register-level scheme of the paper's Figure 3 (two rounds of
/// pairwise lane interleaving).
///
/// Row `i` of the input becomes column `i` of the output.
#[inline]
pub fn transpose4x4(rows: [V4F64; 4]) -> [V4F64; 4] {
    // Round 1: interleave 2x2 sub-blocks.
    let t0 = V4F64::shuffle(rows[0], rows[1], ShuffleMask::new(0, 2, 0, 2)); // a0 a2 b0 b2
    let t1 = V4F64::shuffle(rows[0], rows[1], ShuffleMask::new(1, 3, 1, 3)); // a1 a3 b1 b3
    let t2 = V4F64::shuffle(rows[2], rows[3], ShuffleMask::new(0, 2, 0, 2)); // c0 c2 d0 d2
    let t3 = V4F64::shuffle(rows[2], rows[3], ShuffleMask::new(1, 3, 1, 3)); // c1 c3 d1 d3
    // Round 2: gather matching lanes into final columns.
    let c0 = V4F64::shuffle(t0, t2, ShuffleMask::new(0, 2, 0, 2)); // a0 b0 c0 d0
    let c1 = V4F64::shuffle(t1, t3, ShuffleMask::new(0, 2, 0, 2)); // a1 b1 c1 d1
    let c2 = V4F64::shuffle(t0, t2, ShuffleMask::new(1, 3, 1, 3)); // a2 b2 c2 d2
    let c3 = V4F64::shuffle(t1, t3, ShuffleMask::new(1, 3, 1, 3)); // a3 b3 c3 d3
    [c0, c1, c2, c3]
}

/// Number of shuffle instructions used by [`transpose4x4`], for cost
/// accounting (the paper: "a 4 by 4 matrix transposition by using 8 shuffle
/// operations").
pub const TRANSPOSE4X4_SHUFFLES: usize = 8;

/// Cache-blocked out-of-place transposition of a row-major `rows x cols`
/// matrix: `dst[c * rows + r] = src[r * cols + c]`.
///
/// The bulk runs over 4x4 tiles through [`transpose4x4`] — the host
/// analogue of the paper's register shuffle transposition (Section 7.5) —
/// with a scalar loop for the ragged edges. Pure data movement: every
/// value is copied, never recomputed, so the result is bitwise exact.
///
/// # Panics
/// Panics if `src.len()` or `dst.len()` differ from `rows * cols`.
pub fn transpose_blocked(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    assert_eq!(src.len(), rows * cols, "transpose_blocked: bad src length");
    assert_eq!(dst.len(), rows * cols, "transpose_blocked: bad dst length");
    let r4 = rows & !3;
    let c4 = cols & !3;
    for r0 in (0..r4).step_by(4) {
        for c0 in (0..c4).step_by(4) {
            let tile = transpose4x4([
                V4F64::load(&src[r0 * cols + c0..]),
                V4F64::load(&src[(r0 + 1) * cols + c0..]),
                V4F64::load(&src[(r0 + 2) * cols + c0..]),
                V4F64::load(&src[(r0 + 3) * cols + c0..]),
            ]);
            for (j, t) in tile.iter().enumerate() {
                t.store(&mut dst[(c0 + j) * rows + r0..]);
            }
        }
        // Remaining columns of this row band.
        for c in c4..cols {
            for r in r0..r0 + 4 {
                dst[c * rows + r] = src[r * cols + c];
            }
        }
    }
    // Remaining rows.
    for r in r4..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/// Gather four member streams into a lane-interleaved tile:
/// `dst[i][m] = srcs[m][i]`. The bulk runs 4 values at a time through
/// [`transpose4x4`] (pure shuffles, bitwise exact). A ragged member batch
/// duplicates a live member's slice into the dead-lane slots of `srcs` —
/// the mask is applied on the scatter side, never here.
///
/// # Panics
/// Panics if `dst.len()` is not a multiple of 4 or any source is shorter
/// than `dst`.
pub fn interleave4(srcs: [&[f64]; 4], dst: &mut [V4F64]) {
    let n = dst.len();
    assert_eq!(n % 4, 0, "interleave4: tile length must be a multiple of 4");
    for s in &srcs {
        assert!(s.len() >= n, "interleave4: source shorter than tile");
    }
    for i in (0..n).step_by(4) {
        let cols = transpose4x4([
            V4F64::load(&srcs[0][i..]),
            V4F64::load(&srcs[1][i..]),
            V4F64::load(&srcs[2][i..]),
            V4F64::load(&srcs[3][i..]),
        ]);
        dst[i..i + 4].copy_from_slice(&cols);
    }
}

/// Scatter a lane-interleaved tile back to member streams:
/// `dsts[m][i] = src[i][m]` for every live member `m < dsts.len()`. The
/// slice length *is* the lane mask (1..=4 live lanes); duplicated dead
/// lanes are simply never stored.
///
/// # Panics
/// Panics if `dsts` holds more than 4 slices, `src.len()` is not a
/// multiple of 4, or any destination is shorter than `src`.
pub fn deinterleave4(src: &[V4F64], dsts: &mut [&mut [f64]]) {
    let n = src.len();
    assert!(dsts.len() <= 4, "deinterleave4: at most 4 lanes");
    assert_eq!(n % 4, 0, "deinterleave4: tile length must be a multiple of 4");
    for d in dsts.iter() {
        assert!(d.len() >= n, "deinterleave4: destination shorter than tile");
    }
    for i in (0..n).step_by(4) {
        let rows = transpose4x4([src[i], src[i + 1], src[i + 2], src[i + 3]]);
        for (m, d) in dsts.iter_mut().enumerate() {
            rows[m].store(&mut d[i..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_lanewise() {
        let a = V4F64([1.0, 2.0, 3.0, 4.0]);
        let b = V4F64::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).0, [0.5, 1.0, 1.5, 2.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!((a * 3.0).0, [3.0, 6.0, 9.0, 12.0]);
    }

    #[test]
    fn fma_matches_mul_add() {
        let a = V4F64([1.0, 2.0, 3.0, 4.0]);
        let b = V4F64([5.0, 6.0, 7.0, 8.0]);
        let c = V4F64([0.5, 0.5, 0.5, 0.5]);
        let r = a.fma(b, c);
        for i in 0..4 {
            assert_eq!(r[i], a[i].mul_add(b[i], c[i]));
        }
    }

    #[test]
    fn hsum_and_minmax() {
        let a = V4F64([1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.hsum(), -2.0);
        let b = V4F64::zero();
        assert_eq!(a.max(b).0, [1.0, 0.0, 3.0, 0.0]);
        assert_eq!(a.min(b).0, [0.0, -2.0, 0.0, -4.0]);
    }

    #[test]
    fn shuffle_picks_requested_lanes() {
        let a = V4F64([10.0, 11.0, 12.0, 13.0]);
        let b = V4F64([20.0, 21.0, 22.0, 23.0]);
        // The paper's example: positions 0 and 2 of a, positions 0 and 1 of b.
        let r = V4F64::shuffle(a, b, ShuffleMask::new(0, 2, 0, 1));
        assert_eq!(r.0, [10.0, 12.0, 20.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "lane index")]
    fn shuffle_mask_rejects_bad_lane() {
        let _ = ShuffleMask::new(0, 4, 0, 0);
    }

    #[test]
    fn transpose4x4_is_a_transpose() {
        let rows = [
            V4F64([0.0, 1.0, 2.0, 3.0]),
            V4F64([4.0, 5.0, 6.0, 7.0]),
            V4F64([8.0, 9.0, 10.0, 11.0]),
            V4F64([12.0, 13.0, 14.0, 15.0]),
        ];
        let cols = transpose4x4(rows);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(cols[j][i], rows[i][j]);
            }
        }
    }

    #[test]
    fn transpose4x4_involutive() {
        let rows = [
            V4F64([1.5, -2.0, 0.25, 9.0]),
            V4F64([3.0, 7.0, -1.0, 2.0]),
            V4F64([0.0, 4.5, 6.0, -8.0]),
            V4F64([5.0, 1.0, 2.5, 3.5]),
        ];
        assert_eq!(transpose4x4(transpose4x4(rows)), rows);
    }

    #[test]
    fn ln_is_lanewise_scalar_ln() {
        let a = V4F64([1.0, 2.5, 10.0, 0.125]);
        let r = a.ln();
        for i in 0..4 {
            assert_eq!(r[i].to_bits(), a[i].ln().to_bits());
        }
    }

    #[test]
    fn transpose_blocked_matches_naive_for_odd_shapes() {
        for &(rows, cols) in &[(1, 1), (3, 5), (4, 4), (16, 26), (26, 16), (7, 128), (128, 16)] {
            let src: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 0.5 - 3.0).collect();
            let mut dst = vec![0.0; rows * cols];
            transpose_blocked(&src, rows, cols, &mut dst);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(dst[c * rows + r].to_bits(), src[r * cols + c].to_bits());
                }
            }
        }
    }

    #[test]
    fn transpose_blocked_involutive() {
        let (rows, cols) = (6, 10);
        let src: Vec<f64> = (0..rows * cols).map(|i| (i as f64).sin()).collect();
        let mut once = vec![0.0; rows * cols];
        let mut twice = vec![0.0; rows * cols];
        transpose_blocked(&src, rows, cols, &mut once);
        transpose_blocked(&once, cols, rows, &mut twice);
        assert_eq!(src, twice);
    }

    #[test]
    fn splat_lane_broadcasts() {
        let a = V4F64([1.0, -2.5, 3.25, 4.0]);
        for lane in 0..4 {
            assert_eq!(a.splat_lane(lane).0, [a[lane]; 4]);
        }
    }

    #[test]
    fn interleave_deinterleave_roundtrip_bitwise() {
        let n = 32;
        let srcs: Vec<Vec<f64>> =
            (0..4).map(|m| (0..n).map(|i| ((m * n + i) as f64).sin()).collect()).collect();
        let mut tile = vec![V4F64::zero(); n];
        interleave4([&srcs[0], &srcs[1], &srcs[2], &srcs[3]], &mut tile);
        for (i, t) in tile.iter().enumerate() {
            for (m, s) in srcs.iter().enumerate() {
                assert_eq!(t[m].to_bits(), s[i].to_bits());
            }
        }
        let mut outs = vec![vec![0.0f64; n]; 4];
        {
            let mut views: Vec<&mut [f64]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            deinterleave4(&tile, &mut views);
        }
        for (o, s) in outs.iter().zip(&srcs) {
            assert_eq!(o, s);
        }
    }

    #[test]
    fn deinterleave_masks_dead_lanes() {
        // A ragged 3-member batch: lane 3 duplicates lane 2 on gather, and
        // the scatter side must leave non-member storage untouched.
        let n = 8;
        let srcs: Vec<Vec<f64>> = (0..3).map(|m| vec![m as f64 + 0.5; n]).collect();
        let mut tile = vec![V4F64::zero(); n];
        interleave4([&srcs[0], &srcs[1], &srcs[2], &srcs[2]], &mut tile);
        let mut outs = vec![vec![-9.0f64; n]; 4];
        {
            let mut views: Vec<&mut [f64]> =
                outs.iter_mut().take(3).map(|o| o.as_mut_slice()).collect();
            deinterleave4(&tile, &mut views);
        }
        for m in 0..3 {
            assert_eq!(outs[m], srcs[m]);
        }
        assert_eq!(outs[3], vec![-9.0f64; n], "dead lane must not be stored");
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v = V4F64::load(&src);
        let mut dst = [0.0; 4];
        v.store(&mut dst);
        assert_eq!(dst, [1.0, 2.0, 3.0, 4.0]);
    }
}
