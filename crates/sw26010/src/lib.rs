//! # sw26010 — a functional + performance simulator of the SW26010 processor
//!
//! The Sunway TaihuLight's SW26010 heterogeneous many-core processor is the
//! hardware substrate of *Redesigning CAM-SE for Peta-Scale Climate Modeling
//! Performance and Ultra-High Resolution on Sunway TaihuLight* (SC'17). This
//! crate reproduces the architectural features that paper's redesign exploits:
//!
//! * **Core groups**: 1 management core (MPE) + an 8x8 mesh of compute cores
//!   (CPEs), four CGs per chip ([`chip`], [`config`]).
//! * **64 KB user-managed LDM scratchpad** per CPE, with hard budget
//!   enforcement ([`ldm`]).
//! * **DMA** between main memory and LDM, and slow direct `gld`/`gst` access
//!   ([`cpe`], [`shared`]).
//! * **Register communication** between same-row / same-column CPEs, the
//!   basis of the paper's parallel vertical scan and its distributed
//!   transposition ([`regcomm`]).
//! * **256-bit vectors with shuffle**, used for in-register 4x4 transposes
//!   ([`vector`]).
//! * An **Athread-style cluster runtime** that launches a kernel closure on
//!   64 threads and reports modeled cycles plus PERF-style counters
//!   ([`cluster`], [`perfctr`]).
//!
//! Kernels are *functionally executed* — every `f64` the kernel writes is
//! real — while every DMA, register message, shuffle, and annotated flop is
//! charged to a calibrated cycle model, so one run produces both the answer
//! and the performance measurement the benchmark harness needs.
//!
//! ```
//! use sw26010::{CpeCluster, SharedSlice, SharedSliceMut};
//!
//! let cluster = CpeCluster::with_defaults();
//! let src: Vec<f64> = (0..512).map(|i| i as f64).collect();
//! let mut dst = vec![0.0; 512];
//! let report = {
//!     let s = SharedSlice::new(&src);
//!     let d = SharedSliceMut::new(&mut dst);
//!     cluster.run(|ctx| {
//!         let start = ctx.id() * 8;
//!         let mut buf = ctx.ldm_alloc(8).unwrap();
//!         ctx.dma_get(s, start..start + 8, &mut buf);
//!         for x in buf.iter_mut() { *x += 1.0; }
//!         ctx.charge_vflops(8);
//!         ctx.dma_put(&d, start, &buf);
//!     })
//! };
//! assert_eq!(dst[100], 101.0);
//! assert!(report.seconds(cluster.config()) > 0.0);
//! ```

pub mod chip;
pub mod cluster;
pub mod config;
pub mod cpe;
pub mod ldm;
pub mod mpe;
pub mod perfctr;
pub mod regcomm;
pub mod shared;
pub mod trace;
pub mod vector;

pub use chip::{Chip, CoreGroup};
pub use cluster::{CpeCluster, KernelReport};
pub use config::{
    ChipConfig, CostModel, CGS_PER_CHIP, CPES_PER_CG, CPE_COLS, CPE_ROWS, LDM_BYTES, VLEN,
};
pub use cpe::CpeCtx;
pub use ldm::{Ldm, LdmBuf, LdmOverflow};
pub use mpe::{CpuCoreModel, Mpe};
pub use perfctr::Counters;
pub use shared::{SharedSlice, SharedSliceMut, WriteTracker};
pub use trace::{Event, EventKind, Trace};
pub use vector::{deinterleave4, interleave4, transpose4x4, transpose_blocked, ShuffleMask, V4F64};
