//! Performance counters mirroring the Sunway `PERF` hardware monitor.
//!
//! The paper measures flops by "using hardware performance monitor of the
//! Sunway TaihuLight supercomputer, PERF, to collect the retired
//! double-precision arithmetic instructions on the CPE cluster" (Section
//! 8.1.1). The simulator keeps the same books: every kernel accumulates
//! retired scalar/vector flops, DMA traffic, direct global accesses, and
//! register-communication operations, which the benchmark harness then turns
//! into PFlops figures and data-transfer-volume comparisons (the 10x
//! reduction of Algorithm 2 over Algorithm 1).

/// Retired-operation counters for one CPE (or one MPE).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Retired vector flops (each 4-lane FMA counts 8).
    pub vflops: u64,
    /// Retired scalar flops.
    pub sflops: u64,
    /// Bytes moved main memory -> LDM by DMA.
    pub dma_bytes_in: u64,
    /// Bytes moved LDM -> main memory by DMA.
    pub dma_bytes_out: u64,
    /// Number of DMA descriptors issued.
    pub dma_transfers: u64,
    /// Bytes read by direct `gld` accesses.
    pub gld_bytes: u64,
    /// Bytes written by direct `gst` accesses.
    pub gst_bytes: u64,
    /// Register-communication messages sent.
    pub reg_sends: u64,
    /// Register-communication messages received.
    pub reg_recvs: u64,
    /// Vector shuffle instructions retired.
    pub shuffles: u64,
}

impl Counters {
    /// Total retired double-precision flops.
    #[inline]
    pub fn flops(&self) -> u64 {
        self.vflops + self.sflops
    }

    /// Total bytes that crossed the memory interface (DMA + gld/gst).
    /// This is the quantity the paper's Algorithm 2 reduces to 10% of the
    /// OpenACC version.
    #[inline]
    pub fn mem_bytes(&self) -> u64 {
        self.dma_bytes_in + self.dma_bytes_out + self.gld_bytes + self.gst_bytes
    }

    /// Arithmetic intensity, flops per memory byte.
    pub fn intensity(&self) -> f64 {
        let b = self.mem_bytes();
        if b == 0 {
            f64::INFINITY
        } else {
            self.flops() as f64 / b as f64
        }
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &Counters) {
        self.vflops += other.vflops;
        self.sflops += other.sflops;
        self.dma_bytes_in += other.dma_bytes_in;
        self.dma_bytes_out += other.dma_bytes_out;
        self.dma_transfers += other.dma_transfers;
        self.gld_bytes += other.gld_bytes;
        self.gst_bytes += other.gst_bytes;
        self.reg_sends += other.reg_sends;
        self.reg_recvs += other.reg_recvs;
        self.shuffles += other.shuffles;
    }
}

impl std::ops::AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, rhs: &Counters) {
        self.add(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_intensity() {
        let c = Counters {
            vflops: 800,
            sflops: 200,
            dma_bytes_in: 300,
            dma_bytes_out: 100,
            gld_bytes: 50,
            gst_bytes: 50,
            ..Default::default()
        };
        assert_eq!(c.flops(), 1000);
        assert_eq!(c.mem_bytes(), 500);
        assert!((c.intensity() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn zero_bytes_gives_infinite_intensity() {
        let c = Counters { vflops: 8, ..Default::default() };
        assert!(c.intensity().is_infinite());
    }

    #[test]
    fn accumulation() {
        let mut a = Counters { vflops: 1, reg_sends: 2, ..Default::default() };
        let b = Counters { vflops: 3, reg_recvs: 4, dma_transfers: 1, ..Default::default() };
        a += &b;
        assert_eq!(a.vflops, 4);
        assert_eq!(a.reg_sends, 2);
        assert_eq!(a.reg_recvs, 4);
        assert_eq!(a.dma_transfers, 1);
    }
}
