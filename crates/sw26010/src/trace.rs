//! Event tracing for kernel launches: a per-CPE timeline of DMA,
//! register-communication and compute events, in the spirit of the Sunway
//! performance tools the paper's team used to find the OpenACC bandwidth
//! bottleneck.
//!
//! Tracing is opt-in per launch (`CpeCluster::run_traced`); the collected
//! [`Trace`] can be queried (busy fractions, event counts) or dumped as a
//! text timeline for debugging kernel schedules.

use crate::perfctr::Counters;

/// Kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// DMA main-memory -> LDM.
    DmaGet,
    /// DMA LDM -> main memory.
    DmaPut,
    /// Register-communication send.
    RegSend,
    /// Register-communication receive (includes blocking wait).
    RegRecv,
    /// Annotated compute.
    Compute,
    /// Array-wide barrier.
    Sync,
}

/// One traced event on one CPE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// CPE id (0..64).
    pub cpe: usize,
    /// Kind.
    pub kind: EventKind,
    /// Cycle at which the event began.
    pub start_cycles: f64,
    /// Cycles the event occupied.
    pub duration_cycles: f64,
    /// Payload bytes (DMA) or flops (compute); 0 otherwise.
    pub amount: u64,
}

/// A recorded kernel timeline.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, grouped per CPE in issue order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Events of one CPE, in order.
    pub fn of_cpe(&self, cpe: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.cpe == cpe)
    }

    /// Total cycles a CPE spent in events of `kind`.
    pub fn cycles_in(&self, cpe: usize, kind: EventKind) -> f64 {
        self.of_cpe(cpe).filter(|e| e.kind == kind).map(|e| e.duration_cycles).sum()
    }

    /// Fraction of a CPE's active time spent in `kind`.
    pub fn fraction_in(&self, cpe: usize, kind: EventKind) -> f64 {
        let total: f64 = self.of_cpe(cpe).map(|e| e.duration_cycles).sum();
        if total == 0.0 {
            0.0
        } else {
            self.cycles_in(cpe, kind) / total
        }
    }

    /// Count of events of `kind` across the cluster.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Cross-check: the traced DMA bytes must equal the PERF counters'.
    pub fn consistent_with(&self, counters: &Counters) -> bool {
        let dma_in: u64 = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::DmaGet)
            .map(|e| e.amount)
            .sum();
        let dma_out: u64 = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::DmaPut)
            .map(|e| e.amount)
            .sum();
        dma_in == counters.dma_bytes_in && dma_out == counters.dma_bytes_out
    }

    /// A compact text timeline of one CPE (debugging aid).
    pub fn timeline(&self, cpe: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for e in self.of_cpe(cpe) {
            let _ = writeln!(
                s,
                "[{:>12.0} +{:>8.0}] {:?} ({})",
                e.start_cycles, e.duration_cycles, e.kind, e.amount
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::CpeCluster;
    use crate::shared::{SharedSlice, SharedSliceMut};
    use crate::vector::V4F64;

    #[test]
    fn traced_launch_records_everything() {
        let cluster = CpeCluster::with_defaults();
        let src: Vec<f64> = (0..512).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 512];
        let (report, trace) = {
            let s = SharedSlice::new(&src);
            let d = SharedSliceMut::new(&mut dst);
            cluster.run_traced(|ctx| {
                let start = ctx.id() * 8;
                let mut buf = ctx.ldm_alloc(8).unwrap();
                ctx.dma_get(s, start..start + 8, &mut buf);
                ctx.charge_vflops(8);
                if ctx.col() < 7 {
                    ctx.reg_send_row(ctx.col() + 1, V4F64::splat(1.0));
                }
                if ctx.col() > 0 {
                    let _ = ctx.reg_recv_row(ctx.col() - 1);
                }
                ctx.dma_put(&d, start, &buf);
            })
        };
        assert_eq!(trace.count(EventKind::DmaGet), 64);
        assert_eq!(trace.count(EventKind::DmaPut), 64);
        assert_eq!(trace.count(EventKind::RegSend), 56);
        assert_eq!(trace.count(EventKind::RegRecv), 56);
        assert_eq!(trace.count(EventKind::Compute), 64);
        assert!(trace.consistent_with(&report.counters));
        // Events on one CPE are chronologically ordered.
        let ev: Vec<&Event> = trace.of_cpe(5).collect();
        for w in ev.windows(2) {
            assert!(w[1].start_cycles >= w[0].start_cycles);
        }
        // A DMA-bound toy kernel: DMA dominates compute on every CPE.
        for cpe in 0..64 {
            assert!(
                trace.cycles_in(cpe, EventKind::DmaGet) > trace.cycles_in(cpe, EventKind::Compute),
                "cpe {cpe}"
            );
            let f = trace.fraction_in(cpe, EventKind::DmaGet);
            assert!(f > 0.0 && f < 1.0);
        }
        let text = trace.timeline(0);
        assert!(text.contains("DmaGet") && text.contains("DmaPut"));
    }

    #[test]
    fn untraced_launch_collects_no_events() {
        let cluster = CpeCluster::with_defaults();
        let report = cluster.run(|ctx| ctx.charge_sflops(10));
        assert_eq!(report.counters.sflops, 640);
    }
}
