//! Chip configuration and cycle-cost parameters for the SW26010 model.
//!
//! The constants here are drawn from the public descriptions of the SW26010
//! in the paper (Section 5) and the TaihuLight system paper (Fu et al.,
//! *Science China Information Sciences*, 2016): 260 cores per chip grouped
//! into 4 core groups (CGs), each CG holding one MPE, an 8x8 CPE mesh and a
//! memory controller; 64 KB LDM per CPE; 32 GB memory per chip at 136 GB/s
//! aggregate (34 GB/s per CG); 1.45 GHz clock; 256-bit vector units.
//!
//! Where the paper gives no exact figure (DMA latency, register-communication
//! latency, gld/gst throughput) we use the values commonly reported in the
//! SW26010 micro-benchmarking literature and mark them as calibration
//! constants: the *ratios* between them are what drive every redesign
//! decision the paper describes, and the reproduction targets those ratios.

/// Geometry of one core group's CPE cluster (fixed by the hardware).
pub const CPE_ROWS: usize = 8;
/// Number of CPE columns in the mesh.
pub const CPE_COLS: usize = 8;
/// Total CPEs in one core group.
pub const CPES_PER_CG: usize = CPE_ROWS * CPE_COLS;
/// Core groups per chip.
pub const CGS_PER_CHIP: usize = 4;
/// Local Data Memory (scratchpad) per CPE, in bytes.
pub const LDM_BYTES: usize = 64 * 1024;
/// Vector width in `f64` lanes (256-bit vectors).
pub const VLEN: usize = 4;

/// Cycle-level cost parameters of one core group.
///
/// All throughputs are expressed per CPE unless stated otherwise. Times are
/// derived as `cycles / clock_hz`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Core clock, Hz (1.45 GHz on the production chip).
    pub clock_hz: f64,
    /// Peak vector flops per cycle per CPE (4 lanes x FMA = 8).
    pub vflops_per_cycle: f64,
    /// Scalar flops per cycle per CPE (no dual issue for scalar FP).
    pub sflops_per_cycle: f64,
    /// DMA startup latency, cycles (descriptor setup + memory round trip).
    pub dma_latency_cycles: f64,
    /// Aggregate DMA bandwidth of the whole CPE cluster, bytes/s.
    ///
    /// Micro-benchmarks place the achievable cluster DMA bandwidth at
    /// ~28 GB/s of the CG's 34 GB/s share.
    pub dma_cluster_bw: f64,
    /// Bandwidth of direct global loads/stores (`gld`/`gst`) issued by CPEs,
    /// bytes/s for the whole cluster. These bypass the DMA engine, are not
    /// coalesced, and are roughly an order of magnitude slower -- the reason
    /// the OpenACC fallback path is so expensive.
    pub gld_cluster_bw: f64,
    /// Latency of a single gld/gst element access, cycles.
    pub gld_latency_cycles: f64,
    /// One register-communication send or receive, cycles ("within tens of
    /// cycles" per the paper; ~10-11 measured).
    pub regcomm_cycles: f64,
    /// One 256-bit register shuffle, cycles.
    pub shuffle_cycles: f64,
    /// Fixed cost of launching a kernel on the CPE cluster, cycles
    /// (thread wake-up + argument broadcast). This is the "threading
    /// overhead" the paper calls out as a huge issue for OpenACC with many
    /// small kernels.
    pub spawn_overhead_cycles: f64,
    /// MPE scalar flops per cycle.
    pub mpe_flops_per_cycle: f64,
    /// MPE effective memory bandwidth, bytes/s (cache-mediated).
    pub mpe_mem_bw: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_hz: 1.45e9,
            vflops_per_cycle: 8.0,
            sflops_per_cycle: 1.0,
            dma_latency_cycles: 270.0,
            dma_cluster_bw: 28.0e9,
            gld_cluster_bw: 1.5e9,
            gld_latency_cycles: 177.0,
            regcomm_cycles: 11.0,
            shuffle_cycles: 1.0,
            spawn_overhead_cycles: 8_000.0,
            mpe_flops_per_cycle: 1.0,
            mpe_mem_bw: 4.0e9,
        }
    }
}

impl CostModel {
    /// Seconds corresponding to `cycles` at the model clock.
    #[inline]
    pub fn seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }

    /// Cycles to move `bytes` by DMA as one transfer (per-CPE view: the
    /// cluster bandwidth is shared by all 64 CPEs, so a single CPE's
    /// transfer sees 1/64 of it when the cluster is fully busy).
    #[inline]
    pub fn dma_cycles(&self, bytes: usize) -> f64 {
        let per_cpe_bw = self.dma_cluster_bw / CPES_PER_CG as f64;
        self.dma_latency_cycles + bytes as f64 / per_cpe_bw * self.clock_hz
    }

    /// Cycles for a direct global load/store of `bytes` from a CPE.
    #[inline]
    pub fn gld_cycles(&self, bytes: usize) -> f64 {
        let per_cpe_bw = self.gld_cluster_bw / CPES_PER_CG as f64;
        self.gld_latency_cycles + bytes as f64 / per_cpe_bw * self.clock_hz
    }

    /// Peak double-precision performance of one CPE cluster, flops/s.
    pub fn cluster_peak_flops(&self) -> f64 {
        self.vflops_per_cycle * self.clock_hz * CPES_PER_CG as f64
    }
}

/// Full chip configuration: geometry plus cost model.
#[derive(Debug, Clone, Default)]
pub struct ChipConfig {
    pub cost: CostModel,
    /// When true, DMA puts record written ranges and panic on overlapping
    /// writes from different CPEs (a data-race detector for kernels).
    pub check_write_races: bool,
}

impl ChipConfig {
    /// Configuration with the write-race detector enabled (used by tests).
    pub fn checked() -> Self {
        ChipConfig { cost: CostModel::default(), check_write_races: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_hardware() {
        assert_eq!(CPES_PER_CG, 64);
        assert_eq!(CGS_PER_CHIP * (CPES_PER_CG + 1), 260);
        assert_eq!(LDM_BYTES, 65536);
    }

    #[test]
    fn cluster_peak_is_about_742_gflops() {
        // 64 CPEs * 8 flops/cycle * 1.45 GHz = 742.4 GFlops; 4 CGs ~ 3 TFlops
        // which matches the paper's "over 3 TFlops per processor".
        let m = CostModel::default();
        let peak = m.cluster_peak_flops();
        assert!((peak - 742.4e9).abs() < 1e9, "peak = {peak}");
        assert!(peak * CGS_PER_CHIP as f64 > 2.9e12);
    }

    #[test]
    fn dma_is_much_faster_than_gld() {
        let m = CostModel::default();
        // For a bulk 16 KB transfer the DMA path must be >10x cheaper than
        // element-wise gld: this ratio is what motivates the Athread rewrite.
        let dma = m.dma_cycles(16 * 1024);
        let gld: f64 = (0..2048).map(|_| m.gld_cycles(8)).sum();
        assert!(gld > 10.0 * dma, "dma={dma} gld={gld}");
    }

    #[test]
    fn seconds_roundtrip() {
        let m = CostModel::default();
        let s = m.seconds(m.clock_hz);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
