//! Views of main (shared) memory as seen from CPE kernels.
//!
//! On the SW26010, the MPE and all 64 CPEs of a core group address the same
//! DRAM. A kernel running on the CPE cluster receives *views* of arrays that
//! live in main memory and moves data in and out through DMA (fast, bulk) or
//! direct `gld`/`gst` accesses (slow, element-wise).
//!
//! Rust's aliasing rules do not allow 64 threads to hold `&mut` to one array,
//! so writable views are pointer-based with an explicit safety contract:
//! kernels must write disjoint ranges. A debug-time race detector
//! ([`WriteTracker`]) can be attached to enforce the contract at test time,
//! mirroring how real Athread kernels are validated.

use parking_lot::Mutex;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// Read-only view of a main-memory array, shareable across CPE threads.
#[derive(Clone, Copy)]
pub struct SharedSlice<'a> {
    ptr: *const f64,
    len: usize,
    _life: PhantomData<&'a [f64]>,
}

// SAFETY: the view is read-only and constructed from a shared borrow, so
// concurrent reads from many threads are sound.
unsafe impl Send for SharedSlice<'_> {}
unsafe impl Sync for SharedSlice<'_> {}

impl<'a> SharedSlice<'a> {
    /// Wrap a borrowed slice.
    pub fn new(data: &'a [f64]) -> Self {
        SharedSlice { ptr: data.as_ptr(), len: data.len(), _life: PhantomData }
    }

    /// Length of the underlying array.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow a sub-range.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn range(&self, r: Range<usize>) -> &'a [f64] {
        assert!(r.end <= self.len, "SharedSlice range {r:?} out of bounds (len {})", self.len);
        // SAFETY: bounds checked above; lifetime tied to the original borrow.
        unsafe { std::slice::from_raw_parts(self.ptr.add(r.start), r.end - r.start) }
    }

    /// Read one element (the functional payload of a `gld`).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "SharedSlice index {i} out of bounds (len {})", self.len);
        // SAFETY: bounds checked above.
        unsafe { *self.ptr.add(i) }
    }
}

/// Interval log used to detect overlapping writes from different CPEs.
#[derive(Debug, Default)]
pub struct WriteTracker {
    /// (start, end, writer id) of every committed write.
    writes: Mutex<Vec<(usize, usize, usize)>>,
}

impl WriteTracker {
    /// Fresh tracker (one per kernel launch).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record a write and panic if it overlaps a previous write by a
    /// *different* writer (same-writer overlap is a legal read-modify-write).
    pub fn record(&self, start: usize, end: usize, writer: usize) {
        let mut w = self.writes.lock();
        for &(s, e, by) in w.iter() {
            if by != writer && start < e && s < end {
                panic!(
                    "write race: CPE {writer} wrote [{start}, {end}) overlapping \
                     CPE {by}'s write [{s}, {e})"
                );
            }
        }
        w.push((start, end, writer));
    }
}

/// Writable view of a main-memory array for CPE kernels.
///
/// Constructed from an exclusive borrow, so for the lifetime of the view the
/// wrapped array is only reachable through it. Disjointness of writes from
/// different CPEs is the kernel author's obligation; attach a
/// [`WriteTracker`] (see [`SharedSliceMut::with_tracker`]) to check it.
pub struct SharedSliceMut<'a> {
    ptr: *mut f64,
    len: usize,
    tracker: Option<Arc<WriteTracker>>,
    _life: PhantomData<&'a mut [f64]>,
}

// SAFETY: writes go through `write`/`set`, whose disjointness contract is
// documented (and optionally enforced by the tracker); reads of ranges a
// kernel does not concurrently write are sound for the same reason.
unsafe impl Send for SharedSliceMut<'_> {}
unsafe impl Sync for SharedSliceMut<'_> {}

impl<'a> SharedSliceMut<'a> {
    /// Wrap an exclusively borrowed slice.
    pub fn new(data: &'a mut [f64]) -> Self {
        SharedSliceMut { ptr: data.as_mut_ptr(), len: data.len(), tracker: None, _life: PhantomData }
    }

    /// Attach a write-race tracker (used by tests and `ChipConfig::checked`).
    pub fn with_tracker(mut self, t: Arc<WriteTracker>) -> Self {
        self.tracker = Some(t);
        self
    }

    /// Length of the underlying array.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy `src` into the array starting at `offset` on behalf of CPE
    /// `writer` (the functional payload of a DMA put).
    ///
    /// # Panics
    /// Panics on out-of-bounds, or on an overlapping write by another CPE if
    /// a tracker is attached.
    pub fn write(&self, offset: usize, src: &[f64], writer: usize) {
        let end = offset + src.len();
        assert!(end <= self.len, "SharedSliceMut write [{offset}, {end}) out of bounds (len {})", self.len);
        if let Some(t) = &self.tracker {
            t.record(offset, end, writer);
        }
        // SAFETY: bounds checked; disjointness across CPEs is the caller's
        // contract, checked by the tracker when attached.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
    }

    /// Write a single element (the functional payload of a `gst`).
    pub fn set(&self, i: usize, v: f64, writer: usize) {
        assert!(i < self.len, "SharedSliceMut index {i} out of bounds (len {})", self.len);
        if let Some(t) = &self.tracker {
            t.record(i, i + 1, writer);
        }
        // SAFETY: bounds checked above.
        unsafe { *self.ptr.add(i) = v }
    }

    /// Copy a sub-range out of the array (the functional payload of a DMA
    /// get from an array the kernel also writes — e.g. accumulate-in-place).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read_into(&self, r: Range<usize>, dst: &mut [f64]) {
        assert!(r.end <= self.len, "SharedSliceMut read {r:?} out of bounds (len {})", self.len);
        assert_eq!(dst.len(), r.len(), "destination length mismatch");
        // SAFETY: bounds checked; concurrent reads of ranges being written by
        // another CPE are excluded by the kernel disjointness contract.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(r.start), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "SharedSliceMut index {i} out of bounds (len {})", self.len);
        // SAFETY: bounds checked above.
        unsafe { *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_slice_reads() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let s = SharedSlice::new(&data);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.get(2), 3.0);
        assert_eq!(s.range(1..3), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_slice_bounds_checked() {
        let data = vec![1.0];
        let s = SharedSlice::new(&data);
        let _ = s.range(0..2);
    }

    #[test]
    fn shared_slice_mut_write_and_read() {
        let mut data = vec![0.0; 8];
        let s = SharedSliceMut::new(&mut data);
        s.write(2, &[5.0, 6.0], 0);
        s.set(7, 9.0, 1);
        assert_eq!(s.get(2), 5.0);
        let mut out = [0.0; 3];
        s.read_into(2..5, &mut out);
        assert_eq!(out, [5.0, 6.0, 0.0]);
        drop(s);
        assert_eq!(data[7], 9.0);
    }

    #[test]
    fn tracker_allows_disjoint_writes() {
        let mut data = vec![0.0; 8];
        let s = SharedSliceMut::new(&mut data).with_tracker(WriteTracker::new());
        s.write(0, &[1.0, 2.0], 0);
        s.write(2, &[3.0, 4.0], 1);
        s.write(0, &[5.0], 0); // same writer may rewrite its own range
    }

    #[test]
    #[should_panic(expected = "write race")]
    fn tracker_catches_overlap() {
        let mut data = vec![0.0; 8];
        let s = SharedSliceMut::new(&mut data).with_tracker(WriteTracker::new());
        s.write(0, &[1.0, 2.0, 3.0], 0);
        s.write(2, &[9.0], 1);
    }

    #[test]
    fn views_cross_threads() {
        let mut data = vec![0.0; 64];
        let view = SharedSliceMut::new(&mut data);
        std::thread::scope(|sc| {
            for t in 0..4 {
                let v = &view;
                sc.spawn(move || {
                    let chunk: Vec<f64> = (0..16).map(|i| (t * 16 + i) as f64).collect();
                    v.write(t * 16, &chunk, t);
                });
            }
        });
        drop(view);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as f64);
        }
    }
}
