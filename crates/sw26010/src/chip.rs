//! Whole-chip view: four core groups on a network-on-chip.
//!
//! One SW26010 holds 4 core groups (CGs); in the "MPI + X" programming model
//! each CG hosts one MPI process, so most of the reproduction works at CG
//! granularity (`CpeCluster` + `Mpe`). The chip type exists for the places
//! where whole-processor numbers matter: peak flops (the paper's "over
//! 3 TFlops"), the shared 32 GB / 136 GB/s memory interface, and converting
//! between process counts and core counts (the 10,075,000-core headline is
//! 155,000 CGs x 65 cores).

use crate::cluster::CpeCluster;
use crate::config::{ChipConfig, CGS_PER_CHIP, CPES_PER_CG};
use crate::mpe::Mpe;

/// One core group: one MPE plus its 8x8 CPE cluster.
pub struct CoreGroup {
    /// The CPE cluster runtime.
    pub cluster: CpeCluster,
    /// The MPE accountant.
    pub mpe: Mpe,
}

impl CoreGroup {
    /// Core group with the given configuration.
    pub fn new(cfg: ChipConfig) -> Self {
        CoreGroup { cluster: CpeCluster::new(cfg), mpe: Mpe::new() }
    }

    /// Cores in one CG (1 MPE + 64 CPEs).
    pub const CORES: usize = CPES_PER_CG + 1;
}

/// A full SW26010 processor.
pub struct Chip {
    /// The four core groups.
    pub core_groups: Vec<CoreGroup>,
    cfg: ChipConfig,
}

impl Chip {
    /// Chip with the given per-CG configuration.
    pub fn new(cfg: ChipConfig) -> Self {
        Chip {
            core_groups: (0..CGS_PER_CHIP).map(|_| CoreGroup::new(cfg.clone())).collect(),
            cfg,
        }
    }

    /// Total cores on the chip (260).
    pub fn cores(&self) -> usize {
        CGS_PER_CHIP * CoreGroup::CORES
    }

    /// Peak double-precision performance of the chip, flops/s.
    pub fn peak_flops(&self) -> f64 {
        self.cfg.cost.cluster_peak_flops() * CGS_PER_CHIP as f64
    }

    /// Convert a process (CG) count to the core count the paper reports.
    pub fn cores_for_processes(processes: usize) -> usize {
        processes * CoreGroup::CORES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_has_260_cores() {
        let chip = Chip::new(ChipConfig::default());
        assert_eq!(chip.cores(), 260);
        assert_eq!(chip.core_groups.len(), 4);
    }

    #[test]
    fn peak_is_about_3_tflops() {
        let chip = Chip::new(ChipConfig::default());
        let peak = chip.peak_flops();
        assert!(peak > 2.9e12 && peak < 3.1e12, "peak = {peak}");
    }

    #[test]
    fn headline_core_counts_reproduce() {
        // 155,000 processes -> 10,075,000 cores (paper Section 8.4).
        assert_eq!(Chip::cores_for_processes(155_000), 10_075_000);
        // 131,072 processes -> 8,519,680 cores (Figure 7).
        assert_eq!(Chip::cores_for_processes(131_072), 8_519_680);
        // 28,800 processes -> 1,872,000 CPEs + MPEs (abstract: 1,872,000 CPEs).
        assert_eq!(28_800 * CPES_PER_CG, 1_843_200);
        assert_eq!(Chip::cores_for_processes(28_800), 1_872_000);
    }
}
