//! Property-based tests of the simulator's core data structures.

use proptest::prelude::*;
use sw26010::{transpose4x4, Ldm, ShuffleMask, V4F64};

proptest! {
    /// The shuffle-based 4x4 transpose is an involution and a true
    /// transpose for arbitrary values (including NaN-free extremes).
    #[test]
    fn transpose4x4_is_transpose(vals in proptest::array::uniform16(-1e12f64..1e12)) {
        let rows = [
            V4F64([vals[0], vals[1], vals[2], vals[3]]),
            V4F64([vals[4], vals[5], vals[6], vals[7]]),
            V4F64([vals[8], vals[9], vals[10], vals[11]]),
            V4F64([vals[12], vals[13], vals[14], vals[15]]),
        ];
        let cols = transpose4x4(rows);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert_eq!(cols[j][i], rows[i][j]);
            }
        }
        prop_assert_eq!(transpose4x4(cols), rows);
    }

    /// Any shuffle only ever moves lane values, never invents data.
    #[test]
    fn shuffle_only_permutes(
        a in proptest::array::uniform4(-1e6f64..1e6),
        b in proptest::array::uniform4(-1e6f64..1e6),
        m in proptest::array::uniform4(0u8..4),
    ) {
        let r = V4F64::shuffle(V4F64(a), V4F64(b), ShuffleMask::new(m[0], m[1], m[2], m[3]));
        for lane in 0..4 {
            let v = r[lane];
            prop_assert!(a.contains(&v) || b.contains(&v));
        }
    }

    /// LDM accounting is exact under arbitrary alloc/free sequences: the
    /// in-use count equals the sum of live buffer sizes, the budget is
    /// never exceeded, and the high-water mark is monotone.
    #[test]
    fn ldm_accounting_is_exact(sizes in proptest::collection::vec(1usize..2048, 1..20)) {
        let mut ldm = Ldm::default();
        let mut live = Vec::new();
        let mut live_bytes = 0usize;
        let mut hw = 0usize;
        for (i, &n) in sizes.iter().enumerate() {
            match ldm.alloc_f64(n) {
                Ok(buf) => {
                    live_bytes += buf.bytes();
                    live.push(buf);
                }
                Err(e) => {
                    prop_assert_eq!(e.in_use, live_bytes);
                    prop_assert!(live_bytes + n * 8 > e.capacity);
                }
            }
            prop_assert_eq!(ldm.in_use(), live_bytes);
            prop_assert!(ldm.in_use() <= sw26010::LDM_BYTES);
            prop_assert!(ldm.high_water() >= hw);
            hw = ldm.high_water();
            // Free every other allocation to exercise the return path.
            if i % 2 == 1 && !live.is_empty() {
                let buf = live.remove(0);
                live_bytes -= buf.bytes();
                ldm.free(buf);
                prop_assert_eq!(ldm.in_use(), live_bytes);
            }
        }
    }

    /// Vector FMA agrees with scalar mul_add in every lane.
    #[test]
    fn fma_matches_scalar(
        a in proptest::array::uniform4(-1e8f64..1e8),
        b in proptest::array::uniform4(-1e8f64..1e8),
        c in proptest::array::uniform4(-1e8f64..1e8),
    ) {
        let r = V4F64(a).fma(V4F64(b), V4F64(c));
        for i in 0..4 {
            prop_assert_eq!(r[i], a[i].mul_add(b[i], c[i]));
        }
    }
}

/// The cluster runtime preserves arbitrary data through a DMA round trip
/// regardless of how elements are assigned to CPEs.
#[test]
fn dma_roundtrip_preserves_random_data() {
    use rand::prelude::*;
    use sw26010::{CpeCluster, SharedSlice, SharedSliceMut};
    let mut rng = StdRng::seed_from_u64(7);
    let cluster = CpeCluster::with_defaults();
    for _ in 0..3 {
        let n = 64 * (1 + rng.gen_range(1..8)) * 4;
        let src: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let mut dst = vec![0.0; n];
        {
            let s = SharedSlice::new(&src);
            let d = SharedSliceMut::new(&mut dst);
            let chunk = n / 64;
            cluster.run(|ctx| {
                let start = ctx.id() * chunk;
                let mut buf = ctx.ldm_alloc(chunk).unwrap();
                ctx.dma_get(s, start..start + chunk, &mut buf);
                ctx.dma_put(&d, start, &buf);
            });
        }
        assert_eq!(src, dst);
    }
}
