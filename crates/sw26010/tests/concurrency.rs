//! Concurrency stress tests of the cluster runtime: the register fabric
//! under contention-heavy communication patterns, repeated launches, and
//! the deterministic cycle accounting the performance model depends on.

use sw26010::{CpeCluster, SharedSliceMut, V4F64};

/// Row-ring: every CPE passes a token around its row 8 times. Heavily
/// exercises blocking sends/receives with full rings (deadlock-prone if
/// ordering is wrong).
#[test]
fn row_ring_circulation() {
    let cluster = CpeCluster::with_defaults();
    let mut out = vec![0.0; 64];
    {
        let view = SharedSliceMut::new(&mut out);
        cluster.run(|ctx| {
            let col = ctx.col();
            let next = (col + 1) % 8;
            let prev = (col + 7) % 8;
            let mut token = V4F64::splat(ctx.id() as f64);
            for _round in 0..8 {
                // Even columns send first; odd columns receive first: a
                // classic deadlock-free ring schedule on bounded links.
                if col % 2 == 0 {
                    ctx.reg_send_row(next, token);
                    token = ctx.reg_recv_row(prev);
                } else {
                    let incoming = ctx.reg_recv_row(prev);
                    ctx.reg_send_row(next, token);
                    token = incoming;
                }
            }
            // After 8 hops around an 8-ring, everyone has their own token.
            ctx.gst(&view, ctx.id(), token[0]);
        });
    }
    for (i, &x) in out.iter().enumerate() {
        assert_eq!(x, i as f64, "CPE {i} got the wrong token back");
    }
}

/// XOR-pair all-to-all within columns (the Section 7.5 exchange pattern)
/// composed with the column scan, repeatedly — mixing the two
/// communication idioms in one kernel must stay deadlock-free.
#[test]
fn mixed_xor_exchange_and_scan() {
    let cluster = CpeCluster::with_defaults();
    let mut out = vec![0.0; 64];
    {
        let view = SharedSliceMut::new(&mut out);
        cluster.run(|ctx| {
            let row = ctx.row();
            let mut acc = (row + 1) as f64;
            // Phase exchange: XOR pairing over the column axis.
            for phase in 1..8usize {
                let partner = row ^ phase;
                let payload = V4F64::splat(acc);
                let incoming = if row < partner {
                    ctx.reg_send_col(partner, payload);
                    ctx.reg_recv_col(partner)
                } else {
                    let m = ctx.reg_recv_col(partner);
                    ctx.reg_send_col(partner, payload);
                    m
                };
                acc += incoming[0];
            }
            ctx.gst(&view, ctx.id(), acc);
        });
    }
    // Every CPE accumulated a positive mix of all rows' seeds; rows with
    // identical schedules inside a column agree across columns.
    for row in 0..8 {
        for c in 1..8 {
            assert_eq!(out[row * 8], out[row * 8 + c], "row {row} col {c}");
        }
    }
    assert!(out.iter().all(|&x| x > 0.0));
}

/// Back-to-back launches are independent: cycle accounting restarts, no
/// state leaks between kernels, and results are deterministic.
#[test]
fn repeated_launches_are_deterministic() {
    let cluster = CpeCluster::with_defaults();
    let mut reports = Vec::new();
    for _ in 0..5 {
        let report = cluster.run(|ctx| {
            let mut buf = ctx.ldm_alloc(256).unwrap();
            for (i, x) in buf.iter_mut().enumerate() {
                *x = (i + ctx.id()) as f64;
            }
            ctx.charge_vflops(256);
            if ctx.row() > 0 {
                ctx.reg_send_col(0, V4F64::splat(buf[0]));
            } else {
                for src in 1..8 {
                    let _ = ctx.reg_recv_col(src);
                }
            }
        });
        reports.push(report);
    }
    for r in &reports[1..] {
        assert_eq!(r.elapsed_cycles, reports[0].elapsed_cycles, "cycle model must be deterministic");
        assert_eq!(r.counters, reports[0].counters);
    }
    assert_eq!(reports[0].counters.vflops, 64 * 256);
    assert_eq!(reports[0].counters.reg_sends, 56);
}

/// The write-race tracker coexists with heavy concurrency: 64 CPEs writing
/// adjacent but disjoint ranges never trip it.
#[test]
fn race_detector_under_full_concurrency() {
    use sw26010::{ChipConfig, WriteTracker};
    let cluster = CpeCluster::new(ChipConfig::checked());
    for _ in 0..3 {
        let mut data = vec![0.0; 64 * 37];
        let view = SharedSliceMut::new(&mut data).with_tracker(WriteTracker::new());
        cluster.run(|ctx| {
            let start = ctx.id() * 37;
            let chunk: Vec<f64> = (0..37).map(|i| (start + i) as f64).collect();
            ctx.dma_put(&view, start, &chunk);
        });
        drop(view);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as f64);
        }
    }
}
