use homme::kernels::{KernelId, Variant};
use perfmodel::*;
use perfmodel::stepmodel::{CommMode, RankWork, StepModel};

fn main() {
    let m = Machine::taihulight();
    println!("spawn = {:.3e}", m.cal.spawn_seconds);
    for k in KernelId::ALL {
        print!("{:24}", k.name());
        for v in [Variant::Reference, Variant::Mpe, Variant::OpenAcc, Variant::Athread] {
            print!(" {:?}={:.3e}", v, m.cal.kernel_seconds(k, v, 64, 128, 25));
        }
        println!();
    }
    // Step model numbers
    for (e, n) in [(96usize, 4096usize), (3, 131072), (768, 8192), (48, 131072), (650, 155000), (1, 5400)] {
        let w = RankWork { elems: e, nlev: 128, qsize: 10 };
        for v in [Variant::Athread, Variant::OpenAcc, Variant::Mpe] {
            let sm = StepModel::new(&m, v, CommMode::Redesigned);
            println!("E={e:4} n={n:7} {v:?}: compute={:.4e} comm={:.4e} sync={:.4e} step={:.4e}",
                sm.compute_seconds(w), sm.comm_seconds(w, n), sm.sync_seconds(n), sm.step_seconds(w, n));
        }
    }
    // SYPD
    for v in [Variant::Mpe, Variant::OpenAcc, Variant::Athread] {
        println!("ne30@5400 {v:?}: SYPD={:.2} t_step={:.4e}", sypd(&m, CamRun::ne30(), v, 5400), cam_step_seconds(&m, CamRun::ne30(), v, 5400));
    }
    println!("ne120@28800 OpenAcc: SYPD={:.2}", sypd(&m, CamRun::ne120(), Variant::OpenAcc, 28800));
    // NGGPS
    for c in &CASES {
        println!("NGGPS {}: ours={:.3} fv3={} mpas={}", c.label, homme_runtime(&m, c), c.fv3_seconds, c.mpas_seconds);
    }
}
