//! # perfmodel — machine + scaling model for the paper's evaluation
//!
//! Regenerates the quantitative side of the paper's Section 8: Table 1
//! (kernel timings), Figure 5 (kernel speedups), Figure 6 (whole-model
//! SYPD), Figures 7/8 (strong/weak scaling to 10M cores), and Table 3
//! (NGGPS comparison). Kernel unit costs are *measured* on the simulated
//! SW26010 ([`machine::Calibration`]); full-machine numbers compose those
//! measurements with analytic workload sizes and the two-level TaihuLight
//! network model. Two documented calibration constants anchor absolute
//! scales (the skeleton-to-full-CAM work factor and the per-round jitter
//! coefficient); every *shape* claim is model-derived.

pub mod machine;
pub mod nggps;
pub mod report;
pub mod scaling;
pub mod stepmodel;
pub mod sypd;

pub use machine::{Calibration, Machine};
pub use nggps::{homme_runtime, NggpsCase, CASES, NGGPS_QSIZE};
pub use scaling::{figure_model, strong_scaling, weak_scaling, HommeWorkload, ScalePoint};
pub use stepmodel::{CommMode, RankWork, StepModel};
pub use sypd::{cam_step_seconds, sypd, CamRun, AMDAHL_SERIAL, CAM_WORK_FACTOR, DAYS_PER_YEAR};
