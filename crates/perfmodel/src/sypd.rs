//! Whole-model simulation speed (SYPD) — the paper's Figure 6.
//!
//! The whole-CAM step is modeled as the variant's dynamical-core kernel
//! time plus an MPE-resident serial remainder (physics bookkeeping,
//! pack/unpack, I/O staging — the Amdahl term that keeps whole-model
//! speedups at the paper's 1.4–1.5x / 1.1–1.4x rather than the 22x/50x of
//! isolated kernels), plus communication. Column-parallel work (including
//! physics) scales with elements and is absorbed in the calibrated work
//! factor; the serial fraction is the paper-visible knob.

use crate::machine::Machine;
use crate::stepmodel::{CommMode, RankWork, StepModel};
use homme::kernels::Variant;

/// Amdahl serial fraction of the whole CAM step: the share of the model
/// (hundreds of small routines, bookkeeping, I/O staging, MPE-resident
/// physics glue) that the CPE offload does not touch. Calibrated once so
/// the aggregate whole-model gains land at the paper's observed 1.4-1.5x
/// (OpenACC over original) -- the paper's own explanation for why a 22x
/// kernel speedup becomes a 1.45x model speedup ("a complex model that
/// involves kernels accelerated as well as parts that are inherently
/// serial").
pub const AMDAHL_SERIAL: f64 = 0.5;

/// Whole-CAM work factor: skeleton kernels to the full model *including*
/// the column physics (which scales with elements exactly like the
/// dycore). Calibrated against the paper's ne30 SYPD anchor.
pub const CAM_WORK_FACTOR: f64 = 25.0;

/// Days per simulated year used by the SYPD convention.
pub const DAYS_PER_YEAR: f64 = 365.25;

/// A whole-CAM configuration for the SYPD curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamRun {
    /// Elements per cube edge.
    pub ne: usize,
    /// Vertical layers (CAM's 30 for the SYPD runs).
    pub nlev: usize,
    /// Tracers (CAM5's 25).
    pub qsize: usize,
}

impl CamRun {
    /// The paper's ne30 (100 km) configuration.
    pub fn ne30() -> Self {
        CamRun { ne: 30, nlev: 30, qsize: 25 }
    }

    /// The paper's ne120 (25 km) configuration.
    pub fn ne120() -> Self {
        CamRun { ne: 120, nlev: 30, qsize: 25 }
    }

    /// Dynamics time step, s (CAM rule of thumb: 300 s at ne30).
    pub fn dt(&self) -> f64 {
        300.0 * 30.0 / self.ne as f64
    }

    /// Total elements.
    pub fn nelem(&self) -> usize {
        6 * self.ne * self.ne
    }
}

/// Modeled wall seconds of one whole-CAM step per rank.
///
/// The baseline is the MPE-only ("ori") step; accelerated variants apply
/// an Amdahl-law speedup whose *kernel-aggregate* factor is measured from
/// the calibrated kernel times (`D_mpe / D_variant`) and whose serial
/// fraction is the documented [`AMDAHL_SERIAL`]. The Athread variant also
/// benefits from the redesigned (overlapped) exchange.
pub fn cam_step_seconds(
    machine: &Machine,
    run: CamRun,
    variant: Variant,
    nranks: usize,
) -> f64 {
    let elems = (run.nelem() as f64 / nranks as f64).ceil() as usize;
    let w = RankWork { elems: elems.max(1), nlev: run.nlev, qsize: run.qsize };
    let mpe_model =
        StepModel::new(machine, Variant::Mpe, CommMode::Original).with_work_factor(CAM_WORK_FACTOR);
    let t_ori = mpe_model.step_seconds(w, nranks);
    if variant == Variant::Mpe {
        return t_ori;
    }
    let comm_mode =
        if variant == Variant::Athread { CommMode::Redesigned } else { CommMode::Original };
    let model = StepModel::new(machine, variant, comm_mode).with_work_factor(CAM_WORK_FACTOR);
    let kernel_speedup = (mpe_model.compute_seconds(w) / model.compute_seconds(w)).max(1.0);
    let whole_model_speedup = 1.0 / (AMDAHL_SERIAL + (1.0 - AMDAHL_SERIAL) / kernel_speedup);
    t_ori / whole_model_speedup
}

/// Simulated years per wall-clock day.
pub fn sypd(machine: &Machine, run: CamRun, variant: Variant, nranks: usize) -> f64 {
    let t = cam_step_seconds(machine, run, variant, nranks);
    run.dt() / (DAYS_PER_YEAR * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_orderings_hold() {
        let m = Machine::taihulight();
        let run = CamRun::ne30();
        for &nranks in &[216usize, 600, 1350, 5400] {
            let s_ori = sypd(&m, run, Variant::Mpe, nranks);
            let s_acc = sypd(&m, run, Variant::OpenAcc, nranks);
            let s_ath = sypd(&m, run, Variant::Athread, nranks);
            assert!(s_acc > s_ori, "{nranks}: acc {s_acc} vs ori {s_ori}");
            assert!(s_ath > s_acc, "{nranks}: ath {s_ath} vs acc {s_acc}");
            // Whole-model gains are modest (Amdahl), not kernel-scale.
            assert!(s_acc / s_ori < 4.0, "{nranks}: acc/ori = {}", s_acc / s_ori);
            assert!(s_ath / s_acc < 2.5, "{nranks}: ath/acc = {}", s_ath / s_acc);
        }
    }

    #[test]
    fn sypd_grows_with_ranks() {
        let m = Machine::taihulight();
        let run = CamRun::ne30();
        let small = sypd(&m, run, Variant::Athread, 216);
        let large = sypd(&m, run, Variant::Athread, 5400);
        assert!(large > small, "{small} -> {large}");
    }

    #[test]
    fn headline_sypd_magnitudes() {
        // Paper: 21.5 SYPD for ne30 at 5,400 processes (Athread) and 3.4
        // SYPD for ne120 at 28,800 (OpenACC). The model must land in the
        // same decade; EXPERIMENTS.md records the exact values.
        let m = Machine::taihulight();
        let ne30 = sypd(&m, CamRun::ne30(), Variant::Athread, 5400);
        assert!(ne30 > 7.0 && ne30 < 60.0, "ne30 athread SYPD = {ne30}");
        let ne120 = sypd(&m, CamRun::ne120(), Variant::OpenAcc, 28_800);
        assert!(ne120 > 1.0 && ne120 < 12.0, "ne120 openacc SYPD = {ne120}");
        // Higher resolution is much slower in SYPD terms.
        assert!(ne120 < ne30 / 2.0);
    }
}
