//! Per-rank time model of one model step, composed from calibrated kernel
//! unit costs plus the network model.
//!
//! One dynamics step runs the Table-1 kernel pipeline:
//! 5 x `compute_and_apply_rhs` (RK stages), 3 x `hypervis_dp2` +
//! 3 x `biharmonic_dp3d` (subcycled dissipation), 3 x `euler_step`
//! (tracer RK stages) and 1 x `vertical_remap`; each stage ends in a halo
//! exchange. The skeleton kernels implement the *structure* of the full
//! Fortran model but a fraction of its arithmetic (CAM-SE carries many more
//! terms, limiters and diagnostics); the documented
//! [`StepModel::work_factor`] scales skeleton work to full-model work and
//! is calibrated once against the paper's ne30 SYPD anchor. All *shapes*
//! (scaling curves, variant ratios, efficiency trends) come from the model,
//! not the anchor.

use crate::machine::Machine;
use homme::kernels::{KernelId, Variant};

/// Workload of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankWork {
    /// Elements owned by the rank.
    pub elems: usize,
    /// Vertical layers.
    pub nlev: usize,
    /// Tracers.
    pub qsize: usize,
}

/// Communication schedule options (paper Section 7.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// Original `bndry_exchangev`: packing copies, no overlap.
    Original,
    /// Redesigned: direct unpack + overlap with interior computation.
    Redesigned,
}

/// The per-step time model.
pub struct StepModel<'m> {
    /// Calibrated machine.
    pub machine: &'m Machine,
    /// Kernel implementation generation.
    pub variant: Variant,
    /// Communication schedule.
    pub comm_mode: CommMode,
    /// Skeleton-to-full-CAM work multiplier (see module docs).
    pub work_factor: f64,
}

/// Exchange rounds per dynamics step: 5 RK stages + 6 dissipation
/// sub-stages + 3 tracer stages.
pub const EXCHANGE_ROUNDS_DYN: f64 = 5.0;
/// Dissipation rounds.
pub const EXCHANGE_ROUNDS_HV: f64 = 6.0;
/// Tracer rounds.
pub const EXCHANGE_ROUNDS_TRACER: f64 = 3.0;

impl<'m> StepModel<'m> {
    /// Model for a *dynamical-core-only* run (the HOMME benchmarks of
    /// Figures 7/8 and Table 3). The work factor scales the six skeleton
    /// kernels to the full Fortran HOMME (which carries limiters,
    /// diagnostics and additional terms); calibrated once against the
    /// paper's ne256 step-time anchor.
    pub fn new(machine: &'m Machine, variant: Variant, comm_mode: CommMode) -> Self {
        StepModel { machine, variant, comm_mode, work_factor: 4.0 }
    }

    /// Override the skeleton-to-full-model work factor (whole-CAM runs use
    /// a larger factor that also absorbs the column physics; see `sypd`).
    pub fn with_work_factor(mut self, f: f64) -> Self {
        self.work_factor = f;
        self
    }

    /// Pure-compute seconds of one dynamics step on one rank.
    ///
    /// The Athread decomposition (Figure 2) processes elements in batches
    /// of 8 (one per CPE column); ranks owning fewer than a multiple of 8
    /// elements leave CPE columns idle — the *parallelism starvation* that
    /// drives the paper's strong-scaling efficiency drop at small
    /// elements-per-CG ("the drop of efficiency ... is mainly due to the
    /// decreased number of elements").
    pub fn compute_seconds(&self, w: RankWork) -> f64 {
        let cal = &self.machine.cal;
        // Only the column-chain kernels (register-communication scans and
        // the transposed remap) are locked to 8-element batches; the
        // level-parallel kernels redistribute freely.
        let starved = if self.variant == Variant::Athread {
            w.elems.div_ceil(8) * 8
        } else {
            w.elems
        };
        let k = |kernel: KernelId, mult: f64, elems: usize| {
            mult * cal.kernel_seconds(kernel, self.variant, elems, w.nlev, w.qsize)
        };
        let t = k(KernelId::ComputeAndApplyRhs, 5.0, starved)
            + k(KernelId::HypervisDp2, 3.0, w.elems)
            + k(KernelId::BiharmonicDp3d, 3.0, w.elems)
            + k(KernelId::EulerStep, 3.0, w.elems)
            + k(KernelId::VerticalRemap, 1.0, starved);
        t * self.work_factor
    }

    /// Per-step synchronization/imbalance overhead: stage barriers and
    /// collective completion grow logarithmically with the job, and OS /
    /// network jitter makes every stage wait for the slowest rank. The
    /// coefficient is calibrated against the paper's Figure 7 endpoints.
    pub fn sync_seconds(&self, nranks: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let rounds = EXCHANGE_ROUNDS_DYN + EXCHANGE_ROUNDS_HV + EXCHANGE_ROUNDS_TRACER;
        rounds * self.machine.jitter_per_round * (nranks as f64).log2()
    }

    /// Halo-communication seconds of one dynamics step on one rank.
    pub fn comm_seconds(&self, w: RankWork, nranks: usize) -> f64 {
        if nranks <= 1 {
            return 0.0;
        }
        let net = &self.machine.net;
        // Compact SFC patch: perimeter ~ 4 sqrt(E) element edges, ~8 peers.
        let cut_edges = 4.0 * (w.elems as f64).sqrt() + 4.0;
        let peers = 8.0_f64.min(nranks as f64 - 1.0);
        // Bytes per exchanged element edge per 3-D field: 4 GLL points x
        // nlev x 8 B.
        let edge_bytes = 4.0 * w.nlev as f64 * 8.0;
        let fields_per_round = EXCHANGE_ROUNDS_DYN * 4.0
            + EXCHANGE_ROUNDS_HV * 4.0
            + EXCHANGE_ROUNDS_TRACER * w.qsize as f64;
        let total_bytes = cut_edges * edge_bytes * fields_per_round;
        let rounds = EXCHANGE_ROUNDS_DYN + EXCHANGE_ROUNDS_HV + EXCHANGE_ROUNDS_TRACER;
        // Fraction of traffic crossing supernodes grows with job size.
        let remote_frac = if nranks <= net.ranks_per_supernode() {
            0.1
        } else {
            0.35
        };
        let per_round =
            net.halo_time(peers as usize, (total_bytes / rounds / peers) as usize, remote_frac);
        let mut comm = rounds * per_round;
        // The legacy implementation adds the pack/unpack staging cost:
        // every exchanged byte is copied ~3 extra times through buffers at
        // MPE memcpy bandwidth (Section 7.6: removing these copies plus
        // overlap cut exchange cost roughly in half).
        let memcpy_bw = 4.0e9;
        if self.comm_mode == CommMode::Original {
            comm += 3.0 * total_bytes / memcpy_bw;
        }
        comm
    }

    /// Seconds of one dynamics step on one rank, with overlap applied in
    /// the redesigned mode (communication hides behind interior
    /// computation; only the boundary fraction is exposed).
    pub fn step_seconds(&self, w: RankWork, nranks: usize) -> f64 {
        let compute = self.compute_seconds(w);
        let comm = self.comm_seconds(w, nranks);
        let sync = self.sync_seconds(nranks);
        match self.comm_mode {
            CommMode::Original => compute + comm + sync,
            CommMode::Redesigned => {
                // Interior elements (non-boundary) can hide communication.
                let boundary = (4.0 * (w.elems as f64).sqrt() + 4.0).min(w.elems as f64);
                let interior_frac = 1.0 - boundary / w.elems.max(1) as f64;
                let hidden = (compute * interior_frac).min(comm);
                compute + comm - hidden + sync
            }
        }
    }

    /// Double-precision flops retired by one rank in one dynamics step
    /// (for PFlops reporting; uses the same analytic op counts as the
    /// roofline pricing, scaled by the work factor).
    pub fn step_flops(&self, w: RankWork) -> f64 {
        let field = (w.elems * w.nlev * 16) as f64;
        let per_step = field
            * (5.0 * 165.0 + 3.0 * 244.0 + 3.0 * 94.0
                + 3.0 * 28.0 * w.qsize as f64
                + 40.0 * (3 + w.qsize) as f64);
        per_step * self.work_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::taihulight()
    }

    #[test]
    fn compute_scales_linearly_with_elements() {
        let m = machine();
        let sm = StepModel::new(&m, Variant::Athread, CommMode::Redesigned);
        // Multiples of the 8-element batch so starvation rounding is inert.
        let t1 = sm.compute_seconds(RankWork { elems: 16, nlev: 32, qsize: 4 });
        let t2 = sm.compute_seconds(RankWork { elems: 32, nlev: 32, qsize: 4 });
        // Linear up to the fixed launch overheads.
        assert!(t2 > 1.6 * t1 && t2 < 2.1 * t1, "{t1} vs {t2}");
    }

    #[test]
    fn redesigned_exchange_is_faster() {
        let m = machine();
        let w = RankWork { elems: 64, nlev: 128, qsize: 25 };
        let orig = StepModel::new(&m, Variant::Athread, CommMode::Original);
        let redesigned = StepModel::new(&m, Variant::Athread, CommMode::Redesigned);
        let t_o = orig.step_seconds(w, 6144);
        let t_r = redesigned.step_seconds(w, 6144);
        assert!(t_r < t_o, "{t_r} vs {t_o}");
        // The paper: ~23% of prim_run was communication at large scale and
        // the redesign nearly eliminated its exposed part. Expect a
        // double-digit-percent step-time reduction when elements are few.
        let w_small = RankWork { elems: 4, nlev: 128, qsize: 25 };
        let gain = 1.0 - redesigned.step_seconds(w_small, 131_072)
            / orig.step_seconds(w_small, 131_072);
        assert!(gain > 0.10, "overlap gain {gain}");
    }

    #[test]
    fn variant_ordering_carries_into_step_times() {
        let m = machine();
        let w = RankWork { elems: 64, nlev: 128, qsize: 25 };
        let t = |v: Variant| StepModel::new(&m, v, CommMode::Original).compute_seconds(w);
        assert!(t(Variant::Mpe) > t(Variant::Reference));
        assert!(t(Variant::Athread) < t(Variant::OpenAcc));
        assert!(t(Variant::Athread) < t(Variant::Reference));
    }

    #[test]
    fn flops_are_positive_and_scale() {
        let m = machine();
        let sm = StepModel::new(&m, Variant::Athread, CommMode::Redesigned);
        let f1 = sm.step_flops(RankWork { elems: 48, nlev: 128, qsize: 10 });
        let f2 = sm.step_flops(RankWork { elems: 96, nlev: 128, qsize: 10 });
        assert!(f1 > 0.0);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
    }
}
