//! Plain-text table/figure formatting shared by the bench binaries.

/// Format a table with a header row and aligned columns.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hcells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hcells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with 3 significant decimals.
pub fn secs(t: f64) -> String {
    if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else {
        format!("{:.3} us", t * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let s = table(
            "T",
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(secs(2.5), "2.500 s");
        assert_eq!(secs(0.0025), "2.500 ms");
        assert_eq!(secs(2.5e-6), "2.500 us");
    }
}
