//! The NGGPS dynamical-core comparison (the paper's Table 3).
//!
//! The paper compares its redesigned HOMME against the FV3 and MPAS times
//! *published* in the NGGPS AVEC report (Michalakes et al. 2015) — it did
//! not rerun the competitors, and neither do we: the FV3/MPAS rows are the
//! same fixed published numbers; our row is the modeled HOMME time.

use crate::machine::Machine;
use crate::stepmodel::{CommMode, RankWork, StepModel};
use homme::kernels::Variant;

/// One NGGPS benchmark case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NggpsCase {
    /// Human label ("12.5 km" / "3 km").
    pub label: &'static str,
    /// HOMME mesh for this resolution.
    pub ne: usize,
    /// Forecast length, s (2 h / 30 min workloads).
    pub forecast_seconds: f64,
    /// Our rank count (131,072 in the paper).
    pub our_ranks: usize,
    /// Published FV3 runtime, s.
    pub fv3_seconds: f64,
    /// Published MPAS runtime, s.
    pub mpas_seconds: f64,
    /// Published FV3 / MPAS rank counts.
    pub fv3_ranks: usize,
    /// MPAS rank count.
    pub mpas_ranks: usize,
}

/// The two Table-3 cases with the published comparator numbers.
pub const CASES: [NggpsCase; 2] = [
    NggpsCase {
        label: "12.5 km, 2-hour forecast",
        ne: 256,
        forecast_seconds: 7200.0,
        our_ranks: 131_072,
        fv3_seconds: 3.56,
        mpas_seconds: 7.56,
        fv3_ranks: 110_592,
        mpas_ranks: 96_000,
    },
    NggpsCase {
        label: "3 km, 30-min forecast",
        ne: 1024,
        forecast_seconds: 1800.0,
        our_ranks: 131_072,
        fv3_seconds: 30.31,
        mpas_seconds: 64.80,
        fv3_ranks: 110_592,
        mpas_ranks: 131_072,
    },
];

/// NGGPS benchmark tracer count (the AVEC workloads carried 10 tracers).
pub const NGGPS_QSIZE: usize = 10;

/// Modeled runtime of our redesigned HOMME on one case.
pub fn homme_runtime(machine: &Machine, case: &NggpsCase) -> f64 {
    let model = StepModel::new(machine, Variant::Athread, CommMode::Redesigned);
    let dt = 300.0 * 30.0 / case.ne as f64; // dynamics dt at this resolution
    let steps = (case.forecast_seconds / dt).ceil();
    let elems = (6 * case.ne * case.ne) as f64 / case.our_ranks as f64;
    let w = RankWork { elems: elems.ceil() as usize, nlev: 128, qsize: NGGPS_QSIZE };
    steps * model.step_seconds(w, case.our_ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_rows_match_the_paper() {
        assert_eq!(CASES[0].fv3_seconds, 3.56);
        assert_eq!(CASES[0].mpas_seconds, 7.56);
        assert_eq!(CASES[1].fv3_seconds, 30.31);
        assert_eq!(CASES[1].mpas_seconds, 64.80);
    }

    #[test]
    fn homme_wins_both_cases() {
        let m = Machine::taihulight();
        for case in &CASES {
            let ours = homme_runtime(&m, case);
            assert!(
                ours < case.fv3_seconds,
                "{}: ours {ours} vs FV3 {}",
                case.label,
                case.fv3_seconds
            );
            assert!(ours > 0.1, "{}: suspiciously fast ({ours})", case.label);
        }
    }

    #[test]
    fn advantage_grows_at_higher_resolution() {
        // Paper: 1.3x over FV3 at 12.5 km, 2.1x at 3 km.
        let m = Machine::taihulight();
        let r12 = CASES[0].fv3_seconds / homme_runtime(&m, &CASES[0]);
        let r3 = CASES[1].fv3_seconds / homme_runtime(&m, &CASES[1]);
        assert!(r3 > r12, "12.5 km ratio {r12} vs 3 km ratio {r3}");
    }
}
