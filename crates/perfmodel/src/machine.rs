//! Machine description and kernel-time calibration.
//!
//! The scaling model is not hand-waved: per-kernel unit times come from
//! actually running the four kernel variants on the simulated SW26010 at a
//! reference workload and normalizing per (element x level [x tracer])
//! work unit. The full-machine projections then compose these measured
//! unit costs with the analytic workload sizes and the two-level network
//! model.

use homme::kernels::{verify::KernelEnv, verify::run, KernelData, KernelId, Variant};
use std::collections::HashMap;
use swmpi::NetworkModel;

/// Calibrated per-unit kernel times, seconds.
///
/// Units: `ComputeAndApplyRhs`, `HypervisDp1/2`, `BiharmonicDp3d`,
/// `VerticalRemap` per (element x level); `EulerStep` per
/// (element x level x tracer).
#[derive(Debug, Clone)]
pub struct Calibration {
    unit_seconds: HashMap<(KernelId, Variant), f64>,
    /// Fixed cost of one CPE-cluster kernel launch, seconds (zero for
    /// host-style variants).
    pub spawn_seconds: f64,
}

/// Reference workload used for calibration.
const CAL_NELEM: usize = 8;
const CAL_NLEV: usize = 32;
const CAL_QSIZE: usize = 4;

impl Calibration {
    /// Measure every (kernel, variant) pair on the simulator.
    pub fn measure() -> Self {
        let env = KernelEnv::default();
        let spawn = {
            let cfg = sw26010::ChipConfig::default();
            cfg.cost.seconds(cfg.cost.spawn_overhead_cycles)
        };
        let mut unit_seconds = HashMap::new();
        for kernel in KernelId::ALL {
            for variant in
                [Variant::Reference, Variant::Mpe, Variant::OpenAcc, Variant::Athread]
            {
                let mut data = KernelData::synth(CAL_NELEM, CAL_NLEV, CAL_QSIZE, 99);
                let res = run(kernel, variant, &mut data, &env);
                // The launch overhead is booked separately at composition
                // time; keep the unit cost purely proportional.
                let net = match variant {
                    Variant::OpenAcc | Variant::Athread => (res.seconds - spawn).max(1e-12),
                    _ => res.seconds,
                };
                let units = Self::units(kernel, CAL_NELEM, CAL_NLEV, CAL_QSIZE);
                unit_seconds.insert((kernel, variant), net / units);
            }
        }
        Calibration { unit_seconds, spawn_seconds: spawn }
    }

    /// Work units of one kernel invocation on the given sizes.
    pub fn units(kernel: KernelId, nelem: usize, nlev: usize, qsize: usize) -> f64 {
        let base = (nelem * nlev) as f64;
        match kernel {
            KernelId::EulerStep => base * qsize as f64,
            KernelId::VerticalRemap => base * (3 + qsize) as f64,
            _ => base,
        }
    }

    /// Seconds for one invocation of `kernel` in `variant` on the sizes.
    pub fn kernel_seconds(
        &self,
        kernel: KernelId,
        variant: Variant,
        nelem: usize,
        nlev: usize,
        qsize: usize,
    ) -> f64 {
        let unit = self.unit_seconds[&(kernel, variant)];
        let launch = match variant {
            Variant::OpenAcc | Variant::Athread => self.spawn_seconds,
            _ => 0.0,
        };
        launch + unit * Self::units(kernel, nelem, nlev, qsize)
    }
}

/// The paper's machine: calibrated kernel costs + the TaihuLight network.
pub struct Machine {
    /// Kernel calibration.
    pub cal: Calibration,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Per-exchange-round jitter coefficient (seconds per log2(ranks));
    /// calibrated against the paper's Figure 7 strong-scaling endpoints.
    pub jitter_per_round: f64,
}

impl Machine {
    /// Build (runs the calibration once; takes a second or two of host
    /// time because it actually exercises the simulated cluster).
    pub fn taihulight() -> Self {
        Machine {
            cal: Calibration::measure(),
            net: NetworkModel::default(),
            jitter_per_round: 3.0e-5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_variant_ordering() {
        let cal = Calibration::measure();
        for kernel in KernelId::ALL {
            let t_ref = cal.kernel_seconds(kernel, Variant::Reference, 64, 128, 25);
            let t_mpe = cal.kernel_seconds(kernel, Variant::Mpe, 64, 128, 25);
            let t_ath = cal.kernel_seconds(kernel, Variant::Athread, 64, 128, 25);
            assert!(t_mpe > t_ref, "{}: MPE must lose to one Intel core", kernel.name());
            assert!(t_ath < t_ref, "{}: Athread must beat one Intel core", kernel.name());
        }
    }

    #[test]
    fn unit_scaling_is_linear() {
        let cal = Calibration::measure();
        let small = cal.kernel_seconds(KernelId::EulerStep, Variant::Reference, 8, 32, 4);
        let big = cal.kernel_seconds(KernelId::EulerStep, Variant::Reference, 16, 32, 4);
        assert!((big / small - 2.0).abs() < 1e-6);
    }

    #[test]
    fn spawn_overhead_matters_for_cluster_variants() {
        let cal = Calibration::measure();
        // A tiny workload: launch overhead dominates the Athread time but
        // not the Reference time.
        let t_ath = cal.kernel_seconds(KernelId::HypervisDp1, Variant::Athread, 1, 1, 0);
        assert!(t_ath >= cal.spawn_seconds);
        let t_ref = cal.kernel_seconds(KernelId::HypervisDp1, Variant::Reference, 1, 1, 0);
        assert!(t_ref < cal.spawn_seconds);
    }
}
