//! Strong and weak scaling projections (the paper's Figures 7 and 8).

use crate::stepmodel::{CommMode, RankWork, StepModel};
use homme::kernels::Variant;

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// MPI processes (core groups).
    pub nranks: usize,
    /// Cores (65 per process).
    pub cores: usize,
    /// Elements per process.
    pub elems_per_rank: f64,
    /// Modeled seconds per dynamics step.
    pub step_seconds: f64,
    /// Sustained performance, PFlops.
    pub pflops: f64,
    /// Parallel efficiency relative to the first point of the sweep.
    pub efficiency: f64,
}

/// HOMME benchmark workload (Figure 7/8 use the dynamical core with the
/// NGGPS-style tracer load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HommeWorkload {
    /// Elements per cube edge.
    pub ne: usize,
    /// Vertical layers (128 in the paper's Table 2).
    pub nlev: usize,
    /// Tracers.
    pub qsize: usize,
}

impl HommeWorkload {
    /// Total elements, `6 ne^2`.
    pub fn nelem(&self) -> usize {
        6 * self.ne * self.ne
    }
}

/// Strong scaling: fixed problem, growing machine.
pub fn strong_scaling(
    model: &StepModel<'_>,
    wl: HommeWorkload,
    rank_counts: &[usize],
) -> Vec<ScalePoint> {
    let nelem = wl.nelem() as f64;
    let mut points = Vec::with_capacity(rank_counts.len());
    let mut base: Option<(usize, f64)> = None;
    for &nranks in rank_counts {
        let elems = nelem / nranks as f64;
        let w = RankWork { elems: elems.ceil() as usize, nlev: wl.nlev, qsize: wl.qsize };
        let t = model.step_seconds(w, nranks);
        // Whole-job flops per step / time = sustained rate.
        let total_flops = model.step_flops(RankWork {
            elems: wl.nelem(),
            nlev: wl.nlev,
            qsize: wl.qsize,
        });
        let pflops = total_flops / t / 1e15;
        let efficiency = match base {
            None => {
                base = Some((nranks, t));
                1.0
            }
            Some((n0, t0)) => (t0 * n0 as f64) / (t * nranks as f64),
        };
        points.push(ScalePoint {
            nranks,
            cores: nranks * 65,
            elems_per_rank: elems,
            step_seconds: t,
            pflops,
            efficiency,
        });
    }
    points
}

/// Weak scaling: fixed elements per rank, growing machine.
pub fn weak_scaling(
    model: &StepModel<'_>,
    elems_per_rank: usize,
    nlev: usize,
    qsize: usize,
    rank_counts: &[usize],
) -> Vec<ScalePoint> {
    let mut points = Vec::with_capacity(rank_counts.len());
    let mut t0: Option<f64> = None;
    for &nranks in rank_counts {
        let w = RankWork { elems: elems_per_rank, nlev, qsize };
        let t = model.step_seconds(w, nranks);
        let per_rank_flops = model.step_flops(w);
        let pflops = per_rank_flops * nranks as f64 / t / 1e15;
        let efficiency = match t0 {
            None => {
                t0 = Some(t);
                1.0
            }
            Some(t0) => t0 / t,
        };
        points.push(ScalePoint {
            nranks,
            cores: nranks * 65,
            elems_per_rank: elems_per_rank as f64,
            step_seconds: t,
            pflops,
            efficiency,
        });
    }
    points
}

/// Convenience: the default Athread/redesigned model used by the figures.
pub fn figure_model(machine: &crate::machine::Machine) -> StepModel<'_> {
    StepModel::new(machine, Variant::Athread, CommMode::Redesigned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn strong_scaling_reproduces_figure7_shape() {
        let m = Machine::taihulight();
        let model = figure_model(&m);
        let ranks = [4096usize, 8192, 16384, 32768, 65536, 131072];
        let ne256 = strong_scaling(&model, HommeWorkload { ne: 256, nlev: 128, qsize: 10 }, &ranks);
        let ne1024 =
            strong_scaling(&model, HommeWorkload { ne: 1024, nlev: 128, qsize: 10 }, &ranks[1..]);
        // Performance grows with ranks but efficiency falls.
        assert!(ne256.last().unwrap().pflops > ne256[0].pflops);
        let eff256 = ne256.last().unwrap().efficiency;
        let eff1024 = ne1024.last().unwrap().efficiency;
        // Figure 7: ne1024 (51%) clearly above ne256 (21.7%) at 131,072.
        assert!(eff1024 > eff256 + 0.1, "eff1024 {eff1024} vs eff256 {eff256}");
        assert!(eff256 > 0.05 && eff256 < 0.5, "eff256 {eff256}");
        assert!(eff1024 > 0.3 && eff1024 < 0.9, "eff1024 {eff1024}");
    }

    #[test]
    fn weak_scaling_reproduces_figure8_shape() {
        let m = Machine::taihulight();
        let model = figure_model(&m);
        let ranks = [512usize, 2048, 8192, 32768, 131072];
        let e48 = weak_scaling(&model, 48, 128, 10, &ranks);
        let e650 = weak_scaling(&model, 650, 128, 10, &ranks);
        // Efficiency stays high and grows with elements per rank.
        let eff48 = e48.last().unwrap().efficiency;
        let eff650 = e650.last().unwrap().efficiency;
        assert!(eff48 > 0.7, "eff48 {eff48}");
        assert!(eff650 > eff48, "{eff650} vs {eff48}");
        assert!(eff650 > 0.9, "eff650 {eff650}");
        // Full-machine 650-element case lands in the paper's PFlops decade.
        let full = weak_scaling(&model, 650, 128, 10, &[155_000]);
        let pf = full[0].pflops;
        assert!(pf > 1.0 && pf < 12.0, "pflops {pf}");
    }
}
