//! Internal-consistency checks of the performance model: the projections
//! must be self-consistent (PFlops = flops / time), monotone where physics
//! demands it, and stable under recalibration.

use homme::kernels::Variant;
use perfmodel::scaling::{figure_model, strong_scaling, weak_scaling, HommeWorkload};
use perfmodel::stepmodel::{CommMode, RankWork, StepModel};
use perfmodel::{sypd, CamRun, Machine};
use std::sync::OnceLock;

fn machine() -> &'static Machine {
    static M: OnceLock<Machine> = OnceLock::new();
    M.get_or_init(Machine::taihulight)
}

#[test]
fn pflops_equals_flops_over_time() {
    let model = figure_model(machine());
    let wl = HommeWorkload { ne: 256, nlev: 128, qsize: 10 };
    let pts = strong_scaling(&model, wl, &[4096, 16384]);
    for p in &pts {
        let w = RankWork {
            elems: wl.nelem(),
            nlev: wl.nlev,
            qsize: wl.qsize,
        };
        let expect = model.step_flops(w) / p.step_seconds / 1e15;
        assert!(
            (p.pflops - expect).abs() < 1e-9 * expect,
            "{} vs {expect}",
            p.pflops
        );
    }
}

#[test]
fn weak_scaling_time_is_nearly_flat_and_monotone() {
    let model = figure_model(machine());
    let pts = weak_scaling(&model, 192, 128, 10, &[512, 4096, 32768, 131072]);
    for w in pts.windows(2) {
        assert!(
            w[1].step_seconds >= w[0].step_seconds,
            "weak-scaling step time must not shrink with machine size"
        );
    }
    let spread = pts.last().unwrap().step_seconds / pts[0].step_seconds;
    assert!(spread < 1.3, "weak scaling nearly flat, spread {spread}");
}

#[test]
fn sypd_is_monotone_in_ranks_for_every_variant() {
    let m = machine();
    for variant in [Variant::Mpe, Variant::OpenAcc, Variant::Athread] {
        let mut prev = 0.0;
        for &n in &[216usize, 600, 1350, 5400] {
            let s = sypd(m, CamRun::ne30(), variant, n);
            assert!(s > prev, "{variant:?} at {n}: {s} <= {prev}");
            prev = s;
        }
    }
}

#[test]
fn more_tracers_cost_more_time() {
    let m = machine();
    let model = StepModel::new(m, Variant::Athread, CommMode::Redesigned);
    let t10 = model.compute_seconds(RankWork { elems: 64, nlev: 128, qsize: 10 });
    let t25 = model.compute_seconds(RankWork { elems: 64, nlev: 128, qsize: 25 });
    assert!(t25 > t10 * 1.3, "{t10} vs {t25}");
}

#[test]
fn sync_overhead_grows_logarithmically() {
    let m = machine();
    let model = StepModel::new(m, Variant::Athread, CommMode::Redesigned);
    let s1 = model.sync_seconds(1024);
    let s2 = model.sync_seconds(1024 * 1024);
    assert!((s2 / s1 - 2.0).abs() < 1e-9, "log2 scaling: {s1} vs {s2}");
    assert_eq!(model.sync_seconds(1), 0.0);
}

#[test]
fn calibration_is_reproducible() {
    // Two independent calibrations of the simulator agree exactly (the
    // cycle model is deterministic).
    use homme::kernels::KernelId;
    let a = perfmodel::Calibration::measure();
    let b = perfmodel::Calibration::measure();
    for kernel in KernelId::ALL {
        for variant in [Variant::Reference, Variant::Mpe, Variant::OpenAcc, Variant::Athread] {
            let ta = a.kernel_seconds(kernel, variant, 64, 128, 25);
            let tb = b.kernel_seconds(kernel, variant, 64, 128, 25);
            assert_eq!(ta, tb, "{} {variant:?}", kernel.name());
        }
    }
}
