//! Property tests of the geometry-reuse remap plan: the planned (blocked,
//! lane-vectorized) element remap must be *bitwise* identical to the scalar
//! per-column oracle — same outputs, same rejections — and both conserve
//! column mass, momentum and tracer mass. The plan is the production path
//! (`KernelPath::Blocked` is the default), so these properties are what the
//! serial and distributed parity pins rest on.

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::kernels::blocked::remap_element_planned;
use homme::remap::{
    remap_column_ppm, remap_element_scalar, remap_field_with, RemapError, RemapScratch,
};
use homme::{Dims, Dycore, DycoreConfig, ElemRemapPlan, HealthConfig, HealthError, RemapApplyScratch, VertCoord};
use proptest::prelude::*;

/// Deterministic per-element fields from a jitter pool: positive layer
/// thicknesses around the reference profile plus smooth-ish u/v/t/qdp.
#[allow(clippy::type_complexity)]
fn element_fields(
    vert: &VertCoord,
    nlev: usize,
    qsize: usize,
    jitter: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let fl = nlev * NPTS;
    let j = |i: usize| jitter[i % jitter.len()];
    let mut dp3d = vec![0.0; fl];
    let mut u = vec![0.0; fl];
    let mut v = vec![0.0; fl];
    let mut t = vec![0.0; fl];
    let mut qdp = vec![0.0; qsize * fl];
    for k in 0..nlev {
        for p in 0..NPTS {
            let i = k * NPTS + p;
            dp3d[i] = vert.dp_ref(k, P0) * (1.0 + 0.3 * j(k * 31 + p * 7));
            u[i] = 25.0 * j(i * 13 + 1);
            v[i] = 25.0 * j(i * 17 + 2);
            t[i] = 300.0 + 15.0 * j(i * 19 + 3);
            for q in 0..qsize {
                qdp[q * fl + i] = 0.01 * dp3d[i] * (1.0 + 0.5 * j(i * 23 + q * 5));
            }
        }
    }
    (dp3d, u, v, t, qdp)
}

/// Column mass of a `[nlev][NPTS]` cell-average field at GLL point `p`.
fn col_mass(nlev: usize, dp: &[f64], f: &[f64], p: usize) -> f64 {
    (0..nlev).map(|k| dp[k * NPTS + p] * f[k * NPTS + p]).sum()
}

/// Column total of a `[nlev][NPTS]` per-layer mass field at GLL point `p`.
fn col_sum(nlev: usize, f: &[f64], p: usize) -> f64 {
    (0..nlev).map(|k| f[k * NPTS + p]).sum()
}

fn run_scalar(
    vert: &VertCoord,
    nlev: usize,
    qsize: usize,
    u: &mut [f64],
    v: &mut [f64],
    t: &mut [f64],
    dp3d: &mut [f64],
    qdp: &mut [f64],
) -> Result<(), RemapError> {
    let mut col_src = vec![0.0; nlev];
    let mut col_dst = vec![0.0; nlev];
    let mut col_val = vec![0.0; nlev];
    let mut col_out = vec![0.0; nlev];
    let mut scratch = RemapScratch::new(nlev);
    remap_element_scalar(
        vert, nlev, qsize, u, v, t, dp3d, qdp, &mut col_src, &mut col_dst, &mut col_val,
        &mut col_out, &mut scratch,
    )
}

proptest! {
    /// The planned element remap is bitwise identical to the scalar oracle
    /// across every production shape, and both conserve column momentum,
    /// internal energy and tracer mass.
    #[test]
    fn planned_remap_bitwise_and_conservative(
        nlev in proptest::sample::select(vec![1usize, 2, 3, 26, 128]),
        qsize in proptest::sample::select(vec![0usize, 1, 4]),
        jitter in proptest::collection::vec(-1.0f64..1.0, 64),
    ) {
        let vert = VertCoord::standard(nlev, 200.0);
        let (dp3d, u, v, t, qdp) = element_fields(&vert, nlev, qsize, &jitter);

        let (mut su, mut sv, mut st, mut sdp, mut sq) =
            (u.clone(), v.clone(), t.clone(), dp3d.clone(), qdp.clone());
        run_scalar(&vert, nlev, qsize, &mut su, &mut sv, &mut st, &mut sdp, &mut sq)
            .expect("scalar remap");

        let (mut pu, mut pv, mut pt, mut pdp, mut pq) =
            (u.clone(), v.clone(), t.clone(), dp3d.clone(), qdp.clone());
        let mut plan = ElemRemapPlan::new(nlev);
        let mut apply = RemapApplyScratch::new(nlev);
        plan.build(&vert, nlev, &pdp).expect("plan build");
        remap_element_planned(
            &plan, nlev, qsize, &mut pu, &mut pv, &mut pt, &mut pdp, &mut pq, &mut apply,
        );

        for (name, a, b) in [
            ("u", &su, &pu), ("v", &sv, &pv), ("t", &st, &pt),
            ("dp3d", &sdp, &pdp), ("qdp", &sq, &pq),
        ] {
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{}[{}]: scalar {} vs planned {}", name, i, x, y
                );
            }
        }

        // Conservation, judged against the pre-remap state.
        for p in 0..NPTS {
            for (name, f0, f1) in [("u", &u, &pu), ("v", &v, &pv), ("t", &t, &pt)] {
                let m0 = col_mass(nlev, &dp3d, f0, p);
                let m1 = col_mass(nlev, &pdp, f1, p);
                prop_assert!(
                    (m0 - m1).abs() <= 1e-9 * m0.abs().max(1.0),
                    "{} column {} mass {} -> {}", name, p, m0, m1
                );
            }
            let fl = nlev * NPTS;
            for q in 0..qsize {
                let m0 = col_sum(nlev, &qdp[q * fl..(q + 1) * fl], p);
                let m1 = col_sum(nlev, &pq[q * fl..(q + 1) * fl], p);
                prop_assert!(
                    (m0 - m1).abs() <= 1e-10 * m0.abs().max(1e-10),
                    "tracer {} column {} mass {} -> {}", q, p, m0, m1
                );
            }
        }
    }

    /// Degenerate geometry — target grid equal to the source grid — is an
    /// identity: the planned field remap reproduces the input and stays
    /// bitwise identical to the per-column oracle.
    #[test]
    fn planned_identity_remap_reproduces_input(
        nlev in proptest::sample::select(vec![1usize, 2, 3, 26, 128]),
        jitter in proptest::collection::vec(-1.0f64..1.0, 64),
    ) {
        let vert = VertCoord::standard(nlev, 200.0);
        let (dp3d, _, _, t, _) = element_fields(&vert, nlev, 0, &jitter);

        let mut field = t.clone();
        let mut plan = ElemRemapPlan::new(nlev);
        let mut apply = RemapApplyScratch::new(nlev);
        remap_field_with(nlev, &dp3d, &dp3d, &mut field, &mut plan, &mut apply)
            .expect("identity remap");

        let mut col_src = vec![0.0; nlev];
        let mut col_val = vec![0.0; nlev];
        let mut col_out = vec![0.0; nlev];
        for p in 0..NPTS {
            for k in 0..nlev {
                col_src[k] = dp3d[k * NPTS + p];
                col_val[k] = t[k * NPTS + p];
            }
            remap_column_ppm(&col_src, &col_val, &col_src, &mut col_out).expect("oracle");
            for k in 0..nlev {
                let i = k * NPTS + p;
                prop_assert_eq!(field[i].to_bits(), col_out[k].to_bits(),
                    "col {} lev {}: planned {} vs oracle {}", p, k, field[i], col_out[k]);
                prop_assert!(
                    (field[i] - t[i]).abs() <= 1e-12 * t[i].abs().max(1.0),
                    "identity drifted at col {} lev {}: {} -> {}", p, k, t[i], field[i]
                );
            }
        }
    }

    /// A corrupted layer — collapsed (`dp <= 0`) or NaN — is rejected by the
    /// plan build with the *same* typed error, at the same layer, as the
    /// scalar oracle reports. Rejection happens before any state is written.
    #[test]
    fn plan_rejects_corrupt_layers_like_the_oracle(
        nlev in proptest::sample::select(vec![2usize, 3, 26, 128]),
        qsize in proptest::sample::select(vec![0usize, 1]),
        bad_lev_seed in 0usize..128,
        bad_pt in 0usize..NPTS,
        corrupt in proptest::sample::select(vec![0.0f64, -12.5, f64::NAN]),
        jitter in proptest::collection::vec(-1.0f64..1.0, 64),
    ) {
        let bad_lev = bad_lev_seed % nlev;
        let vert = VertCoord::standard(nlev, 200.0);
        let (mut dp3d, mut u, mut v, mut t, mut qdp) =
            element_fields(&vert, nlev, qsize, &jitter);
        dp3d[bad_lev * NPTS + bad_pt] = corrupt;

        // The plan validates *every* column before any apply pass runs, so
        // a rejection leaves the element untouched (build borrows dp3d
        // immutably); the scalar oracle only discovers the bad column
        // mid-walk. Both report the same typed verdict.
        let mut plan = ElemRemapPlan::new(nlev);
        let planned_err =
            plan.build(&vert, nlev, &dp3d).expect_err("corrupt layer must be rejected");
        let scalar_err =
            run_scalar(&vert, nlev, qsize, &mut u, &mut v, &mut t, &mut dp3d, &mut qdp)
                .expect_err("oracle must reject too");
        match planned_err {
            RemapError::NonPositiveSource { layer, dp } => {
                prop_assert_eq!(layer, bad_lev);
                prop_assert_eq!(dp.to_bits(), corrupt.to_bits());
            }
            other => prop_assert!(false, "unexpected rejection {:?}", other),
        }
        // Same verdict (NaN payloads compared via Debug, not PartialEq).
        prop_assert_eq!(format!("{planned_err:?}"), format!("{scalar_err:?}"));
    }
}

/// End-to-end rollback routing: a collapsed layer reaching the vertical
/// remap surfaces as `HealthError::Remap` from `Dycore::step_checked` (the
/// blocked/planned path is the default), and restoring the pre-step
/// checkpoint lets integration continue — the distributed driver's
/// checkpoint/rollback protocol in miniature.
#[test]
fn remap_rejection_routes_into_rollback() {
    let dims = Dims { nlev: 4, qsize: 2 };
    let cfg = DycoreConfig::for_ne(2);
    let mut dy = Dycore::new(2, dims, 200.0, cfg);
    // Disarm the ThinLayer stage guard so the bad column reaches the remap.
    dy.health = HealthConfig { min_dp3d: f64::NEG_INFINITY, ..HealthConfig::on() };

    let vert = dy.rhs.vert.clone();
    let mut st = dy.zero_state();
    for es in st.elems_mut() {
        for k in 0..dims.nlev {
            for p in 0..NPTS {
                let i = k * NPTS + p;
                es.t[i] = 300.0;
                es.dp3d[i] = vert.dp_ref(k, P0);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                }
            }
        }
    }

    let checkpoint = st.clone();
    for p in 0..NPTS {
        st.dp3d[NPTS + p] = -5000.0;
    }
    let err = dy.step_checked(&mut st).unwrap_err();
    assert!(matches!(err, HealthError::Remap(_)), "got {err:?}");

    // Roll back to the checkpoint and carry on.
    st = checkpoint;
    dy.step_checked(&mut st).expect("post-rollback step");
}
