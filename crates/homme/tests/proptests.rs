//! Property-based tests of the dynamical core's numerical invariants.

use cubesphere::{CubedSphere, NPTS};
use homme::dss::Dss;
use homme::euler::limit_nonnegative;
use homme::remap::remap_column_ppm;
use homme::rhs::pressure_scan;
use proptest::prelude::*;

proptest! {
    /// PPM remap conserves column mass and preserves bounds for arbitrary
    /// positive thickness distributions and values.
    #[test]
    fn remap_conserves_and_bounds(
        src_dp in proptest::collection::vec(10.0f64..500.0, 4..24),
        vals_seed in proptest::collection::vec(-50.0f64..50.0, 24),
        split in 0.2f64..0.8,
    ) {
        let n = src_dp.len();
        let vals: Vec<f64> = (0..n).map(|k| vals_seed[k % vals_seed.len()]).collect();
        let total: f64 = src_dp.iter().sum();
        // A two-slope target grid with the same total.
        let mut dst = Vec::with_capacity(n);
        let n1 = (n as f64 * split).max(1.0) as usize;
        let n1 = n1.min(n - 1);
        let t1 = total * split;
        for _ in 0..n1 { dst.push(t1 / n1 as f64); }
        for _ in n1..n { dst.push((total - t1) / (n - n1) as f64); }
        let mut out = vec![0.0; n];
        remap_column_ppm(&src_dp, &vals, &dst, &mut out).unwrap();

        let m0: f64 = src_dp.iter().zip(&vals).map(|(d, v)| d * v).sum();
        let m1: f64 = dst.iter().zip(&out).map(|(d, v)| d * v).sum();
        prop_assert!((m0 - m1).abs() < 1e-8 * m0.abs().max(total), "mass {m0} vs {m1}");

        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        for &o in &out {
            prop_assert!(o >= lo - 1e-9 && o <= hi + 1e-9, "{o} outside [{lo}, {hi}]");
        }
    }

    /// Remapping a constant is exact for any grids.
    #[test]
    fn remap_preserves_constants(
        src_dp in proptest::collection::vec(10.0f64..500.0, 3..16),
        c in -100.0f64..100.0,
    ) {
        let n = src_dp.len();
        let total: f64 = src_dp.iter().sum();
        let dst = vec![total / n as f64; n];
        let vals = vec![c; n];
        let mut out = vec![0.0; n];
        remap_column_ppm(&src_dp, &vals, &dst, &mut out).unwrap();
        for &o in &out {
            prop_assert!((o - c).abs() < 1e-10 * c.abs().max(1.0));
        }
    }

    /// The limiter never produces negatives and conserves weighted mass
    /// whenever the level's total mass is non-negative.
    #[test]
    fn limiter_invariants(
        qdp_seed in proptest::collection::vec(-0.5f64..1.0, 16),
        w_seed in proptest::collection::vec(0.1f64..3.0, 16),
    ) {
        let mut qdp = [0.0; NPTS];
        let mut w = [0.0; NPTS];
        qdp.copy_from_slice(&qdp_seed[..NPTS]);
        w.copy_from_slice(&w_seed[..NPTS]);
        let mass0: f64 = (0..NPTS).map(|i| w[i] * qdp[i]).sum();
        limit_nonnegative(&w, &mut qdp);
        prop_assert!(qdp.iter().all(|&x| x >= 0.0));
        let mass1: f64 = (0..NPTS).map(|i| w[i] * qdp[i]).sum();
        if mass0 >= 0.0 {
            prop_assert!((mass0 - mass1).abs() < 1e-10 * mass0.abs().max(1e-10));
        } else {
            prop_assert_eq!(mass1, 0.0);
        }
    }

    /// The pressure scan telescopes exactly: the bottom interface equals
    /// ptop plus the column sum, for arbitrary thicknesses.
    #[test]
    fn pressure_scan_telescopes(
        dp_seed in proptest::collection::vec(1.0f64..2000.0, 16),
        nlev in 2usize..12,
        ptop in 10.0f64..5000.0,
    ) {
        let dp: Vec<f64> = (0..nlev * NPTS).map(|i| dp_seed[i % dp_seed.len()]).collect();
        let mut p_int = vec![0.0; (nlev + 1) * NPTS];
        let mut p_mid = vec![0.0; nlev * NPTS];
        pressure_scan(nlev, ptop, &dp, &mut p_int, &mut p_mid);
        for p in 0..NPTS {
            let col_sum: f64 = (0..nlev).map(|k| dp[k * NPTS + p]).sum();
            let bottom = p_int[nlev * NPTS + p];
            prop_assert!((bottom - ptop - col_sum).abs() < 1e-9 * bottom);
            for k in 0..nlev {
                prop_assert!(p_mid[k * NPTS + p] > p_int[k * NPTS + p]);
                prop_assert!(p_mid[k * NPTS + p] < p_int[(k + 1) * NPTS + p]);
            }
        }
    }
}

/// DSS is a projection (idempotent) and conserves the weighted integral
/// for random fields — checked on a real grid outside proptest's loop
/// (grid construction is the expensive part).
#[test]
fn dss_projection_on_random_fields() {
    use rand::prelude::*;
    let grid = CubedSphere::new(3);
    let mut dss = Dss::new(&grid);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|_| (0..NPTS).map(|_| rng.gen_range(-100.0..100.0)).collect())
            .collect();
        let integral0 = grid.global_integral(&fields);
        let mut views: Vec<&mut [f64]> = fields.iter_mut().map(|f| &mut f[..]).collect();
        dss.apply_level(&mut views);
        drop(views);
        let once = fields.clone();
        let integral1 = grid.global_integral(&fields);
        assert!(
            (integral0 - integral1).abs() < 1e-9 * integral0.abs().max(1.0),
            "integral {integral0} -> {integral1}"
        );
        let mut views: Vec<&mut [f64]> = fields.iter_mut().map(|f| &mut f[..]).collect();
        dss.apply_level(&mut views);
        drop(views);
        for (a, b) in once.iter().zip(&fields) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-10, "not idempotent: {x} vs {y}");
            }
        }
    }
}

/// The weak-form Laplacian integrates to zero for arbitrary fields — the
/// exact-conservation property the hyperviscosity relies on.
#[test]
fn weak_laplacian_integral_vanishes_for_random_fields() {
    use homme::deriv::build_ops;
    use rand::prelude::*;
    let grid = CubedSphere::new(3);
    let ops = build_ops(&grid);
    let mut dss = Dss::new(&grid);
    let mut rng = StdRng::seed_from_u64(123);
    for _ in 0..5 {
        let mut fields: Vec<Vec<f64>> = (0..grid.nelem())
            .map(|_| (0..NPTS).map(|_| rng.gen_range(-1000.0..1000.0)).collect())
            .collect();
        // Magnitude scale of the Laplacian for the tolerance.
        homme::hypervis::laplace_fields(&ops, &mut dss, 1, &mut fields);
        let integral = grid.global_integral(&fields);
        let scale: f64 = fields
            .iter()
            .flat_map(|f| f.iter())
            .map(|x| x.abs())
            .fold(0.0, f64::max)
            * grid.total_area();
        assert!(
            integral.abs() < 1e-12 * scale.max(1.0),
            "integral {integral} vs scale {scale}"
        );
    }
}
