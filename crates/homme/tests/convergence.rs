//! Convergence tests: the spectral-element operators gain accuracy with
//! resolution at the expected rates, and the full model's errors shrink
//! under refinement — the numerical-analysis backbone behind trusting the
//! kernel reproductions.

use cubesphere::{CubedSphere, EARTH_RADIUS, NP, NPTS};
use homme::deriv::build_ops;

/// Max interior-point error of the computed gradient of sin(lat) at
/// resolution `ne`.
fn gradient_error(ne: usize) -> f64 {
    let grid = CubedSphere::new(ne);
    let ops = build_ops(&grid);
    let mut worst: f64 = 0.0;
    for (el, op) in grid.elements.iter().zip(&ops) {
        let s: Vec<f64> = el.metric.iter().map(|m| m.lat.sin()).collect();
        let mut gx = [0.0; NPTS];
        let mut gy = [0.0; NPTS];
        op.gradient_sphere(&s, &mut gx, &mut gy);
        for i in 1..NP - 1 {
            for j in 1..NP - 1 {
                let p = i * NP + j;
                let exact = el.metric[p].lat.cos() / EARTH_RADIUS;
                worst = worst.max((gy[p] - exact).abs() * EARTH_RADIUS);
            }
        }
    }
    worst
}

#[test]
fn gradient_converges_at_high_order() {
    // np = 4 elements: interior-point errors should fall roughly as h^3
    // (h ~ 1/ne). Demand at least h^2.5 between ne = 4 and ne = 8.
    let e4 = gradient_error(4);
    let e8 = gradient_error(8);
    let order = (e4 / e8).log2();
    assert!(
        order > 2.5,
        "observed convergence order {order:.2} (e4 = {e4:.3e}, e8 = {e8:.3e})"
    );
}

/// Max error of the weak Laplacian of the l=1 spherical harmonic.
fn laplacian_error(ne: usize) -> f64 {
    let grid = CubedSphere::new(ne);
    let ops = build_ops(&grid);
    let mut dss = homme::Dss::new(&grid);
    let a2 = EARTH_RADIUS * EARTH_RADIUS;
    let mut fields: Vec<Vec<f64>> = grid
        .elements
        .iter()
        .map(|el| el.metric.iter().map(|m| m.lat.sin()).collect())
        .collect();
    homme::hypervis::laplace_fields(&ops, &mut dss, 1, &mut fields);
    let mut worst: f64 = 0.0;
    for (el, f) in grid.elements.iter().zip(&fields) {
        for p in 0..NPTS {
            let exact = -2.0 * el.metric[p].lat.sin() / a2;
            worst = worst.max((f[p] - exact).abs() * a2);
        }
    }
    worst
}

#[test]
fn weak_laplacian_converges() {
    let e4 = laplacian_error(4);
    let e8 = laplacian_error(8);
    assert!(
        e8 < e4 / 3.0,
        "weak Laplacian not converging: {e4:.3e} -> {e8:.3e}"
    );
    assert!(e8 < 0.05, "absolute accuracy at ne8: {e8:.3e}");
}

/// The balanced solid-body state decays more slowly at higher resolution
/// (the discrete residual is the only forcing).
#[test]
fn balanced_state_error_shrinks_with_resolution() {
    use cubesphere::consts::{OMEGA, P0, RD};
    use homme::{Dims, Dycore, DycoreConfig, HypervisConfig};

    let drift = |ne: usize| -> f64 {
        let dims = Dims { nlev: 4, qsize: 0 };
        let cfg = DycoreConfig {
            dt: 200.0,
            hypervis: HypervisConfig::off(),
            limiter: false,
            rsplit: 1,
        };
        let mut dy = Dycore::new(ne, dims, 2000.0, cfg);
        let (t0, u0) = (300.0, 30.0);
        let c = (EARTH_RADIUS * OMEGA * u0 + 0.5 * u0 * u0) / (RD * t0);
        let mut st = dy.zero_state();
        let elems = dy.grid.elements.clone();
        let vert = dy.rhs.vert.clone();
        for (es, el) in st.elems_mut().zip(&elems) {
            for p in 0..NPTS {
                let lat = el.metric[p].lat;
                let ps = P0 * (-c * lat.sin() * lat.sin()).exp();
                for k in 0..dims.nlev {
                    es.u[k * NPTS + p] = u0 * lat.cos();
                    es.t[k * NPTS + p] = t0;
                    es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                }
            }
        }
        let init = st.clone();
        for _ in 0..5 {
            dy.step(&mut st);
        }
        st.max_abs_diff(&init)
    };

    let d3 = drift(3);
    let d6 = drift(6);
    assert!(d6 < d3 / 2.0, "no refinement benefit: {d3:.3e} -> {d6:.3e}");
}
