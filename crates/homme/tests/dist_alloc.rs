//! Distributed allocation regression gate: after a warm-up step, a full
//! `DistDycore::step` — RK dynamics with the aggregated boundary exchange,
//! hyperviscosity (sponge + subcycles), limited tracer advection, vertical
//! remap — must touch the heap exactly zero times on every rank. All
//! temporaries live in the persistent `DistWorkspace`, receive queues and
//! send buffers are pooled by the communicator, and the exchange packs
//! straight into pooled buffers.
//!
//! The counting `#[global_allocator]` is per-binary state (and counts all
//! rank threads while armed), so this file holds exactly one `#[test]` and
//! shares its binary with nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use cubesphere::consts::P0;
use cubesphere::{CubedSphere, Partition, NPTS};
use homme::hypervis::HypervisConfig;
use homme::{Dims, DistDycore, Dycore, DycoreConfig, ExchangeMode, HealthConfig, StepPath};
use swmpi::run_ranks;

/// Counts every allocation (from any thread, all ranks included) while
/// armed; forwards everything to the system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn distributed_step_allocates_nothing_after_warmup() {
    let ne = 3;
    let dims = Dims { nlev: 4, qsize: 2 };
    // Every phase on: sponge + subcycled hypervis, limiter, remap each step.
    let hypervis =
        HypervisConfig { nu: 1.0e15, nu_p: 1.0e15, subcycles: 2, nu_top: 2.5e5, sponge_layers: 2 };
    let cfg = DycoreConfig { dt: 300.0, hypervis, limiter: true, rsplit: 1 };

    // Seed a moving global state with tracers via the serial driver.
    let serial = Dycore::new(ne, dims, 2000.0, cfg);
    let vert = serial.rhs.vert.clone();
    let elems = serial.grid.elements.clone();
    let mut init = serial.zero_state();
    for (es, el) in init.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..dims.nlev {
                es.u[k * NPTS + p] = 12.0 * lat.cos();
                es.v[k * NPTS + p] = 2.0 * el.metric[p].lon.sin();
                es.t[k * NPTS + p] = 280.0 + 5.0 * lat.cos() + k as f64;
                es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] =
                        0.004 * es.dp3d[k * NPTS + p] * (1.0 + 0.1 * q as f64);
                }
            }
        }
    }

    let nranks = 4;
    let grid = CubedSphere::new(ne);
    let part = Partition::new(&grid, nranks);
    let counts = run_ranks(nranks, |ctx| {
        let mut dist =
            DistDycore::new(&grid, &part, ctx.rank(), dims, 2000.0, cfg, ExchangeMode::Redesigned);
        // Health guards on: the per-stage scans and the per-step global
        // verdict reduction must be allocation-free too.
        dist.health = HealthConfig::on();
        let mut local = dist.local_state(&init);

        // Warm-up: grows the exchange buffers and the communicator's
        // buffer pool, and may lazily touch thread-local libstd caches.
        // Two reductions so both of the collectives' swap buffers reach
        // verdict width.
        let _ = dist.step_checked(ctx, &mut local).expect("warm-up step").reduce_global(&ctx.coll);
        let _ = dist.step_checked(ctx, &mut local).expect("warm-up step").reduce_global(&ctx.coll);

        // All ranks step together inside the armed window (the barrier
        // itself is allocation-free: an empty allreduce).
        ctx.coll.barrier();
        if ctx.rank() == 0 {
            ALLOCS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        ctx.coll.barrier();
        let h1 = dist.step_checked(ctx, &mut local).expect("armed step").reduce_global(&ctx.coll);
        let h2 = dist.step_checked(ctx, &mut local).expect("armed step").reduce_global(&ctx.coll);
        assert!(h1.checked && h2.checked);
        ctx.coll.barrier();
        if ctx.rank() == 0 {
            ARMED.store(false, Ordering::SeqCst);
        }
        ctx.coll.barrier();
        let bulk_allocs = ALLOCS.load(Ordering::SeqCst);

        // Same contract on the message-driven task-graph path: the warm-up
        // step grows the graph buffers (raw parity windows, per-link
        // receive slots, ready stack) and widens the communicator's pooled
        // buffers to the per-stage message sizes; after that, stepping is
        // allocation-free on every rank.
        dist.step_path = StepPath::TaskGraph;
        for _ in 0..2 {
            let _ = dist
                .step_checked(ctx, &mut local)
                .expect("task-graph warm-up step")
                .reduce_global(&ctx.coll);
        }
        ctx.coll.barrier();
        if ctx.rank() == 0 {
            ALLOCS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
        }
        ctx.coll.barrier();
        let g1 = dist.step_checked(ctx, &mut local).expect("armed step").reduce_global(&ctx.coll);
        let g2 = dist.step_checked(ctx, &mut local).expect("armed step").reduce_global(&ctx.coll);
        assert!(g1.checked && g2.checked);
        ctx.coll.barrier();
        if ctx.rank() == 0 {
            ARMED.store(false, Ordering::SeqCst);
        }
        ctx.coll.barrier();
        assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
        (bulk_allocs, ALLOCS.load(Ordering::SeqCst))
    });
    let (bulk_max, graph_max) = counts
        .into_iter()
        .fold((0, 0), |(b, g), (nb, ng)| (b.max(nb), g.max(ng)));
    assert_eq!(bulk_max, 0, "DistDycore::step heap-allocated {bulk_max} times after warm-up");
    assert_eq!(
        graph_max, 0,
        "task-graph DistDycore::step heap-allocated {graph_max} times after warm-up"
    );
}
