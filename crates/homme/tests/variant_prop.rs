//! Property-style sweeps of the kernel-variant equivalence: the Athread and
//! OpenACC rewrites must match the reference across the size space the
//! decomposition supports, not just one lucky configuration.

use homme::kernels::{verify, KernelData, KernelId, Variant};

#[test]
fn athread_matches_reference_across_sizes() {
    let env = verify::KernelEnv::default();
    // (nelem, nlev, qsize): nlev multiples of 32 cover the remap
    // transposition constraint; nelem both multiples of 8 and ragged.
    let cases = [
        (8usize, 32usize, 1usize),
        (16, 32, 2),
        (24, 32, 5),
        (12, 64, 3), // ragged element count: idle CPE columns
        (8, 64, 2),
        (32, 32, 4),
    ];
    for (seed, &(nelem, nlev, qsize)) in cases.iter().enumerate() {
        for kernel in KernelId::ALL {
            let mut reference = KernelData::synth(nelem, nlev, qsize, 9_000 + seed as u64);
            verify::run(kernel, Variant::Reference, &mut reference, &env);
            let mut other = KernelData::synth(nelem, nlev, qsize, 9_000 + seed as u64);
            verify::run(kernel, Variant::Athread, &mut other, &env);
            let diff = verify::output_diff(kernel, &reference, &other);
            assert!(
                diff < 1e-7,
                "{} athread differs by {diff} at ({nelem}, {nlev}, {qsize})",
                kernel.name()
            );
        }
    }
}

#[test]
fn openacc_matches_reference_across_sizes() {
    let env = verify::KernelEnv::default();
    let cases = [(8usize, 16usize, 2usize), (20, 32, 4), (64, 8, 1)];
    for (seed, &(nelem, nlev, qsize)) in cases.iter().enumerate() {
        for kernel in KernelId::ALL {
            let mut reference = KernelData::synth(nelem, nlev, qsize, 9_100 + seed as u64);
            verify::run(kernel, Variant::Reference, &mut reference, &env);
            let mut other = KernelData::synth(nelem, nlev, qsize, 9_100 + seed as u64);
            verify::run(kernel, Variant::OpenAcc, &mut other, &env);
            let diff = verify::output_diff(kernel, &reference, &other);
            assert!(
                diff < 1e-9,
                "{} openacc differs by {diff} at ({nelem}, {nlev}, {qsize})",
                kernel.name()
            );
        }
    }
}

#[test]
fn athread_counters_scale_with_workload() {
    // DMA traffic of the Athread euler_step is an exact affine function of
    // the workload: doubling the elements doubles every counter.
    let env = verify::KernelEnv::default();
    let mut small = KernelData::synth(8, 32, 3, 77);
    let mut big = KernelData::synth(16, 32, 3, 77);
    let a = verify::run(KernelId::EulerStep, Variant::Athread, &mut small, &env).counters;
    let b = verify::run(KernelId::EulerStep, Variant::Athread, &mut big, &env).counters;
    assert_eq!(b.dma_bytes_in, 2 * a.dma_bytes_in);
    assert_eq!(b.dma_bytes_out, 2 * a.dma_bytes_out);
    assert_eq!(b.vflops, 2 * a.vflops);
}
