//! Driver-level contracts of the per-element hyperviscosity plan
//! (DESIGN.md §5.7): the fused Blocked path is a bitwise re-expression of
//! the scalar oracle across level counts and sponge depths, the subcycled
//! del^4 damping conserves dp3d mass, the stability-derived subcycle
//! counts are pinned and rank-invariant, and a corrupt element is
//! rejected by the plan build as a typed error before any state is
//! touched.

use cubesphere::consts::P0;
use cubesphere::{CubedSphere, Partition, NPTS};
use homme::{
    Dims, DistDycore, Dycore, DycoreConfig, ExchangeMode, HealthConfig, HealthError,
    HypervisConfig, HypervisError, KernelPath, State,
};
use swmpi::run_ranks;

const NE: usize = 2;

/// A full dissipation config: distinct `nu`/`nu_p`, active sponge when
/// `sponge_layers > 0`, a fixed subcycle floor.
fn hv_config(sponge_layers: usize) -> DycoreConfig {
    DycoreConfig {
        dt: 300.0,
        hypervis: HypervisConfig {
            nu: 1.0e15,
            nu_p: 1.7e15,
            subcycles: 3,
            nu_top: 2.5e5,
            sponge_layers,
        },
        limiter: false,
        rsplit: 1,
    }
}

fn initial_state(dy: &Dycore) -> State {
    let d = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..d.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.v[i] = 2.0 * lon.sin();
                es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, ps);
            }
        }
    }
    st
}

fn assert_fields_bitwise(a: &State, b: &State, what: &str) {
    for (name, fa, fb) in
        [("u", &a.u, &b.u), ("v", &a.v, &b.v), ("t", &a.t, &b.t), ("dp3d", &a.dp3d, &b.dp3d)]
    {
        for (i, (x, y)) in fa.iter().zip(fb.iter()).enumerate() {
            assert!(x.to_bits() == y.to_bits(), "{what}: {name}[{i}] differs: {x:e} vs {y:e}");
        }
    }
}

/// The planned Blocked path against the scalar oracle over the dimension
/// space the plan specializes on: every level count the fused sweeps must
/// handle (single level, the two-level edge, a deep 128-level column)
/// crossed with sponge off and a sponge deeper than the shallow columns
/// (the `ks = min(sponge_layers, nlev)` clamp). Ten subcycled
/// applications stay bitwise identical.
#[test]
fn planned_hypervis_matches_scalar_across_dims_bitwise() {
    for &nlev in &[1usize, 2, 3, 26, 128] {
        for &sponge in &[0usize, 3] {
            let dims = Dims { nlev, qsize: 0 };
            let run = |path: KernelPath| {
                let mut dy = Dycore::new(NE, dims, 2000.0, hv_config(sponge));
                dy.kernels = path;
                let mut st = initial_state(&dy);
                for _ in 0..10 {
                    dy.apply_hypervis_n(&mut st, 3).expect("plan accepted");
                }
                st
            };
            let scalar = run(KernelPath::Scalar);
            let blocked = run(KernelPath::Blocked);
            assert_fields_bitwise(&scalar, &blocked, &format!("nlev={nlev} sponge={sponge}"));
        }
    }
}

/// The weak-form del^4 damping of dp3d is a pure redistribution: the
/// DSS-assembled weak Laplacian sums to zero over the closed sphere, so
/// total `spheremp`-weighted mass survives ten subcycled applications to
/// round-off on both kernel paths.
#[test]
fn subcycled_hypervis_conserves_dp3d_mass() {
    let dims = Dims { nlev: 8, qsize: 0 };
    for path in [KernelPath::Scalar, KernelPath::Blocked] {
        let mut dy = Dycore::new(NE, dims, 2000.0, hv_config(3));
        dy.kernels = path;
        let mut st = initial_state(&dy);
        let mass = |dy: &Dycore, st: &State| -> f64 {
            let fl = dims.field_len();
            let mut total = 0.0;
            for (e, ops) in dy.ops.iter().enumerate() {
                for k in 0..dims.nlev {
                    for p in 0..NPTS {
                        total += ops.spheremp[p] * st.dp3d[e * fl + k * NPTS + p];
                    }
                }
            }
            total
        };
        let m0 = mass(&dy, &st);
        for _ in 0..10 {
            dy.apply_hypervis(&mut st).expect("plan accepted");
        }
        let m1 = mass(&dy, &st);
        let rel = ((m1 - m0) / m0).abs();
        assert!(rel < 1e-12, "{path:?}: dp3d mass drifted by {rel:e} ({m0} -> {m1})");
    }
}

/// Shallow-column regression (serial + distributed): a sponge deeper than
/// the column (`sponge_layers = 3`, `nlev` in {1, 2}) clamps to the
/// available levels instead of indexing past them, actually damps, and
/// the distributed driver tracks the serial one.
#[test]
fn shallow_level_sponge_clamps_serial_and_distributed() {
    let ne = 3;
    for &nlev in &[1usize, 2] {
        let dims = Dims { nlev, qsize: 0 };
        let cfg = hv_config(3);
        let mut serial = Dycore::new(ne, dims, 2000.0, cfg);
        let mut st = initial_state(&serial);
        let initial = st.clone();
        serial.apply_hypervis_n(&mut st, 3).expect("plan accepted");
        assert!(st.t.iter().all(|x| x.is_finite()), "nlev={nlev}: non-finite after sponge");
        assert!(
            st.t.iter().zip(&initial.t).any(|(a, b)| a != b),
            "nlev={nlev}: hyperviscosity was a no-op"
        );

        let grid = CubedSphere::new(ne);
        let part = Partition::new(&grid, 4);
        let results = run_ranks(4, |ctx| {
            let mut dist =
                DistDycore::new(&grid, &part, ctx.rank(), dims, 2000.0, cfg, ExchangeMode::Redesigned);
            let mut local = dist.local_state(&initial);
            dist.apply_hypervis_n(ctx, &mut local, 3).expect("plan accepted");
            assert_eq!(ctx.comm.unmatched(), 0, "orphaned messages on rank {}", ctx.rank());
            (dist.plan.owned.clone(), local)
        });
        for (owned, local) in results {
            for (li, &e) in owned.iter().enumerate() {
                let es = local.elem(li);
                let rs = st.elem(e);
                for i in 0..dims.field_len() {
                    assert!(
                        (es.u[i] - rs.u[i]).abs() < 1e-9
                            && (es.v[i] - rs.v[i]).abs() < 1e-9
                            && (es.t[i] - rs.t[i]).abs() < 1e-9
                            && (es.dp3d[i] - rs.dp3d[i]).abs() < 1e-9,
                        "nlev={nlev} elem {e}[{i}] diverged from serial"
                    );
                }
            }
        }
    }
}

/// Stability-derived subcycle counts, pinned at the paper's resolutions.
/// Both drivers evaluate `HypervisConfig::stable_subcycles` on global
/// element 0, so the counts are resolution functions only — the pins
/// catch any drift in the CFL formula or the `MIN_GLL_GAP_METERS` floor.
#[test]
fn stable_subcycle_counts_pinned_across_resolutions() {
    // `for_ne` couples nu ~ ne^-3.2 and dt ~ ne^-1 against a GLL gap
    // ~ ne^-1, so the count shrinks slowly with refinement.
    for &(ne, want) in &[(4usize, 41usize), (8, 36), (30, 28), (120, 21)] {
        let cfg = DycoreConfig::for_ne(ne);
        let grid = CubedSphere::new(ne);
        let el = &grid.elements[0];
        let got = cfg.hypervis.stable_subcycles(el.dab, el.metric[0].metdet, cfg.dt);
        assert_eq!(got, want, "ne{ne} subcycle count drifted");
    }
}

/// Serial and distributed drivers agree on the subcycle count on every
/// rank of every partition — the count is part of the exchange schedule,
/// so a disagreement would deadlock the fused hyperviscosity exchanges.
#[test]
fn subcycle_count_agrees_between_serial_and_distributed() {
    for &ne in &[4usize, 8] {
        let dims = Dims { nlev: 3, qsize: 0 };
        let cfg = DycoreConfig::for_ne(ne);
        let serial = Dycore::new(ne, dims, 2000.0, cfg);
        let want = serial.hypervis_subcycles();
        let grid = CubedSphere::new(ne);
        for nranks in [2usize, 5] {
            let part = Partition::new(&grid, nranks);
            let counts = run_ranks(nranks, |ctx| {
                let dist = DistDycore::new(
                    &grid,
                    &part,
                    ctx.rank(),
                    dims,
                    2000.0,
                    cfg,
                    ExchangeMode::Redesigned,
                );
                dist.hypervis_subcycles()
            });
            for (rank, got) in counts.into_iter().enumerate() {
                assert_eq!(got, want, "ne{ne} rank {rank}/{nranks} disagrees with serial");
            }
        }
    }
}

/// A corrupt element is rejected by the plan build as a typed
/// [`HypervisError::BadGeometry`] naming the element and GLL point —
/// before any sweep runs, so the state is bitwise untouched and the
/// caller can retry from it after repairing the geometry.
#[test]
fn corrupt_geometry_rejected_before_any_state_mutation() {
    let dims = Dims { nlev: 4, qsize: 0 };
    let mut dy = Dycore::new(NE, dims, 2000.0, hv_config(3));
    let mut st = initial_state(&dy);
    dy.ops[5].spheremp[7] = f64::NAN;
    let before = st.clone();
    let err = dy.apply_hypervis(&mut st).unwrap_err();
    assert!(
        matches!(err, HealthError::Hypervis(HypervisError::BadGeometry { elem: 5, point: 7 })),
        "got {err:?}"
    );
    assert_fields_bitwise(&before, &st, "state after rejected plan");
}

/// The same rejection routes through the guarded step driver as a typed
/// [`HealthError::Hypervis`], the rollback signal `step_checked` callers
/// act on (restore from checkpoint, repair, retry).
#[test]
fn guarded_step_surfaces_hypervis_rejection_as_typed_error() {
    let dims = Dims { nlev: 4, qsize: 0 };
    let mut dy = Dycore::new(NE, dims, 2000.0, hv_config(3));
    dy.health = HealthConfig::on();
    let mut st = initial_state(&dy);
    dy.ops[2].spheremp[0] = -1.0;
    let err = dy.step_checked(&mut st).unwrap_err();
    assert!(matches!(err, HealthError::Hypervis(HypervisError::BadGeometry { elem: 2, .. })), "got {err:?}");
}

/// A non-finite timestep (e.g. inherited from a corrupted restart) is
/// caught as [`HypervisError::NonFiniteCoef`] instead of silently
/// poisoning every field through the damping coefficients.
#[test]
fn non_finite_dt_rejected_as_typed_coef_error() {
    let dims = Dims { nlev: 4, qsize: 0 };
    let mut dy = Dycore::new(NE, dims, 2000.0, hv_config(0));
    let mut st = initial_state(&dy);
    dy.cfg.dt = f64::NAN;
    let err = dy.apply_hypervis(&mut st).unwrap_err();
    assert!(matches!(err, HealthError::Hypervis(HypervisError::NonFiniteCoef { .. })), "got {err:?}");
}
