//! Allocation regression gate: after the first (warm-up) step, the whole
//! `Dycore::step` pipeline — RK dynamics, DSS, hyperviscosity, tracer
//! advection, vertical remap — must touch the heap exactly zero times.
//! Every temporary lives in the persistent `StepWorkspace` and per-worker
//! scratch, so steady-state stepping is allocation-free by construction;
//! this test keeps it that way.
//!
//! The counting `#[global_allocator]` is per-binary state, so this file
//! holds exactly one `#[test]` and shares its binary with nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::hypervis::HypervisConfig;
use homme::remap::remap_field_with;
use homme::{Dims, Dycore, DycoreConfig, ElemRemapPlan, HealthConfig, RemapApplyScratch, StepPath};

/// Counts every allocation (from any thread, scheduler workers included)
/// while armed; forwards everything to the system allocator.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn step_allocates_nothing_after_warmup() {
    let dims = Dims { nlev: 8, qsize: 2 };
    // Every phase on: sponge + subcycled hypervis, limiter, remap each step.
    let hypervis =
        HypervisConfig { nu: 1.0e15, nu_p: 1.0e15, subcycles: 2, nu_top: 2.5e5, sponge_layers: 3 };
    let cfg = DycoreConfig { dt: 600.0, hypervis, limiter: true, rsplit: 1 };
    let mut dy = Dycore::new(2, dims, 200.0, cfg);
    dy.set_threads(4);
    // Health guards on: the per-stage scans must be allocation-free too.
    dy.health = HealthConfig::on();

    let vert = dy.rhs.vert.clone();
    let mut st = dy.zero_state();
    for es in st.elems_mut() {
        for k in 0..dims.nlev {
            for p in 0..NPTS {
                let i = k * NPTS + p;
                es.t[i] = 300.0 + ((i % 7) as f64 - 3.0) * 0.5;
                es.dp3d[i] = vert.dp_ref(k, P0);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] = 0.01 * es.dp3d[i];
                }
            }
        }
    }

    // Warm-up: first step may lazily touch thread-local / libstd caches.
    dy.step_checked(&mut st).expect("warm-up step");

    // Standalone remap_field_with: warm plan + scratch sized for nlev must
    // also be allocation-free on reuse (segment capacity is reserved up
    // front, so rebuilding the plan for new grids never grows the Vecs).
    let mut plan = ElemRemapPlan::new(dims.nlev);
    let mut apply = RemapApplyScratch::new(dims.nlev);
    let fl = dims.nlev * NPTS;
    let mut src = vec![0.0; fl];
    let mut dst = vec![0.0; fl];
    let mut field = vec![0.0; fl];
    for i in 0..fl {
        src[i] = vert.dp_ref(i / NPTS, P0);
        dst[i] = src[i] * (1.0 + 0.01 * ((i % 5) as f64 - 2.0));
        field[i] = 1.0 + 0.1 * (i % 3) as f64;
    }
    let total: f64 = src.chunks_exact(NPTS).map(|r| r[0]).sum();
    for p in 0..NPTS {
        let drift: f64 = (0..dims.nlev).map(|k| dst[k * NPTS + p]).sum::<f64>() - total;
        dst[(dims.nlev - 1) * NPTS + p] -= drift;
    }
    remap_field_with(dims.nlev, &src, &dst, &mut field, &mut plan, &mut apply)
        .expect("warm-up remap_field_with");

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    dy.step_checked(&mut st).expect("armed step");
    dy.step_checked(&mut st).expect("armed step");
    remap_field_with(dims.nlev, &src, &dst, &mut field, &mut plan, &mut apply)
        .expect("armed remap_field_with");
    ARMED.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "Dycore::step_checked heap-allocated {n} times after warm-up");

    // Same contract on the task-graph path: one warm-up step grows the
    // graph's grow-only buffers (raw parity windows, ready ring, scan
    // partials), after which stepping is allocation-free too.
    dy.step_path = StepPath::TaskGraph;
    dy.step_checked(&mut st).expect("task-graph warm-up step");

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    dy.step_checked(&mut st).expect("armed task-graph step");
    dy.step_checked(&mut st).expect("armed task-graph step");
    ARMED.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "task-graph step_checked heap-allocated {n} times after warm-up");
}
