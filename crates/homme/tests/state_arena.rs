//! Equivalence suite for the flat SoA state-arena pipeline.
//!
//! The refactored [`Dycore::step`] (flat arena + persistent workspace +
//! element scheduler) must reproduce the seed per-element-`Vec` driver,
//! preserved verbatim in [`homme::SeedStepper`], bitwise: both paths run
//! identical per-element arithmetic and identical DSS accumulation order,
//! so every intermediate is the same f64 and no tolerance is needed.

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::hypervis::HypervisConfig;
use homme::{Dims, Dycore, DycoreConfig, SeedStepper, State};
use proptest::prelude::*;

/// A dynamically interesting initial condition: a balanced-ish zonal jet,
/// a wavenumber-`modulus` temperature perturbation, and tracers with
/// distinct spatial structure per index.
fn initial_state(dy: &Dycore, amp: f64, modulus: usize) -> State {
    let dims = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems: Vec<_> = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            for k in 0..dims.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.v[i] = 0.0;
                es.t[i] = 300.0 + amp * ((modulus as f64) * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, P0);
                for q in 0..dims.qsize {
                    let iq = (q * dims.nlev + k) * NPTS + p;
                    let shape = 0.5 + 0.5 * ((q + 1) as f64 * lon).cos() * lat.cos();
                    es.qdp[iq] = 0.01 * shape * es.dp3d[i];
                }
            }
        }
    }
    st
}

/// Hyperviscosity strong enough to exercise the sponge and the subcycle
/// loop but weak enough that the stability heuristic keeps the configured
/// subcycle count (the `for_ne` coefficients need ~40 subcycles at these
/// resolutions, which is too slow for a debug-mode equivalence run).
fn test_hypervis() -> HypervisConfig {
    HypervisConfig { nu: 1.0e15, nu_p: 1.0e15, subcycles: 2, nu_top: 2.5e5, sponge_layers: 3 }
}

/// Ten full steps at the paper-like column configuration
/// (ne4, nlev = 26, qsize = 4): flat pipeline vs seed reference, bitwise.
/// `rsplit = 2` so the trajectory covers both remap and no-remap steps.
#[test]
fn ten_steps_match_seed_reference_bitwise() {
    let dims = Dims { nlev: 26, qsize: 4 };
    let cfg = DycoreConfig { dt: 600.0, hypervis: test_hypervis(), limiter: true, rsplit: 2 };
    let mut dy = Dycore::new(4, dims, 200.0, cfg);

    let init = initial_state(&dy, 2.0, 3);
    let mut flat = init.clone();
    for _ in 0..10 {
        dy.step(&mut flat);
    }

    let mut seed = init.clone();
    let mut oracle = SeedStepper::new();
    for _ in 0..10 {
        oracle.step(&mut dy, &mut seed);
    }

    // Guard against a trivially-passing test: the flow must have evolved.
    assert!(flat.max_abs_diff(&init) > 1e-3, "state never evolved");
    let diff = flat.max_abs_diff(&seed);
    assert_eq!(diff, 0.0, "flat pipeline diverged from seed reference by {diff:e}");
}

/// The remap cadence counter must agree between the two drivers: with
/// `rsplit = 3`, steps 3, 6, 9, ... remap and the others do not.
#[test]
fn remap_cadence_matches_seed_reference() {
    let dims = Dims { nlev: 8, qsize: 1 };
    let cfg = DycoreConfig { dt: 600.0, hypervis: test_hypervis(), limiter: true, rsplit: 3 };
    let mut dy = Dycore::new(2, dims, 200.0, cfg);

    let init = initial_state(&dy, 1.0, 2);
    let mut flat = init.clone();
    let mut seed = init.clone();
    let mut oracle = SeedStepper::new();
    for step in 1..=7 {
        dy.step(&mut flat);
        oracle.step(&mut dy, &mut seed);
        assert_eq!(flat.max_abs_diff(&seed), 0.0, "divergence at step {step}");
    }
}

proptest! {
    /// Workspace reuse never leaks state between runs: a dycore whose
    /// [`homme::StepWorkspace`] is dirty from stepping an unrelated
    /// trajectory must advance a fresh state bitwise identically to a
    /// freshly-built dycore. Randomizes the decoy trajectory, the target
    /// state, and how many steps dirty the workspace.
    #[test]
    fn workspace_reuse_never_leaks_stale_data(
        decoy_amp in 0.5f64..8.0,
        decoy_modulus in 2usize..9,
        target_amp in 0.5f64..8.0,
        target_modulus in 2usize..9,
        dirty_steps in 1usize..4,
    ) {
        let dims = Dims { nlev: 5, qsize: 1 };
        let cfg = DycoreConfig { dt: 600.0, hypervis: test_hypervis(), limiter: true, rsplit: 1 };

        let mut dirty_dy = Dycore::new(2, dims, 200.0, cfg);
        let mut decoy = initial_state(&dirty_dy, decoy_amp, decoy_modulus);
        for _ in 0..dirty_steps {
            dirty_dy.step(&mut decoy);
        }

        let target = initial_state(&dirty_dy, target_amp, target_modulus);
        let mut from_dirty = target.clone();
        dirty_dy.step(&mut from_dirty);

        let mut fresh_dy = Dycore::new(2, dims, 200.0, cfg);
        let mut from_fresh = target.clone();
        fresh_dy.step(&mut from_fresh);

        let diff = from_dirty.max_abs_diff(&from_fresh);
        prop_assert!(diff == 0.0, "dirty workspace leaked into the step: diff {diff:e}");
    }
}
