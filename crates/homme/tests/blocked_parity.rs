//! Bitwise parity of the blocked (4-wide) kernel path against the scalar
//! oracle at the driver level: same grid, same initial state, the only
//! difference is [`Dycore::kernels`]. The blocked kernels reorder nothing
//! — multiplies and adds happen in the scalar path's exact order, lane by
//! lane — so whole trajectories must agree to the last bit across level
//! counts, tracer counts, and step counts.

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::{Dims, Dycore, DycoreConfig, KernelPath, State};

const NE: usize = 2;

fn config_for(nlev: usize) -> DycoreConfig {
    let mut cfg = DycoreConfig::for_ne(NE);
    if nlev < 3 {
        // Too few levels for the top-of-model sponge or a meaningful PPM
        // remap; parity of those paths is covered by the deeper configs.
        cfg.hypervis.sponge_layers = 0;
        cfg.rsplit = 1_000_000;
    }
    cfg
}

fn initial_state(dy: &Dycore) -> State {
    let d = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..d.nlev {
                let i = k * NPTS + p;
                es.u[i] = 20.0 * lat.cos();
                es.v[i] = 2.0 * lon.sin();
                es.t[i] = 300.0 + 2.0 * (3.0 * lon).sin() * lat.cos();
                es.dp3d[i] = vert.dp_ref(k, ps);
                for q in 0..d.qsize {
                    es.qdp[(q * d.nlev + k) * NPTS + p] =
                        (0.01 + 0.002 * q as f64) * es.dp3d[i] * (1.0 + 0.1 * (2.0 * lon).cos());
                }
            }
        }
    }
    st
}

fn run(path: KernelPath, dims: Dims, nsteps: usize) -> State {
    let mut dy = Dycore::new(NE, dims, 2000.0, config_for(dims.nlev));
    dy.kernels = path;
    let mut st = initial_state(&dy);
    for _ in 0..nsteps {
        dy.step(&mut st);
    }
    st
}

fn assert_state_bitwise(a: &State, b: &State, what: &str) {
    for (name, fa, fb) in [
        ("u", &a.u, &b.u),
        ("v", &a.v, &b.v),
        ("t", &a.t, &b.t),
        ("dp3d", &a.dp3d, &b.dp3d),
        ("qdp", &a.qdp, &b.qdp),
    ] {
        assert_eq!(fa.len(), fb.len(), "{what}: {name} length");
        for (i, (x, y)) in fa.iter().zip(fb.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: {name}[{i}] differs: {x:e} vs {y:e}"
            );
        }
    }
}

/// Sweep the dimension space the kernels specialize over: every level
/// count the blocked vertical scans and planned remap must handle
/// (including a single level, the two-level edge the PPM interior-interface
/// loop skips, and a deep 128-level column) crossed with every tracer-loop
/// shape (none, one, several).
#[test]
fn blocked_path_matches_scalar_across_dims_bitwise() {
    for &nlev in &[1usize, 2, 3, 26, 128] {
        for &qsize in &[0usize, 1, 4] {
            let dims = Dims { nlev, qsize };
            let nsteps = if nlev >= 128 { 1 } else { 2 };
            let scalar = run(KernelPath::Scalar, dims, nsteps);
            let blocked = run(KernelPath::Blocked, dims, nsteps);
            assert_state_bitwise(&scalar, &blocked, &format!("nlev={nlev} qsize={qsize}"));
        }
    }
}

/// A longer serial trajectory: ten full steps (dynamics + hyperviscosity
/// + tracers + remap each) stay bitwise identical between the paths.
#[test]
fn ten_step_serial_trajectory_is_bitwise_identical() {
    let dims = Dims { nlev: 8, qsize: 2 };
    let scalar = run(KernelPath::Scalar, dims, 10);
    let blocked = run(KernelPath::Blocked, dims, 10);
    assert_state_bitwise(&scalar, &blocked, "10-step serial");
}
