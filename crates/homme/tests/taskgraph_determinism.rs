//! Determinism sweep for the message-driven task-graph step: the result
//! must be bitwise independent of the worker count AND of the order in
//! which element tasks become ready (seeded shuffles of the initial ready
//! queue stand in for message-arrival races), pinned against the bulk
//! barrier-path oracle over a 10-step run.
//!
//! This is the heart of the task-graph contract: per-point DSS
//! accumulation always applies contributions in canonical (element id,
//! point) order, so scheduling freedom never leaks into the physics.

use cubesphere::consts::P0;
use cubesphere::NPTS;
use homme::hypervis::HypervisConfig;
use homme::{Dims, Dycore, DycoreConfig, State, StepPath};
use proptest::TestRng;

const NE: usize = 4;
const NSTEPS: usize = 10;

fn dims() -> Dims {
    Dims { nlev: 26, qsize: 4 }
}

fn config() -> DycoreConfig {
    DycoreConfig {
        dt: 100.0,
        hypervis: HypervisConfig {
            nu: 1.0e15,
            nu_p: 1.7e15,
            subcycles: 2,
            nu_top: 2.5e5,
            sponge_layers: 3,
        },
        limiter: true,
        rsplit: 2,
    }
}

fn initial_state(dy: &Dycore) -> State {
    let dims = dy.dims;
    let vert = dy.rhs.vert.clone();
    let elems = dy.grid.elements.clone();
    let mut st = dy.zero_state();
    for (es, el) in st.elems_mut().zip(&elems) {
        for p in 0..NPTS {
            let lat = el.metric[p].lat;
            let lon = el.metric[p].lon;
            let ps = P0 * (1.0 - 0.001 * (2.0 * lat).sin());
            for k in 0..dims.nlev {
                es.u[k * NPTS + p] = 12.0 * lat.cos();
                es.v[k * NPTS + p] = 2.0 * lon.sin();
                es.t[k * NPTS + p] = 280.0 + 5.0 * lat.cos() + 0.5 * k as f64;
                es.dp3d[k * NPTS + p] = vert.dp_ref(k, ps);
                for q in 0..dims.qsize {
                    es.qdp[(q * dims.nlev + k) * NPTS + p] =
                        0.004 * es.dp3d[k * NPTS + p] * (1.0 + 0.3 * lat.sin() + 0.1 * q as f64);
                }
            }
        }
    }
    st
}

fn run(path: StepPath, threads: usize, seed: u64) -> State {
    let mut dy = Dycore::new(NE, dims(), 2000.0, config());
    dy.set_threads(threads);
    dy.step_path = path;
    dy.taskgraph_seed = seed;
    let mut st = initial_state(&dy);
    for _ in 0..NSTEPS {
        dy.step(&mut st);
    }
    st
}

fn assert_bitwise(label: &str, got: &State, want: &State) {
    for (name, g, w) in [
        ("u", &got.u, &want.u),
        ("v", &got.v, &want.v),
        ("t", &got.t, &want.t),
        ("dp3d", &got.dp3d, &want.dp3d),
        ("qdp", &got.qdp, &want.qdp),
    ] {
        for i in 0..g.len() {
            assert_eq!(
                g[i].to_bits(),
                w[i].to_bits(),
                "{label}: {name}[{i}] = {} differs from oracle {}",
                g[i],
                w[i]
            );
        }
    }
}

/// Thread counts {1, 2, 4} and randomly seeded ready-queue shuffles all
/// reproduce the bulk path bit for bit.
#[test]
fn taskgraph_step_is_schedule_independent() {
    let oracle = run(StepPath::Bulk, 1, 0);

    // Identity seed across the SWCAM_THREADS matrix.
    for threads in [1usize, 2, 4] {
        let st = run(StepPath::TaskGraph, threads, 0);
        assert_bitwise(&format!("threads={threads} seed=0"), &st, &oracle);
    }

    // Seeded arrival shuffles: derive seeds the same way the proptest
    // harness does so the sweep is deterministic yet arbitrary-looking.
    let mut rng = TestRng::from_name("taskgraph_step_is_schedule_independent");
    for case in 0..3u32 {
        let seed = rng.next_u64() | 1; // nonzero: actually shuffled
        let threads = [1usize, 2, 4][case as usize % 3];
        let st = run(StepPath::TaskGraph, threads, seed);
        assert_bitwise(&format!("threads={threads} seed={seed:#x}"), &st, &oracle);
    }
}
