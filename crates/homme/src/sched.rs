//! Persistent element scheduler: runs per-element loops of the dycore
//! pipeline across host cores with zero steady-state heap allocation.
//!
//! The ISSUE sketch suggested crossbeam scoped threads, but spawning a
//! scope per loop allocates (thread stacks, join handles) on every step —
//! incompatible with the zero-allocation contract on `Dycore::step`. So
//! the pool here is spawned once and reused: each `run` publishes the job
//! closure as a raw pointer under a mutex, bumps an epoch, and wakes the
//! workers; items are claimed in chunks off a shared atomic cursor
//! (work-stealing by self-scheduling — an idle worker keeps pulling
//! chunks until the cursor runs dry). `run` returns only after every
//! worker has finished, which is what makes the raw-pointer publication
//! sound.
//!
//! Determinism: every item is executed exactly once and jobs write only
//! item-indexed (disjoint) outputs, so results are bitwise independent of
//! thread count and chunk interleaving. DSS stays serial and is the
//! synchronization point between parallel phases.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased job: `(worker_id, item_index)`.
type Job = *const (dyn Fn(usize, usize) + Sync);

struct JobSlot {
    job: Option<Job>,
    nitems: usize,
    chunk: usize,
    /// Bumped once per `run`; workers use it to detect new work.
    epoch: u64,
    /// Helper workers that have not yet finished the current epoch.
    remaining: usize,
    shutdown: bool,
}

// The raw job pointer is only dereferenced between publication and the
// `remaining == 0` handshake, during which `run` keeps the referent alive.
unsafe impl Send for JobSlot {}

struct Shared {
    slot: Mutex<JobSlot>,
    start: Condvar,
    done: Condvar,
    cursor: AtomicUsize,
}

/// Persistent worker pool for per-element loops. The calling thread
/// participates as worker 0; `nthreads - 1` helper threads are spawned
/// once at construction.
pub struct ElemScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    nthreads: usize,
}

fn work_loop(job: &(dyn Fn(usize, usize) + Sync), nitems: usize, chunk: usize, cursor: &AtomicUsize, worker: usize) {
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= nitems {
            return;
        }
        let end = (start + chunk).min(nitems);
        for i in start..end {
            job(worker, i);
        }
    }
}

impl ElemScheduler {
    /// Pool with `nthreads` total workers (including the caller);
    /// `nthreads == 0` or `1` means serial execution with no helper
    /// threads.
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                job: None,
                nitems: 0,
                chunk: 1,
                epoch: 0,
                remaining: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let workers = (1..nthreads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("swcam-elem-{w}"))
                    .spawn(move || Self::worker_main(&shared, w))
                    .expect("spawn element worker")
            })
            .collect();
        ElemScheduler { shared, workers, nthreads }
    }

    /// Thread count from `SWCAM_THREADS` if set, else the machine's
    /// available parallelism.
    pub fn with_default_threads() -> Self {
        let n = std::env::var("SWCAM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Self::new(n)
    }

    /// Total workers, including the calling thread.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    fn worker_main(shared: &Shared, worker: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let (job, nitems, chunk);
            {
                let mut slot = shared.slot.lock().unwrap_or_else(|p| p.into_inner());
                while !slot.shutdown && slot.epoch == seen_epoch {
                    slot = shared.start.wait(slot).unwrap_or_else(|p| p.into_inner());
                }
                if slot.shutdown {
                    return;
                }
                seen_epoch = slot.epoch;
                job = slot.job.expect("job published with epoch bump");
                nitems = slot.nitems;
                chunk = slot.chunk;
            }
            // Sound: `run` blocks until this worker reports done below.
            work_loop(unsafe { &*job }, nitems, chunk, &shared.cursor, worker);
            let mut slot = shared.slot.lock().unwrap_or_else(|p| p.into_inner());
            slot.remaining -= 1;
            if slot.remaining == 0 {
                shared.done.notify_one();
            }
        }
    }

    /// Execute `job(worker_id, i)` for every `i in 0..nitems` across the
    /// pool, returning when all items are done. Allocation-free after
    /// construction. `worker_id < nthreads()` identifies which worker
    /// runs the item (for per-worker scratch); item-to-worker assignment
    /// is nondeterministic, so jobs must write only item-indexed outputs.
    pub fn run(&self, nitems: usize, job: &(dyn Fn(usize, usize) + Sync)) {
        if self.workers.is_empty() || nitems <= 1 {
            for i in 0..nitems {
                job(0, i);
            }
            return;
        }
        // Chunked self-scheduling: a few chunks per worker balances load
        // without hammering the cursor.
        let chunk = (nitems / (self.nthreads * 4)).max(1);
        self.shared.cursor.store(0, Ordering::SeqCst);
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|p| p.into_inner());
            // Erase the borrow lifetime for the published pointer. Sound:
            // `run` does not return until `remaining` hits zero, i.e. every
            // worker has finished dereferencing it for this epoch, and the
            // pointer is cleared before return.
            slot.job = Some(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize, usize) + Sync + '_), Job>(
                    job as *const _,
                )
            });
            slot.nitems = nitems;
            slot.chunk = chunk;
            slot.epoch += 1;
            slot.remaining = self.workers.len();
            self.shared.start.notify_all();
        }
        work_loop(job, nitems, chunk, &self.shared.cursor, 0);
        let mut slot = self.shared.slot.lock().unwrap_or_else(|p| p.into_inner());
        while slot.remaining > 0 {
            slot = self.shared.done.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
        slot.job = None;
    }
}

impl Drop for ElemScheduler {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap_or_else(|p| p.into_inner());
            slot.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ElemScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElemScheduler").field("nthreads", &self.nthreads).finish()
    }
}

/// One scratch slot per worker, accessed mutably without locking. The
/// scheduler guarantees a worker id is live on at most one thread at a
/// time, which is what makes [`PerWorker::get`] sound.
pub struct PerWorker<T> {
    slots: Vec<UnsafeCell<T>>,
}

// Each slot is touched by one thread at a time (scheduler invariant).
unsafe impl<T: Send> Sync for PerWorker<T> {}

impl<T> PerWorker<T> {
    pub fn new(n: usize, mut make: impl FnMut() -> T) -> Self {
        PerWorker { slots: (0..n.max(1)).map(|_| UnsafeCell::new(make())).collect() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Scratch for `worker`.
    ///
    /// # Safety
    /// At most one live reference per worker id at a time — guaranteed
    /// when `worker` is the id passed to a scheduler job and each job
    /// only touches its own slot.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self, worker: usize) -> &mut T {
        &mut *self.slots[worker].get()
    }

    /// Safe access from serial code.
    #[inline]
    pub fn get_mut(&mut self, worker: usize) -> &mut T {
        self.slots[worker].get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PerWorker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerWorker").field("len", &self.slots.len()).finish()
    }
}

/// Shared-mutable view of a flat arena (an `f64` field arena by default,
/// or a `V4F64` member-lane tile arena) for handing disjoint per-element
/// windows to scheduler jobs.
#[derive(Copy, Clone)]
pub struct ArenaMut<'a, T = f64> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ArenaMut<'_, T> {}
unsafe impl<T: Sync> Sync for ArenaMut<'_, T> {}

impl<'a, T> ArenaMut<'a, T> {
    pub fn new(buf: &'a mut [T]) -> Self {
        ArenaMut { ptr: buf.as_mut_ptr(), len: buf.len(), _marker: PhantomData }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Window `[start, start + len)` of the arena.
    ///
    /// # Safety
    /// Windows sliced concurrently must be pairwise disjoint (the
    /// per-element ranges of the dycore loops are).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Read one value without materializing a reference — for gather-style
    /// jobs that read windows owned by *other* elements.
    ///
    /// # Safety
    /// The caller must guarantee the slot is not being written
    /// concurrently (the task graph's eligibility rules order every
    /// neighbor write before the gather that reads it).
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        std::ptr::read(self.ptr.add(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_item_exactly_once() {
        let sched = ElemScheduler::new(4);
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        sched.run(n, &|_w, i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn repeated_runs_reuse_the_pool() {
        let sched = ElemScheduler::new(3);
        let mut out = vec![0.0f64; 64];
        for round in 0..50 {
            let arena = ArenaMut::new(&mut out);
            sched.run(64, &|_w, i| {
                let s = unsafe { arena.slice(i, 1) };
                s[0] = (round * 64 + i) as f64;
            });
            assert_eq!(out[63], (round * 64 + 63) as f64);
        }
    }

    #[test]
    fn results_match_serial_for_any_thread_count() {
        let n = 257;
        let mut want = vec![0.0f64; n];
        for (i, w) in want.iter_mut().enumerate() {
            *w = (i as f64).sin();
        }
        for threads in [1, 2, 5, 8] {
            let sched = ElemScheduler::new(threads);
            let mut got = vec![0.0f64; n];
            let arena = ArenaMut::new(&mut got);
            sched.run(n, &|_w, i| {
                let s = unsafe { arena.slice(i, 1) };
                s[0] = (i as f64).sin();
            });
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn per_worker_scratch_is_private() {
        let sched = ElemScheduler::new(4);
        let scratch = PerWorker::new(sched.nthreads(), || vec![0u64; 1]);
        let n = 500;
        sched.run(n, &|w, _i| {
            let s = unsafe { scratch.get(w) };
            s[0] += 1;
        });
        let mut scratch = scratch;
        let total: u64 = (0..scratch.len()).map(|w| scratch.get_mut(w)[0]).sum();
        assert_eq!(total, n as u64);
    }

    #[test]
    fn zero_and_one_item_runs() {
        let sched = ElemScheduler::new(2);
        let count = AtomicU64::new(0);
        sched.run(0, &|_w, _i| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 0);
        sched.run(1, &|_w, i| {
            count.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
